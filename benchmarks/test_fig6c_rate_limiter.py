"""Figure 6(c): rate limiting across three model types.

Paper: the limiter's effect is workload-dependent — a large win when
the fast CPU thread causes cudaMalloc retries (T5-11B, up to 5x),
no benefit when it does not (RegNet), and a small loss where delaying
AllGathers hurts (DeepViT, ~5%).
"""

from benchmarks.conftest import run_once
from repro.bench.fig6 import fig6c_rows


def test_fig6c_rate_limiter_regimes(benchmark):
    rows = run_once(benchmark, lambda: fig6c_rows(node_counts=(2,)))
    paired = {}
    for i in range(0, len(rows), 2):
        no_limit, limited = rows[i], rows[i + 1]
        name = limited.name.replace(" limit=2", "")
        speedup = no_limit.iteration_latency / limited.iteration_latency
        paired[name] = (no_limit, limited, speedup)
        benchmark.extra_info[name] = (
            f"{speedup:.2f}x (retries {no_limit.num_alloc_retries}"
            f"->{limited.num_alloc_retries})"
        )

    t5_key = next(k for k in paired if "T5" in k)
    regnet_key = next(k for k in paired if "RegNet" in k)
    deepvit_key = next(k for k in paired if "DeepViT" in k)

    # T5: the limiter eliminates cudaMalloc retries and wins big.
    t5_nolimit, t5_limited, t5_speedup = paired[t5_key]
    assert t5_nolimit.num_alloc_retries > 0
    assert t5_limited.num_alloc_retries == 0
    assert t5_speedup > 2.0, f"T5 speedup {t5_speedup:.2f}x (paper: up to 5x)"

    # RegNet: memory is comfortable, the limiter changes little.
    _, _, regnet_speedup = paired[regnet_key]
    assert 0.9 < regnet_speedup < 1.15

    # DeepViT: the limiter slightly hurts (delayed AllGathers).
    _, _, deepvit_speedup = paired[deepvit_key]
    assert 0.9 < deepvit_speedup <= 1.02

    # The limiter always cuts reserved memory.
    for no_limit, limited, _ in paired.values():
        assert limited.peak_reserved_gib <= no_limit.peak_reserved_gib + 1e-6
