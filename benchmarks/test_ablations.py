"""Ablation benches for DESIGN.md's called-out design choices."""

import dataclasses

from benchmarks.conftest import run_once
from repro.bench.ablations import (
    rate_limit_rows,
    sharding_factor_rows,
    wrap_granularity_rows,
)


def test_ablation_wrap_granularity(benchmark):
    """§3.2.1 trade-off: finer FlatParameters lower peak memory but
    issue more collectives."""
    rows = run_once(benchmark, lambda: wrap_granularity_rows(world_size=16))
    fine, per_block, whole = rows
    for r in rows:
        benchmark.extra_info[r.name] = (
            "OOM" if r.oom else f"{r.peak_allocated_gib:.1f}GiB/{r.collectives}coll"
        )
    assert not fine.oom and not per_block.oom
    # Finer wrapping -> more collectives.
    assert fine.collectives > per_block.collectives
    # Finer wrapping -> lower (or equal) peak memory.
    assert fine.peak_allocated_gib <= per_block.peak_allocated_gib + 0.2
    # One whole-model unit must materialize everything at once: with an
    # 11B-parameter model it runs out of the 80GB device.
    assert whole.oom or whole.peak_allocated_gib > per_block.peak_allocated_gib


def test_ablation_rate_limit_cap(benchmark):
    """Inflight cap sweep: 2 is the sweet spot the paper chose."""
    rows = run_once(benchmark, lambda: rate_limit_rows(world_size=16, batch=2))
    by_name = {r.name: r for r in rows}
    for r in rows:
        benchmark.extra_info[r.name] = f"{r.iteration_latency * 1e3:.0f}ms"
    cap1 = by_name["rate limiter limit=1"]
    cap2 = by_name["rate limiter limit=2"]
    unlimited = by_name["rate limiter unlimited"]
    # Memory grows with the cap.
    assert cap1.peak_reserved_gib <= cap2.peak_reserved_gib + 1e-6
    assert cap2.peak_reserved_gib <= unlimited.peak_reserved_gib + 1e-6
    # Cap 2 achieves overlap: no slower than cap 1 (which serializes).
    assert cap2.iteration_latency <= cap1.iteration_latency * 1.05


def test_ablation_sharding_factor(benchmark):
    """Hybrid F sweep: memory rises and comm falls as F shrinks."""
    rows = run_once(benchmark, lambda: sharding_factor_rows(world_size=64, batch=8))
    for r in rows:
        benchmark.extra_info[r.name] = (
            f"{r.peak_allocated_gib:.1f}GiB cross-host {r.cross_host_gib:.1f}GiB"
        )
    full = rows[0]
    hybrids = rows[1:]
    assert hybrids, "sweep must include at least one hybrid factor"
    # Every hybrid keeps more memory per rank than full sharding...
    for r in hybrids:
        assert r.peak_allocated_gib >= full.peak_allocated_gib - 0.5
    # ...and the host-confined factor (F=8) moves the least data
    # across hosts (Section 3.2.2's motivation).
    smallest_f = hybrids[-1]
    assert smallest_f.cross_host_gib < full.cross_host_gib


def test_ablation_cpu_offload(benchmark):
    """Offloading shards to the host slashes device memory; the PCIe
    copies ride the communication stream (hidden under compute here)."""
    from repro.bench.ablations import cpu_offload_rows

    rows = run_once(benchmark, lambda: cpu_offload_rows(world_size=8, batch=8))
    on_device, offloaded = rows
    benchmark.extra_info["on-device GiB"] = round(on_device.peak_allocated_gib, 1)
    benchmark.extra_info["offloaded GiB"] = round(offloaded.peak_allocated_gib, 1)
    assert not on_device.oom and not offloaded.oom
    # Params + grads + Adam state leave the device: big memory drop.
    assert offloaded.peak_allocated_gib < 0.5 * on_device.peak_allocated_gib
    # Compute-bound at this batch: latency within 20% either way.
    ratio = offloaded.iteration_latency / on_device.iteration_latency
    assert 0.8 < ratio < 1.2


def test_ablation_grad_accumulation(benchmark):
    """§3.3.4: accumulation without communication trades memory for
    skipped reductions (each rank holds unsharded gradients)."""
    from repro.bench.ablations import grad_accumulation_rows

    rows = run_once(benchmark, lambda: grad_accumulation_rows(world_size=16, batch=4))
    no_accum, with_comm, no_sync = rows
    for r in rows:
        benchmark.extra_info[r.name] = f"{r.peak_allocated_gib:.1f}GiB {r.comm_gib:.1f}GiB-comm"
    # no_sync accumulates *unsharded* gradients: much more memory.
    assert no_sync.peak_allocated_gib > 1.5 * with_comm.peak_allocated_gib
    # ...but moves less data: the per-microbatch reductions are
    # skipped (the AllGathers remain — full sharding re-gathers
    # parameters for every microbatch, as §7.1.1 notes).
    assert no_sync.comm_gib < 0.9 * with_comm.comm_gib
    assert no_sync.collectives < with_comm.collectives
    # With communication, per-step time ~ 4x a single microbatch (the
    # reductions hide under compute in this configuration).
    assert 3.0 < with_comm.iteration_latency / no_accum.iteration_latency < 5.0
