"""Figure 6(b): backward prefetching on GPT-175B (~18% TFLOPS gain)."""

from benchmarks.conftest import run_once
from repro.bench.fig6 import fig6b_rows

WORLD_SIZES = (128, 256)  # the full 128..512 sweep runs in repro.bench


def test_fig6b_backward_prefetch_gain(benchmark):
    rows = run_once(benchmark, lambda: fig6b_rows(world_sizes=WORLD_SIZES))
    gains = []
    for i in range(0, len(rows), 2):
        with_prefetch, without = rows[i], rows[i + 1]
        assert not with_prefetch.oom and not without.oom
        gain = with_prefetch.tflops_per_gpu / without.tflops_per_gpu - 1.0
        gains.append(gain)
        benchmark.extra_info[f"gain@{with_prefetch.world_size}"] = f"{gain * 100:.1f}%"
        benchmark.extra_info[f"tflops@{with_prefetch.world_size}"] = round(
            with_prefetch.tflops_per_gpu, 1
        )

    # Paper: ~18% speedup, persisting across cluster sizes.
    for gain in gains:
        assert 0.10 < gain < 0.30, f"prefetch gain {gain * 100:.1f}% out of band"
    # The gain does not vanish as the cluster grows.
    assert gains[-1] > 0.10

    # Paper: >173 TFLOPS/GPU at batch size 1 with prefetching
    # (>55% of the 312 TFLOPS BF16 peak).
    assert rows[0].tflops_per_gpu > 150.0
    assert rows[0].tflops_per_gpu / 312.0 > 0.5
