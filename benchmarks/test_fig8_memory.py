"""Figure 8: peak memory (allocated / active / reserved) at scale."""

from benchmarks.conftest import run_once
from repro.bench.scale import dhen_sweep, gpt175b_sweep, t5_11b_sweep


def test_fig8a_dhen_memory(benchmark):
    rows = run_once(benchmark, lambda: dhen_sweep(world_sizes=(8, 64, 512)))
    for r in rows:
        benchmark.extra_info[f"{r.name}@{r.world_size}"] = round(r.peak_reserved_gib, 1)
    by_key = {(r.name, r.world_size): r for r in rows}
    # Memory decreases (weakly) as GPUs are added: smaller shards.
    for name in {r.name for r in rows}:
        series = [by_key[(name, w)].peak_allocated_gib for w in (8, 64, 512)]
        assert series[0] >= series[-1] - 0.5
    # RAF has the smallest footprint, NRAF the largest (active bytes).
    fs_raf = by_key[("DHEN FullShard RAF", 512)]
    hs_nraf = by_key[("DHEN HybridShard NRAF", 512)]
    assert fs_raf.peak_active_gib < hs_nraf.peak_active_gib


def test_fig8b_gpt175b_memory(benchmark):
    rows = run_once(
        benchmark, lambda: gpt175b_sweep(world_sizes=(128, 256, 512), batch_sizes=(1, 2))
    )
    for r in rows:
        benchmark.extra_info[f"{r.name}@{r.world_size}"] = round(r.peak_reserved_gib, 1)
    for batch in (1, 2):
        series = [r for r in rows if r.batch_size == batch]
        # Peak memory decreases with more GPUs (sharded state shrinks;
        # constant-size transient buffers flatten the tail).
        reserved = [r.peak_reserved_gib for r in series]
        assert reserved[0] > reserved[-1]
        assert all(a >= b - 0.5 for a, b in zip(reserved, reserved[1:]))
        # All three torch.cuda.memory_stats series are ordered.
        for r in series:
            assert r.peak_allocated_gib <= r.peak_active_gib <= r.peak_reserved_gib
            assert r.peak_reserved_gib < 80.0
    # Batch 2 uses more memory than batch 1 at every size.
    bs1 = [r for r in rows if r.batch_size == 1]
    bs2 = [r for r in rows if r.batch_size == 2]
    for a, b in zip(bs1, bs2):
        assert b.peak_reserved_gib > a.peak_reserved_gib


def test_fig8c_t5_memory(benchmark):
    rows = run_once(
        benchmark, lambda: t5_11b_sweep(world_sizes=(8, 64, 512), batch_sizes=(8,))
    )
    for r in rows:
        benchmark.extra_info[f"bs8@{r.world_size}"] = round(r.peak_reserved_gib, 1)
    reserved = [r.peak_reserved_gib for r in rows]
    # Comfortably below capacity everywhere; decreasing with scale.
    assert all(v < 60 for v in reserved)
    assert reserved[0] > reserved[-1]
    assert all(r.num_alloc_retries == 0 for r in rows)
