"""Figure 5: communication/computation overlap, measured from a trace."""

from benchmarks.conftest import run_once
from repro.bench.fig5 import trace_iteration
from repro.fsdp import BackwardPrefetch
from repro.perf.timeline import overlap_fraction


def test_fig5_overlap_measured(benchmark):
    def run():
        results = {}
        for prefetch in (BackwardPrefetch.BACKWARD_PRE, BackwardPrefetch.NONE):
            tracer, latency = trace_iteration(prefetch)
            results[prefetch] = (overlap_fraction(tracer), latency, tracer)
        return results

    results = run_once(benchmark, run)
    with_pf, without_pf = (
        results[BackwardPrefetch.BACKWARD_PRE],
        results[BackwardPrefetch.NONE],
    )
    benchmark.extra_info["overlap(prefetch)"] = f"{with_pf[0] * 100:.0f}%"
    benchmark.extra_info["overlap(none)"] = f"{without_pf[0] * 100:.0f}%"

    # The machinery hides most communication under computation.
    assert with_pf[0] > 0.5
    # The trace contains both collective kinds on the unshard stream
    # and compute on the default stream (the Figure 5 structure).
    tracer = with_pf[2]
    labels = {e.name for e in tracer.events}
    assert {"kernel", "all_gather_base", "reduce_scatter"} <= labels
    streams = tracer.by_stream()
    assert any("unshard" in s for s in streams)
    assert any("default" in s for s in streams)
