"""Profiler bench: per-unit exposed/overlapped comm for all workloads.

Runs ``repro.bench.profile`` (minGPT, T5, DHEN with per-block wrapping
and the profiler attached) once, asserts the §5 qualitative shape —
communication is substantially hidden, prefetch feeds every non-first
unit, counter tracks exist — and writes the combined report to
``BENCH_profiler.json`` at the repo root so CI uploads it next to the
autotune artifact.
"""

import json
import pathlib

from benchmarks.conftest import run_once
from repro.bench.profile import (
    bench_dhen_workload,
    profile_workload,
)
from repro.bench.autotune import bench_gpt_workload, bench_t5_workload

ARTIFACT = pathlib.Path(__file__).parent.parent / "BENCH_profiler.json"

WORKLOADS = {
    "mingpt": bench_gpt_workload,
    "t5": bench_t5_workload,
    "dhen": bench_dhen_workload,
}


def _artifact_update(section: str, payload) -> None:
    data = json.loads(ARTIFACT.read_text()) if ARTIFACT.exists() else {}
    data[section] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _check_report(report: dict) -> None:
    assert not report["oom"]
    summary = report["profiler"]
    units = summary["units"]
    blocks = [u for u in units if "." in u["label"]]
    assert len(blocks) >= 4  # per-block wrapping produced one row each
    for unit in units:
        assert unit["allgather_bytes"] > 0
        assert unit["exposed_comm_s"] + unit["overlapped_comm_s"] > 0
    # §3.3: overlap hides a real fraction of communication, and every
    # block except the one opening the backward pass is prefetch-fed.
    totals = summary["totals"]
    assert 0.10 < totals["overlap_fraction"] < 1.0
    assert totals["prefetch_hits"] > totals["prefetch_misses"] > 0
    hit_blocks = [u for u in blocks if u["prefetch_hits"] > 0]
    assert len(hit_blocks) == len(blocks) - 1
    # Memory counter tracks were captured and attribute their peak.
    memory = summary["memory"]
    assert memory["samples"] > 0
    assert memory["peak_active_bytes"] > 0
    assert memory["attribution"]


def _run(benchmark, name: str) -> None:
    workload = WORKLOADS[name]()
    report = run_once(benchmark, lambda: profile_workload(workload, verbose=False))
    _check_report(report)
    totals = report["profiler"]["totals"]
    benchmark.extra_info.update(
        {
            "exposed_comm_s": round(totals["exposed_comm_s"], 6),
            "overlapped_comm_s": round(totals["overlapped_comm_s"], 6),
            "overlap_fraction": round(totals["overlap_fraction"], 3),
            "prefetch_hits": totals["prefetch_hits"],
            "prefetch_misses": totals["prefetch_misses"],
        }
    )
    _artifact_update(name, report)


def test_profile_mingpt(benchmark):
    _run(benchmark, "mingpt")


def test_profile_t5(benchmark):
    _run(benchmark, "t5")


def test_profile_dhen(benchmark):
    _run(benchmark, "dhen")
