"""Figure 7(c): T5-11B TFLOPS per GPU, 8 to 512 GPUs."""

from benchmarks.conftest import run_once
from repro.bench.scale import t5_11b_sweep

WORLD_SIZES = (8, 64, 512)


def test_fig7c_t5_scaling(benchmark):
    rows = run_once(
        benchmark, lambda: t5_11b_sweep(world_sizes=WORLD_SIZES, batch_sizes=(8, 16))
    )
    for r in rows:
        benchmark.extra_info[f"{r.name}@{r.world_size}"] = (
            "OOM" if r.oom else round(r.tflops_per_gpu, 1)
        )
    bs8 = [r for r in rows if r.batch_size == 8]
    bs16 = [r for r in rows if r.batch_size == 16]

    for r in rows:
        assert not r.oom
        # Everything runs comfortably below the 80GB capacity: no
        # defragmentation anywhere (paper: Figure 8(c)).
        assert r.peak_reserved_gib < 60
        assert r.num_alloc_retries == 0

    # Scaling 8 -> 512 stays within the paper's ~7% regression band
    # (our simulator's stragglers are milder: a few percent).
    for series in (bs8, bs16):
        change = series[-1].tflops_per_gpu / series[0].tflops_per_gpu
        assert 0.90 < change < 1.10

    # Larger batches amortize communication: bs=16 >= bs=8 throughput.
    assert bs16[-1].tflops_per_gpu >= bs8[-1].tflops_per_gpu
