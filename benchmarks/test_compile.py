"""Compiler bench: compiled schedules must strictly beat eager.

Runs ``repro.bench.compile`` (eager vs. ``SimConfig(compile=True)`` on
the minGPT, T5 and DHEN workloads, profiler attached, checkpointing
off in both arms) and asserts the issue's acceptance bar: the compiled
schedule strictly reduces exposed communication seconds on at least
two of the three workloads, with the bucketing/fusion stats proving
the passes actually fired.  Writes ``BENCH_compile.json`` at the repo
root so CI uploads it next to the profiler artifact.
"""

import json
import pathlib

from benchmarks.conftest import run_once
from repro.bench.autotune import bench_gpt_workload, bench_t5_workload
from repro.bench.compile import bench_workload
from repro.bench.profile import bench_dhen_workload

ARTIFACT = pathlib.Path(__file__).parent.parent / "BENCH_compile.json"

WORKLOADS = {
    "mingpt": bench_gpt_workload,
    "t5": bench_t5_workload,
    "dhen": bench_dhen_workload,
}

_REPORTS: dict = {}


def _artifact_update(section: str, payload) -> None:
    data = json.loads(ARTIFACT.read_text()) if ARTIFACT.exists() else {}
    data[section] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _check_report(report: dict) -> None:
    assert not report["eager"]["oom"] and not report["compiled"]["oom"]
    schedule = report["compiled"]["schedule"]
    assert schedule is not None, "compiled arm never installed its schedule"
    merged = schedule["stats"]["collectives_merged"]
    assert merged["all_gather"] > 0, "bucketing pass merged nothing"
    assert schedule["stats"]["dead_waits_removed"] > 0
    # Fewer, larger collectives per iteration is the mechanism of the
    # win; it must show up in the simulator's own collective counter.
    assert (
        report["compiled"]["collectives_per_iteration"]
        < report["eager"]["collectives_per_iteration"]
    )


def _run(benchmark, name: str) -> None:
    workload = WORKLOADS[name]()
    report = run_once(benchmark, lambda: bench_workload(workload, verbose=False))
    _check_report(report)
    benchmark.extra_info.update(
        {
            "eager_exposed_comm_s": round(report["eager"]["exposed_comm_s"], 6),
            "compiled_exposed_comm_s": round(
                report["compiled"]["exposed_comm_s"], 6
            ),
            "improvement_s": round(report["exposed_comm_improvement_s"], 6),
            "strict_win": report["strict_win"],
        }
    )
    _REPORTS[name] = report
    _artifact_update(name, report)


def test_compile_mingpt(benchmark):
    _run(benchmark, "mingpt")


def test_compile_t5(benchmark):
    _run(benchmark, "t5")


def test_compile_dhen(benchmark):
    _run(benchmark, "dhen")


def test_strict_win_on_at_least_two_workloads():
    """The issue's acceptance bar, computed over the lane's reports."""
    assert len(_REPORTS) == len(WORKLOADS), "run the per-workload benches first"
    wins = [name for name, r in _REPORTS.items() if r["strict_win"]]
    assert len(wins) >= 2, f"strict exposed-comm wins only on {wins}"
    _artifact_update("strict_wins", wins)
