"""Elastic checkpointing bench: interval sweep, sync vs. async.

Runs ``repro.bench.elastic`` (minGPT, crash mid-run, checkpoint
interval sweep in both modes) once, asserts the qualitative trade-off —
synchronous saves expose a stall that scales with save count, async
saves hide the D2H behind compute at the price of a wider loss-of-work
window, and replay cost grows with the interval — and writes
``BENCH_elastic.json`` at the repo root for the CI artifact upload.
"""

import json
import pathlib

from benchmarks.conftest import run_once
from repro.bench.elastic import INTERVALS, main as run_elastic_bench

ARTIFACT = pathlib.Path(__file__).parent.parent / "BENCH_elastic.json"


def test_elastic_interval_sweep(benchmark):
    payload = run_once(benchmark, lambda: run_elastic_bench(artifact=ARTIFACT, verbose=False))
    points = payload["points"]
    assert len(points) == 2 * len(INTERVALS)
    sync = {p["interval"]: p for p in points if p["mode"] == "sync"}
    async_ = {p["interval"]: p for p in points if p["mode"] == "async"}

    for interval in INTERVALS:
        assert sync[interval]["recoveries"] == 1
        assert async_[interval]["recoveries"] == 1
        # Sync saves expose a real stall; async hides it on the side
        # stream (observable as overlapped checkpoint time instead).
        assert sync[interval]["checkpoint_stall_s"] > 0
        assert async_[interval]["checkpoint_stall_s"] == 0.0
        assert async_[interval]["checkpoint_overlapped_s"] > 0
        # Hidden saves buy a faster steady-state iteration.
        assert (
            async_[interval]["iteration_latency_s"]
            < sync[interval]["iteration_latency_s"]
        )

    # Stall scales with save count: longer intervals pay less per run.
    assert sync[INTERVALS[0]]["checkpoint_stall_s"] > sync[INTERVALS[-1]]["checkpoint_stall_s"]
    assert sync[INTERVALS[0]]["checkpoint_saves"] > sync[INTERVALS[-1]]["checkpoint_saves"]
    # Replay cost (recovery overhead) grows with the interval.
    assert (
        sync[INTERVALS[-1]]["recovery_overhead_s"]
        > sync[INTERVALS[0]]["recovery_overhead_s"]
    )
    assert (
        async_[INTERVALS[-1]]["recovery_overhead_s"]
        > async_[INTERVALS[0]]["recovery_overhead_s"]
    )

    benchmark.extra_info.update(
        {
            "sync_stall_every1_s": round(sync[1]["checkpoint_stall_s"], 6),
            "async_overlapped_every1_s": round(async_[1]["checkpoint_overlapped_s"], 6),
            "sync_recovery_every8_s": round(sync[8]["recovery_overhead_s"], 6),
        }
    )
    assert json.loads(ARTIFACT.read_text())["points"]
