"""Resilience bench: peer healing vs. checkpoint restart.

Runs ``repro.bench.resilience`` (elastic crash campaigns crossing fault
rate with replication factor, in both recovery modes) once, asserts the
headline claims — healing is strictly cheaper than a checkpoint restart
at the *same* fault schedule whenever a replica survives, replays no
completed iteration, and degrades gracefully (bitwise-equal fallback)
when no replica exists — and writes ``BENCH_resilience.json`` at the
repo root for the CI artifact upload.
"""

import json
import pathlib

from benchmarks.conftest import run_once
from repro.bench.resilience import CAMPAIGNS, FACTORS, WORLD, main as run_resilience_bench

ARTIFACT = pathlib.Path(__file__).parent.parent / "BENCH_resilience.json"


def test_heal_beats_restore_when_a_replica_survives(benchmark):
    payload = run_once(
        benchmark, lambda: run_resilience_bench(artifact=ARTIFACT, verbose=False)
    )
    points = payload["points"]
    assert len(points) == 2 * len(CAMPAIGNS) * len(FACTORS)
    # Every campaign, every mode: recovery reproduces the fault-free
    # loss trajectory bitwise and every injected crash was recovered.
    for point in points:
        assert point["losses_match_baseline"], point
        assert point["restarts"] == len(CAMPAIGNS[point["campaign"]])

    by_key = {
        (p["campaign"], p["sharding_factor"], p["recovery"]): p for p in points
    }
    for campaign in CAMPAIGNS:
        # Hybrid (F=2, a surviving replica per shard): healing is
        # strictly cheaper than restoring the same fault schedule, every
        # restart heals, nothing is replayed.
        heal = by_key[(campaign, 2, "heal")]
        restore = by_key[(campaign, 2, "restore")]
        assert heal["recovery_overhead_s"] < restore["recovery_overhead_s"]
        assert heal["heal_s"] < restore["restore_s"]
        assert heal["healed_restarts"] == heal["restarts"]
        assert heal["heal_fallbacks"] == 0
        assert heal["recovered_iterations"] == 0
        assert heal["replay_s"] == 0.0
        # Detection cost is mode-independent: same faults, same watchdog.
        assert heal["detection_s"] == restore["detection_s"]

        # Sharded across the full world (F=W): no replica survives a
        # failure, so heal falls back to the checkpoint store on every
        # restart and costs exactly what a plain restore costs.
        fallback = by_key[(campaign, WORLD, "heal")]
        plain = by_key[(campaign, WORLD, "restore")]
        assert fallback["healed_restarts"] == 0
        assert fallback["heal_fallbacks"] == fallback["restarts"]
        assert fallback["recovery_overhead_s"] == plain["recovery_overhead_s"]

    benchmark.extra_info.update(
        {
            "heal_single_crash_s": round(
                by_key[("single-crash", 2, "heal")]["recovery_overhead_s"], 6
            ),
            "restore_single_crash_s": round(
                by_key[("single-crash", 2, "restore")]["recovery_overhead_s"], 6
            ),
        }
    )
    assert json.loads(ARTIFACT.read_text())["points"]
