"""Autotune: cost-model calibration and planner-vs-grid quality.

Two claims are benchmarked.  First, the analytic estimators in
``repro.autotune`` track the simulator: peak-memory predictions land
within the stated error band and latency predictions within a looser
one (the planner only needs the *ranking*; top-k validation re-ranks
by simulated latency).  Second, the planner's chosen configuration is
within 10% of the exhaustive grid's best simulated latency while
simulating only top-k candidates instead of the whole grid.

The combined results are written to ``BENCH_autotune.json`` at the
repo root so CI can upload them as an artifact.
"""

import json
import pathlib

from benchmarks.conftest import run_once
from repro.autotune import (
    Candidate,
    calibrate,
    dhen_workload,
    plan_sharding,
    print_calibration_table,
    search_result_to_json,
)
from repro.bench.autotune import (
    bench_gpt_workload,
    bench_t5_workload,
    planner_vs_grid,
    restricted_space,
)
from repro.fsdp.sharding import ShardingStrategy
from repro.models.dhen import DhenConfig

ARTIFACT = pathlib.Path(__file__).parent.parent / "BENCH_autotune.json"

# Sized so reserved memory is well past segment-granularity noise
# (sub-200 MiB footprints are dominated by 2/20 MiB segment rounding).
BENCH_DHEN = DhenConfig(
    num_features=64,
    sparse_rows_total=4_000_000,
    sparse_dim=64,
    num_dense_features=128,
    d_model=512,
    num_layers=8,
    num_heads=8,
    d_ff=2048,
)

#: Error bands the cost models are calibrated to on these workloads.
#: Memory follows the allocator's per-stream pools closely; latency is
#: looser (fine-grained wrap plans over-charge per-collective launch
#: overhead that the simulator partially overlaps).
MEMORY_BAND = 0.25
LATENCY_BAND = 0.40


def _calibration_candidates(workload):
    """Whole-model and per-block wrap under both reshard settings."""
    out = []
    for wrap in workload.wrap_choices[:2]:
        for strategy in (ShardingStrategy.FULL_SHARD, ShardingStrategy.SHARD_GRAD_OP):
            out.append(Candidate(wrap=wrap, strategy=strategy))
    return out


def _artifact_update(section: str, payload) -> None:
    data = json.loads(ARTIFACT.read_text()) if ARTIFACT.exists() else {}
    data[section] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2, default=str) + "\n")


def _check_calibration(benchmark, workload, *, memory_band=MEMORY_BAND):
    rows = run_once(
        benchmark, lambda: calibrate(workload, _calibration_candidates(workload))
    )
    print_calibration_table(rows)
    for row in rows:
        key = row.config[:48]
        benchmark.extra_info[f"mem_err {key}"] = round(row.memory_rel_err, 3)
        benchmark.extra_info[f"lat_err {key}"] = round(row.latency_rel_err, 3)
        assert not row.simulated_oom
        assert abs(row.memory_rel_err) < memory_band, row
        assert abs(row.latency_rel_err) < LATENCY_BAND, row
    return rows


def test_calibration_mingpt(benchmark):
    workload = bench_gpt_workload()
    rows = _check_calibration(benchmark, workload)
    _artifact_update("calibration_mingpt", [row.__dict__ for row in rows])


def test_calibration_t5(benchmark):
    workload = bench_t5_workload()
    rows = _check_calibration(benchmark, workload)
    _artifact_update("calibration_t5", [row.__dict__ for row in rows])


def test_calibration_dhen(benchmark):
    workload = dhen_workload(BENCH_DHEN, batch_size=8, world_size=8)
    rows = _check_calibration(benchmark, workload)
    _artifact_update("calibration_dhen", [row.__dict__ for row in rows])


def test_planner_vs_grid_mingpt(benchmark):
    workload = bench_gpt_workload()
    comparison = run_once(benchmark, lambda: planner_vs_grid(workload))
    benchmark.extra_info.update(
        {k: v for k, v in comparison.items() if isinstance(v, (int, float, str))}
    )
    # The planner's pick is within 10% of the exhaustive grid optimum
    # while simulating only top-k of the candidates.
    assert comparison["planner_gap"] <= 0.10
    assert comparison["validated"] < comparison["grid_size"]
    _artifact_update("planner_vs_grid_mingpt", comparison)


def test_planner_vs_grid_t5(benchmark):
    workload = bench_t5_workload()
    comparison = run_once(benchmark, lambda: planner_vs_grid(workload))
    benchmark.extra_info.update(
        {k: v for k, v in comparison.items() if isinstance(v, (int, float, str))}
    )
    assert comparison["planner_gap"] <= 0.10
    assert comparison["validated"] < comparison["grid_size"]
    _artifact_update("planner_vs_grid_t5", comparison)


def test_planner_search_digest(benchmark):
    """Full planner run digest (budget, pruning, rankings) -> artifact."""
    workload = bench_gpt_workload()
    result = run_once(
        benchmark,
        lambda: plan_sharding(workload, space=restricted_space(workload), top_k=3),
    )
    digest = search_result_to_json(result)
    assert digest["best"] is not None
    assert digest["candidates_considered"] == 16
    # Every validated plan carries its simulation outcome.
    assert all("simulated_latency_s" in p for p in digest["validated"])
    benchmark.extra_info["best"] = digest["best"]["config"]
    _artifact_update("planner_search_mingpt", digest)
