"""Per-parameter sharding backend: memory and latency vs flat-param.

Two claims are benchmarked for each workload, flat-param being the
baseline under an otherwise identical configuration (same wrap plan,
strategy, prefetching, rate limit, foreach Adam on both sides):

- **memory**: per-parameter dim-0 sharding stores exactly the model.
  The flatten-concat padding is eliminated (an analytic identity, so
  it is asserted exactly), and the simulated peak stays within one
  unit's transient all-gather staging allocation of the flat
  backend's peak — per-parameter gathers into a staging buffer and
  copies out to the persistent parameter storages, where flat gathers
  straight into its padded flat buffer.
- **latency**: batched copy-in/copy-out collectives and even-padded
  staging keep the per-unit collective count and ring path identical
  to flat; the remaining overhead (staging copies) is bounded.

Results are written to ``BENCH_perparam.json`` at the repo root so CI
can upload them as an artifact.
"""

import json
import pathlib

from benchmarks.conftest import run_once
from repro.bench.perparam import bench_configs, compare_backends

ARTIFACT = pathlib.Path(__file__).parent.parent / "BENCH_perparam.json"

#: Simulated peak-reserved headroom for the per-param backend: one
#: unit's transient gather staging, rounded up to allocator segment
#: granularity (2/20 MiB segments dominate at these model sizes).
STAGING_HEADROOM_GIB = 64.0 / 1024.0

#: Step-latency ceiling for per-param relative to flat-param.
LATENCY_RATIO_MAX = 2.0


def _artifact_update(section: str, payload) -> None:
    data = json.loads(ARTIFACT.read_text()) if ARTIFACT.exists() else {}
    data[section] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2, default=str) + "\n")


def _comparison_payload(comparison: dict) -> dict:
    rows = comparison.pop("rows")
    payload = dict(comparison)
    payload["rows"] = {
        backend: {
            "latency_s": result.iteration_latency,
            "tflops_per_gpu": result.tflops_per_gpu,
            "peak_allocated_gib": result.peak_allocated_gib,
            "peak_reserved_gib": result.peak_reserved_gib,
            "collectives": result.collectives,
            "comm_gib": result.comm_gib,
            "config": result.config_label(),
        }
        for backend, result in rows.items()
    }
    return payload


def _check_workload(benchmark, index: int) -> dict:
    config = bench_configs()[index]
    comparison = run_once(benchmark, lambda: compare_backends(config))
    acct = comparison["accounting"]
    flat, perp = acct["flat_param"], acct["per_param"]
    rows = comparison["rows"]

    # Analytic identity: flat-param's world storage is padded, the
    # per-parameter backend's is exact, and the delta IS the padding.
    assert perp["padding_elems"] == 0
    assert perp["padded_numel"] == perp["total_numel"]
    assert flat["total_numel"] == perp["total_numel"]
    assert flat["padded_numel"] == flat["total_numel"] + flat["padding_elems"]
    assert (
        acct["world_param_bytes_flat"] - acct["world_param_bytes_per_param"]
        == acct["padding_bytes_eliminated"]
    )

    # Simulated peaks: within one staging allocation of the baseline.
    assert (
        rows["per_param"].peak_reserved_gib
        <= rows["flat_param"].peak_reserved_gib + STAGING_HEADROOM_GIB
    ), comparison
    # Identical collective counts and bytes — the batched copy-in/
    # copy-out path keeps the paper's Section 3.3 schedule intact.
    assert rows["per_param"].collectives == rows["flat_param"].collectives
    assert comparison["latency_ratio"] <= LATENCY_RATIO_MAX, comparison

    benchmark.extra_info["latency_ratio"] = round(comparison["latency_ratio"], 3)
    benchmark.extra_info["padding_bytes_eliminated"] = acct["padding_bytes_eliminated"]
    benchmark.extra_info["peak_reserved_delta_gib"] = round(
        comparison["peak_reserved_delta_gib"], 4
    )
    return comparison


def test_perparam_vs_flat_mingpt(benchmark):
    comparison = _check_workload(benchmark, 0)
    _artifact_update("mingpt", _comparison_payload(comparison))


def test_perparam_vs_flat_t5(benchmark):
    comparison = _check_workload(benchmark, 1)
    _artifact_update("t5", _comparison_payload(comparison))


def test_perparam_vs_flat_odd_mlp(benchmark):
    """Prime layer sizes: every shard boundary lands mid-row, so this
    exercises the uneven-segment padding of the staging buffers."""
    comparison = _check_workload(benchmark, 2)
    acct = comparison["accounting"]
    # Uneven dims actually produce flat padding to eliminate.
    assert acct["padding_bytes_eliminated"] > 0
    _artifact_update("odd_mlp", _comparison_payload(comparison))
