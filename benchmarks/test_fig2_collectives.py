"""Figure 2: collective communication efficiency vs input size."""

from benchmarks.conftest import run_once
from repro.bench.fig2 import fig2a_rows, fig2b_knee, fig2b_rows


def test_fig2a_collective_variants(benchmark):
    rows = run_once(benchmark, lambda: fig2a_rows(world_size=8))
    benchmark.extra_info["rows"] = len(rows)
    # Paper shape: native even all-gather fastest at every size; the
    # list-output variant pays copies; uneven inputs (broadcast
    # fallback) are far slower.
    for row in rows:
        assert row.bw_all_gather_base > row.bw_all_gather_list
        assert row.bw_all_gather_list > row.bw_uneven_small
        assert row.bw_all_gather_list > row.bw_uneven_large
    # Bandwidth grows with size then saturates.
    assert rows[-1].bw_all_gather_base > 10 * rows[0].bw_all_gather_base
    # Large messages approach (but do not exceed) NVLink line rate.
    assert rows[-1].bw_all_gather_base < 250e9


def test_fig2b_launch_overhead_knee(benchmark):
    rows = run_once(benchmark, lambda: fig2b_rows(world_size=8))
    knee = fig2b_knee(rows)
    benchmark.extra_info["knee_elements"] = knee
    benchmark.extra_info["single_collective_ms"] = rows[-1][1] * 1e3
    # Total time decreases monotonically with per-collective size, and
    # the rapid-increase knee falls in the tens of millions of elements
    # (paper: ~33M).
    times = [t for _, t in rows]
    assert all(a >= b for a, b in zip(times, times[1:]))
    assert 2**23 <= knee <= 2**26
    # Splitting 2^30 elements into 1M-element collectives is >5x worse.
    assert times[0] > 5 * times[-1]
