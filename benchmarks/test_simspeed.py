"""Simulator engine speed: sim-seconds-per-wall-second regression lane.

Two claims per sweep workload, with the pre-overhaul engine (measured
by the same harness at the preceding commit, baked into
``repro.bench.simspeed.BASELINE``) as the denominator:

- **speed**: meta mode (timing-only execution + steady-state
  fast-forward, the mode every Section 5 sweep runs in) delivers at
  least ``SPEEDUP_MIN`` more simulated seconds per wall second on the
  512-GPU workloads; the event-by-event engine with fast-forward
  disabled must itself beat the baseline (cost-model memoization,
  allocator and dispatch fast paths).
- **fidelity**: the overhaul buys wall time only — simulated iteration
  latencies are asserted *bitwise equal* to the pre-PR baseline.

Results are written to ``BENCH_simspeed.json`` at the repo root so CI
can upload them as an artifact.
"""

import json
import pathlib

from benchmarks.conftest import run_once
from repro.bench.simspeed import BASELINE, bench_configs, run_sweep

ARTIFACT = pathlib.Path(__file__).parent.parent / "BENCH_simspeed.json"

#: The ISSUE's acceptance bar for the 512-GPU sweep.  Measured speedup
#: on the reference machine is 12-13x; the assertion keeps >2x headroom
#: for slower CI hosts (the ratio numerator is simulated time, so only
#: the wall-clock denominator varies across machines).
SPEEDUP_MIN = 5.0

#: Within-run floor for what the fast-forward itself buys over the
#: event-by-event engine — machine-independent (same host, same run).
FAST_FORWARD_GAIN_MIN = 2.0

#: The full event-by-event engine must not regress below the pre-PR
#: baseline ratio (it measures ~1.4-1.7x on the reference machine).
FULL_SIM_REGRESSION_MIN = 1.0


def _artifact_update(section: str, payload) -> None:
    data = json.loads(ARTIFACT.read_text()) if ARTIFACT.exists() else {}
    data[section] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2, default=str) + "\n")


def _check_workload(benchmark, key: str) -> dict:
    payload = run_once(benchmark, lambda: run_sweep(keys=[key]))
    row = payload["workloads"][key]
    meta, full = row["meta"], row["full_sim"]

    # Fidelity: simulated time is untouched by the speed work, bitwise,
    # in both modes (the fast-forward extrapolates within float
    # tolerance; the full engine reproduces the baseline exactly).
    assert full["iteration_latency"] == BASELINE[key]["iteration_latency"]
    assert abs(meta["iteration_latency"] - full["iteration_latency"]) <= (
        1e-9 * full["iteration_latency"]
    )
    # The fast-forward actually engaged and skipped most of the window.
    assert meta["fast_forwarded_iterations"] >= payload["iterations"] // 2
    assert full["fast_forwarded_iterations"] == 0

    # Speed: within-run fast-forward gain, and no full-engine regression.
    assert meta["ratio"] >= FAST_FORWARD_GAIN_MIN * full["ratio"], row
    assert row["full_sim_speedup_vs_baseline"] >= FULL_SIM_REGRESSION_MIN, row

    benchmark.extra_info["sim_s_per_wall_s"] = round(meta["ratio"], 2)
    benchmark.extra_info["full_sim_ratio"] = round(full["ratio"], 3)
    benchmark.extra_info["speedup_vs_baseline"] = round(
        row["speedup_vs_baseline"], 2
    )
    return row


def test_simspeed_keys_cover_baseline():
    assert {key for key, _ in bench_configs()} == set(BASELINE)


def test_simspeed_mingpt_ws64(benchmark):
    row = _check_workload(benchmark, "minGPT/ws64")
    _artifact_update("minGPT/ws64", row)


def test_simspeed_mingpt_ws512(benchmark):
    row = _check_workload(benchmark, "minGPT/ws512")
    # The headline acceptance criterion: >=5x on the 512-GPU sweep.
    assert row["speedup_vs_baseline"] >= SPEEDUP_MIN, row
    _artifact_update("minGPT/ws512", row)


def test_simspeed_t5_ws512(benchmark):
    row = _check_workload(benchmark, "T5-11B/ws512")
    assert row["speedup_vs_baseline"] >= SPEEDUP_MIN, row
    _artifact_update("T5-11B/ws512", row)
