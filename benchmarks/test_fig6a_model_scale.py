"""Figure 6(a): FSDP vs DDP across T5 model sizes on 8 GPUs."""

from benchmarks.conftest import run_once
from repro.bench.fig6 import fig6a_rows


def test_fig6a_fsdp_vs_ddp(benchmark):
    rows = run_once(benchmark, lambda: fig6a_rows(world_size=8, batch=8, seq=512))
    by_name = {r.name: r for r in rows}
    for row in rows:
        benchmark.extra_info[row.name] = "OOM" if row.oom else round(row.tflops_per_gpu, 1)

    # Small models: FSDP performs like DDP (within 10%).
    for label in ("T5-611M", "T5-2.28B"):
        ddp = by_name[f"{label} DDP fp32"]
        fsdp = by_name[f"{label} FSDP fp32"]
        assert not ddp.oom and not fsdp.oom
        ratio = fsdp.tflops_per_gpu / ddp.tflops_per_gpu
        assert 0.9 < ratio < 1.15, f"{label}: FSDP/DDP ratio {ratio}"

    # DDP cannot wrap models beyond 2.28B (out of memory on 80GB).
    assert by_name["T5-11B DDP fp32"].oom
    assert not by_name["T5-11B FSDP fp32"].oom

    # Turning on BF16 yields significantly higher TFLOPS.
    for label in ("T5-611M", "T5-2.28B", "T5-11B"):
        fp32 = by_name[f"{label} FSDP fp32"]
        bf16 = by_name[f"{label} FSDP bf16"]
        assert bf16.tflops_per_gpu > 1.3 * fp32.tflops_per_gpu

    # FSDP memory is far below DDP's.
    assert (
        by_name["T5-2.28B FSDP fp32"].peak_reserved_gib
        < 0.6 * by_name["T5-2.28B DDP fp32"].peak_reserved_gib
    )
