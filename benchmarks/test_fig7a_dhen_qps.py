"""Figure 7(a): DHEN training throughput under four sharding configs."""

from benchmarks.conftest import run_once
from repro.bench.scale import dhen_sweep

WORLD_SIZES = (8, 64, 512)


def test_fig7a_dhen_strategy_ordering(benchmark):
    rows = run_once(benchmark, lambda: dhen_sweep(world_sizes=WORLD_SIZES))
    by_key = {(r.name, r.world_size): r for r in rows}
    for r in rows:
        benchmark.extra_info[f"{r.name}@{r.world_size}"] = (
            "OOM" if r.oom else round(r.qps_per_gpu, 1)
        )

    largest = WORLD_SIZES[-1]
    fs_raf = by_key[("DHEN FullShard RAF", largest)].qps_per_gpu
    fs_nraf = by_key[("DHEN FullShard NRAF", largest)].qps_per_gpu
    hs_raf = by_key[("DHEN HybridShard RAF", largest)].qps_per_gpu
    hs_nraf = by_key[("DHEN HybridShard NRAF", largest)].qps_per_gpu

    # Paper ordering at scale: Full Sharding with RAF yields the
    # smallest memory but the lowest QPS; Hybrid with NRAF the opposite.
    assert fs_raf < fs_nraf < hs_raf < hs_nraf

    # The memory ordering is inverted (checked in Figure 8's bench).
    fs_raf_mem = by_key[("DHEN FullShard RAF", largest)].peak_reserved_gib
    hs_nraf_mem = by_key[("DHEN HybridShard NRAF", largest)].peak_reserved_gib
    assert fs_raf_mem < hs_nraf_mem

    # At one host (8 GPUs) hybrid degenerates to full sharding.
    assert by_key[("DHEN HybridShard RAF", 8)].qps_per_gpu == (
        by_key[("DHEN FullShard RAF", 8)].qps_per_gpu
    )
