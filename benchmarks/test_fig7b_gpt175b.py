"""Figure 7(b): GPT-175B TFLOPS per GPU, near-linear scaling."""

import dataclasses

from benchmarks.conftest import run_once
from repro.bench.scale import gpt175b_sweep
from repro.perf import SimConfig, simulate_training

WORLD_SIZES = (128, 256, 512)


def test_fig7b_gpt175b_scaling(benchmark):
    rows = run_once(
        benchmark, lambda: gpt175b_sweep(world_sizes=WORLD_SIZES, batch_sizes=(1, 2))
    )
    for r in rows:
        benchmark.extra_info[f"{r.name}@{r.world_size}"] = (
            "OOM" if r.oom else round(r.tflops_per_gpu, 1)
        )
    bs1 = [r for r in rows if r.batch_size == 1]
    bs2 = [r for r in rows if r.batch_size == 2]

    # Paper: ~173 TFLOPS (bs=1) and ~186 TFLOPS (bs=2) per GPU,
    # i.e. 55-60% of the 312 TFLOPS BF16 peak.
    for r in bs1:
        assert not r.oom
        assert 150 < r.tflops_per_gpu < 210
        assert r.tflops_per_gpu / 312.0 > 0.48
    # bs=2 reaches higher utilization than bs=1.
    assert bs2[-1].tflops_per_gpu > bs1[-1].tflops_per_gpu

    # Near-linear scaling 128 -> 512 GPUs: per-GPU TFLOPS within 5%.
    for series in (bs1, bs2):
        drop = 1.0 - series[-1].tflops_per_gpu / series[0].tflops_per_gpu
        assert drop < 0.05, f"scaling drop {drop * 100:.1f}%"


def test_fig7b_defragmentation_dip(benchmark):
    """The 128-GPU bs=2 anomaly: memory pressure triggers cudaMalloc
    retries that lengthen the backward pass.

    Our simulated memory inventory is leaner than the authors' stack,
    so the near-capacity regime is reproduced by tightening the device
    budget (see EXPERIMENTS.md); the *mechanism* — retries at the
    smallest cluster size only, recovering at larger ones — is the
    paper's.
    """
    capacity = int(58 * 2**30)

    def run_tight():
        from repro.models import GPT3_175B
        from repro.fsdp import ModuleWrapPolicy
        from repro.fsdp.mixed_precision import BF16_MIXED
        from repro.models.transformer import TransformerBlock
        from repro.perf.workloads import gpt_builder, gpt_loss_fn

        results = []
        for world in (128, 192):
            results.append(
                simulate_training(
                    SimConfig(
                        name=f"GPT-175B bs=2 58GiB",
                        build_model=gpt_builder(GPT3_175B),
                        make_loss=gpt_loss_fn(GPT3_175B, 2, 2048),
                        batch_size=2,
                        world_size=world,
                        auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
                        mixed_precision=BF16_MIXED,
                        capacity=capacity,
                        iterations=1,
                    )
                )
            )
        return results

    at_128, at_192 = run_once(benchmark, run_tight)
    benchmark.extra_info["tflops@128"] = "OOM" if at_128.oom else round(at_128.tflops_per_gpu, 1)
    benchmark.extra_info["tflops@192"] = "OOM" if at_192.oom else round(at_192.tflops_per_gpu, 1)
    benchmark.extra_info["retries@128"] = at_128.num_alloc_retries
    benchmark.extra_info["retries@192"] = at_192.num_alloc_retries
    assert not at_128.oom and not at_192.oom
    # 128 GPUs hold the largest shards: retries appear there first and
    # per-GPU TFLOPS dips relative to 192 GPUs.
    assert at_128.num_alloc_retries > at_192.num_alloc_retries
    assert at_128.tflops_per_gpu < at_192.tflops_per_gpu
