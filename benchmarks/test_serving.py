"""Serving-fleet bench regression lane.

Runs the ``repro.bench.serving`` experiments once (fast profile: same
measured DHEN service model, shorter traffic windows) and holds the
ISSUE's three acceptance claims as floors:

- **scale-out**: served QPS grows near-linearly with replica count
  (each replica is an independent sharded world — the fleet adds no
  coordination collectives);
- **continuous batching** beats fixed-size batching on p99 at equal
  offered load (the fill-wait pathology);
- **elastic recovery**: after a mid-traffic replica crash the
  autoscaler's capacity repair restores >= ``RECOVERY_MIN`` of the
  pre-fault served QPS.

Writes ``BENCH_serving.json`` at the repo root for the CI artifact.
"""

import json

from benchmarks.conftest import run_once
from repro.bench import serving

ARTIFACT = serving.ARTIFACT

#: Scale-out floors (ideal is 2.0x / 4.0x; headroom for edge effects —
#: partial final batches, drain windows).
SCALE_2X_MIN = 1.8
SCALE_4X_MIN = 3.0

#: Continuous batching must beat fixed-size on p99 by a real margin.
P99_RATIO_MAX = 0.9

#: Post-crash served QPS as a fraction of pre-fault QPS.
RECOVERY_MIN = 0.9


def test_serving_bench(benchmark):
    report = run_once(benchmark, lambda: serving.main(fast=True))

    # -- scale-out ----------------------------------------------------
    points = report["scaling"]["points"]
    qps = {count: point["qps"] for count, point in points.items()}
    assert qps[1] > 0
    assert qps[2] >= SCALE_2X_MIN * qps[1], qps
    if 4 in qps:
        assert qps[4] >= SCALE_4X_MIN * qps[1], qps
    # Efficiency holds while scaling: QPS/GPU stays within 25% of the
    # single-replica point.
    per_gpu = {count: point["qps_per_gpu"] for count, point in points.items()}
    for count, value in per_gpu.items():
        assert value >= 0.75 * per_gpu[1], per_gpu

    # -- batching policies --------------------------------------------
    policies = report["policies"]["points"]
    fixed = next(v for k, v in policies.items() if k.startswith("fixed:"))
    cont = next(v for k, v in policies.items() if k.startswith("continuous:"))
    p99_fixed = fixed["latency_ms"]["p99"]
    p99_cont = cont["latency_ms"]["p99"]
    assert p99_cont <= P99_RATIO_MAX * p99_fixed, (p99_cont, p99_fixed)
    # Fixed-size earns its tail latency with fuller batches.
    assert fixed["avg_batch"] >= cont["avg_batch"]

    # -- elastic recovery ---------------------------------------------
    recovery = report["recovery"]
    assert recovery["crashes"] >= 1
    assert recovery["provisions"] >= 1
    ratio = recovery["recovery_ratio"]
    assert ratio is not None and ratio >= RECOVERY_MIN, recovery

    # -- artifact -----------------------------------------------------
    stored = json.loads(ARTIFACT.read_text())
    assert stored["model"] == "dhen"
    assert set(stored) >= {"latency_curve_ms", "scaling", "policies", "recovery"}

    benchmark.extra_info.update(
        {
            "qps_1_replica": round(qps[1], 1),
            "scale_2x": round(qps[2] / qps[1], 2),
            "p99_fixed_ms": round(p99_fixed, 3),
            "p99_continuous_ms": round(p99_cont, 3),
            "recovery_ratio": round(ratio, 3),
        }
    )
