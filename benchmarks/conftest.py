"""Benchmark-suite configuration.

Each benchmark runs one figure's simulation sweep exactly once (the
simulation is deterministic — statistical rounds would re-measure the
same number), attaches the reproduced metrics as ``extra_info`` and
asserts the paper's qualitative shape: who wins, by roughly what
factor, where knees/crossovers fall.
"""

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
