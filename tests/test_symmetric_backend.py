"""Symmetric (single-rank, perf) process-group backend."""

import pytest

import repro
from repro import distributed as dist, dtypes
from repro.errors import DistributedError


@pytest.fixture()
def world():
    dist.shutdown()
    ctx = dist.init_single_process(16, materialize=False)
    yield ctx
    dist.shutdown()


class TestSetup:
    def test_context(self, world):
        assert dist.get_rank() == 0
        assert dist.get_world_size() == 16
        assert dist.get_device().is_sim_gpu
        assert not dist.get_device().materialize_data

    def test_default_group_cached(self, world):
        assert dist.default_group() is dist.default_group()

    def test_topology_must_fit(self):
        dist.shutdown()
        from repro.hw.specs import cluster_of

        with pytest.raises(DistributedError):
            dist.init_single_process(64, topology=cluster_of(8))
        dist.shutdown()


class TestCollectives:
    def test_all_gather_advances_stream(self, world):
        g = dist.default_group()
        dev = world.device
        shard = repro.empty(1_000_000, device=dev)
        out = repro.empty(16_000_000, device=dev)
        before = g.comm_stream.ready_time
        work = g.all_gather_into_tensor(out, shard)
        assert g.comm_stream.ready_time > before
        assert not work.query()  # CPU has not caught up yet
        work.wait()
        assert work.query()

    def test_all_gather_rejects_materialized(self, world):
        g = dist.default_group()
        out = repro.zeros(32)  # cpu, materialized
        shard = repro.zeros(2)
        with pytest.raises(DistributedError):
            g.all_gather_into_tensor(out, shard)

    def test_reduce_scatter_and_all_reduce_cost_ordering(self, world):
        g = dist.default_group()
        dev = world.device
        full = repro.empty(16_000_000, device=dev)
        shard = repro.empty(1_000_000, device=dev)
        # Prime the stream so subsequent durations are gap-free (the
        # first collective's start would otherwise wait for the CPU
        # clock that advanced during the big allocations above).
        g.all_reduce(shard)
        t0 = g.comm_stream.ready_time
        g.reduce_scatter_tensor(shard, full)
        rs_time = g.comm_stream.ready_time - t0
        t0 = g.comm_stream.ready_time
        g.all_reduce(full)
        ar_time = g.comm_stream.ready_time - t0
        assert ar_time > rs_time  # all-reduce moves ~2x the data

    def test_collectives_serialize_on_one_stream(self, world):
        """The ProcessGroupNCCL single-stream behaviour (§3.3.2)."""
        g = dist.default_group()
        dev = world.device
        a = repro.empty(4_000_000, device=dev)
        out = repro.empty(64_000_000, device=dev)
        end_first = None
        g.all_gather_into_tensor(out, a)
        end_first = g.comm_stream.ready_time
        g.reduce_scatter_tensor(a, out)
        # The second collective starts after the first finished.
        assert g.comm_stream.ready_time > end_first

    def test_scalar_ops(self, world):
        g = dist.default_group()
        assert g.all_reduce_scalar(2.0, op="sum") == 32.0
        assert g.all_reduce_scalar(2.0, op="max") == 2.0
        assert g.all_reduce_scalar(2.0, op="avg") == 2.0

    def test_all_to_all_bytes(self, world):
        g = dist.default_group()
        before = g.comm_stream.ready_time
        g.all_to_all_bytes(1_000_000_000)
        assert g.comm_stream.ready_time > before

    def test_traffic_counters(self, world):
        g = dist.default_group()
        dev = world.device
        shard = repro.empty(1_000_000, device=dev)
        out = repro.empty(16_000_000, device=dev)
        g.all_gather_into_tensor(out, shard)
        expected = int(out.nbytes * 15 / 16)
        assert g.bytes_sent == expected
        assert g.cross_host_bytes == expected  # 16 GPUs span 2 hosts


class TestSubgroups:
    def test_intra_host_group_is_faster(self, world):
        dev = world.device
        host_group = dist.new_group(range(8))
        global_group = dist.default_group()
        payload_out = repro.empty(80_000_000, device=dev)
        payload_shard = repro.empty(10_000_000, device=dev)
        t0 = host_group.comm_stream.ready_time
        host_group.all_gather_into_tensor(payload_out, payload_shard)
        host_time = host_group.comm_stream.ready_time - t0

        out2 = repro.empty(160_000_000, device=dev)
        t0 = global_group.comm_stream.ready_time
        global_group.all_gather_into_tensor(out2, payload_shard)
        global_time = global_group.comm_stream.ready_time - t0
        assert host_time < global_time

    def test_host_group_no_cross_host_traffic(self, world):
        dev = world.device
        g = dist.new_group(range(8))
        shard = repro.empty(1_000_000, device=dev)
        out = repro.empty(8_000_000, device=dev)
        g.all_gather_into_tensor(out, shard)
        assert g.cross_host_bytes == 0
        assert g.bytes_sent > 0
