"""Unit tests for the Tensor class: factories, views, data-swap, in-place."""

import numpy as np
import pytest

import repro
from repro import dtypes, no_grad
from repro.cuda.device import Device, cpu_device, meta_device
from repro.tensor import use_device


class TestFactories:
    def test_zeros(self):
        t = repro.zeros(3, 4)
        assert t.shape == (3, 4)
        assert t.numel == 12
        np.testing.assert_array_equal(t.numpy(), np.zeros((3, 4)))

    def test_ones_and_full(self):
        np.testing.assert_array_equal(repro.ones(2, 2).numpy(), np.ones((2, 2)))
        np.testing.assert_array_equal(repro.full((2,), 3.5).numpy(), [3.5, 3.5])

    def test_scalar(self):
        t = repro.zeros()
        assert t.shape == ()
        assert t.numel == 1
        assert t.item() == 0.0

    def test_tensor_from_list(self):
        t = repro.tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.dtype is dtypes.float32
        assert t.shape == (2, 2)

    def test_tensor_int_dtype_inferred(self):
        t = repro.tensor(np.arange(5))
        assert t.dtype is dtypes.int64

    def test_randn_seeded(self):
        repro.manual_seed(5)
        a = repro.randn(8)
        repro.manual_seed(5)
        b = repro.randn(8)
        np.testing.assert_array_equal(a.numpy(), b.numpy())

    def test_arange(self):
        np.testing.assert_array_equal(repro.arange(4).numpy(), [0, 1, 2, 3])

    def test_like_factories(self):
        t = repro.randn(2, 3)
        assert repro.zeros_like(t).shape == (2, 3)
        assert repro.ones_like(t).dtype is t.dtype
        assert repro.empty_like(t).device is t.device

    def test_use_device_routes_factories(self):
        with use_device(meta_device()):
            t = repro.empty(4)
        assert t.is_meta
        t2 = repro.empty(4)
        assert not t2.is_meta


class TestViews:
    def test_view_shares_storage(self):
        t = repro.randn(6)
        v = t.view(2, 3)
        with no_grad():
            t.fill_(7.0)
        assert (v.numpy() == 7.0).all()

    def test_view_numel_mismatch(self):
        with pytest.raises(ValueError):
            repro.randn(6).view(4, 2)

    def test_view_minus_one(self):
        t = repro.randn(12)
        assert t.view(3, -1).shape == (3, 4)

    def test_split_is_view(self):
        t = repro.tensor(np.arange(10, dtype=np.float32))
        a, b = t.split([4, 6])
        np.testing.assert_array_equal(a.numpy(), np.arange(4))
        np.testing.assert_array_equal(b.numpy(), np.arange(4, 10))
        with no_grad():
            t.fill_(0.0)
        assert (a.numpy() == 0).all() and (b.numpy() == 0).all()

    def test_narrow(self):
        t = repro.tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        n = t.narrow(0, 1, 2)
        np.testing.assert_array_equal(n.numpy(), [[3, 4, 5], [6, 7, 8]])

    def test_narrow_out_of_range(self):
        with pytest.raises(ValueError):
            repro.randn(4).narrow(0, 3, 2)

    def test_getitem_int_and_slice(self):
        t = repro.tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        np.testing.assert_array_equal(t[1].numpy(), [3, 4, 5])
        np.testing.assert_array_equal(t[1:3].numpy(), [[3, 4, 5], [6, 7, 8]])

    def test_transpose_copy(self):
        t = repro.tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        np.testing.assert_array_equal(t.t().numpy(), t.numpy().T)

    def test_permute(self):
        t = repro.randn(2, 3, 4)
        assert t.permute(2, 0, 1).shape == (4, 2, 3)

    def test_unsqueeze_squeeze(self):
        t = repro.randn(3, 4)
        assert t.unsqueeze(0).shape == (1, 3, 4)
        assert t.unsqueeze(0).squeeze(0).shape == (3, 4)

    def test_cat(self):
        a, b = repro.ones(2, 3), repro.zeros(1, 3)
        c = repro.cat([a, b], 0)
        assert c.shape == (3, 3)
        np.testing.assert_array_equal(c.numpy()[:2], np.ones((2, 3)))

    def test_stack(self):
        a, b = repro.ones(3), repro.zeros(3)
        s = repro.stack([a, b])
        assert s.shape == (2, 3)


class TestDataSwap:
    def test_data_getter_detached_alias(self):
        t = repro.randn(4, requires_grad=True)
        alias = t.data
        assert not alias.requires_grad
        with no_grad():
            alias.fill_(2.0)
        assert (t.numpy() == 2.0).all()

    def test_data_setter_repoints(self):
        t = repro.randn(4, requires_grad=True)
        other = repro.zeros(8)
        t.data = other
        assert t.shape == (8,)
        assert t.requires_grad  # autograd flags survive the swap
        assert t._storage is other._storage

    def test_data_setter_changes_dtype(self):
        t = repro.randn(4)
        t.data = repro.zeros(4, dtype=dtypes.bfloat16)
        assert t.dtype is dtypes.bfloat16

    def test_data_setter_rejects_non_tensor(self):
        t = repro.randn(4)
        with pytest.raises(TypeError):
            t.data = np.zeros(4)


class TestInplace:
    def test_inplace_on_grad_tensor_raises(self):
        t = repro.randn(4, requires_grad=True)
        with pytest.raises(RuntimeError):
            t.add_(1.0)

    def test_inplace_allowed_under_no_grad(self):
        t = repro.randn(4, requires_grad=True)
        with no_grad():
            t.add_(1.0)

    def test_add_alpha(self):
        t = repro.zeros(3)
        with no_grad():
            t.add_(repro.ones(3), alpha=2.5)
        np.testing.assert_allclose(t.numpy(), [2.5] * 3)

    def test_mul_div(self):
        t = repro.full((3,), 8.0)
        with no_grad():
            t.mul_(0.5)
            t.div_(2.0)
        np.testing.assert_allclose(t.numpy(), [2.0] * 3)

    def test_copy_shape_mismatch(self):
        with pytest.raises(ValueError), no_grad():
            repro.zeros(3).copy_(repro.zeros(4))

    def test_copy_reshapes_same_numel(self):
        t = repro.zeros(2, 2)
        with no_grad():
            t.copy_(repro.tensor(np.arange(4, dtype=np.float32)))
        np.testing.assert_array_equal(t.numpy(), [[0, 1], [2, 3]])


class TestMisc:
    def test_bool_single_element(self):
        assert bool(repro.ones(1))
        assert not bool(repro.zeros(1))

    def test_bool_multi_element_raises(self):
        with pytest.raises(RuntimeError):
            bool(repro.ones(2))

    def test_len(self):
        assert len(repro.zeros(5, 2)) == 5
        with pytest.raises(TypeError):
            len(repro.zeros())

    def test_item_requires_single(self):
        with pytest.raises(ValueError):
            repro.zeros(2).item()

    def test_comparisons_return_bool_tensor(self):
        t = repro.tensor(np.array([1.0, 2.0, 3.0]))
        mask = t > 1.5
        assert mask.dtype is dtypes.bool_
        np.testing.assert_array_equal(mask.numpy(), [False, True, True])

    def test_norm(self):
        t = repro.tensor(np.array([3.0, 4.0]))
        assert abs(t.norm().item() - 5.0) < 1e-6

    def test_requires_grad_on_int_raises(self):
        with pytest.raises(RuntimeError):
            repro.tensor(np.arange(3)).requires_grad_()

    def test_dtype_casts(self):
        t = repro.randn(4)
        assert t.bfloat16().dtype is dtypes.bfloat16
        assert t.half().dtype is dtypes.float16
        assert t.bfloat16().float().dtype is dtypes.float32

    def test_abstract_tensor_has_no_data(self):
        device = Device("sim_gpu")
        device.materialize_data = False
        t = repro.empty(4, device=device)
        assert not t.is_materialized
        with pytest.raises(RuntimeError):
            t.numpy()

    def test_repr_smoke(self):
        assert "Tensor" in repr(repro.randn(2))
