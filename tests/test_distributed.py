"""Threaded process-group tests: collectives, subgroups, timing sync."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro import distributed as dist
from repro.distributed import ReduceOp
from repro.errors import DistributedError


def run(fn, world=4, **kwargs):
    return dist.spawn(fn, world, **kwargs)


class TestAllGather:
    def test_all_gather_into_tensor(self):
        def fn(rank):
            g = dist.default_group()
            x = repro.tensor(np.full(3, float(rank), dtype=np.float32), device=dist.get_device())
            out = repro.empty(12, device=dist.get_device())
            g.all_gather_into_tensor(out, x).wait()
            return out.numpy()

        for result in run(fn):
            np.testing.assert_array_equal(
                result, np.repeat(np.arange(4, dtype=np.float32), 3)
            )

    def test_all_gather_shape_mismatch(self):
        def fn(rank):
            g = dist.default_group()
            x = repro.ones(3, device=dist.get_device())
            out = repro.empty(10, device=dist.get_device())
            with pytest.raises(DistributedError):
                g.all_gather_into_tensor(out, x)
            g.barrier()

        run(fn)

    def test_all_gather_list_even(self):
        def fn(rank):
            g = dist.default_group()
            dev = dist.get_device()
            x = repro.tensor(np.array([float(rank)], dtype=np.float32), device=dev)
            outs = [repro.empty(1, device=dev) for _ in range(4)]
            g.all_gather(outs, x).wait()
            return [o.item() for o in outs]

        for result in run(fn):
            assert result == [0.0, 1.0, 2.0, 3.0]

    def test_all_gather_list_uneven(self):
        def fn(rank):
            g = dist.default_group()
            dev = dist.get_device()
            size = rank + 1
            x = repro.tensor(np.full(size, float(rank), dtype=np.float32), device=dev)
            outs = [repro.empty(r + 1, device=dev) for r in range(4)]
            g.all_gather(outs, x).wait()
            return [o.numpy().tolist() for o in outs]

        for result in run(fn):
            assert result == [[0.0], [1.0, 1.0], [2.0] * 3, [3.0] * 4]


class TestReductions:
    def test_all_reduce_sum_and_avg(self):
        def fn(rank):
            g = dist.default_group()
            dev = dist.get_device()
            x = repro.tensor(np.array([float(rank + 1)], dtype=np.float32), device=dev)
            g.all_reduce(x, op=ReduceOp.SUM).wait()
            y = repro.tensor(np.array([float(rank + 1)], dtype=np.float32), device=dev)
            g.all_reduce(y, op=ReduceOp.AVG).wait()
            return x.item(), y.item()

        for total, avg in run(fn):
            assert total == 10.0
            assert avg == 2.5

    def test_all_reduce_max(self):
        def fn(rank):
            g = dist.default_group()
            x = repro.tensor(np.array([float(rank)], dtype=np.float32), device=dist.get_device())
            g.all_reduce(x, op=ReduceOp.MAX).wait()
            return x.item()

        assert all(v == 3.0 for v in run(fn))

    def test_reduce_scatter(self):
        def fn(rank):
            g = dist.default_group()
            dev = dist.get_device()
            x = repro.tensor(np.arange(8, dtype=np.float32) + rank, device=dev)
            out = repro.empty(2, device=dev)
            g.reduce_scatter_tensor(out, x).wait()
            return out.numpy()

        results = run(fn)
        # sum over ranks of (arange(8) + r) = 4*arange(8) + 6
        full = 4 * np.arange(8, dtype=np.float32) + 6
        for rank, result in enumerate(results):
            np.testing.assert_array_equal(result, full[2 * rank : 2 * rank + 2])

    def test_reduce_scatter_avg(self):
        def fn(rank):
            g = dist.default_group()
            dev = dist.get_device()
            x = repro.tensor(np.ones(4, dtype=np.float32) * rank, device=dev)
            out = repro.empty(1, device=dev)
            g.reduce_scatter_tensor(out, x, op=ReduceOp.AVG).wait()
            return out.item()

        assert all(v == 1.5 for v in run(fn))

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=4, max_size=4))
    def test_all_reduce_property(self, values):
        def fn(rank):
            g = dist.default_group()
            x = repro.tensor(
                np.array([values[rank]], dtype=np.float32), device=dist.get_device()
            )
            g.all_reduce(x).wait()
            return x.item()

        expected = np.float32(sum(np.float32(v) for v in values))
        for result in run(fn):
            assert abs(result - expected) <= 1e-3 * max(1.0, abs(expected))


class TestBroadcastAndScalar:
    def test_broadcast(self):
        def fn(rank):
            g = dist.default_group()
            x = repro.tensor(np.full(2, float(rank), dtype=np.float32), device=dist.get_device())
            g.broadcast(x, src=2).wait()
            return x.numpy()

        for result in run(fn):
            np.testing.assert_array_equal(result, [2.0, 2.0])

    def test_broadcast_bad_src(self):
        def fn(rank):
            g = dist.default_group()
            x = repro.ones(2, device=dist.get_device())
            with pytest.raises(DistributedError):
                g.broadcast(x, src=99)
            g.barrier()

        run(fn)

    def test_all_reduce_scalar(self):
        def fn(rank):
            g = dist.default_group()
            return (
                g.all_reduce_scalar(float(rank), op=ReduceOp.SUM),
                g.all_reduce_scalar(float(rank), op=ReduceOp.MAX),
            )

        for total, biggest in run(fn):
            assert total == 6.0
            assert biggest == 3.0


class TestSubgroups:
    def test_disjoint_subgroups(self):
        def fn(rank):
            block = rank // 2
            g = dist.new_group([2 * block, 2 * block + 1])
            x = repro.tensor(np.array([float(rank)], dtype=np.float32), device=dist.get_device())
            g.all_reduce(x).wait()
            return x.item()

        results = run(fn)
        assert results == [1.0, 1.0, 5.0, 5.0]

    def test_hybrid_style_groups(self):
        # 4 ranks as 2 shard groups x 2 replicate groups (Figure 4).
        def fn(rank):
            shard = dist.new_group([rank - rank % 2, rank - rank % 2 + 1])
            replicate = dist.new_group([rank % 2, rank % 2 + 2], concurrent_groups=2)
            x = repro.tensor(np.array([1.0 * rank], dtype=np.float32), device=dist.get_device())
            shard.all_reduce(x).wait()
            replicate.all_reduce(x).wait()
            return x.item()

        # shard sums: [1,1,5,5]; replicate sums pair ranks {0,2},{1,3}: 6 everywhere
        assert run(fn) == [6.0, 6.0, 6.0, 6.0]

    def test_group_requires_membership(self):
        def fn(rank):
            if rank == 0:
                with pytest.raises(DistributedError):
                    dist.new_group([1, 2])
            dist.barrier()

        run(fn)


class TestTimingSync:
    def test_collective_start_is_max_of_ready_times(self):
        def fn(rank):
            dev = dist.get_device()
            # Rank 2 is busy until t=1.0 on its comm stream.
            g = dist.default_group()
            if rank == 2:
                g.comm_stream.enqueue(1.0, issue_time=0.0)
            x = repro.ones(4, device=dev)
            work = g.all_reduce(x)
            return work.completion_time

        times = run(fn)
        assert len(set(times)) == 1, "collective must end at the same time on all ranks"
        assert times[0] > 1.0

    def test_barrier_and_cpu_alignment(self):
        def fn(rank):
            dev = dist.get_device()
            if rank == 1:
                dev.consume_cpu(0.5)
            g = dist.default_group()
            return g.all_reduce_scalar(0.0)

        run(fn)  # must not deadlock

    def test_traffic_accounting(self):
        def fn(rank):
            g = dist.default_group()
            x = repro.ones(1000, device=dist.get_device())
            g.all_reduce(x).wait()
            return g.bytes_sent, g.collective_count

        for sent, count in run(fn):
            assert count == 1
            assert sent == int(2 * 4000 * 3 / 4)  # 2M(W-1)/W bytes


class TestWorldManagement:
    def test_rank_and_world_size(self):
        def fn(rank):
            assert dist.get_rank() == rank
            assert dist.get_world_size() == 3
            return dist.get_device().index

        assert run(fn, world=3) == [0, 1, 2]

    def test_no_context_raises(self):
        with pytest.raises(DistributedError):
            dist.get_rank()

    def test_exception_propagates_with_rank(self):
        def fn(rank):
            if rank == 1:
                raise ValueError("boom")
            # Others must not deadlock: they wait in the rendezvous and
            # time out... avoid collectives here.
            return rank

        with pytest.raises(DistributedError, match="rank 1"):
            run(fn, world=2)

    def test_spawn_returns_in_rank_order(self):
        assert run(lambda rank: rank * 10, world=4) == [0, 10, 20, 30]
