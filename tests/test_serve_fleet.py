"""Unit + acceptance tests for the serving fleet (repro.serve).

The unit tests pin the building blocks (queue admission/expiry, the
three batching policies, the autoscaler's sustain/cooldown/repair
logic).  The acceptance tests drive :func:`simulate_serving` with a
*stub* service model — a hand-written affine latency curve, no
simulator — so fleet-level claims (QPS scales with replicas,
continuous batching beats fixed-size on p99, crash recovery restores
QPS) are checked in milliseconds and independent of the cost model.
"""

import pytest

from repro.distributed.fault import FaultEvent, FaultKind, FaultSchedule
from repro.perf.timeline import Tracer
from repro.serve import (
    AutoscaleConfig,
    Autoscaler,
    ContinuousBatcher,
    FixedSizeBatcher,
    FleetConfig,
    ReplicaSpec,
    Request,
    RequestQueue,
    ServiceModel,
    TokenBucketBatcher,
    TrafficConfig,
    make_policy,
    simulate_serving,
)

BASE_S = 1e-3
PER_REQ_S = 1e-4
MAX_BATCH = 8


def stub_service(
    *,
    max_batch: int = MAX_BATCH,
    base_s: float = BASE_S,
    per_req_s: float = PER_REQ_S,
    gpus: int = 2,
    model_bytes: int = 64 << 20,
    **spec_kw,
) -> ServiceModel:
    """ServiceModel with a synthetic affine latency curve.

    latency(b) = base_s + per_req_s * b — never touches the simulator,
    so fleet tests run fast and assertions don't chase the cost model.
    """
    spec = ReplicaSpec(
        name="stub",
        build_model=lambda: None,
        make_batch=lambda model, device, batch: None,
        gpus=gpus,
        max_batch=max_batch,
        **spec_kw,
    )
    service = ServiceModel(spec)
    for anchor in service.anchors:
        service._latency[anchor] = base_s + per_req_s * anchor
    service.model_bytes = model_bytes
    return service


def _request(rid, arrival, *, key=0, deadline=None):
    return Request(
        rid=rid,
        arrival_s=arrival,
        key=key,
        deadline_s=arrival + 1.0 if deadline is None else deadline,
    )


# ----------------------------------------------------------------------
# RequestQueue
# ----------------------------------------------------------------------
class TestRequestQueue:
    def test_fifo_and_peak_depth(self):
        queue = RequestQueue(8)
        for i in range(5):
            assert queue.push(_request(i, i * 0.1))
        assert len(queue) == 5
        assert queue.peak_depth == 5
        assert queue.oldest().rid == 0
        batch = queue.pop_batch(3)
        assert [r.rid for r in batch] == [0, 1, 2]
        assert len(queue) == 2

    def test_admission_control_sheds_beyond_depth(self):
        queue = RequestQueue(2)
        assert queue.push(_request(0, 0.0))
        assert queue.push(_request(1, 0.0))
        assert not queue.push(_request(2, 0.0))
        assert queue.shed == 1
        assert queue.pushed == 2

    def test_expire_drops_past_deadline_only(self):
        queue = RequestQueue(8)
        queue.push(_request(0, 0.0, deadline=0.5))
        queue.push(_request(1, 0.0, deadline=2.0))
        expired = queue.expire(1.0)
        assert [r.rid for r in expired] == [0]
        assert queue.timed_out == 1
        assert [r.rid for r in queue.drain()] == [1]
        assert len(queue) == 0

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            RequestQueue(0)


# ----------------------------------------------------------------------
# Batching policies
# ----------------------------------------------------------------------
class TestBatchers:
    def test_make_policy_parses_specs(self):
        assert isinstance(make_policy("fixed:8"), FixedSizeBatcher)
        fixed = make_policy("fixed:8+0.05")
        assert fixed.max_wait_s == pytest.approx(0.05)
        cont = make_policy("continuous:32+0.002")
        assert isinstance(cont, ContinuousBatcher)
        assert cont.max_batch == 32 and cont.max_wait_s == pytest.approx(0.002)
        bucket = make_policy("token_bucket:16@40+4")
        assert isinstance(bucket, TokenBucketBatcher)
        assert bucket.rate == pytest.approx(40.0)
        assert bucket.burst == pytest.approx(4.0)
        with pytest.raises(ValueError):
            make_policy("adaptive:8")

    def test_fixed_waits_for_full_batch(self):
        policy = FixedSizeBatcher(4)
        queue = RequestQueue(16)
        for i in range(3):
            queue.push(_request(i, 0.0))
        assert policy.ready(queue, 1.0) == 0
        assert policy.next_poll(queue, 1.0) is None  # only arrivals help
        queue.push(_request(3, 0.0))
        assert policy.ready(queue, 1.0) == 4

    def test_fixed_max_wait_flushes_partial(self):
        policy = FixedSizeBatcher(4, max_wait_s=0.5)
        queue = RequestQueue(16)
        queue.push(_request(0, 0.0))
        assert policy.ready(queue, 0.1) == 0
        assert policy.next_poll(queue, 0.1) == pytest.approx(0.5)
        assert policy.ready(queue, 0.6) == 1

    def test_continuous_serves_immediately(self):
        policy = ContinuousBatcher(8)
        queue = RequestQueue(16)
        assert policy.ready(queue, 0.0) == 0
        for i in range(3):
            queue.push(_request(i, 0.0))
        assert policy.ready(queue, 0.0) == 3
        for i in range(3, 15):
            queue.push(_request(i, 0.0))
        assert policy.ready(queue, 0.0) == 8  # capped at max_batch

    def test_continuous_linger_is_deadline_bounded(self):
        policy = ContinuousBatcher(8, max_wait_s=0.2)
        queue = RequestQueue(16)
        queue.push(_request(0, 1.0, deadline=1.05))
        # Linger would run to 1.2, but the deadline caps it at 1.05.
        assert policy.ready(queue, 1.0) == 0
        assert policy.next_poll(queue, 1.0) == pytest.approx(1.05)
        assert policy.ready(queue, 1.05) == 1

    def test_token_bucket_meters_and_refills(self):
        policy = TokenBucketBatcher(8, rate=10.0, burst=2.0)
        queue = RequestQueue(16)
        queue.push(_request(0, 0.0))
        assert policy.ready(queue, 0.0) == 1  # burst tokens available
        policy.on_batch(0.0)
        policy.on_batch(0.0)
        assert policy.ready(queue, 0.0) == 0  # bucket empty
        refill_at = policy.next_poll(queue, 0.0)
        assert refill_at == pytest.approx(0.1)  # 1 token at 10/s
        assert policy.ready(queue, 0.15) == 1

    def test_clone_is_independent(self):
        policy = TokenBucketBatcher(8, rate=10.0, burst=2.0)
        policy.on_batch(0.0)
        clone = policy.clone()
        queue = RequestQueue(16)
        queue.push(_request(0, 0.0))
        policy.on_batch(0.0)
        assert policy.ready(queue, 0.0) == 0
        assert clone.ready(queue, 0.0) == 1  # full burst, unshared state


# ----------------------------------------------------------------------
# Autoscaler
# ----------------------------------------------------------------------
class TestAutoscaler:
    def test_immediate_capacity_repair(self):
        scaler = Autoscaler(AutoscaleConfig(min_replicas=3, max_replicas=6))
        # A crash dropped the fleet below the floor: repair at once,
        # no sustain requirement.
        assert scaler.decide(live=1, starting=0, queue_depth=0, window_p99_s=0.0) == 2
        # Starting replicas count toward effective capacity.
        assert scaler.decide(live=1, starting=2, queue_depth=0, window_p99_s=0.0) == 0

    def test_breach_requires_sustained_pressure(self):
        scaler = Autoscaler(
            AutoscaleConfig(
                min_replicas=1,
                max_replicas=4,
                target_queue_per_replica=4.0,
                breach_ticks=2,
                cooldown_ticks=2,
            )
        )
        grow = lambda: scaler.decide(
            live=2, starting=0, queue_depth=100, window_p99_s=0.0
        )
        assert grow() == 0  # first breached tick: not sustained yet
        assert grow() == 1  # second: grow
        assert grow() == 0  # cooldown
        assert grow() == 0  # cooldown
        # Pressure sustained through the cooldown counts as evidence:
        # the very next tick grows again.
        assert grow() == 1

    def test_p99_slo_triggers_growth(self):
        scaler = Autoscaler(
            AutoscaleConfig(min_replicas=1, max_replicas=4, p99_slo_s=0.1, breach_ticks=1)
        )
        assert scaler.decide(live=1, starting=0, queue_depth=0, window_p99_s=0.5) == 1

    def test_idle_shrink_respects_floor(self):
        config = AutoscaleConfig(
            min_replicas=1, max_replicas=4, idle_ticks=2, cooldown_ticks=1
        )
        scaler = Autoscaler(config)
        idle = lambda live: scaler.decide(
            live=live, starting=0, queue_depth=0, window_p99_s=0.0
        )
        assert idle(2) == 0
        assert idle(2) == -1
        scaler2 = Autoscaler(config)
        assert scaler2.decide(live=1, starting=0, queue_depth=0, window_p99_s=0.0) == 0
        assert scaler2.decide(live=1, starting=0, queue_depth=0, window_p99_s=0.0) == 0

    def test_never_exceeds_max(self):
        scaler = Autoscaler(
            AutoscaleConfig(min_replicas=1, max_replicas=2, breach_ticks=1)
        )
        assert scaler.decide(live=2, starting=0, queue_depth=100, window_p99_s=0.0) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscaleConfig(breach_ticks=0)


# ----------------------------------------------------------------------
# Fleet acceptance (stub service: latency(b) = 1ms + 0.1ms * b)
# ----------------------------------------------------------------------
def _capacity(service):
    return service.throughput()  # max-batch requests/s of one replica


def test_qps_scales_with_replicas():
    service = stub_service()
    capacity = _capacity(service)
    qps = {}
    for count in (1, 2, 4):
        result = simulate_serving(
            FleetConfig(
                service=service,
                traffic=TrafficConfig(
                    seed=11,
                    duration_s=2.0,
                    base_qps=1.2 * capacity * count,
                    deadline_s=1.0,
                ),
                replicas=count,
                policy=f"continuous:{MAX_BATCH}",
                queue_depth=512,
            )
        )
        assert result.served > 0
        qps[count] = result.qps
    assert qps[2] >= 1.8 * qps[1]
    assert qps[4] >= 3.2 * qps[1]


def test_continuous_batching_beats_fixed_on_p99():
    service = stub_service()
    offered = 0.15 * _capacity(service) * 2
    traffic = TrafficConfig(seed=23, duration_s=2.0, base_qps=offered, deadline_s=2.0)
    results = {}
    for policy in (f"fixed:{MAX_BATCH}", f"continuous:{MAX_BATCH}"):
        results[policy] = simulate_serving(
            FleetConfig(service=service, traffic=traffic, replicas=2, policy=policy)
        )
    fixed = results[f"fixed:{MAX_BATCH}"]
    cont = results[f"continuous:{MAX_BATCH}"]
    # At moderate load the fixed-size fill wait dominates its tail;
    # continuous batching serves the moment a replica frees up.
    assert cont.latency_p99_s < 0.9 * fixed.latency_p99_s
    assert cont.latency_p50_s < fixed.latency_p50_s
    # ...at the price of smaller batches.
    assert cont.avg_batch <= fixed.avg_batch


def test_overload_sheds_but_keeps_serving():
    service = stub_service()
    capacity = _capacity(service)
    result = simulate_serving(
        FleetConfig(
            service=service,
            traffic=TrafficConfig(
                seed=7, duration_s=1.0, base_qps=4.0 * capacity, deadline_s=1.0
            ),
            replicas=1,
            policy=f"continuous:{MAX_BATCH}",
            queue_depth=16,
        )
    )
    assert result.shed > 0  # admission control at the front door
    assert result.served > 0
    assert result.qps <= 1.1 * capacity  # can't exceed one replica


def test_tight_deadline_times_requests_out():
    service = stub_service()
    result = simulate_serving(
        FleetConfig(
            service=service,
            traffic=TrafficConfig(
                seed=3, duration_s=1.0, base_qps=200.0, deadline_s=1e-3
            ),
            replicas=1,
            policy=f"fixed:{MAX_BATCH}",  # fill wait blows the 1 ms SLO
        )
    )
    assert result.timed_out > 0


def _crash_config(service, *, tracer=None, seed=37):
    capacity = _capacity(service)
    return FleetConfig(
        service=service,
        traffic=TrafficConfig(
            seed=seed, duration_s=4.0, base_qps=0.5 * capacity * 2, deadline_s=1.0
        ),
        replicas=2,
        policy=f"continuous:{MAX_BATCH}",
        queue_depth=512,
        autoscale=AutoscaleConfig(min_replicas=2, max_replicas=4, cooldown_ticks=2),
        control_interval_s=0.05,
        schedule=FaultSchedule(
            [FaultEvent(kind=FaultKind.CRASH, rank=0, iteration=300)]
        ),
        tracer=tracer,
    )


def test_crash_recovery_restores_qps():
    service = stub_service()
    result = simulate_serving(_crash_config(service))
    assert result.crashes == 1
    assert result.provisions >= 1  # the autoscaler repaired capacity
    ratio = result.recovery_ratio()
    assert ratio is not None and ratio >= 0.9
    # The fleet ends at (or above) its configured floor.
    assert result.samples[-1].live + result.samples[-1].starting >= 2


def test_hang_triggers_watchdog_and_repair():
    service = stub_service()
    capacity = _capacity(service)
    result = simulate_serving(
        FleetConfig(
            service=service,
            traffic=TrafficConfig(
                seed=41, duration_s=4.0, base_qps=0.5 * capacity * 2, deadline_s=1.0
            ),
            replicas=2,
            policy=f"continuous:{MAX_BATCH}",
            autoscale=AutoscaleConfig(min_replicas=2, max_replicas=4),
            control_interval_s=0.05,
            hang_timeout_s=0.1,
            schedule=FaultSchedule(
                [FaultEvent(kind=FaultKind.HANG, rank=1, collective_index=200)]
            ),
        )
    )
    assert result.hangs == 1
    labels = [label for _, label in result.events]
    assert any(label.startswith("serve:hang@") for label in labels)
    assert any(label.startswith("serve:watchdog@") for label in labels)
    assert result.provisions >= 1
    ratio = result.recovery_ratio()
    assert ratio is not None and ratio >= 0.9


def test_tracer_records_serve_spans_and_marks():
    tracer = Tracer()
    service = stub_service()
    simulate_serving(_crash_config(service, tracer=tracer))
    span_names = {event.name for event in tracer.events}
    assert any(name.startswith("serve:batch@") for name in span_names)
    mark_names = {name for name, _ in tracer.marks}
    assert any(name.startswith("serve:crash@") for name in mark_names)
    assert any(name.startswith("serve:provision@") for name in mark_names)
    gantt = tracer.ascii_gantt()
    assert "S" in gantt.splitlines()[1]  # serve spans render as 'S'
    assert "S=serve" in gantt


def test_serve_result_renders_as_perf_result():
    service = stub_service()
    result = simulate_serving(
        FleetConfig(
            service=service,
            traffic=TrafficConfig(seed=5, duration_s=1.0, base_qps=500.0),
            replicas=2,
        )
    )
    row = result.to_perf_result("serve/stub", world_size=4, backend="flat_param")
    assert row.requests_served == result.served
    assert row.qps_per_gpu == pytest.approx(result.qps_per_gpu)
    assert row.latency_p99_s == pytest.approx(result.latency_p99_s)
    assert row.extras["serving"]["qps"] == pytest.approx(result.qps)
    assert 0.0 <= result.goodput <= 1.0
    assert result.latency_p50_s <= result.latency_p95_s <= result.latency_p99_s


def test_storage_fault_slows_provisioning_with_fallback():
    service = stub_service()
    capacity = _capacity(service)
    schedule = FaultSchedule(
        [
            FaultEvent(kind=FaultKind.CRASH, rank=0, iteration=300),
            # Damage the first warm image the replacement restores from:
            # the verify catches it and provisioning re-pulls cold.
            FaultEvent(kind=FaultKind.TORN_WRITE, rank=None, iteration=1),
        ]
    )
    result = simulate_serving(
        FleetConfig(
            service=service,
            traffic=TrafficConfig(
                seed=37, duration_s=4.0, base_qps=0.5 * capacity * 2, deadline_s=1.0
            ),
            replicas=2,
            autoscale=AutoscaleConfig(min_replicas=2, max_replicas=4),
            control_interval_s=0.05,
            schedule=schedule,
        )
    )
    assert result.crashes == 1
    assert result.storage_fallbacks >= 1
    labels = [label for _, label in result.events]
    assert any(label.startswith("serve:fallback@") for label in labels)
    ratio = result.recovery_ratio()
    assert ratio is not None and ratio >= 0.9  # slower repair, same end state
