"""State-dict collection and loading for sharded models."""

import numpy as np
import pytest

import repro
from repro import distributed as dist, nn
from repro.fsdp import (
    FullyShardedDataParallel as FSDP,
    ModuleWrapPolicy,
)
from repro.fsdp.state_dict import (
    full_state_dict,
    load_full_state_dict,
    load_sharded_state_dict,
    sharded_state_dict,
)
from tests.conftest import copy_weights, snapshot_weights


def build():
    return nn.Sequential(nn.Linear(5, 7), nn.Tanh(), nn.Linear(7, 2))


def reference_state():
    repro.manual_seed(31)
    model = build()
    return snapshot_weights(model)


class TestFullStateDict:
    def test_keys_match_unwrapped_model(self):
        state0 = reference_state()

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            return sorted(full_state_dict(wrapped).keys())

        for keys in dist.spawn(fn, 4):
            assert keys == ["0.bias", "0.weight", "2.bias", "2.weight"]

    def test_values_roundtrip(self):
        state0 = reference_state()

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            return {k: v.numpy() for k, v in full_state_dict(wrapped).items()}

        for state in dist.spawn(fn, 4):
            for name, value in state0.items():
                np.testing.assert_allclose(state[name], value, atol=1e-6)

    def test_collection_leaves_model_sharded(self):
        state0 = reference_state()

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            full_state_dict(wrapped)
            for handle in wrapped.flat_handles:
                if handle.needs_unshard:
                    assert not handle.is_unsharded

        dist.spawn(fn, 4)

    def test_load_full_state_dict(self):
        state0 = reference_state()
        repro.manual_seed(77)
        other = build()
        target = snapshot_weights(other)

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            device = dist.get_device()
            wrapped = FSDP(
                model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
            )
            load_full_state_dict(
                wrapped, {k: repro.tensor(v) for k, v in target.items()}
            )
            return {k: v.numpy() for k, v in full_state_dict(wrapped).items()}

        for state in dist.spawn(fn, 4):
            for name, value in target.items():
                np.testing.assert_allclose(state[name], value, atol=1e-6)

    def test_load_missing_key_raises(self):
        state0 = reference_state()

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            with pytest.raises(KeyError):
                load_full_state_dict(wrapped, {})
            dist.barrier()

        dist.spawn(fn, 2)

    def test_fqns_skip_wrapper_levels(self):
        """FSDP wrapper layers must not appear in parameter names."""
        state0 = reference_state()

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            return all("module" not in k for k in full_state_dict(wrapped))

        assert all(dist.spawn(fn, 2))


class TestShardedStateDict:
    def test_local_shards_only(self):
        state0 = reference_state()

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            sd = sharded_state_dict(wrapped)
            total = sum(v.numel for v in sd.values())
            sharded_total = sum(h.shard_numel for h in wrapped.flat_handles)
            return total, sharded_total

        for total, sharded_total in dist.spawn(fn, 4):
            assert total == sharded_total

    def test_sharded_roundtrip(self):
        state0 = reference_state()

        def fn(rank):
            device = dist.get_device()
            model = build()
            copy_weights(model, state0)
            wrapped = FSDP(
                model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
            )
            saved = {
                k: repro.tensor(v.numpy().copy())
                for k, v in sharded_state_dict(wrapped).items()
            }
            # Perturb, then restore.
            from repro.autograd import no_grad

            with no_grad():
                for handle in wrapped.flat_handles:
                    handle._local_shard.fill_(0.0)
            load_sharded_state_dict(wrapped, saved)
            return {k: v.numpy() for k, v in full_state_dict(wrapped).items()}

        for state in dist.spawn(fn, 4):
            for name, value in state0.items():
                np.testing.assert_allclose(state[name], value, atol=1e-6)

    def test_sharded_load_missing_key(self):
        state0 = reference_state()

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            with pytest.raises(KeyError):
                load_sharded_state_dict(wrapped, {})
            dist.barrier()

        dist.spawn(fn, 2)
