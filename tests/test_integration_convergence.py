"""End-to-end integration: sharded training actually learns.

Fits a small regression task and checks (a) the loss collapses,
(b) FSDP's trajectory exactly matches DDP's and local training's,
(c) checkpoint/restore mid-training resumes identically.
"""

import numpy as np
import pytest

import repro
from repro import distributed as dist, nn
from repro.ddp import DistributedDataParallel as DDP
from repro.fsdp import (
    FullyShardedDataParallel as FSDP,
    ModuleWrapPolicy,
    full_optim_state_dict,
    full_state_dict,
    load_full_optim_state_dict,
    load_full_state_dict,
)
from repro.optim import Adam, CosineAnnealingLR
from tests.conftest import copy_weights, snapshot_weights

WORLD = 4
BATCH = 16
STEPS = 12


def build():
    return nn.Sequential(nn.Linear(4, 32), nn.Tanh(), nn.Linear(32, 1))


def make_task():
    """y = sum of inputs, a task the MLP can learn quickly."""
    rng = np.random.default_rng(3)
    xs = rng.normal(size=(BATCH, 4)).astype(np.float32)
    ys = xs.sum(axis=1, keepdims=True).astype(np.float32)
    return xs, ys


def train_local(state0, xs, ys, steps=STEPS):
    model = build()
    copy_weights(model, state0)
    opt = Adam(model.parameters(), lr=0.02)
    losses = []
    for _ in range(steps):
        opt.zero_grad()
        loss = nn.functional.mse_loss(model(repro.tensor(xs)), repro.tensor(ys))
        loss.backward()
        opt.step()
        losses.append(loss.item())
    return losses, snapshot_weights(model)


class TestConvergence:
    def test_fsdp_learns_and_matches_local(self):
        repro.manual_seed(9)
        state0 = snapshot_weights(build())
        xs, ys = make_task()
        local_losses, local_final = train_local(state0, xs, ys)
        assert local_losses[-1] < 0.1 * local_losses[0], "task must be learnable"

        def worker(rank):
            model = build()
            copy_weights(model, state0)
            device = dist.get_device()
            wrapped = FSDP(
                model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
            )
            opt = Adam(wrapped.parameters(), lr=0.02)
            n = BATCH // WORLD
            x = repro.tensor(xs[rank * n : (rank + 1) * n], device=device)
            y = repro.tensor(ys[rank * n : (rank + 1) * n], device=device)
            losses = []
            for _ in range(STEPS):
                opt.zero_grad()
                loss = nn.functional.mse_loss(wrapped(x), y)
                loss.backward()
                opt.step()
                losses.append(loss.item())
            return losses, {k: v.numpy() for k, v in full_state_dict(wrapped).items()}

        for losses, final in dist.spawn(worker, WORLD):
            # Sharded training reaches the same final parameters.
            for name, value in local_final.items():
                np.testing.assert_allclose(final[name], value, atol=2e-4)
            assert losses[-1] < 0.15 * (sum(losses[:1]) + 1e-9) + 0.05

    def test_fsdp_matches_ddp_trajectory(self):
        repro.manual_seed(9)
        state0 = snapshot_weights(build())
        xs, ys = make_task()

        def make_worker(kind):
            def worker(rank):
                model = build()
                copy_weights(model, state0)
                device = dist.get_device()
                if kind == "fsdp":
                    wrapped = FSDP(
                        model,
                        device=device,
                        auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
                    )
                    params = wrapped.parameters()
                else:
                    wrapped = DDP(model, broadcast_parameters=False)
                    params = model.parameters()
                opt = Adam(params, lr=0.02)
                sched = CosineAnnealingLR(opt, t_max=STEPS)
                n = BATCH // WORLD
                x = repro.tensor(xs[rank * n : (rank + 1) * n], device=device)
                y = repro.tensor(ys[rank * n : (rank + 1) * n], device=device)
                losses = []
                for _ in range(STEPS):
                    opt.zero_grad()
                    loss = nn.functional.mse_loss(wrapped(x), y)
                    loss.backward()
                    opt.step()
                    sched.step()
                    losses.append(round(loss.item(), 6))
                return losses

            return worker

        fsdp_losses = dist.spawn(make_worker("fsdp"), WORLD)
        ddp_losses = dist.spawn(make_worker("ddp"), WORLD)
        for a, b in zip(fsdp_losses, ddp_losses):
            np.testing.assert_allclose(a, b, rtol=1e-3, atol=1e-5)

    def test_checkpoint_restore_resumes_identically(self):
        repro.manual_seed(9)
        state0 = snapshot_weights(build())
        xs, ys = make_task()

        def worker(rank):
            device = dist.get_device()
            n = BATCH // WORLD
            x = repro.tensor(xs[rank * n : (rank + 1) * n], device=device)
            y = repro.tensor(ys[rank * n : (rank + 1) * n], device=device)

            def fresh():
                model = build()
                copy_weights(model, state0)
                wrapped = FSDP(
                    model,
                    device=device,
                    auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
                )
                return wrapped, Adam(wrapped.parameters(), lr=0.02)

            def steps(wrapped, opt, k):
                out = []
                for _ in range(k):
                    opt.zero_grad()
                    loss = nn.functional.mse_loss(wrapped(x), y)
                    loss.backward()
                    opt.step()
                    out.append(round(loss.item(), 6))
                return out

            # Continuous run.
            w1, o1 = fresh()
            continuous = steps(w1, o1, 8)

            # Run 4 steps, checkpoint, restore into new objects, resume.
            w2, o2 = fresh()
            first_half = steps(w2, o2, 4)
            model_ckpt = {k: repro.tensor(v.numpy().copy()) for k, v in full_state_dict(w2).items()}
            optim_ckpt = full_optim_state_dict(w2, o2)
            w3, o3 = fresh()
            steps(w3, o3, 1)  # diverge first, then restore
            load_full_state_dict(w3, model_ckpt)
            load_full_optim_state_dict(w3, o3, optim_ckpt)
            second_half = steps(w3, o3, 4)
            return continuous, first_half + second_half

        for continuous, resumed in dist.spawn(worker, WORLD):
            np.testing.assert_allclose(continuous, resumed, rtol=1e-4, atol=1e-6)
