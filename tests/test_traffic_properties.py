"""Property tests for the Section 3.2.2 cross-host traffic closed forms.

The paper approximates hybrid sharding's cross-host traffic as
``2 M (W - 1) / (G W)`` where the exact expression is
``2 (M / G) (R - 1) / R`` with ``R = W / G`` replicas.  Since
``W - 1 >= W - G``, the approximation is always an *upper bound* on
the exact value, tight exactly when ``G == 1`` (hybrid degenerates to
full replication's layout) — note the inequality direction: the paper
rounds up, never down.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hw.traffic import (
    full_replication_cross_host_bytes,
    full_sharding_cross_host_bytes,
    hybrid_sharding_cross_host_bytes,
)


def world_and_hosts():
    """(model_bytes, world_size, gpus_per_host) with G dividing W."""
    return st.tuples(
        st.floats(min_value=1.0, max_value=1e12, allow_nan=False, allow_infinity=False),
        st.integers(min_value=1, max_value=64),  # replicas R
        st.integers(min_value=1, max_value=64),  # gpus per host G
    ).map(lambda t: (t[0], t[1] * t[2], t[2]))


@given(world_and_hosts())
def test_hybrid_approx_upper_bounds_exact(case):
    model_bytes, world, hosts = case
    exact = hybrid_sharding_cross_host_bytes(model_bytes, world, hosts, exact=True)
    approx = hybrid_sharding_cross_host_bytes(model_bytes, world, hosts, exact=False)
    assert approx >= exact - 1e-6


@given(
    st.floats(min_value=1.0, max_value=1e12, allow_nan=False),
    st.integers(min_value=2, max_value=512),
)
def test_hybrid_exact_equals_approx_iff_g_is_one(model_bytes, world):
    exact = hybrid_sharding_cross_host_bytes(model_bytes, world, 1, exact=True)
    approx = hybrid_sharding_cross_host_bytes(model_bytes, world, 1, exact=False)
    assert approx == pytest.approx(exact, rel=1e-12)
    # And with G == 1 hybrid matches full replication exactly.
    assert exact == pytest.approx(full_replication_cross_host_bytes(model_bytes, world))


@given(world_and_hosts())
def test_hybrid_strictly_below_approx_for_multi_gpu_hosts(case):
    model_bytes, world, hosts = case
    if hosts == 1 or world == hosts:
        return  # equality / degenerate cases covered elsewhere
    exact = hybrid_sharding_cross_host_bytes(model_bytes, world, hosts, exact=True)
    approx = hybrid_sharding_cross_host_bytes(model_bytes, world, hosts, exact=False)
    assert exact < approx


@given(
    st.floats(min_value=1.0, max_value=1e12, allow_nan=False),
    st.integers(min_value=1, max_value=64),
)
def test_single_host_world_has_no_cross_host_traffic(model_bytes, hosts):
    # W == G: one host, every collective stays on NVLink.
    assert hybrid_sharding_cross_host_bytes(model_bytes, hosts, hosts, exact=True) == 0.0
    assert hybrid_sharding_cross_host_bytes(model_bytes, hosts, hosts, exact=False) == 0.0


@given(world_and_hosts())
def test_hybrid_never_exceeds_full_sharding_nor_replication(case):
    model_bytes, world, hosts = case
    hybrid = hybrid_sharding_cross_host_bytes(model_bytes, world, hosts, exact=True)
    assert hybrid <= full_replication_cross_host_bytes(model_bytes, world) + 1e-6
    assert hybrid <= full_sharding_cross_host_bytes(model_bytes, world) + 1e-6


@given(
    st.floats(min_value=1.0, max_value=1e12, allow_nan=False),
    st.integers(min_value=2, max_value=16),
    st.integers(min_value=2, max_value=16),
    st.integers(min_value=2, max_value=8),
)
def test_hybrid_traffic_decreases_with_larger_hosts(model_bytes, replicas, hosts, scale):
    # Growing the shard group (G -> G*scale) at fixed replica count
    # strictly reduces cross-host bytes: the all-reduced shard shrinks.
    small = hybrid_sharding_cross_host_bytes(
        model_bytes, replicas * hosts, hosts, exact=True
    )
    large = hybrid_sharding_cross_host_bytes(
        model_bytes, replicas * hosts * scale, hosts * scale, exact=True
    )
    assert large < small


def test_rejects_non_divisible_host_size():
    with pytest.raises(ValueError):
        hybrid_sharding_cross_host_bytes(1e9, 12, 8)
