"""Smoke tests: every shipped example must run end to end."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart")
        assert "quickstart OK" in capsys.readouterr().out

    def test_t5_finetune(self, capsys):
        run_example("t5_finetune")
        assert "checkpoint round trip OK" in capsys.readouterr().out

    def test_hybrid_sharding_dhen(self, capsys):
        run_example("hybrid_sharding_dhen")
        assert "example OK" in capsys.readouterr().out

    def test_deferred_init_demo(self, capsys):
        run_example("deferred_init_demo")
        assert "demo OK" in capsys.readouterr().out

    def test_autotune_mingpt(self, capsys):
        run_example("autotune_mingpt")
        assert "autotune OK" in capsys.readouterr().out

    @pytest.mark.slow
    def test_paper_scale_simulation(self, capsys):
        run_example("paper_scale_simulation")
        assert "paper-scale simulation OK" in capsys.readouterr().out
