"""Differential lockdown of the graph-captured compiler (repro.compile).

The compiler records iteration one of the eager runtime, buckets and
reorders its collectives, and replays the optimized schedule from
iteration two on.  Every rewrite it is allowed to make — coalescing
AllGathers/ReduceScatters, moving issue points, dropping redundant
waits — is *numerically invisible* by construction: coalesced
collectives reduce the concatenated payload elementwise in float64
exactly like the per-tensor path, and reordering only moves launches
between program points the dependency edges prove equivalent.

So the lockdown is BITWISE: per-step losses, final parameters and Adam
optimizer state of a compiled run must equal the eager run exactly
(``==``, no tolerance) across

- both sharding backends (``flat_param`` and ``per_param``),
- world sizes {1, 2, 4},
- FULL_SHARD and SHARD_GRAD_OP,
- minGPT-style and T5-style transformer blocks plus
  hypothesis-generated odd-width MLPs,
- single-unit and nested-unit wrapping.

``compile_bucket_elems`` is forced tiny so every run exercises real
multi-bucket schedules rather than one degenerate mega-bucket.  Each
worker also asserts the compiled executor actually installed — a test
that silently fell back to eager would prove nothing.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import distributed as dist
from repro.fsdp import ShardingStrategy, fully_shard
from repro.fsdp.optim_state import full_optim_state_dict
from repro.fsdp.state_dict import full_state_dict
from repro.optim import SGD, Adam
from tests.conftest import copy_weights
from tests.test_per_param_parity import (
    D_MODEL,
    _gpt_block_builder,
    _make_case,
    _mlp_builder,
    _optim_state_numpy,
    _t5_block_builder,
    _train,
    assert_optim_bitwise,
    assert_states_bitwise,
)

#: Small enough that even the toy models above split into several
#: buckets; large enough that adjacent tiny layers still coalesce.
BUCKET_ELEMS = 64

#: Iterations 1 (capture) and 2 (first compiled) must both be covered,
#: plus compiled steady state.
STEPS = 4


def _compile_worker(
    build,
    state0,
    xs,
    ys,
    *,
    backend,
    world,
    compile,
    steps=STEPS,
    strategy=ShardingStrategy.FULL_SHARD,
    wrap=None,
    optimizer="adam",
    lr=0.05,
):
    def worker(rank):
        model = build()
        copy_weights(model, state0)
        device = dist.get_device()
        kwargs = dict(
            backend=backend,
            device=device,
            sharding_strategy=strategy,
            compile=compile,
            compile_bucket_elems=BUCKET_ELEMS if compile else None,
        )
        if wrap is not None:
            for path, sub in reversed(list(model.named_modules())):
                if sub is not model and wrap(sub):
                    fully_shard(sub, label=path, **kwargs)
        fully_shard(model, **kwargs)
        params = list(model.parameters())
        opt = SGD(params, lr=lr) if optimizer == "sgd" else Adam(params, lr=lr)
        losses = _train(model, opt, xs, ys, rank, world, steps)
        runtime = model._fsdp_unit.runtime
        if compile:
            assert runtime.compiled is not None, "compiled executor never installed"
            assert runtime.capture is None, "capture hook should be retired"
            summary = runtime.compiled.schedule.summary()
            if world > 1:
                # W=1 units never unshard (F==1), so an empty schedule
                # is the correct degenerate capture there.
                assert summary["all_gather_buckets"], "schedule has no AG buckets"
        else:
            assert runtime.compiled is None
        sd = {k: v.numpy().copy() for k, v in full_state_dict(model).items()}
        osd = _optim_state_numpy(full_optim_state_dict(model, opt))
        return losses, sd, osd

    return worker


def run_compiled_vs_eager(build, state0, xs, ys, *, backend, world, **kw):
    """Spawn both arms and compare bitwise per rank."""
    eager = dist.spawn(
        _compile_worker(build, state0, xs, ys, backend=backend, world=world,
                        compile=False, **kw),
        world,
    )
    compiled = dist.spawn(
        _compile_worker(build, state0, xs, ys, backend=backend, world=world,
                        compile=True, **kw),
        world,
    )
    for rank, ((el, esd, eosd), (cl, csd, cosd)) in enumerate(zip(eager, compiled)):
        assert el == cl, f"rank {rank} losses diverged: eager {el} vs compiled {cl}"
        assert_states_bitwise(esd, csd, context=f"rank {rank} eager vs compiled")
        assert_optim_bitwise(eosd, cosd, context=f"rank {rank} eager vs compiled")
    return compiled


# ----------------------------------------------------------------------
# Hypothesis campaign: MLPs x backends x strategies
# ----------------------------------------------------------------------
class TestHypothesisCampaign:
    @pytest.mark.parametrize("backend", ["flat_param", "per_param"])
    @pytest.mark.parametrize(
        "strategy", [ShardingStrategy.FULL_SHARD, ShardingStrategy.SHARD_GRAD_OP]
    )
    @settings(deadline=None, max_examples=4)
    @given(
        d_in=st.integers(2, 9),
        d_h=st.integers(3, 13),
        d_out=st.integers(1, 5),
        depth=st.integers(1, 2),
        optimizer=st.sampled_from(["sgd", "adam"]),
    )
    def test_mlp_compiled_bitwise(self, backend, strategy, d_in, d_h, d_out, depth, optimizer):
        """Random odd widths vary bucket boundaries and chunk padding."""
        from repro import nn

        build = _mlp_builder(d_in, d_h, d_out, depth)
        state0, xs, ys = _make_case(build, d_in, d_out)
        run_compiled_vs_eager(
            build,
            state0,
            xs,
            ys,
            backend=backend,
            world=4,
            wrap=lambda m: isinstance(m, nn.Linear),
            strategy=strategy,
            optimizer=optimizer,
        )


# ----------------------------------------------------------------------
# World-size sweep on the minGPT block
# ----------------------------------------------------------------------
class TestWorldSizes:
    @pytest.mark.parametrize("world", [1, 2, 4])
    @pytest.mark.parametrize("backend", ["flat_param", "per_param"])
    def test_gpt_block_world_sweep(self, world, backend):
        """W=1 exercises the F==1 eager-fallback path inside buckets."""
        build = _gpt_block_builder()
        state0, xs, ys = _make_case(build, D_MODEL, D_MODEL, seq=True)
        run_compiled_vs_eager(build, state0, xs, ys, backend=backend, world=world)


# ----------------------------------------------------------------------
# Transformer blocks, nested units, SHARD_GRAD_OP
# ----------------------------------------------------------------------
class TestTransformerBlocks:
    @pytest.mark.parametrize("backend", ["flat_param", "per_param"])
    def test_t5_block_compiled_bitwise(self, backend):
        build = _t5_block_builder()
        state0, xs, ys = _make_case(build, D_MODEL, D_MODEL, seq=True)
        run_compiled_vs_eager(build, state0, xs, ys, backend=backend, world=4)

    @pytest.mark.parametrize("backend", ["flat_param", "per_param"])
    def test_gpt_nested_units_compiled_bitwise(self, backend):
        """Sub-units under a root unit: the backward consumption order
        (autograd's q/k/v ordering) diverges from issue order — the case
        that forces consumption-order bucketing."""
        from repro.models.transformer import FeedForward, MultiHeadAttention

        build = _gpt_block_builder()
        state0, xs, ys = _make_case(build, D_MODEL, D_MODEL, seq=True)
        run_compiled_vs_eager(
            build,
            state0,
            xs,
            ys,
            backend=backend,
            world=4,
            wrap=lambda m: isinstance(m, (MultiHeadAttention, FeedForward)),
        )

    @pytest.mark.parametrize("backend", ["flat_param", "per_param"])
    def test_gpt_shard_grad_op_compiled_bitwise(self, backend):
        """SHARD_GRAD_OP keeps parameters unsharded after forward, so
        backward waits target forward AllGathers and every backward wait
        is dead — the dead-wait pass's main production case."""
        build = _gpt_block_builder()
        state0, xs, ys = _make_case(build, D_MODEL, D_MODEL, seq=True)
        run_compiled_vs_eager(
            build,
            state0,
            xs,
            ys,
            backend=backend,
            world=4,
            strategy=ShardingStrategy.SHARD_GRAD_OP,
        )
