"""Unit tests for the observability layer (``repro.profiler``).

Three layers, each exercised directly against a simulated device:

- the collective **flight recorder** (ring buffer, SPMD sequence
  alignment, in-flight/missing-rank analysis, dumps);
- the **memory timeline** (allocator counter samples, peak
  attribution, Chrome-trace counter tracks);
- the **ProfilerSession** gluing them together (hook chaining, the
  scope stack, per-unit attribution, exposed/overlapped arithmetic,
  trace export).

The end-to-end behaviour on real FSDP runs lives in
``test_profiler_golden_trace.py`` and ``test_flight_recorder.py``.
"""

import json

import pytest

from repro.cuda.device import Device
from repro.profiler import (
    CollectiveRecord,
    FlightRecorder,
    MemoryTimeline,
    ProfilerSession,
    UnitProfile,
    exposed_overlapped,
    profile_device,
    scope_leaf,
    scope_parent,
)

MiB = 1 << 20


def make_device(capacity=256 * MiB) -> Device:
    return Device("sim_gpu", index=0, capacity=capacity)


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def issue(self, recorder, rank, *, kind="all_gather_base", group=(0, 1, 2, 3),
              nbytes=1024, time=0.0):
        return recorder.record_issue(
            rank=rank, kind=kind, nbytes=nbytes, group_ranks=group,
            stream="fsdp-unshard", time=time,
        )

    def test_seq_numbers_align_across_ranks(self):
        recorder = FlightRecorder()
        # SPMD: every rank issues the same two collectives on the same
        # group; per-rank seq counters must agree.
        for kind in ("all_gather_base", "reduce_scatter"):
            for rank in range(4):
                self.issue(recorder, rank, kind=kind)
        by_seq = {}
        for record in recorder.records():
            by_seq.setdefault(record.seq, set()).add(record.kind)
        assert by_seq == {0: {"all_gather_base"}, 1: {"reduce_scatter"}}

    def test_seq_numbers_are_per_group(self):
        recorder = FlightRecorder()
        a = self.issue(recorder, 0, group=(0, 1))
        b = self.issue(recorder, 0, group=(0, 1, 2, 3))
        c = self.issue(recorder, 0, group=(0, 1))
        assert (a.seq, b.seq, c.seq) == (0, 0, 1)

    def test_ring_buffer_evicts_oldest(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            self.issue(recorder, 0, time=float(i))
        records = recorder.records()
        assert len(records) == len(recorder) == 4
        assert [r.issue_time for r in records] == [6.0, 7.0, 8.0, 9.0]
        assert recorder.total_recorded == 10  # counter survives eviction

    def test_record_state_transitions(self):
        recorder = FlightRecorder()
        record = self.issue(recorder, 0, time=1.0)
        assert not record.launched
        assert record.state() == "issued"
        recorder.record_launch(record, 2.0, 3.0)
        assert record.launched
        assert record.state(now=2.5) == "running"
        assert record.state(now=3.5) == "completed"
        assert record.state() == "completed"

    def test_in_flight_empty_when_all_launched(self):
        recorder = FlightRecorder()
        for rank in range(4):
            record = self.issue(recorder, rank)
            recorder.record_launch(record, 1.0, 2.0)
        assert recorder.in_flight() == []

    def test_in_flight_reports_missing_ranks(self):
        recorder = FlightRecorder()
        # Ranks 0,1,3 issue; rank 2 hung before issuing.  Nobody
        # launches (the rendezvous never completes).
        for rank in (0, 1, 3):
            self.issue(recorder, rank)
        entries = recorder.in_flight()
        assert len(entries) == 1
        entry = entries[0]
        assert entry.kind == "all_gather_base"
        assert entry.seq == 0
        assert entry.missing_ranks == (2,)
        assert entry.issued_ranks == (0, 1, 3)
        assert entry.launched_ranks == ()
        text = entry.describe()
        assert "MISSING ranks [2]" in text
        assert "stalled (never launched) on [0, 1, 3]" in text

    def test_in_flight_with_now_reports_running(self):
        recorder = FlightRecorder()
        for rank in range(2):
            record = self.issue(recorder, rank, group=(0, 1))
            recorder.record_launch(record, 1.0, 5.0)
        assert recorder.in_flight() == []  # no clock: launched == done
        entries = recorder.in_flight(now=3.0)
        assert len(entries) == 1
        assert entries[0].missing_ranks == ()
        assert entries[0].launched_ranks == (0, 1)
        assert recorder.in_flight(now=6.0) == []

    def test_dump_render_and_json(self):
        recorder = FlightRecorder()
        for rank in (0, 1):
            record = self.issue(recorder, rank, kind="reduce_scatter",
                                group=(0, 1, 2))
        dump = recorder.dump(now=4.0)
        text = dump.render()
        assert "reduce_scatter" in text
        assert "IN FLIGHT" in text
        assert "MISSING ranks [2]" in text
        payload = dump.to_json()
        assert payload["total_recorded"] == 2
        assert payload["in_flight"][0]["missing_ranks"] == [2]
        assert payload["recent"][0]["kind"] == "reduce_scatter"
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_dump_clean_run_renders_empty_in_flight(self):
        recorder = FlightRecorder()
        record = self.issue(recorder, 0, group=(0,))
        recorder.record_launch(record, 0.0, 1.0)
        dump = recorder.dump()
        assert dump.in_flight == []
        assert "no collectives in flight" in dump.render()

    def test_clear_resets_ring_and_sequences(self):
        recorder = FlightRecorder()
        self.issue(recorder, 0)
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.total_recorded == 0
        assert self.issue(recorder, 0).seq == 0


# ----------------------------------------------------------------------
# Memory timeline
# ----------------------------------------------------------------------
class TestMemoryTimeline:
    def test_samples_track_allocator_counters(self):
        device = make_device()
        timeline = MemoryTimeline()
        allocator = device.allocator
        block = allocator.allocate(4 * MiB, device.default_stream)
        timeline.sample(allocator, 1.0, "alloc")
        allocator.free(block)
        timeline.sample(allocator, 2.0, "free", scope="forward:unit0")
        first, second = timeline.samples
        assert first.reason == "alloc"
        assert first.allocated == 4 * MiB
        assert first.active <= first.reserved
        assert sum(first.reserved_by_stream.values()) == first.reserved
        assert second.allocated == 0
        assert second.scope == "forward:unit0"
        assert second.as_dict()["reason"] == "free"
        # Freed block is cached: pool bytes appear under its stream.
        stream_id = device.default_stream.stream_id
        assert second.pool_bytes.get(stream_id, 0) > 0
        assert timeline.stream_names[stream_id] == "default"

    def test_peak_and_empty_peak(self):
        timeline = MemoryTimeline()
        assert timeline.peak() is None
        device = make_device()
        allocator = device.allocator
        a = allocator.allocate(2 * MiB, device.default_stream)
        timeline.sample(allocator, 1.0, "alloc", scope="forward:a")
        b = allocator.allocate(8 * MiB, device.default_stream)
        timeline.sample(allocator, 2.0, "alloc", scope="backward:b")
        allocator.free(b)
        allocator.free(a)
        timeline.sample(allocator, 3.0, "free")
        peak = timeline.peak("active")
        assert peak.scope == "backward:b"
        assert peak.time == 2.0
        assert timeline.peak("reserved").reserved >= peak.active

    def test_attribution_ranks_scopes_by_peak(self):
        timeline = MemoryTimeline()
        device = make_device()
        allocator = device.allocator
        blocks = []
        for i, scope in enumerate(["outer|unshard:u0", "outer|unshard:u1", ""]):
            blocks.append(allocator.allocate((i + 1) * MiB, device.default_stream))
            timeline.sample(allocator, float(i), "alloc", scope=scope)
        rows = timeline.attribution("active")
        # Innermost scope element is the attribution key; "" groups as
        # (unscoped).  Last sample saw the largest footprint.
        assert rows[0]["scope"] == "(unscoped)"
        assert [r["scope"] for r in rows[1:]] == ["unshard:u1", "unshard:u0"]
        assert rows[0]["active"] >= rows[1]["active"] >= rows[2]["active"]
        assert timeline.attribution("active", top=1) == rows[:1]

    def test_counter_events_schema(self):
        timeline = MemoryTimeline()
        device = make_device()
        allocator = device.allocator
        allocator.allocate(2 * MiB, device.default_stream)
        timeline.sample(allocator, 0.5, "alloc")
        events = timeline.counter_events()
        device_track = [e for e in events if e["name"] == "mem.bytes"]
        assert len(device_track) == 1
        event = device_track[0]
        assert event["ph"] == "C"
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["args"]["active"] <= event["args"]["reserved"]
        stream_tracks = [e for e in events if e["name"].startswith("mem.reserved.")]
        assert {e["name"] for e in stream_tracks} == {"mem.reserved.default"}
        assert sum(e["args"]["bytes"] for e in stream_tracks) == event["args"]["reserved"]

    def test_clear(self):
        timeline = MemoryTimeline()
        device = make_device()
        timeline.sample(device.allocator, 0.0, "alloc")
        timeline.clear()
        assert timeline.samples == []


# ----------------------------------------------------------------------
# Stats helpers
# ----------------------------------------------------------------------
class TestStatsHelpers:
    def test_scope_helpers(self):
        assert scope_leaf("a|b|c") == "c"
        assert scope_leaf("solo") == "solo"
        assert scope_leaf("") == ""
        assert scope_parent("a|b|c") == "b"
        assert scope_parent("solo") == ""

    def test_exposed_overlapped_disjoint(self):
        exposed, overlapped = exposed_overlapped([(0.0, 1.0)], [(2.0, 3.0)])
        assert (exposed, overlapped) == (1.0, 0.0)

    def test_exposed_overlapped_contained(self):
        exposed, overlapped = exposed_overlapped([(1.0, 2.0)], [(0.0, 3.0)])
        assert (exposed, overlapped) == (0.0, 1.0)

    def test_exposed_overlapped_partial_and_multiple(self):
        # comm [0,4) vs compute [1,2) u [3,6): hidden 1+1, exposed 2.
        exposed, overlapped = exposed_overlapped(
            [(0.0, 4.0)], [(1.0, 2.0), (3.0, 6.0)]
        )
        assert exposed == pytest.approx(2.0)
        assert overlapped == pytest.approx(2.0)

    def test_exposed_overlapped_merges_self_overlap(self):
        # Two overlapping comm intervals count their union once.
        exposed, overlapped = exposed_overlapped(
            [(0.0, 2.0), (1.0, 3.0)], []
        )
        assert (exposed, overlapped) == (3.0, 0.0)

    def test_comm_interval_duration(self):
        from repro.profiler import CommInterval

        assert CommInterval("all_reduce", 1.0, 2.5).duration == pytest.approx(1.5)

    def test_unit_profile_counters(self):
        unit = UnitProfile("layer0")
        unit.record_collective("all_gather_base", 100, 0.0, 1.0, "s")
        unit.record_collective("all_gather_into_tensor", 50, 1.0, 2.0, "s")
        unit.record_collective("reduce_scatter", 25, 2.0, 3.0, "s")
        unit.record_collective("all_reduce", 10, 3.0, 4.0, "s")
        unit.record_collective("broadcast", 5, 4.0, 5.0, "s")  # uncategorized
        assert unit.allgather_count == 2
        assert unit.allgather_bytes == 150
        assert unit.reduce_scatter_count == 1
        assert unit.reduce_scatter_bytes == 25
        assert unit.all_reduce_count == 1
        assert unit.comm_time_s == pytest.approx(5.0)
        assert len(unit.comm_intervals) == 5
        payload = unit.as_dict()
        assert payload["label"] == "layer0"
        assert payload["allgather_bytes"] == 150


# ----------------------------------------------------------------------
# ProfilerSession
# ----------------------------------------------------------------------
class TestProfilerSession:
    def test_scope_stack(self):
        session = ProfilerSession()
        assert session.scope == ""
        session.push_scope("forward:a")
        with session.scoped("unshard:b@forward"):
            assert session.scope == "forward:a|unshard:b@forward"
        assert session.scope == "forward:a"
        # Popping an absent label is tolerated (checkpoint recompute
        # fires backward hooks in non-LIFO order).
        session.pop_scope("not-there")
        assert session.scope == "forward:a"
        session.pop_scope()  # unlabeled: pop top
        assert session.scope == ""
        session.pop_scope()  # empty stack: no-op
        session.push_scope("a")
        session.push_scope("b")
        session.pop_scope("a")  # pops the matching element, not the top
        assert session.scope == "b"
        session.reset_scopes()
        assert session.scope == ""

    def test_install_chains_and_uninstall_restores(self):
        device = make_device()
        seen = []
        device.trace_hook = lambda label, stream, start, end: seen.append(label)
        prev_hook = device.trace_hook
        session = ProfilerSession()
        session.install(device)
        session.install(device)  # idempotent
        device.default_stream.enqueue(1e-3, label="gemm")
        assert seen == ["gemm"]  # previous hook still fires
        assert [e.label for e in session.kernel_events] == ["gemm"]
        assert device.profiler is session
        assert device.flight_recorder is session.flight
        assert device.allocator.sample_hook is not None
        session.uninstall(device)
        assert device.trace_hook is prev_hook
        assert device.profiler is None
        assert device.flight_recorder is None
        assert device.allocator.sample_hook is None

    def test_install_chains_existing_mark_hook(self):
        device = make_device()
        seen = []
        device.mark_hook = lambda label, time: seen.append(label)
        with profile_device(device) as session:
            device.emit_mark("fault:hang@r0")
        assert seen == ["fault:hang@r0"]
        assert [label for label, _ in session.marks] == ["fault:hang@r0"]

    def test_uninstall_unknown_device_is_noop(self):
        session = ProfilerSession()
        session.uninstall(make_device())  # never installed: nothing to restore

    def test_install_keeps_existing_flight_recorder(self):
        device = make_device()
        shared = FlightRecorder()
        device.flight_recorder = shared
        session = ProfilerSession()
        session.install(device)
        assert device.flight_recorder is shared  # spawn-shared ring wins
        session.uninstall(device)
        assert device.flight_recorder is shared

    def test_marks_and_zero_duration_kernels(self):
        device = make_device()
        with profile_device(device) as session:
            device.emit_mark("watchdog:all_gather_base")
            device.default_stream.enqueue(0.0, label="noop")
            device.default_stream.enqueue(1e-3, label="work")
        assert [label for label, _ in session.marks] == ["watchdog:all_gather_base"]
        # Zero-duration spans carry no time and are dropped.
        assert [e.label for e in session.kernel_events] == ["work"]
        assert device.profiler is None  # context manager uninstalled

    def test_allocator_samples_carry_scope(self):
        device = make_device()
        with profile_device(device) as session:
            with session.scoped("unshard:u0@forward"):
                device.allocator.allocate(MiB, device.default_stream)
        assert session.memory.samples
        assert session.memory.samples[-1].scope == "unshard:u0@forward"

    def _launched_record(self, session, *, kind, scope, start, end, nbytes=1000):
        record = session.flight.record_issue(
            rank=0, kind=kind, nbytes=nbytes, group_ranks=(0, 1),
            stream="fsdp-unshard", time=start, scope=scope,
        )
        session.flight.record_launch(record, start, end)
        return record

    def test_on_collective_attributes_by_scope(self):
        session = ProfilerSession()
        for scope, attr in [
            ("forward:blocks.0|unshard:blocks.0@forward", "blocks.0"),
            ("backward:blocks.1|unshard:blocks.0@backward_prefetch", "blocks.0"),
            ("reduce:blocks.1", "blocks.1"),
            ("forward:blocks.2", "blocks.2"),
        ]:
            record = self._launched_record(
                session, kind="all_gather_base", scope=scope, start=0.0, end=1.0
            )
            session.on_collective(record)
            assert attr in session.units
        # Unattributed collectives count toward totals only.
        record = self._launched_record(
            session, kind="all_reduce", scope="", start=1.0, end=2.0
        )
        session.on_collective(record)
        assert len(session.comm_intervals) == 5
        assert set(session.units) == {"blocks.0", "blocks.1", "blocks.2"}
        # Unlaunched records are skipped entirely.
        unlaunched = session.flight.record_issue(
            rank=0, kind="all_reduce", nbytes=1, group_ranks=(0, 1),
            stream="s", time=5.0, scope="forward:x",
        )
        session.on_collective(unlaunched)
        assert "x" not in session.units

    def test_prefetch_hit_miss_accounting(self):
        session = ProfilerSession()
        # u1's AllGather issued as a prefetch, then its own pre-hook
        # finds it gathered: hit.
        session.on_unshard_issue("u1", reason="backward_prefetch", time=0.0)
        session.on_prefetch_outcome("u1", already_unsharded=True)
        # u2 never prefetched and still sharded: miss.
        session.on_prefetch_outcome("u2", already_unsharded=False)
        # u3 unsharded for another reason (SHARD_GRAD_OP): neither.
        session.on_prefetch_outcome("u3", already_unsharded=True)
        assert session.unit("u1").prefetch_hits == 1
        assert session.unit("u2").prefetch_misses == 1
        u3 = session.unit("u3")
        assert (u3.prefetch_hits, u3.prefetch_misses) == (0, 0)
        # Plain forward issue is not a prefetch.
        session.on_unshard_issue("u4", reason="forward", time=1.0)
        session.on_prefetch_outcome("u4", already_unsharded=True)
        assert session.unit("u4").prefetch_hits == 0
        assert session.unit("u1").unshard_issues[0].reason == "backward_prefetch"

    def test_rate_limit_accounting(self):
        session = ProfilerSession()
        session.push_scope("forward:u0")
        session.on_rate_limit_admit(depth=1, stall_s=0.5)
        session.pop_scope()
        session.on_rate_limit_admit(depth=0, stall_s=0.25)  # unscoped
        assert session.rate_limit_depths == [1, 0]
        assert session.rate_limit_stall_s == pytest.approx(0.75)
        assert session.unit("u0").rate_limit_stall_s == pytest.approx(0.5)

    def test_finalize_and_totals(self):
        session = ProfilerSession()
        session.on_kernel("gemm", "default", 0.0, 2.0)
        session.on_kernel("comm", "fsdp-unshard", 0.0, 3.0)  # not compute
        record = self._launched_record(
            session, kind="all_gather_base",
            scope="forward:u0|unshard:u0@forward", start=1.0, end=3.0,
        )
        session.on_collective(record)
        session.finalize()
        session.finalize()  # idempotent
        unit = session.units["u0"]
        assert unit.exposed_comm_s == pytest.approx(1.0)
        assert unit.overlapped_comm_s == pytest.approx(1.0)
        totals = session.totals()
        assert totals["exposed_comm_s"] == pytest.approx(1.0)
        assert totals["overlap_fraction"] == pytest.approx(0.5)
        assert totals["allgather_bytes"] == 1000
        assert totals["max_rate_limit_depth"] == 0

    def test_totals_empty_session(self):
        totals = ProfilerSession().totals()
        assert totals["overlap_fraction"] == 1.0
        assert totals["exposed_comm_s"] == 0.0

    def test_begin_measurement_drops_warmup(self):
        session = ProfilerSession()
        session.on_kernel("warmup", "default", 0.0, 1.0)
        session.on_unshard_issue("u0", reason="forward_prefetch", time=0.0)
        session.marks.append(("m", 0.0))
        session.finalize()
        session.begin_measurement()
        assert session.kernel_events == []
        assert session.units == {}
        assert session.marks == []
        assert not session._finalized

    def test_summary_and_chrome_trace(self, tmp_path):
        device = make_device()
        with profile_device(device) as session:
            with session.scoped("forward:u0"):
                device.default_stream.enqueue(1e-3, label="gemm")
                device.allocator.allocate(MiB, device.default_stream)
            device.emit_mark("iteration")
            record = self._launched_record(
                session, kind="all_gather_base",
                scope="forward:u0|unshard:u0@forward", start=0.0, end=1e-3,
            )
            session.on_collective(record)
            session.on_pre_backward("u0")
            session.on_reshard("u0", 2e-3)
        summary = session.summary()
        assert summary["totals"]["allgather_bytes"] == 1000
        assert summary["units"][0]["label"] == "u0"
        assert summary["backward_order"] == ["u0"]
        assert summary["memory"]["peak_active_bytes"] >= MiB
        assert summary["memory"]["peak_scope"] == "forward:u0"
        assert summary["memory"]["attribution"]
        assert summary["flight"]["recorded"] == 1
        json.dumps(summary)
        path = tmp_path / "trace.json"
        session.to_chrome_trace(str(path))
        trace = json.loads(path.read_text())
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert {"X", "i", "C"} <= phases
        span = next(e for e in trace["traceEvents"] if e["ph"] == "X")
        assert span["args"]["scope"] == "forward:u0"
        assert session.units["u0"].reshard_times == [2e-3]
