"""Consolidated optimizer state dicts for sharded models."""

import numpy as np
import pytest

import repro
from repro import distributed as dist, nn
from repro.fsdp import (
    FullyShardedDataParallel as FSDP,
    ModuleWrapPolicy,
    full_optim_state_dict,
    load_full_optim_state_dict,
)
from repro.optim import Adam
from tests.conftest import copy_weights, snapshot_weights


def build():
    return nn.Sequential(nn.Linear(5, 9), nn.Tanh(), nn.Linear(9, 3))


def reference_state():
    repro.manual_seed(61)
    return snapshot_weights(build())


def train_wrapped(rank, state0, steps=2):
    model = build()
    copy_weights(model, state0)
    device = dist.get_device()
    wrapped = FSDP(
        model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
    )
    opt = Adam(wrapped.parameters(), lr=0.05)
    repro_x = repro.tensor(np.ones((2, 5), dtype=np.float32), device=device)
    for _ in range(steps):
        opt.zero_grad()
        wrapped(repro_x).sum().backward()
        opt.step()
    return wrapped, opt


class TestGather:
    def test_keys_match_local_optimizer(self):
        state0 = reference_state()

        def fn(rank):
            wrapped, opt = train_wrapped(rank, state0)
            osd = full_optim_state_dict(wrapped, opt)
            return sorted(osd["state"].keys()), osd["param_groups"][0]["lr"]

        for keys, lr in dist.spawn(fn, 4):
            assert keys == ["0.bias", "0.weight", "2.bias", "2.weight"]
            assert lr == 0.05

    def test_values_match_local_training(self):
        state0 = reference_state()
        # Local reference: identical full-batch... here every rank sees
        # the same batch (ones), so sharded training == local training.
        repro.manual_seed(0)
        local = build()
        copy_weights(local, state0)
        opt = Adam(local.parameters(), lr=0.05)
        x = repro.tensor(np.ones((2, 5), dtype=np.float32))
        for _ in range(2):
            opt.zero_grad()
            local(x).sum().backward()
            opt.step()
        local_state = {
            name: {
                k: (v.numpy().copy() if hasattr(v, "numpy") else v)
                for k, v in opt.state[id(p)].items()
            }
            for name, p in local.named_parameters()
        }

        def fn(rank):
            wrapped, opt = train_wrapped(rank, state0)
            osd = full_optim_state_dict(wrapped, opt)
            return {
                fqn: {
                    k: (v.numpy() if hasattr(v, "numpy") else v)
                    for k, v in entry.items()
                }
                for fqn, entry in osd["state"].items()
            }

        for gathered in dist.spawn(fn, 4):
            for fqn, entry in gathered.items():
                assert entry["step"] == local_state[fqn]["step"]
                np.testing.assert_allclose(
                    entry["exp_avg"], local_state[fqn]["exp_avg"], atol=1e-5
                )
                np.testing.assert_allclose(
                    entry["exp_avg_sq"], local_state[fqn]["exp_avg_sq"], atol=1e-6
                )

    def test_shapes_are_original(self):
        state0 = reference_state()

        def fn(rank):
            wrapped, opt = train_wrapped(rank, state0)
            osd = full_optim_state_dict(wrapped, opt)
            return {k: v["exp_avg"].shape for k, v in osd["state"].items()}

        for shapes in dist.spawn(fn, 2):
            assert shapes["0.weight"] == (9, 5)
            assert shapes["2.bias"] == (3,)


class TestRoundTrip:
    def test_save_load_resume(self):
        state0 = reference_state()

        def fn(rank):
            wrapped, opt = train_wrapped(rank, state0)
            osd = full_optim_state_dict(wrapped, opt)
            before = {
                id_key: {
                    k: (v.numpy().copy() if hasattr(v, "numpy") else v)
                    for k, v in st.items()
                }
                for id_key, st in opt.state.items()
            }
            # Fresh wrapped model + optimizer, then load.
            wrapped2, opt2 = train_wrapped(rank, state0, steps=0)
            load_full_optim_state_dict(wrapped2, opt2, osd)
            after = {
                k2: {
                    k: (v.numpy() if hasattr(v, "numpy") else v)
                    for k, v in st.items()
                }
                for k2, st in opt2.state.items()
            }
            return before, after

        for before, after in dist.spawn(fn, 4):
            assert len(before) == len(after)
            for (bk, bstate), (ak, astate) in zip(
                sorted(before.items()), sorted(after.items())
            ):
                pass  # ids differ; compare values by position below
            b_values = sorted(
                (st["step"], st["exp_avg"].sum()) for st in before.values()
            )
            a_values = sorted(
                (st["step"], st["exp_avg"].sum()) for st in after.values()
            )
            np.testing.assert_allclose(b_values, a_values, atol=1e-5)

    def test_load_missing_key(self):
        state0 = reference_state()

        def fn(rank):
            wrapped, opt = train_wrapped(rank, state0, steps=1)
            with pytest.raises(KeyError):
                load_full_optim_state_dict(wrapped, opt, {"state": {}})
            dist.barrier()

        dist.spawn(fn, 2)
