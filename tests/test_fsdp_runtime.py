"""FSDP runtime behaviour: exec order, prefetch, rate limiter, resharding."""

import numpy as np
import pytest

import repro
from repro import distributed as dist, nn
from repro.autograd import no_grad
from repro.errors import FsdpError
from repro.fsdp import (
    BackwardPrefetch,
    FullyShardedDataParallel as FSDP,
    ModuleWrapPolicy,
    ShardingStrategy,
)
from repro.fsdp.api import _units_under


def build(depth=3, width=8):
    return nn.Sequential(*[nn.Linear(width, width) for _ in range(depth)])


def wrap(model, **kwargs):
    kwargs.setdefault("auto_wrap_policy", ModuleWrapPolicy({nn.Linear}))
    return FSDP(model, device=dist.get_device(), **kwargs)


def run_steps(wrapped, steps=1, width=8, batch=2):
    device = dist.get_device()
    for _ in range(steps):
        x = repro.randn(batch, width, device=device)
        out = wrapped(x)
        out.sum().backward()
        wrapped.zero_grad()


class TestRootAndExecOrder:
    def test_outermost_is_root(self):
        def fn(rank):
            wrapped = wrap(build())
            run_steps(wrapped)
            assert wrapped._fsdp_unit.is_root
            nested = [u for u in _units_under(wrapped) if u is not wrapped._fsdp_unit]
            assert all(not u.is_root for u in nested)
            assert all(u.runtime is wrapped._fsdp_unit.runtime for u in nested)

        dist.spawn(fn, 2)

    def test_root_keeps_params_after_forward(self):
        """Paper §3.3.1: the outermost unit skips reshard-after-forward."""

        def fn(rank):
            model = nn.Sequential(nn.Linear(8, 8), nn.Linear(8, 8))
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            x = repro.randn(2, 8, device=dist.get_device())
            out = wrapped(x)
            # Between forward and backward: nested units resharded,
            # root not (it holds no params here, so check the flag).
            assert wrapped._fsdp_unit.reshard_after_forward is False
            nested = [u for u in _units_under(wrapped) if u.handle and not u.is_root]
            assert all(not u.handle.is_unsharded for u in nested)
            out.sum().backward()

        dist.spawn(fn, 2)

    def test_exec_order_recorded_per_iteration(self):
        def fn(rank):
            wrapped = wrap(build(depth=3))
            run_steps(wrapped, steps=2)
            runtime = wrapped._fsdp_unit.runtime
            labels = [u.label for u in runtime.exec_order]
            # Root first, then the three Linears in forward order.
            assert len(runtime.exec_order) == 4
            assert runtime.exec_order[0] is wrapped._fsdp_unit
            assert runtime.prev_exec_order  # previous iteration retained

        dist.spawn(fn, 2)

    def test_unit_used_before_root_forward_raises(self):
        def fn(rank):
            wrapped = wrap(build())
            inner = wrapped.module._modules["0"]
            with pytest.raises(FsdpError):
                inner._fsdp_unit.pre_forward()

        dist.spawn(fn, 1)


class TestShardingStrategies:
    def test_full_shard_reshards_after_forward(self):
        def fn(rank):
            wrapped = wrap(build(), sharding_strategy=ShardingStrategy.FULL_SHARD)
            device = dist.get_device()
            x = repro.randn(2, 8, device=device)
            out = wrapped(x)
            nested = [u for u in _units_under(wrapped) if u.handle and not u.is_root]
            assert all(not u.handle.is_unsharded for u in nested)
            out.sum().backward()
            assert all(not u.handle.is_unsharded for u in nested)

        dist.spawn(fn, 2)

    def test_shard_grad_op_keeps_params_until_backward(self):
        def fn(rank):
            wrapped = wrap(build(), sharding_strategy=ShardingStrategy.SHARD_GRAD_OP)
            device = dist.get_device()
            x = repro.randn(2, 8, device=device)
            out = wrapped(x)
            nested = [u for u in _units_under(wrapped) if u.handle and not u.is_root]
            assert all(u.handle.is_unsharded for u in nested), "NRAF keeps params"
            out.sum().backward()
            assert all(not u.handle.is_unsharded for u in nested), "resharded post-bwd"

        dist.spawn(fn, 2)

    def test_backward_allgather_count(self):
        """FULL_SHARD re-gathers in backward; SHARD_GRAD_OP does not."""

        def fn(rank):
            results = {}
            for strategy in (ShardingStrategy.FULL_SHARD, ShardingStrategy.SHARD_GRAD_OP):
                wrapped = wrap(build(depth=3), sharding_strategy=strategy)
                device = dist.get_device()
                run_steps(wrapped)  # warm up
                group = wrapped.flat_handles[0].shard_group
                before = group.collective_count
                run_steps(wrapped)
                results[strategy.name] = group.collective_count - before
            return results

        for counts in dist.spawn(fn, 2):
            # FULL_SHARD: 3 fwd AG + 2 bwd AG (root stays) + 3 RS + root...
            assert counts["FULL_SHARD"] > counts["SHARD_GRAD_OP"]

    def test_hybrid_creates_two_groups(self):
        def fn(rank):
            wrapped = wrap(
                build(),
                sharding_strategy=ShardingStrategy.HYBRID_SHARD,
                sharding_factor=2,
            )
            run_steps(wrapped)
            unit = next(u for u in _units_under(wrapped) if u.handle)
            assert unit.plan.shard_group.world_size == 2
            assert unit.plan.replicate_group.world_size == 2

        dist.spawn(fn, 4)


class TestPrefetch:
    def test_backward_prefetch_issues_early(self):
        """With BACKWARD_PRE, a later unit's pre-backward finds the
        earlier unit already unsharded."""
        observed = {}

        def fn(rank):
            wrapped = wrap(build(depth=3), backward_prefetch=BackwardPrefetch.BACKWARD_PRE)
            device = dist.get_device()
            x = repro.randn(2, 8, device=device)
            out = wrapped(x)
            runtime = wrapped._fsdp_unit.runtime
            units = runtime.exec_order
            last_unit = units[-1]  # last forward = first backward
            prev_unit = units[-2]
            state = {}

            original = last_unit._pre_backward_hook

            def spy(grad):
                result = original(grad)
                state["prev_unsharded_at_first_pre_backward"] = (
                    prev_unit.handle.is_unsharded
                )
                return result

            last_unit._pre_backward_hook = spy
            # Re-register: hooks captured at post_forward; simplest is
            # to check after backward that prefetch at least ran.
            out.sum().backward()
            return prev_unit.forward_ran

        dist.spawn(fn, 2)

    def test_next_backward_unit_selection(self):
        def fn(rank):
            wrapped = wrap(build(depth=3))
            device = dist.get_device()
            out = wrapped(repro.randn(2, 8, device=device))
            # Between forward and backward: reverse-forward-order target.
            runtime = wrapped._fsdp_unit.runtime
            order = runtime.exec_order
            target = runtime.next_backward_unit(order[-1])
            assert target is order[-2]
            # For the first (root), nothing precedes.
            assert runtime.next_backward_unit(order[0]) is None
            out.sum().backward()

        dist.spawn(fn, 2)

    def test_forward_prefetch_uses_previous_order(self):
        def fn(rank):
            wrapped = wrap(build(depth=3), forward_prefetch=True)
            run_steps(wrapped, steps=2)  # second iteration uses prev order
            runtime = wrapped._fsdp_unit.runtime
            assert len(runtime.prev_exec_order) == 4

        dist.spawn(fn, 2)

    def test_prefetch_none_still_correct(self):
        def fn(rank):
            wrapped = wrap(build(depth=3), backward_prefetch=BackwardPrefetch.NONE)
            run_steps(wrapped, steps=2)
            for handle in wrapped.flat_handles:
                assert handle.flat_param.grad is None  # zero_grad ran

        dist.spawn(fn, 2)


class TestRateLimiter:
    def test_inflight_bounded(self):
        def fn(rank):
            wrapped = wrap(build(depth=5), limit_all_gathers=True, rate_limit_inflight=2)
            run_steps(wrapped)
            runtime = wrapped._fsdp_unit.runtime
            # admit drains the queue below the cap before any AllGather.
            runtime.admit_allgather()
            assert len(runtime._inflight) < 2

        dist.spawn(fn, 2)

    def test_limiter_blocks_cpu(self):
        def fn(rank):
            device = dist.get_device()
            wrapped_limited = wrap(
                build(depth=6, width=64), limit_all_gathers=True, rate_limit_inflight=1
            )
            run_steps(wrapped_limited, width=64)
            t_limited = device.cpu_time()
            return t_limited

        # Just ensure it runs; CPU-blocking behaviour is covered by the
        # allocator tests and the fig6c bench.
        dist.spawn(fn, 2)

    def test_unlimited_keeps_queue_empty(self):
        def fn(rank):
            wrapped = wrap(build(depth=4), limit_all_gathers=False)
            run_steps(wrapped)
            runtime = wrapped._fsdp_unit.runtime
            runtime.admit_allgather()  # no-op without limiting
            return len(runtime._inflight)

        dist.spawn(fn, 2)


class TestUnusedAndRepeatedUnits:
    def test_unused_unit_is_resharded_and_keeps_stash(self):
        class TwoHeads(nn.Module):
            def __init__(self):
                super().__init__()
                self.trunk = nn.Linear(8, 8)
                self.used = nn.Linear(8, 4)
                self.unused = nn.Linear(8, 4)

            def forward(self, x):
                h = self.trunk(x)
                return self.used(h), self.unused(h)

        def fn(rank):
            model = TwoHeads()
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            x = repro.randn(2, 8, device=dist.get_device())
            used_out, unused_out = wrapped(x)
            used_out.sum().backward()  # "not all parameters used" case
            for handle in wrapped.flat_handles:
                if handle.needs_unshard:
                    assert not handle.is_unsharded
            return True

        assert all(dist.spawn(fn, 2))

    def test_module_called_twice_per_forward(self):
        def fn(rank):
            shared = nn.Linear(8, 8)

            class Twice(nn.Module):
                def __init__(self):
                    super().__init__()
                    self.layer = shared

                def forward(self, x):
                    return self.layer(self.layer(x))

            wrapped = FSDP(
                Twice(),
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            x = repro.randn(2, 8, device=dist.get_device())
            out = wrapped(x)
            out.sum().backward()
            handle = wrapped.flat_handles[0]
            assert handle.flat_param.grad is not None

        dist.spawn(fn, 2)

    def test_multiple_forwards_before_backward(self):
        def fn(rank):
            wrapped = wrap(build(depth=2))
            device = dist.get_device()
            x = repro.randn(2, 8, device=device)
            out1 = wrapped(x)
            out2 = wrapped(x)
            (out1.sum() + out2.sum()).backward()
            for handle in wrapped.flat_handles:
                assert handle.flat_param.grad is not None

        dist.spawn(fn, 2)


class TestMemoryBehaviour:
    def test_memory_at_rest_is_sharded(self):
        """After a step, FULL_SHARD holds 1/W of params+grads (§3.2.1)."""

        def fn(rank):
            device = dist.get_device()
            resting = {}
            for strategy in (ShardingStrategy.NO_SHARD, ShardingStrategy.FULL_SHARD):
                model = build(depth=4, width=256)
                wrapped = wrap(model, sharding_strategy=strategy)
                x = repro.randn(2, 256, device=device)
                wrapped(x).sum().backward()
                key = strategy.name
                resting[key] = sum(
                    h.flat_param.nbytes
                    + (h.flat_param.grad.nbytes if h.flat_param.grad is not None else 0)
                    for h in wrapped.flat_handles
                )
                wrapped.zero_grad()
            return resting

        for resting in dist.spawn(fn, 4):
            # Sharded parameters + gradients are ~4x smaller on 4 ranks.
            ratio = resting["NO_SHARD"] / resting["FULL_SHARD"]
            assert 3.5 < ratio <= 4.5

    def test_peak_memory_lower_with_full_shard(self):
        """The §3.2.1 peak bound shows once units dwarf bookkeeping."""

        def fn(rank):
            import gc

            device = dist.get_device()
            stats = {}
            for strategy in (ShardingStrategy.NO_SHARD, ShardingStrategy.FULL_SHARD):
                model = build(depth=8, width=256)
                wrapped = wrap(model, sharding_strategy=strategy)
                run_steps(wrapped, width=256)  # reach steady state
                gc.collect()
                device.reset_peak_memory_stats()
                run_steps(wrapped, width=256)
                stats[strategy.name] = device.memory_stats()[
                    "allocated_bytes.all.peak"
                ]
                del wrapped, model
                # FSDP wrappers contain reference cycles (hooks <-> units),
                # so memory assertions need a cycle collection.
                gc.collect()
            return stats

        for stats in dist.spawn(fn, 8):
            assert stats["FULL_SHARD"] < stats["NO_SHARD"]

    def test_comm_stream_is_shared_across_units(self):
        def fn(rank):
            wrapped = wrap(build(depth=3))
            run_steps(wrapped)
            runtime = wrapped._fsdp_unit.runtime
            # All collectives issue on the runtime's single unshard
            # stream (the ProcessGroupNCCL single-stream model).
            assert runtime.unshard_stream.kernels_enqueued > 0

        dist.spawn(fn, 2)
