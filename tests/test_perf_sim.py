"""Performance-simulation driver tests."""

import dataclasses

import pytest

import repro
from repro import nn
from repro.fsdp import ModuleWrapPolicy, ShardingStrategy
from repro.fsdp.mixed_precision import BF16_MIXED
from repro.models.mingpt import GptConfig
from repro.models.transformer import TransformerBlock
from repro.perf import SimConfig, simulate_training
from repro.perf.workloads import gpt_builder, gpt_loss_fn

SMALL = GptConfig(
    vocab_size=1000, block_size=64, n_layer=3, n_head=4, n_embd=128, checkpoint_blocks=True
)


def small_config(**overrides) -> SimConfig:
    base = SimConfig(
        name="gpt-small",
        build_model=gpt_builder(SMALL),
        make_loss=gpt_loss_fn(SMALL, 2, 64),
        batch_size=2,
        world_size=8,
        auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
        iterations=1,
        warmup=1,
    )
    return dataclasses.replace(base, **overrides)


class TestDriver:
    def test_fsdp_run_produces_metrics(self):
        result = simulate_training(small_config())
        assert not result.oom
        assert result.iteration_latency > 0
        assert result.tflops_per_gpu > 0
        assert result.peak_reserved_gib >= result.peak_allocated_gib > 0
        assert result.collectives > 0

    def test_deterministic(self):
        a = simulate_training(small_config())
        b = simulate_training(small_config())
        assert a.iteration_latency == b.iteration_latency
        assert a.peak_allocated_gib == b.peak_allocated_gib

    def test_ddp_run(self):
        result = simulate_training(small_config(parallelism="ddp", auto_wrap_policy=None))
        assert not result.oom
        assert result.tflops_per_gpu > 0

    def test_ddp_ooms_on_oversized_model(self):
        big = GptConfig(
            vocab_size=50000, block_size=128, n_layer=24, n_head=16, n_embd=4096
        )  # ~5B params -> 20GB fp32 params + grads + Adam > 40GB
        result = simulate_training(
            small_config(
                parallelism="ddp",
                auto_wrap_policy=None,
                build_model=gpt_builder(big),
                make_loss=gpt_loss_fn(big, 1, 128),
                capacity=40 * 2**30,
            )
        )
        assert result.oom

    def test_fsdp_fits_where_ddp_ooms(self):
        big = GptConfig(
            vocab_size=50000, block_size=128, n_layer=24, n_head=16, n_embd=4096
        )
        result = simulate_training(
            small_config(
                build_model=gpt_builder(big),
                make_loss=gpt_loss_fn(big, 1, 128),
                capacity=40 * 2**30,
                mixed_precision=BF16_MIXED,
            )
        )
        assert not result.oom

    def test_bf16_faster_and_smaller_than_fp32(self):
        # Needs a compute-heavy config: tiny kernels all hit the
        # min-duration floor where precision cannot matter.
        heavy = GptConfig(
            vocab_size=8000, block_size=128, n_layer=4, n_head=8, n_embd=1024
        )
        fp32 = simulate_training(
            small_config(build_model=gpt_builder(heavy), make_loss=gpt_loss_fn(heavy, 8, 128))
        )
        bf16 = simulate_training(
            small_config(
                build_model=gpt_builder(heavy),
                make_loss=gpt_loss_fn(heavy, 8, 128),
                mixed_precision=BF16_MIXED,
            )
        )
        assert bf16.iteration_latency < fp32.iteration_latency
        assert bf16.peak_allocated_gib < fp32.peak_allocated_gib

    def test_memory_decreases_with_world_size(self):
        small_world = simulate_training(small_config(world_size=8))
        big_world = simulate_training(small_config(world_size=64))
        assert big_world.peak_allocated_gib < small_world.peak_allocated_gib

    def test_hybrid_strategy_runs(self):
        result = simulate_training(
            small_config(
                world_size=16,
                sharding_strategy=ShardingStrategy.HYBRID_SHARD,
                sharding_factor=8,
            )
        )
        assert not result.oom
        assert result.cross_host_gib > 0

    def test_qps_metric(self):
        result = simulate_training(small_config(batch_size=2))
        assert result.qps_per_gpu == pytest.approx(
            2 / result.iteration_latency, rel=1e-6
        )

    def test_row_formatting(self):
        result = simulate_training(small_config())
        row = result.row()
        assert "TFLOPS/GPU" in row
        oom = dataclasses.replace(result, oom=True)
        assert "OOM" in oom.row()


class TestPerParamTrainerGuards:
    """backend="per_param" has no wrapper object, so wrapper-only
    features must be rejected with a typed error, not silently dropped."""

    @pytest.mark.parametrize(
        "override, match",
        [
            (dict(cpu_offload=True), "cpu_offload"),
            (dict(ignored_modules_of=lambda model: []), "ignored_modules_of"),
            (
                dict(accumulate_steps=2, accumulate_no_sync=True),
                "accumulate_no_sync",
            ),
        ],
        ids=["cpu_offload", "ignored_modules", "no_sync_accumulation"],
    )
    def test_wrapper_only_features_rejected(self, override, match):
        from repro.errors import FsdpError

        with pytest.raises(FsdpError, match=match):
            simulate_training(small_config(backend="per_param", **override))

    def test_per_param_backend_runs_clean(self):
        result = simulate_training(small_config(backend="per_param"))
        assert not result.oom
        assert result.backend == "per_param"
