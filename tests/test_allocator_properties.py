"""Property-based tests of caching-allocator invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cuda.allocator import _round_size
from repro.cuda.device import Device

MiB = 2**20


def make_device(capacity=512 * MiB):
    dev = Device("sim_gpu", capacity=capacity)
    dev.materialize_data = False
    return dev


@st.composite
def alloc_free_script(draw):
    """A random sequence of allocate/free operations."""
    ops = []
    live = 0
    for _ in range(draw(st.integers(1, 40))):
        if live and draw(st.booleans()):
            ops.append(("free", draw(st.integers(0, live - 1))))
            live -= 1
        else:
            ops.append(("alloc", draw(st.integers(1, 8 * MiB))))
            live += 1
    return ops


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(script=alloc_free_script())
    def test_no_overlapping_live_blocks(self, script):
        dev = make_device()
        alloc = dev.allocator
        live = []
        for op, arg in script:
            if op == "alloc":
                live.append(alloc.allocate(arg, dev.default_stream))
            else:
                alloc.free(live.pop(arg))
        # No two live blocks in the same segment may overlap.
        by_segment = {}
        for block in live:
            by_segment.setdefault(block.segment.segment_id, []).append(block)
        for blocks in by_segment.values():
            blocks.sort(key=lambda b: b.offset)
            for a, b in zip(blocks, blocks[1:]):
                assert a.offset + a.size <= b.offset, "live blocks overlap"

    @settings(max_examples=40, deadline=None)
    @given(script=alloc_free_script())
    def test_accounting_conservation(self, script):
        dev = make_device()
        alloc = dev.allocator
        live = []
        requested = 0
        for op, arg in script:
            if op == "alloc":
                live.append(alloc.allocate(arg, dev.default_stream))
                requested += arg
            else:
                block = live.pop(arg)
                requested -= block.requested
                alloc.free(block)
            stats = alloc.stats
            assert stats.allocated_bytes == requested
            assert stats.reserved_bytes >= sum(b.size for b in live)
            assert stats.allocated_peak >= stats.allocated_bytes
            assert stats.reserved_peak >= stats.reserved_bytes

    @settings(max_examples=40, deadline=None)
    @given(script=alloc_free_script())
    def test_full_free_then_empty_cache_releases_everything(self, script):
        dev = make_device()
        alloc = dev.allocator
        live = []
        for op, arg in script:
            if op == "alloc":
                live.append(alloc.allocate(arg, dev.default_stream))
            else:
                alloc.free(live.pop(arg))
        for block in live:
            alloc.free(block)
        alloc.empty_cache()
        assert alloc.stats.allocated_bytes == 0
        assert alloc.stats.reserved_bytes == 0

    @settings(max_examples=30, deadline=None)
    @given(sizes=st.lists(st.integers(1, 4 * MiB), min_size=1, max_size=20))
    def test_alloc_free_alloc_reuses(self, sizes):
        """Same-stream realloc of identical sizes never grows reserved."""
        dev = make_device()
        alloc = dev.allocator
        blocks = [alloc.allocate(s, dev.default_stream) for s in sizes]
        reserved = alloc.stats.reserved_bytes
        for b in blocks:
            alloc.free(b)
        blocks = [alloc.allocate(s, dev.default_stream) for s in sizes]
        assert alloc.stats.reserved_bytes == reserved

    @given(nbytes=st.integers(0, 10 * MiB))
    def test_round_size(self, nbytes):
        rounded = _round_size(nbytes)
        assert rounded >= max(nbytes, 512)
        assert rounded % 512 == 0
        assert rounded - nbytes < 512 or nbytes == 0
