"""Property-based tests of caching-allocator invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cuda.allocator import _round_size
from repro.cuda.device import Device

MiB = 2**20


def make_device(capacity=512 * MiB):
    dev = Device("sim_gpu", capacity=capacity)
    dev.materialize_data = False
    return dev


@st.composite
def alloc_free_script(draw):
    """A random sequence of allocate/free operations."""
    ops = []
    live = 0
    for _ in range(draw(st.integers(1, 40))):
        if live and draw(st.booleans()):
            ops.append(("free", draw(st.integers(0, live - 1))))
            live -= 1
        else:
            ops.append(("alloc", draw(st.integers(1, 8 * MiB))))
            live += 1
    return ops


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(script=alloc_free_script())
    def test_no_overlapping_live_blocks(self, script):
        dev = make_device()
        alloc = dev.allocator
        live = []
        for op, arg in script:
            if op == "alloc":
                live.append(alloc.allocate(arg, dev.default_stream))
            else:
                alloc.free(live.pop(arg))
        # No two live blocks in the same segment may overlap.
        by_segment = {}
        for block in live:
            by_segment.setdefault(block.segment.segment_id, []).append(block)
        for blocks in by_segment.values():
            blocks.sort(key=lambda b: b.offset)
            for a, b in zip(blocks, blocks[1:]):
                assert a.offset + a.size <= b.offset, "live blocks overlap"

    @settings(max_examples=40, deadline=None)
    @given(script=alloc_free_script())
    def test_accounting_conservation(self, script):
        dev = make_device()
        alloc = dev.allocator
        live = []
        requested = 0
        for op, arg in script:
            if op == "alloc":
                live.append(alloc.allocate(arg, dev.default_stream))
                requested += arg
            else:
                block = live.pop(arg)
                requested -= block.requested
                alloc.free(block)
            stats = alloc.stats
            assert stats.allocated_bytes == requested
            assert stats.reserved_bytes >= sum(b.size for b in live)
            assert stats.allocated_peak >= stats.allocated_bytes
            assert stats.reserved_peak >= stats.reserved_bytes

    @settings(max_examples=40, deadline=None)
    @given(script=alloc_free_script())
    def test_full_free_then_empty_cache_releases_everything(self, script):
        dev = make_device()
        alloc = dev.allocator
        live = []
        for op, arg in script:
            if op == "alloc":
                live.append(alloc.allocate(arg, dev.default_stream))
            else:
                alloc.free(live.pop(arg))
        for block in live:
            alloc.free(block)
        alloc.empty_cache()
        assert alloc.stats.allocated_bytes == 0
        assert alloc.stats.reserved_bytes == 0

    @settings(max_examples=30, deadline=None)
    @given(sizes=st.lists(st.integers(1, 4 * MiB), min_size=1, max_size=20))
    def test_alloc_free_alloc_reuses(self, sizes):
        """Same-stream realloc of identical sizes never grows reserved."""
        dev = make_device()
        alloc = dev.allocator
        blocks = [alloc.allocate(s, dev.default_stream) for s in sizes]
        reserved = alloc.stats.reserved_bytes
        for b in blocks:
            alloc.free(b)
        blocks = [alloc.allocate(s, dev.default_stream) for s in sizes]
        assert alloc.stats.reserved_bytes == reserved

    @given(nbytes=st.integers(0, 10 * MiB))
    def test_round_size(self, nbytes):
        rounded = _round_size(nbytes)
        assert rounded >= max(nbytes, 512)
        assert rounded % 512 == 0
        assert rounded - nbytes < 512 or nbytes == 0


@st.composite
def cross_stream_script(draw):
    """allocate / free / cross-stream-use operations."""
    ops = []
    live = 0
    for _ in range(draw(st.integers(1, 40))):
        choice = draw(st.integers(0, 2)) if live else 0
        if choice == 0:
            ops.append(("alloc", draw(st.integers(1, 8 * MiB))))
            live += 1
        elif choice == 1:
            ops.append(("free", draw(st.integers(0, live - 1))))
            live -= 1
        else:
            ops.append(("use", draw(st.integers(0, live - 1))))
    return ops


class TestStatsInvariants:
    """allocated <= active <= reserved, and counters are monotone.

    ``active`` counts allocated bytes plus freed-but-unretired blocks
    (pending cross-stream uses), mirroring torch.cuda's active_bytes;
    the seed's cudaMalloc-retry path violated active <= reserved by
    unmapping segments without refreshing the pending-retire set.
    """

    @settings(max_examples=40, deadline=None)
    @given(script=cross_stream_script())
    def test_allocated_le_active_le_reserved(self, script):
        dev = make_device()
        alloc = dev.allocator
        side = dev.new_stream("side")
        live = []
        last = {"num_cuda_mallocs": 0, "num_block_reuses": 0, "num_alloc_retries": 0}
        for op, arg in script:
            if op == "alloc":
                live.append(alloc.allocate(arg, dev.default_stream))
            elif op == "free":
                alloc.free(live.pop(arg))
            else:
                alloc.record_use(live[arg], side, dev.cpu_time() + 1e-3)
            stats = alloc.stats
            alloc._refresh_active()
            assert stats.allocated_bytes <= stats.active_bytes <= stats.reserved_bytes
            for key in last:
                value = getattr(stats, key)
                assert value >= last[key], f"{key} went backwards"
                last[key] = value

    def test_retry_path_keeps_active_le_reserved(self):
        """Pinned regression: the retry path must refresh active bytes.

        Freed blocks with pending cross-stream uses count as active;
        releasing their segments without recomputing left active >
        reserved in the seed.
        """
        dev = make_device(capacity=64 * MiB)
        alloc = dev.allocator
        side = dev.new_stream("side")
        blocks = [alloc.allocate(20 * MiB, dev.default_stream) for _ in range(2)]
        for block in blocks:
            # Pending retire in the future relative to the CPU clock,
            # backed by real side-stream work so a device sync can
            # retire it during the cudaMalloc retry.
            _, end = side.enqueue(5e-3)
            alloc.record_use(block, side, end)
            alloc.free(block)
        assert alloc.stats.active_bytes > alloc.stats.allocated_bytes
        # Nothing fits without the cached (unretired) segments: the
        # allocator takes the retry path, which device-syncs first.
        big = alloc.allocate(48 * MiB, dev.default_stream)
        stats = alloc.stats
        assert stats.num_alloc_retries == 1
        assert stats.allocated_bytes <= stats.active_bytes <= stats.reserved_bytes
        alloc.free(big)

    def test_retry_synchronizes_before_release(self):
        """The retry path may only unmap retired segments; it guarantees
        that by synchronizing the device, so afterwards the CPU clock is
        past every recorded use."""
        dev = make_device(capacity=64 * MiB)
        alloc = dev.allocator
        side = dev.new_stream("side")
        block = alloc.allocate(40 * MiB, dev.default_stream)
        retire_at = dev.cpu_time() + 5e-3
        side.enqueue(retire_at - side.ready_time)  # busy side stream
        alloc.record_use(block, side, retire_at)
        alloc.free(block)
        big = alloc.allocate(48 * MiB, dev.default_stream)
        assert alloc.stats.num_alloc_retries == 1
        assert dev.cpu_time() >= retire_at
        alloc.free(big)

    def test_retry_free_cost_is_per_released_segment(self):
        """Pinned regression: cudaFree cost scales with the number of
        released segments (driver calls), not with released bytes."""
        from repro.cuda.allocator import _CUDA_FREE_PER_SEGMENT_COST

        def retry_cost(num_segments):
            dev = make_device(capacity=80 * MiB)
            alloc = dev.allocator
            blocks = [
                alloc.allocate(20 * MiB, dev.default_stream)
                for _ in range(num_segments)
            ]
            for b in blocks:
                alloc.free(b)
            before = dev.cpu_time()
            alloc._retry_free_cached(dev.default_stream)
            return dev.cpu_time() - before

        extra = retry_cost(3) - retry_cost(1)
        assert abs(extra - 2 * _CUDA_FREE_PER_SEGMENT_COST) < 1e-9
