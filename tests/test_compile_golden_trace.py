"""Golden-trace lockdown of the compiled schedule's invariants.

The same tiny minGPT configuration as ``test_profiler_golden_trace``
is trained with ``SimConfig(compile=True)`` and the compiled schedule
(captured + optimized graph pair, stashed off ``compile_capture``) is
checked against what the compiler promises:

1. every AllGather/ReduceScatter bucket crosses the configured knee
   except at most the last one per phase (bucketing pass);
2. no bucket issues after its first consumer's program point — the
   reorder pass only ever moves unshards *earlier* (overlap pass);
3. each ReduceScatter bucket fires at its last member's post-backward
   and genuinely overlaps successor backward compute on the timeline
   (latest-safe placement);
4. the rate limiter still caps in-flight AllGathers in compiled mode
   (the executor funnels through the same ``admit_allgather``);
5. dead waits are removed and exactly one wait survives per consumed
   bucket (dead-wait elimination).

Then the sanitizer-as-oracle contract is proven by *negative
controls*: a hand-broken pass (dead-wait elimination that deletes
every wait) must be rejected at compile time by the verifier with a
``StreamOrderViolation(kind="compile-dropped-edge")``; the same broken
pass with the verifier disabled must be caught at *runtime* by the
stream-order sanitizer.  Either way a miscompiled schedule cannot run
to completion silently.
"""

import pytest

import repro.compile as rc
from repro.compile.ir import NodeKind
from repro.compile.passes import _first_consumer
from repro.errors import StreamOrderViolation
from repro.perf import simulate_training
from repro.perf.timeline import merge_intervals
from repro.profiler import ProfilerSession
from tests.test_profiler_golden_trace import golden_config, overlap_s

#: Small enough that the 6-block golden GPT splits into several
#: buckets; large enough that blocks still coalesce (one block is
#: ~50k elements).
BUCKET_ELEMS = 100_000

_STATE: dict = {}


def compiled_golden():
    """One compiled golden run per module: (session, result, schedules)."""
    if "run" not in _STATE:
        real = rc.compile_capture
        schedules = []

        def recording(capture, **kw):
            schedule = real(capture, **kw)
            schedules.append(schedule)
            return schedule

        rc.compile_capture = recording
        try:
            session = ProfilerSession()
            result = simulate_training(
                golden_config(
                    profiler=session,
                    compile=True,
                    compile_bucket_elems=BUCKET_ELEMS,
                )
            )
        finally:
            rc.compile_capture = real
        assert not result.oom
        assert len(schedules) == 1, "root runtime should compile exactly once"
        _STATE["run"] = (session, result, schedules[0])
    return _STATE["run"]


def _ag_buckets_by_phase(schedule):
    positions = schedule.graph.positions()
    out = {}
    for bucket in schedule.ag_buckets:
        out.setdefault(bucket.phase, []).append(bucket)
    for buckets in out.values():
        buckets.sort(key=lambda b: positions[tuple(b.trigger)])
    return out


# ----------------------------------------------------------------------
# Invariant 1: buckets cross the knee (except at most the last)
# ----------------------------------------------------------------------
class TestBucketSizes:
    def test_ag_buckets_cross_knee_unless_last(self):
        _, _, schedule = compiled_golden()
        bucket_bytes = schedule.stats["bucket_bytes"]
        assert bucket_bytes == BUCKET_ELEMS * 4
        by_phase = _ag_buckets_by_phase(schedule)
        assert set(by_phase) == {"forward", "backward"}
        for phase, buckets in by_phase.items():
            assert len(buckets) >= 2, f"{phase}: bucketing degenerated to one bucket"
            for bucket in buckets[:-1]:
                assert bucket.nbytes >= bucket_bytes, (phase, bucket.describe())

    def test_rs_buckets_cross_knee_unless_last(self):
        _, _, schedule = compiled_golden()
        positions = schedule.graph.positions()
        bucket_bytes = schedule.stats["bucket_bytes"]
        buckets = sorted(
            schedule.rs_buckets, key=lambda b: positions[tuple(b.trigger)]
        )
        assert len(buckets) >= 2
        for bucket in buckets[:-1]:
            assert bucket.nbytes >= bucket_bytes, bucket.describe()

    def test_coalescing_actually_happened(self):
        _, result, schedule = compiled_golden()
        merged = schedule.stats["collectives_merged"]
        assert merged["all_gather"] > 0 and merged["reduce_scatter"] > 0
        # The trainer surfaces the same summary as a result artifact.
        assert result.extras["compile"]["stats"]["collectives_merged"] == merged


# ----------------------------------------------------------------------
# Invariant 2: no unshard after its first consumer
# ----------------------------------------------------------------------
class TestUnshardPlacement:
    def test_every_bucket_issues_at_or_before_first_consumer(self):
        _, _, schedule = compiled_golden()
        captured = schedule.captured
        positions = schedule.graph.positions()
        first = _first_consumer(captured)
        consumer_pos = {}  # (phase, unit) -> first consuming position
        for node in captured.live(NodeKind.ALL_GATHER):
            if node.id in first:
                key = (node.phase, node.unit)
                pos = first[node.id][0]
                consumer_pos[key] = min(pos, consumer_pos.get(key, pos))
        checked = 0
        for bucket in schedule.ag_buckets:
            issue = positions[tuple(bucket.trigger)]
            for member in bucket.units:
                pos = consumer_pos.get((bucket.phase, member))
                if pos is None:
                    continue
                assert issue <= pos, (bucket.describe(), member)
                checked += 1
        assert checked >= 6  # at least every block's forward consumer

    def test_forward_pipeline_issues_ahead_of_eager_points(self):
        """The head forward bucket moves all the way to iter_begin and
        at least one later bucket issues strictly before its own first
        consumer (one-ahead software pipelining)."""
        _, _, schedule = compiled_golden()
        captured = schedule.captured
        positions = schedule.graph.positions()
        first = _first_consumer(captured)
        consumer_pos = {
            (captured.node(nid).phase, captured.node(nid).unit): pos
            for nid, (pos, _) in first.items()
        }
        forward = _ag_buckets_by_phase(schedule)["forward"]
        assert tuple(forward[0].trigger) == ("iter_begin", "")
        ahead = sum(
            1
            for b in forward[1:]
            if positions[tuple(b.trigger)] < consumer_pos[("forward", b.units[0])]
        )
        assert ahead >= 1


# ----------------------------------------------------------------------
# Invariant 3: ReduceScatter latest-safe + real timeline overlap
# ----------------------------------------------------------------------
class TestReduceScatterPlacement:
    def test_rs_triggers_at_last_member_post_backward(self):
        _, _, schedule = compiled_golden()
        positions = schedule.graph.positions()
        for bucket in schedule.rs_buckets:
            point, unit = tuple(bucket.trigger)
            assert point == "post_backward", bucket.describe()
            assert unit == bucket.units[-1], bucket.describe()
            # Latest-safe means no member's gradient is produced later.
            for member in bucket.units:
                assert (
                    positions[("post_backward", member)]
                    <= positions[tuple(bucket.trigger)]
                ), (bucket.describe(), member)

    def test_rs_overlaps_successor_backward_on_timeline(self):
        session, _, _ = compiled_golden()
        scatters = [
            (c.start, c.end)
            for unit in session.units.values()
            for c in unit.comm_intervals
            if c.kind == "reduce_scatter"
        ]
        backward = merge_intervals(
            (e.start, e.end)
            for e in session.kernel_events
            if e.stream == "default" and ":" in str(e.scope or "")
            and "backward:" in str(e.scope)
        )
        assert scatters and backward
        assert overlap_s(scatters, backward) > 0.0


# ----------------------------------------------------------------------
# Invariant 4: the rate limiter still binds in compiled mode
# ----------------------------------------------------------------------
class TestRateLimiter:
    def test_compiled_depth_never_exceeds_cap(self):
        session, _, _ = compiled_golden()
        assert session.rate_limit_depths  # executor went through admit
        assert max(session.rate_limit_depths) + 1 <= 2  # default inflight cap


# ----------------------------------------------------------------------
# Invariant 5: dead-wait elimination
# ----------------------------------------------------------------------
class TestDeadWaits:
    def test_one_surviving_wait_per_consumed_bucket(self):
        _, _, schedule = compiled_golden()
        assert schedule.stats["dead_waits_removed"] > 0
        # Each consumed AllGather bucket keeps exactly its first wait;
        # every other member's wait is dead (single in-order compute
        # stream) and must be gone.
        waited = list(schedule.waits.values())
        assert len(waited) == len(set(waited))
        ag_ids = {b.id for b in schedule.ag_buckets}
        assert set(waited) <= ag_ids
        live_waits = schedule.graph.live(NodeKind.WAIT)
        assert len(live_waits) == len(waited)


# ----------------------------------------------------------------------
# Negative controls: sanitizer as oracle
# ----------------------------------------------------------------------
def _drop_every_wait(graph):
    """A miscompiled dead-wait pass: removes live waits, not dead ones."""
    for wait in graph.live(NodeKind.WAIT):
        wait.removed = True
    graph.stats["dead_waits_removed"] = -1
    return graph


class TestNegativeControls:
    def test_broken_pass_is_rejected_at_compile_time(self, monkeypatch):
        monkeypatch.setattr(rc.passes, "eliminate_dead_waits", _drop_every_wait)
        with pytest.raises(StreamOrderViolation) as excinfo:
            simulate_training(
                golden_config(compile=True, compile_bucket_elems=BUCKET_ELEMS)
            )
        assert excinfo.value.kind == "compile-dropped-edge"

    def test_unverified_broken_pass_trips_runtime_sanitizer(self, monkeypatch):
        """With the verifier disabled the same miscompile must be caught
        dynamically: the compute stream reads parameter storage the
        unshard stream is still writing."""
        from repro.cuda import sanitizer

        monkeypatch.setattr(rc.passes, "eliminate_dead_waits", _drop_every_wait)
        monkeypatch.setattr(rc, "verify_schedule", lambda *a, **k: None)
        with sanitizer.enabled():
            with pytest.raises(StreamOrderViolation) as excinfo:
                simulate_training(
                    golden_config(compile=True, compile_bucket_elems=BUCKET_ELEMS)
                )
        assert excinfo.value.kind != "compile-dropped-edge"

    def test_intact_compiled_schedule_is_sanitizer_clean(self):
        """Positive control: the unbroken compiled run passes under the
        sanitizer (the golden fixture itself runs un-sanitized)."""
        from repro.cuda import sanitizer

        with sanitizer.enabled():
            result = simulate_training(
                golden_config(compile=True, compile_bucket_elems=BUCKET_ELEMS)
            )
        assert not result.oom


# ----------------------------------------------------------------------
# Capture refuses activation-checkpoint recompute
# ----------------------------------------------------------------------
class TestCaptureUnsupported:
    def test_checkpointed_blocks_fail_to_compile_with_typed_error(self):
        import dataclasses

        from repro.errors import FsdpError
        from repro.models.mingpt import GptConfig
        from repro.perf.workloads import gpt_builder, gpt_loss_fn
        from tests.test_profiler_golden_trace import GOLDEN

        ckpt = dataclasses.replace(GOLDEN, checkpoint_blocks=True)
        config = golden_config(
            build_model=gpt_builder(ckpt),
            make_loss=gpt_loss_fn(ckpt, 2, 32),
            compile=True,
        )
        with pytest.raises(FsdpError, match="forward twice"):
            simulate_training(config)
