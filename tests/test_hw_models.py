"""Hardware cost models: kernel roofline, collectives, topology."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import dtypes
from repro.hw.comm_model import CollectiveKind, CommModel
from repro.hw.kernel_model import KernelCost, KernelCostModel
from repro.hw.specs import A100_80GB, ClusterTopology, HostSpec, cluster_of

GiB = 2**30


class TestClusterTopology:
    def test_cluster_of_rounds_to_hosts(self):
        topo = cluster_of(64)
        assert topo.num_hosts == 8
        assert topo.world_size == 64

    def test_small_cluster_single_host(self):
        topo = cluster_of(4)
        assert topo.num_hosts == 1
        assert topo.host.gpus_per_host == 4

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            cluster_of(12)
        with pytest.raises(ValueError):
            cluster_of(0)

    def test_rank_mapping(self):
        topo = cluster_of(32)
        assert topo.rank_to_host(0) == 0
        assert topo.rank_to_host(8) == 1
        assert topo.rank_to_local(9) == 1
        with pytest.raises(ValueError):
            topo.rank_to_host(32)

    def test_intra_host_uses_nvlink(self):
        topo = cluster_of(16)
        assert topo.ring_bandwidth(range(8)) == topo.host.nvlink_bandwidth

    def test_cross_host_uses_nic(self):
        topo = cluster_of(16)
        bw = topo.ring_bandwidth(range(16))
        assert bw == min(topo.host.nvlink_bandwidth, topo.host.nic_bandwidth)

    def test_oversubscription_across_pods(self):
        topo = cluster_of(16, pod_hosts=1, oversubscription=2.0)
        within = topo.ring_bandwidth(range(8))
        across = topo.ring_bandwidth(range(16))
        assert across == pytest.approx(
            min(topo.host.nvlink_bandwidth, topo.host.nic_bandwidth) / 2.0
        )

    def test_jitter_grows_with_world(self):
        topo = cluster_of(512)
        assert topo.jitter_factor(1) == 1.0
        assert topo.jitter_factor(512) > topo.jitter_factor(8) > 1.0


class TestKernelModel:
    def test_matmul_uses_tensor_core_lane(self):
        model = KernelCostModel(A100_80GB)
        bf16 = model.duration(KernelCost(flops=1e13, is_matmul=True), dtypes.bfloat16)
        fp32 = model.duration(KernelCost(flops=1e13, is_matmul=True), dtypes.float32)
        assert bf16 < fp32

    def test_bandwidth_bound_elementwise(self):
        model = KernelCostModel(A100_80GB)
        duration = model.duration(KernelCost(flops=100, bytes_moved=4e9), dtypes.float32)
        assert duration == pytest.approx(4e9 / A100_80GB.mem_bandwidth)

    def test_min_duration_floor(self):
        model = KernelCostModel(A100_80GB)
        assert model.duration(KernelCost(), dtypes.float32) == A100_80GB.kernel_min_duration


class TestCommModel:
    def setup_method(self):
        self.topo = cluster_of(8)
        self.model = CommModel(self.topo)
        self.ranks = list(range(8))

    def test_figure2a_ordering(self):
        """Base > list > uneven, at every size (Figure 2a)."""
        for elements in (2**16, 2**22, 2**28):
            nbytes = elements * 4
            base = self.model.bus_bandwidth(
                CollectiveKind.ALL_GATHER_BASE, nbytes, self.ranks
            )
            listed = self.model.bus_bandwidth(
                CollectiveKind.ALL_GATHER_LIST, nbytes, self.ranks
            )
            shards = [nbytes // 8] * 8
            uneven = self.model.bus_bandwidth(
                CollectiveKind.ALL_GATHER_UNEVEN, nbytes, self.ranks, shard_nbytes=shards
            )
            assert base > listed > uneven

    def test_uneven_imbalance_hurts(self):
        nbytes = 2**22 * 4
        even_shards = [nbytes // 8] * 8
        skewed = list(even_shards)
        skewed[0] += skewed[1] // 2
        skewed[1] -= skewed[1] // 2
        t_even = self.model.time(
            CollectiveKind.ALL_GATHER_UNEVEN, nbytes, self.ranks, shard_nbytes=even_shards
        )
        t_skew = self.model.time(
            CollectiveKind.ALL_GATHER_UNEVEN, nbytes, self.ranks, shard_nbytes=skewed
        )
        assert t_skew > t_even

    def test_figure2b_knee_location(self):
        """Launch overhead dominates below tens of millions of elements."""
        from repro.bench.fig2 import fig2b_knee, fig2b_rows

        rows = fig2b_rows(world_size=8)
        knee = fig2b_knee(rows)
        assert 2**23 <= knee <= 2**26  # 8M..64M, paper ~33M

    def test_total_time_monotone_in_splits(self):
        """More, smaller collectives never beat one big one."""
        total = 2**28
        times = []
        for per in (2**20, 2**24, 2**28):
            count = total // per
            times.append(
                count * self.model.time(CollectiveKind.ALL_GATHER_BASE, per * 4, self.ranks)
            )
        assert times[0] > times[1] > times[2]

    def test_all_reduce_twice_all_gather_transfer(self):
        nbytes = 2**26
        ag = self.model.cost(CollectiveKind.ALL_GATHER_BASE, nbytes, self.ranks)
        ar = self.model.cost(CollectiveKind.ALL_REDUCE, nbytes, self.ranks)
        assert ar.transfer == pytest.approx(2 * ag.transfer)

    def test_reduce_scatter_equals_all_gather(self):
        nbytes = 2**26
        ag = self.model.time(CollectiveKind.ALL_GATHER_BASE, nbytes, self.ranks)
        rs = self.model.time(CollectiveKind.REDUCE_SCATTER, nbytes, self.ranks)
        assert rs == pytest.approx(ag)

    def test_concurrent_groups_share_bandwidth(self):
        topo = cluster_of(32)
        model = CommModel(topo)
        replicate_ranks = [0, 8, 16, 24]
        solo = model.time(CollectiveKind.ALL_REDUCE, 2**26, replicate_ranks)
        shared = model.time(
            CollectiveKind.ALL_REDUCE, 2**26, replicate_ranks, concurrent_groups=8
        )
        assert shared > solo

    def test_single_rank_trivial(self):
        cost = self.model.cost(CollectiveKind.ALL_GATHER_BASE, 2**20, [3])
        assert cost.transfer == 0.0

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            self.model.cost(CollectiveKind.ALL_REDUCE, 100, [])

    @settings(max_examples=20, deadline=None)
    @given(nbytes=st.integers(1024, 2**30))
    def test_costs_positive_and_monotone(self, nbytes):
        small = self.model.time(CollectiveKind.ALL_GATHER_BASE, nbytes, self.ranks)
        bigger = self.model.time(CollectiveKind.ALL_GATHER_BASE, nbytes * 2, self.ranks)
        assert 0 < small <= bigger

    def test_hybrid_intra_host_faster_than_global(self):
        """Why hybrid sharding helps: host-local AllGathers are faster."""
        topo = cluster_of(64)
        model = CommModel(topo)
        nbytes = 2**28
        local = model.time(CollectiveKind.ALL_GATHER_BASE, nbytes, list(range(8)))
        global_ = model.time(CollectiveKind.ALL_GATHER_BASE, nbytes, list(range(64)))
        assert local < global_


class TestBusBandwidth:
    """``bus_bandwidth`` mirrors the nccl-tests busBw conventions.

    nccl-tests defines busBw = size * factor / time with a per-kind
    factor counting the bytes each rank actually pushes over its links:
    (n-1)/n for all-gather / reduce-scatter / all-to-all, 2(n-1)/n for
    all-reduce (ring reduce-scatter + all-gather moves the payload
    twice), and 1 for broadcast.
    """

    def setup_method(self):
        self.topo = cluster_of(16)
        self.model = CommModel(self.topo)
        self.ranks = list(range(16))
        self.nbytes = 2**28

    def _expected(self, kind, factor):
        duration = self.model.time(kind, self.nbytes, self.ranks)
        return self.nbytes * factor / duration

    def test_all_gather_factor(self):
        w = len(self.ranks)
        busbw = self.model.bus_bandwidth(
            CollectiveKind.ALL_GATHER_BASE, self.nbytes, self.ranks
        )
        assert busbw == pytest.approx(
            self._expected(CollectiveKind.ALL_GATHER_BASE, (w - 1) / w)
        )

    def test_reduce_scatter_factor(self):
        w = len(self.ranks)
        busbw = self.model.bus_bandwidth(
            CollectiveKind.REDUCE_SCATTER, self.nbytes, self.ranks
        )
        assert busbw == pytest.approx(
            self._expected(CollectiveKind.REDUCE_SCATTER, (w - 1) / w)
        )

    def test_all_to_all_factor(self):
        w = len(self.ranks)
        busbw = self.model.bus_bandwidth(
            CollectiveKind.ALL_TO_ALL, self.nbytes, self.ranks
        )
        assert busbw == pytest.approx(
            self._expected(CollectiveKind.ALL_TO_ALL, (w - 1) / w)
        )

    def test_all_reduce_factor_is_doubled(self):
        w = len(self.ranks)
        busbw = self.model.bus_bandwidth(
            CollectiveKind.ALL_REDUCE, self.nbytes, self.ranks
        )
        assert busbw == pytest.approx(
            self._expected(CollectiveKind.ALL_REDUCE, 2.0 * (w - 1) / w)
        )

    def test_broadcast_factor_is_one(self):
        busbw = self.model.bus_bandwidth(
            CollectiveKind.BROADCAST, self.nbytes, self.ranks
        )
        assert busbw == pytest.approx(self._expected(CollectiveKind.BROADCAST, 1.0))

    def test_single_rank_is_zero(self):
        assert self.model.bus_bandwidth(CollectiveKind.ALL_REDUCE, self.nbytes, [0]) == 0.0

    def test_ring_collectives_saturate_same_bus(self):
        """AR moves 2x the bytes in ~2x the time: busBw matches AG/RS.

        This is the invariant the per-kind factors exist to preserve
        (an all-reduce reported at half its all-gather busBw was the
        bug): for transfer-dominated messages every ring collective
        should report the same achieved bus bandwidth.
        """
        nbytes = 2**32  # large enough that launch/latency are noise
        ag = self.model.bus_bandwidth(CollectiveKind.ALL_GATHER_BASE, nbytes, self.ranks)
        rs = self.model.bus_bandwidth(CollectiveKind.REDUCE_SCATTER, nbytes, self.ranks)
        ar = self.model.bus_bandwidth(CollectiveKind.ALL_REDUCE, nbytes, self.ranks)
        assert rs == pytest.approx(ag, rel=1e-6)
        # AR pays one launch against twice the transfer, so its busBw is
        # marginally *higher*; equal to within the launch overhead.
        assert ar == pytest.approx(ag, rel=2e-2)

    def test_busbw_bounded_by_link_bandwidth(self):
        """Achieved busBw never exceeds the ring bottleneck link."""
        bottleneck = self.topo.ring_bandwidth(self.ranks)
        for kind in (
            CollectiveKind.ALL_GATHER_BASE,
            CollectiveKind.REDUCE_SCATTER,
            CollectiveKind.ALL_REDUCE,
            CollectiveKind.ALL_TO_ALL,
        ):
            assert self.model.bus_bandwidth(kind, 2**32, self.ranks) <= bottleneck


class TestCostModelMemoization:
    """Memoized cost models are bitwise-equal to the uncached path."""

    KINDS_EVEN = [
        CollectiveKind.ALL_GATHER_BASE,
        CollectiveKind.ALL_GATHER_LIST,
        CollectiveKind.REDUCE_SCATTER,
        CollectiveKind.ALL_REDUCE,
        CollectiveKind.BROADCAST,
        CollectiveKind.ALL_TO_ALL,
    ]
    KINDS_UNEVEN = [
        CollectiveKind.ALL_GATHER_UNEVEN,
        CollectiveKind.REDUCE_SCATTER_UNEVEN,
    ]

    def test_comm_cached_matches_uncached(self):
        topo = cluster_of(64)
        cached = CommModel(topo, cache=True)
        uncached = CommModel(topo, cache=False)
        rank_sets = [[0], list(range(2)), list(range(8)), list(range(0, 64, 8))]
        for ranks in rank_sets:
            for nbytes in (0, 1, 12345, 2**20, 2**30):
                for groups in (1, 4):
                    for kind in self.KINDS_EVEN:
                        assert cached.cost(
                            kind, nbytes, ranks, concurrent_groups=groups
                        ) == uncached.cost(kind, nbytes, ranks, concurrent_groups=groups)
                    world = len(ranks)
                    shards = [nbytes // world] * (world - 1) + [
                        nbytes - (world - 1) * (nbytes // world)
                    ]
                    for kind in self.KINDS_UNEVEN:
                        assert cached.cost(
                            kind,
                            nbytes,
                            ranks,
                            concurrent_groups=groups,
                            shard_nbytes=shards,
                        ) == uncached.cost(
                            kind,
                            nbytes,
                            ranks,
                            concurrent_groups=groups,
                            shard_nbytes=shards,
                        )

    def test_comm_cache_hits_and_clear(self):
        model = CommModel(cluster_of(8))
        first = model.cost(CollectiveKind.ALL_REDUCE, 2**20, range(8))
        second = model.cost(CollectiveKind.ALL_REDUCE, 2**20, range(8))
        assert second is first  # served from cache, not recomputed
        assert len(model._cost_cache) == 1
        model.clear_cache()
        assert not model._cost_cache
        assert model.cost(CollectiveKind.ALL_REDUCE, 2**20, range(8)) == first

    def test_comm_cache_distinguishes_kwargs(self):
        """concurrent_groups / shard_nbytes are part of the cache key."""
        model = CommModel(cluster_of(8))
        solo = model.cost(CollectiveKind.ALL_REDUCE, 2**20, range(8))
        shared = model.cost(
            CollectiveKind.ALL_REDUCE, 2**20, range(8), concurrent_groups=4
        )
        assert shared.transfer > solo.transfer

    def test_kernel_cached_matches_uncached(self):
        cached = KernelCostModel(A100_80GB, cache=True)
        uncached = KernelCostModel(A100_80GB, cache=False)
        costs = [
            KernelCost(),
            KernelCost(flops=1e9),
            KernelCost(flops=1e12, is_matmul=True),
            KernelCost(bytes_moved=4e9),
            KernelCost(flops=5e11, bytes_moved=2e9, is_matmul=True),
        ]
        for cost in costs:
            for dtype in (dtypes.float32, dtypes.bfloat16):
                assert cached.duration(cost, dtype) == uncached.duration(cost, dtype)

    def test_kernel_cache_hits_and_clear(self):
        model = KernelCostModel(A100_80GB)
        cost = KernelCost(flops=1e12, is_matmul=True)
        duration = model.duration(cost, dtypes.bfloat16)
        assert model._duration_cache[(cost, dtypes.bfloat16.name)] == duration
        model.clear_cache()
        assert not model._duration_cache
        assert model.duration(cost, dtypes.bfloat16) == duration
