"""Storage lifecycle: allocation, views, release/reallocate, GC frees."""

import gc

import numpy as np
import pytest

import repro
from repro import dtypes
from repro.cuda.device import Device, cpu_device, meta_device
from repro.storage import Storage


def sim_device():
    dev = Device("sim_gpu")
    dev.materialize_data = True
    return dev


class TestLifecycle:
    def test_allocates_through_allocator(self):
        dev = sim_device()
        storage = Storage(dev, dtypes.float32, 1000)
        assert storage.block is not None
        assert dev.allocator.stats.allocated_bytes == 4000

    def test_gc_frees_block(self):
        dev = sim_device()
        storage = Storage(dev, dtypes.float32, 1000)
        del storage
        gc.collect()
        assert dev.allocator.stats.allocated_bytes == 0

    def test_tensor_death_frees(self):
        dev = sim_device()
        t = repro.randn(256, device=dev)
        assert dev.allocator.stats.allocated_bytes >= 1024
        del t
        gc.collect()
        assert dev.allocator.stats.allocated_bytes == 0

    def test_views_keep_storage_alive(self):
        dev = sim_device()
        t = repro.randn(256, device=dev)
        view = t.view(16, 16)
        del t
        gc.collect()
        assert dev.allocator.stats.allocated_bytes >= 1024
        del view
        gc.collect()
        assert dev.allocator.stats.allocated_bytes == 0

    def test_activation_memory_freed_during_backward(self):
        """Saved tensors release as nodes execute, like the real engine."""
        from repro import nn

        dev = sim_device()
        model = nn.Sequential(*[nn.Linear(64, 64, device=dev) for _ in range(4)])
        x = repro.randn(8, 64, device=dev)
        out = model(x)
        during = dev.allocator.stats.allocated_bytes
        out.sum().backward()
        model.zero_grad()
        del out, x
        gc.collect()
        after = dev.allocator.stats.allocated_bytes
        assert after < during


class TestReleaseReallocate:
    def test_release_keeps_object_alive(self):
        dev = sim_device()
        storage = Storage(dev, dtypes.float32, 100)
        storage.release()
        assert storage.block is None
        assert storage.data is None
        assert not storage.freed

    def test_reallocate_restores(self):
        dev = sim_device()
        storage = Storage(dev, dtypes.float32, 100)
        storage.release()
        storage.reallocate()
        assert storage.block is not None
        assert storage.data is not None

    def test_reallocate_idempotent(self):
        dev = sim_device()
        storage = Storage(dev, dtypes.float32, 100)
        block = storage.block
        storage.reallocate()  # no-op while attached
        assert storage.block is block

    def test_reallocate_after_free_raises(self):
        dev = sim_device()
        storage = Storage(dev, dtypes.float32, 100)
        storage.free()
        with pytest.raises(RuntimeError):
            storage.reallocate()

    def test_views_survive_cycle(self):
        dev = sim_device()
        storage = Storage(dev, dtypes.float32, 10)
        t = repro.Tensor(storage, (10,))
        storage.release()
        with pytest.raises(RuntimeError):
            t.numpy()
        storage.reallocate()
        assert t.numpy().shape == (10,)

    def test_double_free_safe(self):
        dev = sim_device()
        storage = Storage(dev, dtypes.float32, 100)
        storage.free()
        storage.free()
        assert dev.allocator.stats.allocated_bytes == 0


class TestDevices:
    def test_cpu_storage_has_no_block(self):
        storage = Storage(cpu_device(), dtypes.float32, 10)
        assert storage.block is None
        assert storage.data is not None

    def test_meta_storage_has_nothing(self):
        storage = Storage(meta_device(), dtypes.float32, 10)
        assert storage.block is None
        assert storage.data is None

    def test_abstract_mode(self):
        dev = sim_device()
        dev.materialize_data = False
        storage = Storage(dev, dtypes.float32, 10)
        assert storage.block is not None  # memory accounted
        assert storage.data is None  # no real data

    def test_explicit_data(self):
        storage = Storage(cpu_device(), dtypes.float32, 4, data=np.arange(4, dtype=np.float32))
        np.testing.assert_array_equal(storage.data, [0, 1, 2, 3])

    def test_data_size_mismatch(self):
        with pytest.raises(ValueError):
            Storage(cpu_device(), dtypes.float32, 5, data=np.zeros(4, dtype=np.float32))
