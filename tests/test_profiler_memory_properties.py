"""Property tests: memory counter tracks are internally consistent.

The memory timeline is only trustworthy if every sample it emits obeys
the allocator's own accounting identities, on *any* event sequence:

- ``allocated <= active <= reserved`` at every sample point;
- the per-stream segment breakdown sums exactly to device reserved;
- free pool bytes on a stream never exceed that stream's segments;
- the sampled series reconstructs ``allocator.stats`` at the end of
  the run (peaks included — every counter-changing event samples).

Scripts are hypothesis-generated alloc/free/cross-stream sequences
over two streams; the end-to-end check replays a real FSDP training
simulation and validates every sample the run produced.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cuda.device import Device
from repro.profiler import MemoryTimeline

MiB = 1 << 20


def make_device(capacity=512 * MiB):
    dev = Device("sim_gpu", capacity=capacity)
    dev.materialize_data = False
    return dev


def install_timeline(device) -> MemoryTimeline:
    timeline = MemoryTimeline()
    device.allocator.sample_hook = timeline.sample
    return timeline


def check_sample(sample):
    """The identities every single sample must satisfy."""
    assert sample.allocated <= sample.active <= sample.reserved
    assert sum(sample.reserved_by_stream.values()) == sample.reserved
    for stream_id, pool in sample.pool_bytes.items():
        assert pool >= 0
        assert pool <= sample.reserved_by_stream.get(stream_id, 0), (
            "free pool bytes exceed the stream's own segments"
        )


@st.composite
def two_stream_script(draw):
    """alloc(stream)/free/use ops over the default and a side stream."""
    ops = []
    live = 0
    for _ in range(draw(st.integers(1, 40))):
        choice = draw(st.integers(0, 2)) if live else 0
        if choice == 0:
            ops.append(("alloc", draw(st.integers(1, 8 * MiB)), draw(st.integers(0, 1))))
            live += 1
        elif choice == 1:
            ops.append(("free", draw(st.integers(0, live - 1)), None))
            live -= 1
        else:
            ops.append(("use", draw(st.integers(0, live - 1)), None))
    return ops


def run_script(script):
    dev = make_device()
    timeline = install_timeline(dev)
    side = dev.new_stream("side")
    streams = [dev.default_stream, side]
    live = []
    for op, arg, stream_idx in script:
        if op == "alloc":
            live.append(dev.allocator.allocate(arg, streams[stream_idx]))
        elif op == "free":
            dev.allocator.free(live.pop(arg))
        else:
            dev.allocator.record_use(live[arg], side, dev.cpu_time() + 1e-3)
    return dev, timeline, live


class TestCounterTrackProperties:
    @settings(max_examples=40, deadline=None)
    @given(script=two_stream_script())
    def test_every_sample_is_internally_consistent(self, script):
        dev, timeline, _ = run_script(script)
        assert timeline.samples  # every alloc/free event sampled
        for sample in timeline.samples:
            check_sample(sample)
        times = [s.time for s in timeline.samples]
        assert times == sorted(times)

    @settings(max_examples=40, deadline=None)
    @given(script=two_stream_script())
    def test_final_sample_matches_allocator_stats(self, script):
        dev, timeline, _ = run_script(script)
        stats = dev.allocator.stats
        last = timeline.samples[-1]
        assert last.allocated == stats.allocated_bytes
        assert last.reserved == stats.reserved_bytes
        assert sum(last.reserved_by_stream.values()) == stats.reserved_bytes

    @settings(max_examples=40, deadline=None)
    @given(script=two_stream_script())
    def test_sampled_series_reconstructs_the_peaks(self, script):
        # allocated and reserved change only inside sampled events, so
        # the series' maxima ARE the allocator's peak counters; active
        # can retire between the bump and the (refreshed) sample, so it
        # is sandwiched instead.
        dev, timeline, _ = run_script(script)
        stats = dev.allocator.stats
        assert max(s.allocated for s in timeline.samples) == stats.allocated_peak
        assert max(s.reserved for s in timeline.samples) == stats.reserved_peak
        assert max(s.active for s in timeline.samples) <= stats.active_peak

    @settings(max_examples=20, deadline=None)
    @given(script=two_stream_script())
    def test_empty_cache_emits_release_samples_down_to_zero(self, script):
        dev, timeline, live = run_script(script)
        for block in live:
            dev.allocator.free(block)
        # Cross-stream uses were recorded slightly in the future; move
        # the clock past them so every block is retired and releasable.
        dev.advance_cpu_to(dev.cpu_time() + 1.0)
        dev.synchronize()
        dev.allocator.empty_cache()
        last = timeline.samples[-1]
        assert last.reason == "release"
        assert last.reserved == 0
        assert last.reserved_by_stream == {}
        for sample in timeline.samples:
            check_sample(sample)

    def test_pressure_event_samples(self):
        dev = make_device()
        timeline = install_timeline(dev)
        dev.allocator.set_pressure(4 * MiB)
        assert timeline.samples[-1].reason == "pressure"
        check_sample(timeline.samples[-1])


class TestEndToEndTrainingRun:
    @pytest.fixture(scope="class")
    def profiled_run(self):
        from tests.test_profiler_golden_trace import run_profiled

        return run_profiled()

    def test_every_training_sample_is_consistent(self, profiled_run):
        session, _ = profiled_run
        samples = session.memory.samples
        assert len(samples) > 100  # event granularity, not per-iteration
        for sample in samples:
            check_sample(sample)

    def test_comm_stream_pool_is_visible(self, profiled_run):
        # §3.4: the unshard stream keeps its own segment pool; the
        # counter tracks must expose it as a separate series.
        session, _ = profiled_run
        names = set(session.memory.stream_names.values())
        assert {"default", "fsdp-unshard"} <= names
        by_name = {name: sid for sid, name in session.memory.stream_names.items()}
        unshard = by_name["fsdp-unshard"]
        assert any(
            sample.reserved_by_stream.get(unshard, 0) > 0
            for sample in session.memory.samples
        )

    def test_counter_events_mirror_samples(self, profiled_run):
        session, _ = profiled_run
        samples = session.memory.samples
        events = session.memory.counter_events()
        device_track = [e for e in events if e["name"] == "mem.bytes"]
        assert len(device_track) == len(samples)
        for sample, event in zip(samples, device_track):
            assert event["args"]["allocated"] == sample.allocated
            assert event["args"]["active"] == sample.active
            assert event["args"]["reserved"] == sample.reserved

    def test_peak_attribution_names_an_fsdp_phase(self, profiled_run):
        session, _ = profiled_run
        rows = session.memory.attribution("active")
        assert rows
        # The peak owner is a unit/phase scope, not (unscoped): the
        # whole run is under FSDP scopes once training starts.
        top = rows[0]["scope"]
        assert any(
            top.startswith(prefix)
            for prefix in ("forward:", "backward:", "unshard:", "reduce:")
        ), top
