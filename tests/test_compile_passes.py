"""Unit tests for the compiler passes on hand-built captures.

Each test drives :class:`CaptureHook` directly with a synthetic event
stream (the same callbacks the runtime fires) so pass behavior is
pinned without spinning up the simulator: bucket partitioning rules,
consumption-order bucketing when backward issue order diverges,
dead-wait accounting, the liveness walk, and the memory-budget
demotion loop.

The demotion tests double as the regression test for the
``saved=False`` trace fix: activation bytes that only spike inside a
unit's own forward (``transient``) must NOT be modeled as live until
its backward (``saved``).  With the split, a tight budget is provable
by demoting forward buckets; with transient folded into saved the same
budget is infeasible no matter what the scheduler does — so the fix is
load-bearing, not cosmetic.
"""

import pytest

from repro.compile import CaptureHook, compile_capture
from repro.compile.ir import NodeKind
from repro.compile.passes import (
    bucket_collectives,
    eliminate_dead_waits,
    estimate_peak_bytes,
    reorder_for_overlap,
)
from repro.errors import FsdpError, StreamOrderViolation

NBYTES = 1000


def make_capture(
    units=("A", "B", "C"),
    *,
    nbytes=NBYTES,
    liveness=None,
    backward_order=None,
    group_key=1,
):
    """Synthesize one eager FULL_SHARD iteration without prefetch:
    each unit gathers at its own pre point, reshards after use."""
    cap = CaptureHook(liveness=liveness)
    cap.on_iteration_begin()
    coll = dict(nbytes=nbytes, group_key=group_key, dtype="float32")
    for u in units:
        cap.on_pre_forward(u)
        cap.on_unshard_issue(u, reason="forward", **coll)
        cap.on_wait(u)
        cap.on_post_forward(u)
        cap.on_reshard(u, nbytes)
    for u in backward_order or tuple(reversed(units)):
        cap.on_pre_backward(u)
        cap.on_unshard_issue(u, reason="pre_backward", **coll)
        cap.on_wait(u)
        cap.on_post_backward(u, **coll)
        cap.on_reshard(u, nbytes)
    cap.on_finalize()
    return cap


def ag_buckets(graph, phase):
    positions = graph.positions()
    nodes = [n for n in graph.live(NodeKind.ALL_GATHER) if n.phase == phase]
    nodes.sort(key=lambda n: positions[tuple(n.trigger)])
    return nodes


# ----------------------------------------------------------------------
# Bucketing
# ----------------------------------------------------------------------
class TestBucketing:
    def test_adjacent_merge_until_knee(self):
        g = make_capture(("A", "B", "C", "D")).graph()
        bucket_collectives(g, bucket_bytes=2 * NBYTES)
        for phase in ("forward", "backward"):
            buckets = ag_buckets(g, phase)
            assert [len(b.units) for b in buckets] == [2, 2]
            for b in buckets[:-1]:
                assert b.nbytes >= 2 * NBYTES
        rs = g.live(NodeKind.REDUCE_SCATTER)
        assert [len(b.units) for b in rs] == [2, 2]
        assert g.stats["collectives_merged"] == {
            "all_gather": 4,
            "reduce_scatter": 2,
        }

    def test_odd_remainder_bucket_may_be_small(self):
        g = make_capture(("A", "B", "C")).graph()
        bucket_collectives(g, bucket_bytes=2 * NBYTES)
        forward = ag_buckets(g, "forward")
        assert [len(b.units) for b in forward] == [2, 1]
        assert forward[-1].nbytes < 2 * NBYTES  # last may undershoot

    def test_group_key_change_closes_bucket(self):
        cap = CaptureHook()
        cap.on_iteration_begin()
        for u, key in (("A", 1), ("B", 2), ("C", 2)):
            cap.on_pre_forward(u)
            cap.on_unshard_issue(
                u, reason="forward", nbytes=NBYTES, group_key=key, dtype="float32"
            )
            cap.on_wait(u)
            cap.on_post_forward(u)
        for u, key in (("C", 2), ("B", 2), ("A", 1)):
            cap.on_pre_backward(u)
            cap.on_post_backward(u, nbytes=NBYTES, group_key=key, dtype="float32")
        cap.on_finalize()
        g = cap.graph()
        bucket_collectives(g, bucket_bytes=10 * NBYTES)
        # SPMD peers must agree on each merged launch: A (group 1) may
        # never share a bucket with B/C (group 2).
        assert sorted(tuple(b.units) for b in ag_buckets(g, "forward")) == [
            ("A",),
            ("B", "C"),
        ]

    def test_backward_buckets_follow_consumption_not_issue_order(self):
        """Autograd may consume siblings in a different order than the
        prefetcher issued them (the q/k/v case): members must be
        adjacent in *wait* order."""
        cap = CaptureHook()
        cap.on_iteration_begin()
        for u in ("A", "B", "C", "D"):
            cap.on_pre_forward(u)
            cap.on_unshard_issue(
                u, reason="forward", nbytes=NBYTES, group_key=1, dtype="float32"
            )
            cap.on_wait(u)
            cap.on_post_forward(u)
            cap.on_reshard(u, NBYTES)
        # Prefetch issues backward gathers in reversed-forward order
        # (D, C, B, A) up front, but autograd consumes D, B, C, A.
        cap.on_pre_backward("D")
        for u in ("D", "C", "B", "A"):
            cap.on_unshard_issue(
                u, reason="backward_prefetch", nbytes=NBYTES, group_key=1,
                dtype="float32",
            )
        cap.on_wait("D")
        cap.on_post_backward("D", nbytes=NBYTES, group_key=1, dtype="float32")
        for u in ("B", "C", "A"):
            cap.on_pre_backward(u)
            cap.on_wait(u)
            cap.on_post_backward(u, nbytes=NBYTES, group_key=1, dtype="float32")
        cap.on_finalize()
        g = cap.graph()
        bucket_collectives(g, bucket_bytes=2 * NBYTES)
        assert [tuple(b.units) for b in ag_buckets(g, "backward")] == [
            ("D", "B"),
            ("C", "A"),
        ]


# ----------------------------------------------------------------------
# Reordering and dead waits
# ----------------------------------------------------------------------
class TestReorder:
    def test_forward_pipeline_one_ahead(self):
        g = make_capture(("A", "B", "C")).graph()
        bucket_collectives(g, bucket_bytes=NBYTES)  # one bucket per unit
        reorder_for_overlap(g)
        forward = ag_buckets(g, "forward")
        assert [tuple(b.trigger) for b in forward] == [
            ("iter_begin", ""),
            ("pre_forward", "A"),
            ("pre_forward", "B"),
        ]

    def test_backward_head_stays_at_own_consumer(self):
        g = make_capture(("A", "B", "C")).graph()
        bucket_collectives(g, bucket_bytes=NBYTES)
        reorder_for_overlap(g)
        backward = ag_buckets(g, "backward")
        # No backward hook precedes C's pre_backward, so its bucket
        # cannot move; B and A pipeline one-ahead behind it.
        assert [tuple(b.trigger) for b in backward] == [
            ("pre_backward", "C"),
            ("pre_backward", "C"),
            ("pre_backward", "B"),
        ]

    def test_reduce_scatters_pin_to_last_member(self):
        g = make_capture(("A", "B", "C", "D")).graph()
        bucket_collectives(g, bucket_bytes=2 * NBYTES)
        reorder_for_overlap(g)
        for node in g.live(NodeKind.REDUCE_SCATTER):
            assert tuple(node.trigger) == ("post_backward", node.units[-1])

    def test_dead_wait_elimination_counts(self):
        g = make_capture(("A", "B", "C", "D")).graph()
        bucket_collectives(g, bucket_bytes=2 * NBYTES)
        reorder_for_overlap(g)
        eliminate_dead_waits(g)
        # 8 captured waits, 4 buckets -> one surviving wait each.
        assert g.stats["dead_waits_removed"] == 4
        live = g.live(NodeKind.WAIT)
        assert len(live) == 4
        assert len({w.target for w in live}) == 4


# ----------------------------------------------------------------------
# Liveness walk and the memory budget
# ----------------------------------------------------------------------
class TestMemoryBudget:
    BUDGET = 2_200

    def test_peak_counts_transient_only_inside_own_forward(self):
        liveness = {"A": (100, 10_000)}
        g = make_capture(("A", "B"), liveness=liveness).graph()
        peak = estimate_peak_bytes(g)
        # A's transient spike (10k) dominates and coincides with A's
        # own gathered parameters only.
        assert peak == 10_000 + NBYTES
        # Saved bytes persist into backward: with transient gone the
        # backward-side liveness is saved + regathered params.
        folded = {"A": (10_100, 0)}
        g2 = make_capture(("A", "B"), liveness=folded).graph()
        assert estimate_peak_bytes(g2) > estimate_peak_bytes(g)

    def _demoted(self, liveness):
        g = make_capture(liveness=liveness).graph()
        bucket_collectives(g, bucket_bytes=NBYTES)
        reorder_for_overlap(g, memory_budget=self.BUDGET)
        return g

    def test_budget_demotes_pipelined_buckets_until_fit(self):
        liveness = {u: (0, 500) for u in ("A", "B", "C")}
        g = self._demoted(liveness)
        assert g.stats["buckets_demoted"] >= 1
        assert g.stats["peak_bytes_estimate"] <= self.BUDGET
        # Demoted buckets are back at their own consumers — still a
        # valid schedule (verify would accept it).
        for b in ag_buckets(g, "forward"):
            point, _ = tuple(b.trigger)
            assert point in ("iter_begin", "pre_forward")

    def test_saved_transient_split_is_load_bearing(self):
        """Regression for the ModelTrace ``saved=False`` liveness fix:
        folding transient activation spikes into saved bytes makes the
        same budget unprovable — no demotion can ever fit, because the
        phantom bytes persist into backward where demotion has no
        lever left."""
        folded = {u: (500, 0) for u in ("A", "B", "C")}
        g = self._demoted(folded)
        assert g.stats["peak_bytes_estimate"] > self.BUDGET

    def test_no_budget_means_no_demotion(self):
        liveness = {u: (0, 500) for u in ("A", "B", "C")}
        g = make_capture(liveness=liveness).graph()
        bucket_collectives(g, bucket_bytes=NBYTES)
        reorder_for_overlap(g, memory_budget=None)
        assert g.stats["buckets_demoted"] == 0


# ----------------------------------------------------------------------
# Verifier and capture edge cases
# ----------------------------------------------------------------------
class TestVerifierAndCapture:
    def test_compile_capture_end_to_end(self):
        schedule = compile_capture(make_capture(("A", "B", "C", "D")), bucket_elems=2 * NBYTES // 4)
        assert len(schedule.ag_buckets) == 4  # 2 forward + 2 backward
        assert len(schedule.rs_buckets) == 2
        assert schedule.captured is not None

    def test_verifier_rejects_issue_after_consumer(self):
        cap = make_capture(("A", "B"))
        captured = cap.graph()
        optimized = cap.graph()
        bucket_collectives(optimized, bucket_bytes=NBYTES)
        eliminate_dead_waits(optimized)
        bucket = ag_buckets(optimized, "forward")[0]
        bucket.trigger = ("pre_backward", "B")  # after its consumer
        from repro.compile.verify import verify_schedule

        with pytest.raises(StreamOrderViolation) as excinfo:
            verify_schedule(captured, optimized)
        assert excinfo.value.kind == "compile-dropped-edge"

    def test_capture_rejects_double_forward(self):
        cap = CaptureHook()
        cap.on_iteration_begin()
        cap.on_pre_forward("A")
        cap.on_pre_forward("A")
        assert cap.unsupported is not None
        cap.on_finalize()
        with pytest.raises(FsdpError, match="forward twice"):
            cap.graph()

    def test_incomplete_capture_refuses_graph(self):
        cap = CaptureHook()
        cap.on_iteration_begin()
        cap.on_pre_forward("A")
        with pytest.raises(FsdpError, match="incomplete"):
            cap.graph()
