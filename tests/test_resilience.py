"""repro.resilience: coordinated abort, desync checking, peer healing.

Three subsystems, each with its negative control:

- **coordinated abort** — one watchdog declaration poisons the whole
  world: survivors wake immediately and later launches fail fast, so
  the total survivor stall is ~one watchdog interval.  The
  uncoordinated control (``coordinated_abort=False``) drains every
  pending collective to its own deadline, one serial timeout each.
- **desync detection** — a pre-launch cross-rank signature check over
  ``(kind, nbytes, dtype, group, seq)``: an injected
  ``FaultKind.DESYNC`` yields :class:`CollectiveDesyncError` naming
  exactly the divergent ranks and both signatures; clean runs raise
  nothing.
- **checkpoint-free peer healing** — hybrid-sharded elastic runs
  restore a failed rank from a surviving replicate-group peer, bitwise
  equal to the fault-free trajectory, falling back to checkpoint
  restore when no replica survives.
"""

import numpy as np
import pytest

import repro
from repro import distributed as dist, nn
from repro.distributed import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    Rendezvous,
    RendezvousTimeoutError,
    retry_backoff,
)
from repro.distributed.process_group import _RETRY_BACKOFF_BASE
from repro.errors import (
    CollectiveDesyncError,
    CollectiveTimeoutError,
    RankFailureError,
)
from repro.fsdp import (
    FullyShardedDataParallel as FSDP,
    ModuleWrapPolicy,
    ShardingStrategy,
)
from repro.perf.trainer import train_elastic
from repro.profiler import FlightRecorder
from repro.resilience import DEFAULT_HEALTH_PROBE_S, CoordinatedAbort
from repro.tensor import tensor

WORLD = 4
D = 16


# ----------------------------------------------------------------------
# Satellite: seeded per-rank retry jitter
# ----------------------------------------------------------------------
class TestRetryBackoff:
    def test_pure_function_of_seed_rank_attempt(self):
        assert retry_backoff(7, 3, 2) == retry_backoff(7, 3, 2)

    def test_decorrelated_across_ranks_and_seeds(self):
        # The whole point: ranks must not retry in lockstep.
        waits = {retry_backoff(7, rank, 1) for rank in range(16)}
        assert len(waits) == 16
        assert retry_backoff(7, 3, 1) != retry_backoff(8, 3, 1)

    def test_jitter_stays_inside_the_exponential_envelope(self):
        for attempt in (1, 2, 3, 4):
            step = _RETRY_BACKOFF_BASE * (2 ** (attempt - 1))
            for rank in range(8):
                wait = retry_backoff(0, rank, attempt)
                assert 0.5 * step <= wait < 1.5 * step


# ----------------------------------------------------------------------
# CoordinatedAbort latch (unit level)
# ----------------------------------------------------------------------
class TestCoordinatedAbortLatch:
    def test_declare_is_idempotent_and_names_the_dead(self):
        abort = CoordinatedAbort()
        assert not abort.poisoned
        abort.declare(2, sim_time=1.5, detection_s=0.5)
        abort.declare(2, sim_time=9.9, detection_s=9.9)  # first wins
        abort.declare((0,), sim_time=2.0, detection_s=0.25)
        assert abort.poisoned
        assert abort.failed_ranks() == (0, 2)
        assert abort.declared_time() == 2.0
        assert abort.detection_s() == 0.5
        with pytest.raises(RankFailureError) as exc_info:
            abort.check(kind="all_reduce", ranks=(0, 1, 2, 3), rank=1)
        assert exc_info.value.failed_ranks == (0, 2)
        abort.reset()
        assert not abort.poisoned
        abort.check(kind="all_reduce", ranks=(0, 1, 2, 3), rank=1)

    def test_disabled_latch_never_declares(self):
        abort = CoordinatedAbort(enabled=False)
        abort.declare(1, sim_time=1.0, detection_s=1.0)
        assert not abort.poisoned
        abort.check(kind="all_reduce", ranks=(0, 1), rank=0)

    def test_lease_expiry_declares_with_lease_timing(self):
        abort = CoordinatedAbort(lease_s=1.0)
        abort.renew(0, 0.0)
        abort.renew(1, 0.0)
        assert abort.expire_leases(0.9) == ()
        abort.renew(0, 1.0)
        assert abort.expire_leases(1.5) == (1,)
        assert abort.failed_ranks() == (1,)
        (failure,) = abort.failures()
        assert failure.reason == "lease-expiry"
        assert failure.sim_time == 1.0  # renewed at 0, lease 1.0
        assert failure.detection_s == 1.0


# ----------------------------------------------------------------------
# Coordinated abort: symmetric backend (pending-drain negative control)
# ----------------------------------------------------------------------
TIMEOUT = 0.25
PENDING = 3


class TestSymmetricAbort:
    def _stall(self, coordinated: bool) -> tuple[float, object]:
        """Issue PENDING async all-gathers, then hang; return the
        simulated stall from just before the hung launch to the raise,
        plus the world context for follow-up assertions."""
        dist.shutdown()
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.HANG, rank=0, collective_index=PENDING)]
        )
        ctx = dist.init_single_process(
            WORLD,
            materialize=False,
            fault_schedule=schedule,
            collective_timeout=TIMEOUT,
            coordinated_abort=coordinated,
        )
        group = dist.default_group()
        shard = repro.empty(1 << 20, device=ctx.device)
        out = repro.empty(WORLD << 20, device=ctx.device)
        for _ in range(PENDING):
            group.all_gather_into_tensor(out, shard)  # left pending
        assert group.pending_collectives() == PENDING
        before = ctx.device.cpu_time()
        with pytest.raises(CollectiveTimeoutError):
            group.all_gather_into_tensor(out, shard)
        return ctx.device.cpu_time() - before, ctx

    def teardown_method(self):
        dist.shutdown()

    def test_survivor_stall_is_bounded_by_one_watchdog_interval(self):
        coordinated, ctx = self._stall(coordinated=True)
        uncoordinated, _ = self._stall(coordinated=False)
        # Coordinated: one watchdog interval (plus the pending queue's
        # own transfer time) covers the whole teardown.
        assert coordinated < 2 * TIMEOUT
        # Uncoordinated control: each already-pending collective is
        # drained to its own deadline — exactly PENDING extra timeouts.
        assert uncoordinated - coordinated == pytest.approx(
            PENDING * TIMEOUT, rel=1e-9
        )

    def test_later_launches_fail_fast_with_no_extra_stall(self):
        _, ctx = self._stall(coordinated=True)
        group = dist.default_group()
        assert ctx.device.abort.poisoned
        before = ctx.device.cpu_time()
        x = repro.empty(1024, device=ctx.device)
        out = repro.empty(WORLD * 1024, device=ctx.device)
        with pytest.raises(RankFailureError) as exc_info:
            group.all_gather_into_tensor(out, x)
        assert exc_info.value.failed_ranks == (0,)  # the lockstep rank
        assert exc_info.value.detection_s == TIMEOUT
        assert ctx.device.cpu_time() == before  # no clock advance at all

    def test_reset_unpoisons_the_world(self):
        _, ctx = self._stall(coordinated=True)
        ctx.device.abort.reset()
        group = dist.default_group()
        x = repro.empty(1024, device=ctx.device)
        out = repro.empty(WORLD * 1024, device=ctx.device)
        group.all_gather_into_tensor(out, x).wait()  # completes again


# ----------------------------------------------------------------------
# Coordinated abort: threaded backend
# ----------------------------------------------------------------------
class TestThreadedAbort:
    def test_survivors_charge_one_interval_and_then_fail_fast(self):
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.HANG, rank=1, collective_index=1)]
        )

        def worker(rank):
            device = dist.get_device()
            group = dist.default_group()
            x = repro.tensor(np.ones(4, dtype=np.float32), device=device)
            try:
                for _ in range(3):
                    group.all_reduce(x).wait()
                device.synchronize()
                return ("clean", None, 0.0)
            except CollectiveTimeoutError as error:
                return ("hung", error, device.cpu_time())
            except RankFailureError as error:
                before = device.cpu_time()
                try:
                    group.all_reduce(x).wait()
                except RankFailureError:
                    return ("survivor", error, device.cpu_time() - before)
                return ("no-refail", error, 0.0)

        results = dist.spawn(
            worker, WORLD, fault_schedule=schedule, collective_timeout=0.4
        )
        tags = [tag for tag, _, _ in results]
        assert tags[1] == "hung"
        assert all(tag == "survivor" for i, tag in enumerate(tags) if i != 1)
        for rank, (tag, error, refail_stall) in enumerate(results):
            if rank == 1:
                continue
            assert error.failed_ranks == (1,)
            assert error.detection_s == 0.4
            # The re-issued collective fails at launch: zero extra
            # simulated stall after the abort.
            assert refail_stall == 0.0


# ----------------------------------------------------------------------
# Collective desync detection
# ----------------------------------------------------------------------
class TestDesyncThreaded:
    def _spawn(self, schedule, **kwargs):
        def worker(rank):
            device = dist.get_device()
            group = dist.default_group()
            x = repro.tensor(np.ones(8, dtype=np.float32) * (rank + 1), device=device)
            try:
                for _ in range(3):
                    group.all_reduce(x).wait()
                device.synchronize()
                return None
            except CollectiveDesyncError as error:
                return error

        return dist.spawn(
            worker, WORLD, fault_schedule=schedule, desync_check=True, **kwargs
        )

    def test_injected_desync_names_exactly_the_divergent_rank(self):
        recorder = FlightRecorder()
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.DESYNC, rank=1, collective_index=1)]
        )
        results = self._spawn(schedule, flight_recorder=recorder)
        # The pre-launch signature check is collective: every rank sees
        # the same verdict and raises the same typed error.
        assert all(isinstance(r, CollectiveDesyncError) for r in results)
        for error in results:
            assert error.divergent_ranks == (1,)
            assert error.kind == "all_reduce"
            assert error.seq == 1
            assert error.expected != error.actual
            assert error.expected[0] == "all_reduce"
            assert error.flight_dump is not None
            assert "diverged" in str(error)

    def test_clean_run_raises_nothing(self):
        assert self._spawn(None) == [None] * WORLD

    def test_without_checker_only_the_faulty_rank_raises(self):
        # desync_check off: no cross-rank comparison, so the fault only
        # surfaces locally on the rank it was injected into — the other
        # ranks stall until the watchdog fires, which is exactly why the
        # checker exists.
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.DESYNC, rank=2, collective_index=0)]
        )

        def worker(rank):
            group = dist.default_group()
            x = repro.tensor(np.ones(4, dtype=np.float32), device=dist.get_device())
            try:
                group.all_reduce(x).wait()
                dist.get_device().synchronize()
                return None
            except (CollectiveDesyncError, CollectiveTimeoutError, RankFailureError) as error:
                return error

        results = dist.spawn(
            worker, WORLD, fault_schedule=schedule, collective_timeout=0.3
        )
        assert isinstance(results[2], CollectiveDesyncError)
        for rank in (0, 1, 3):
            assert not isinstance(results[rank], CollectiveDesyncError)
            assert isinstance(
                results[rank], (CollectiveTimeoutError, RankFailureError)
            )


class TestDesyncSymmetric:
    def teardown_method(self):
        dist.shutdown()

    def test_injected_desync_raises_typed_error(self):
        dist.shutdown()
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.DESYNC, rank=0, collective_index=0)]
        )
        recorder = FlightRecorder()
        ctx = dist.init_single_process(
            WORLD,
            materialize=False,
            fault_schedule=schedule,
            flight_recorder=recorder,
        )
        group = dist.default_group()
        shard = repro.empty(1024, device=ctx.device)
        out = repro.empty(WORLD * 1024, device=ctx.device)
        with pytest.raises(CollectiveDesyncError) as exc_info:
            group.all_gather_into_tensor(out, shard)
        error = exc_info.value
        assert error.divergent_ranks == (0,)
        assert error.expected != error.actual
        assert error.flight_dump is not None

    def test_clean_run_raises_nothing(self):
        dist.shutdown()
        ctx = dist.init_single_process(WORLD, materialize=False)
        group = dist.default_group()
        shard = repro.empty(1024, device=ctx.device)
        out = repro.empty(WORLD * 1024, device=ctx.device)
        group.all_gather_into_tensor(out, shard).wait()


# ----------------------------------------------------------------------
# Satellite: rendezvous timeout diagnostics
# ----------------------------------------------------------------------
class TestRendezvousDiagnostics:
    def test_exchange_timeout_carries_member_and_generation(self):
        rdv = Rendezvous(2, timeout=0.05)
        with pytest.raises(RendezvousTimeoutError) as exc_info:
            rdv.exchange(0, "payload", lambda payloads: payloads)
        error = exc_info.value
        assert error.member_rank == 0
        assert error.timeout == 0.05
        assert error.generation == 0
        assert "generation 0" in str(error)

    def test_collective_timeout_chains_the_rendezvous_diagnostics(self):
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.HANG, rank=1, collective_index=1)]
        )

        def worker(rank):
            group = dist.default_group()
            x = repro.tensor(np.ones(4, dtype=np.float32), device=dist.get_device())
            try:
                for _ in range(2):
                    group.all_reduce(x).wait()
                return None
            except CollectiveTimeoutError as error:
                return error

        results = dist.spawn(
            worker,
            WORLD,
            fault_schedule=schedule,
            collective_timeout=0.3,
            coordinated_abort=False,
        )
        for rank, error in enumerate(results):
            assert isinstance(error, CollectiveTimeoutError)
            if rank == 1:
                continue  # the hung rank's watchdog fires pre-rendezvous
            cause = error.__cause__
            assert isinstance(cause, RendezvousTimeoutError)
            assert cause.member_rank == rank
            assert cause.timeout == 0.3
            assert cause.generation >= 0


# ----------------------------------------------------------------------
# Checkpoint-free peer healing (elastic, threaded)
# ----------------------------------------------------------------------
def build_model():
    return nn.Sequential(nn.Linear(D, 2 * D), nn.GELU(), nn.Linear(2 * D, D))


def make_loss(model, rank, iteration):
    rng = np.random.default_rng(1000 + 17 * iteration + rank)
    x = tensor(rng.standard_normal((4, D)).astype(np.float32))
    out = model(x)
    return (out * out).mean()


def hybrid_wrap(model):
    return FSDP(
        model,
        auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
        sharding_strategy=ShardingStrategy.HYBRID_SHARD,
        sharding_factor=2,
    )


def run_elastic(schedule=None, *, recovery="restore", wrap=hybrid_wrap, **kwargs):
    repro.manual_seed(1234)
    return train_elastic(
        build_model=build_model,
        make_loss=make_loss,
        world_size=WORLD,
        iterations=6,
        faults=schedule,
        wrap=wrap,
        checkpoint_every=2,
        collective_timeout=0.5,
        recovery=recovery,
        **kwargs,
    )


class TestPeerHealing:
    @pytest.fixture(scope="class")
    def baseline(self):
        return run_elastic()

    def test_crash_heals_from_replicate_peer_bitwise(self, baseline):
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.CRASH, rank=1, iteration=3)]
        )
        healed = run_elastic(schedule, recovery="heal")
        assert healed.restarts == 1
        assert healed.healed_ranks == [(1,)]
        assert healed.heal_fallbacks == 0
        # Survivors keep live state: no completed iteration is replayed.
        assert healed.recovered_iterations == 0
        assert healed.replay_s == 0.0
        assert healed.heal_s > 0.0
        assert healed.restore_s == 0.0
        # Peer restore reproduces the fault-free trajectory bitwise.
        assert healed.losses == baseline.losses
        assert healed.recovery == "heal"

    def test_hang_heals_via_coordinated_abort(self, baseline):
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.HANG, rank=2, collective_index=10)]
        )
        healed = run_elastic(schedule, recovery="heal")
        assert healed.restarts == 1
        assert healed.healed_ranks == [(2,)]
        assert healed.losses == baseline.losses
        # The abort's watchdog interval is the detection latency.
        assert healed.detection_s == 0.5
        assert isinstance(healed.failures[0], (RankFailureError, CollectiveTimeoutError))

    def test_heal_is_cheaper_than_restore_at_the_same_schedule(self, baseline):
        crash = [FaultEvent(kind=FaultKind.CRASH, rank=1, iteration=3)]
        healed = run_elastic(FaultSchedule(list(crash)), recovery="heal")
        restored = run_elastic(FaultSchedule(list(crash)), recovery="restore")
        assert healed.losses == restored.losses == baseline.losses
        assert healed.recovery_overhead_s < restored.recovery_overhead_s
        assert healed.detection_s == restored.detection_s == DEFAULT_HEALTH_PROBE_S

    def test_full_shard_heal_falls_back_to_checkpoint_restore(self):
        fs_baseline = run_elastic(wrap=None)
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.CRASH, rank=1, iteration=3)]
        )
        result = run_elastic(schedule, recovery="heal", wrap=None)
        # FULL_SHARD: every shard map is unique, no donor exists.
        assert result.restarts == 1
        assert result.healed_ranks == []
        assert result.heal_fallbacks == 1
        assert result.restore_s > 0.0
        assert result.losses == fs_baseline.losses

    def test_serial_loss_of_both_replicate_peers_still_heals(self, baseline):
        # Ranks 1 and 3 hold the same shards (F=2: shard groups {0,1}
        # and {2,3}, so replicate peers are {1,3}).  Crashing both —
        # which the injector surfaces as two sequential restarts —
        # still heals both times: after rank 1 adopts rank 3's shards,
        # the replica set is whole again, so rank 3's later crash finds
        # rank 1 as its donor.
        schedule = FaultSchedule([
            FaultEvent(kind=FaultKind.CRASH, rank=1, iteration=3),
            FaultEvent(kind=FaultKind.CRASH, rank=3, iteration=3),
        ])
        result = run_elastic(schedule, recovery="heal")
        assert result.restarts == 2
        assert result.healed_ranks == [(1,), (3,)]
        assert result.heal_fallbacks == 0
        assert result.losses == baseline.losses

    def test_simultaneous_loss_of_a_replicate_set_has_no_plan(self):
        # When both holders of a shard die at once there is no donor:
        # plan() refuses and the controller falls back to the
        # checkpoint store.
        from repro.resilience import HealContext

        ctx = HealContext()
        for rank, shard in ((0, 0), (1, 1), (2, 0), (3, 1)):
            ctx.deposit(rank, 3, {"model": {}, "shard_index": {"unit": shard}})
        ctx.invalidate((1, 3))
        assert ctx.plan((1, 3), WORLD) is None
        # Losing one holder of each shard, by contrast, is healable.
        ctx.clear()
        for rank, shard in ((0, 0), (1, 1), (2, 0), (3, 1)):
            ctx.deposit(rank, 3, {"model": {}, "shard_index": {"unit": shard}})
        ctx.invalidate((1, 2))
        plan = ctx.plan((1, 2), WORLD)
        assert plan is not None
        assert plan.tag == 3
        assert plan.sources == {1: 3, 2: 0}


# ----------------------------------------------------------------------
# Heal in the symmetric performance simulator
# ----------------------------------------------------------------------
class TestSymmetricHeal:
    def _config(self, **overrides):
        import dataclasses

        from repro.perf import SimConfig

        def make_loss_sym(model, device):
            x = repro.empty(8, D, device=device)
            return model(x).sum()

        base = SimConfig(
            name="heal-sym",
            build_model=build_model,
            make_loss=make_loss_sym,
            batch_size=8,
            world_size=4,
            auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            sharding_strategy=ShardingStrategy.HYBRID_SHARD,
            sharding_factor=2,
            iterations=2,
            warmup=1,
            elastic=True,
        )
        return dataclasses.replace(base, **overrides)

    def _crash(self):
        return FaultSchedule([FaultEvent(kind=FaultKind.CRASH, rank=0, iteration=1)])

    def test_heal_reports_split_timings_and_beats_restore(self):
        from repro.perf import simulate_training

        healed = simulate_training(self._config(faults=self._crash(), recovery="heal"))
        restored = simulate_training(self._config(faults=self._crash()))
        assert healed.recoveries == restored.recoveries == 1
        assert healed.healed_ranks == 1
        assert healed.heal_fallbacks == 0
        assert healed.heal_s > 0.0
        assert healed.checkpoint_load_s == 0.0
        assert restored.healed_ranks == 0
        assert restored.checkpoint_load_s > 0.0
        # Detection latency is split out of the overhead, equal in both
        # modes (same fault, same probe).
        assert healed.detection_s == restored.detection_s == DEFAULT_HEALTH_PROBE_S
        assert healed.recovery_overhead_s < restored.recovery_overhead_s

    def test_heal_requires_hybrid_sharding(self):
        from repro.perf import simulate_training

        result = simulate_training(
            self._config(
                faults=self._crash(),
                recovery="heal",
                sharding_strategy=ShardingStrategy.FULL_SHARD,
                sharding_factor=None,
            )
        )
        assert result.recoveries == 1
        assert result.healed_ranks == 0
        assert result.heal_fallbacks == 1
        assert result.checkpoint_load_s > 0.0
