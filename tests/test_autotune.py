"""repro.autotune: traces, memory estimator, latency predictor, planner."""

from __future__ import annotations

import pytest

import repro.autotune as at
from repro.fsdp.runtime import BackwardPrefetch
from repro.fsdp.sharding import ShardingStrategy
from repro.fsdp.wrap import ModuleWrapPolicy, describe_wrap_plan, size_based_auto_wrap_policy
from repro.models.mingpt import GptConfig
from repro.models.t5 import T5_TINY
from repro.models.transformer import TransformerBlock
from repro.perf.trainer import simulate_training

# The calibration workload: large enough that allocator segment
# granularity (2 MiB / 20 MiB) is small relative to real usage, small
# enough to simulate in well under a second.
CALIB_GPT = GptConfig(vocab_size=2048, block_size=128, n_layer=12, n_head=8, n_embd=512)


def calib_workload():
    return at.gpt_workload(CALIB_GPT, batch_size=4, seq_len=128, world_size=8)


# ----------------------------------------------------------------------
# Symbolic traces
# ----------------------------------------------------------------------
class TestTrace:
    def test_mingpt_trace_covers_all_blocks(self):
        trace = at.trace_mingpt(CALIB_GPT, batch=4, seq=128)
        assert len(trace.blocks) == CALIB_GPT.n_layer
        paths = {r.path for r in trace.records}
        assert "blocks.0" in paths and f"blocks.{CALIB_GPT.n_layer - 1}" in paths
        assert trace.total_matmul_flops() > 0

    def test_trace_flops_match_6nt_rule(self):
        # Forward matmul FLOPs should be within ~25% of the 2·N·T
        # estimate (attention maps add the overage).
        trace = at.trace_mingpt(CALIB_GPT, batch=4, seq=128)
        rule = 2.0 * CALIB_GPT.approx_params * 4 * 128
        assert rule * 0.75 <= trace.total_matmul_flops() <= rule * 1.5

    def test_checkpointing_reduces_saved_elems(self):
        trace = at.trace_mingpt(CALIB_GPT, batch=4, seq=128)
        assert trace.saved_elems(True) < trace.saved_elems(False)
        # Boundaries survive: one n_embd-wide tensor per block at least.
        assert trace.saved_elems(True) >= CALIB_GPT.n_layer * 4 * 128 * CALIB_GPT.n_embd

    def test_unsaved_records_excluded(self):
        trace = at.trace_mingpt(CALIB_GPT, batch=2, seq=32)
        total = sum(r.elems for r in trace.records)
        assert trace.saved_elems(False) < total  # score chain is freed

    def test_per_unit_attribution_is_total(self):
        trace = at.trace_t5(T5_TINY, batch=2, src_len=16)
        unit_paths = [""] + [f"encoder.{i}" for i in range(T5_TINY.num_layers)]
        totals = trace.per_unit(unit_paths)
        assert sum(t.matmul_flops for t in totals.values()) == pytest.approx(
            trace.total_matmul_flops()
        )
        assert totals["encoder.0"].matmul_flops > 0


# ----------------------------------------------------------------------
# Memory estimator (acceptance: <25% error on >=3 wrap points)
# ----------------------------------------------------------------------
class TestMemoryEstimator:
    def test_resolve_sharding_factor(self):
        S = ShardingStrategy
        assert at.resolve_sharding_factor(S.FULL_SHARD, None, 16) == 16
        assert at.resolve_sharding_factor(S.FULL_SHARD, 4, 16) == 16  # ignored
        assert at.resolve_sharding_factor(S.NO_SHARD, None, 16) == 1
        assert at.resolve_sharding_factor(S.HYBRID_SHARD, None, 16, gpus_per_host=8) == 8
        assert at.resolve_sharding_factor(S.HYBRID_SHARD, 4, 16) == 4

    @pytest.mark.parametrize("wrap_index", [0, 1, 3])
    def test_peak_memory_within_25_percent(self, wrap_index):
        """The static estimate tracks the allocator's reserved peak.

        Three wrap-granularity points of one workload: whole-model,
        per-TransformerBlock, and fine-grained size-based.
        """
        wl = calib_workload()
        choice = wl.wrap_choices[wrap_index]
        plan = at.evaluate_candidate(wl, at.Candidate(wrap=choice))
        config = wl.sim_config(checkpointing=False)
        config.plan = plan
        result = simulate_training(config)
        predicted = plan.predicted_peak_bytes
        actual = result.peak_reserved_gib * (1 << 30)
        assert actual > 0
        rel_err = abs(predicted - actual) / actual
        assert rel_err < 0.25, (
            f"{choice.label}: predicted {predicted / (1 << 20):.1f} MiB, "
            f"simulated {actual / (1 << 20):.1f} MiB, error {rel_err:.0%}"
        )

    def test_sharding_reduces_predicted_memory(self):
        wl = calib_workload()
        units = wl.wrap_plan(wl.wrap_choices[1])
        kwargs = dict(world_size=8, checkpointing=False)
        full = at.estimate_peak_memory(
            units, wl.trace, strategy=ShardingStrategy.FULL_SHARD, **kwargs
        )
        zero2 = at.estimate_peak_memory(
            units, wl.trace, strategy=ShardingStrategy.SHARD_GRAD_OP, **kwargs
        )
        no_shard = at.estimate_peak_memory(
            units, wl.trace, strategy=ShardingStrategy.NO_SHARD, **kwargs
        )
        # ZERO2 keeps every unit unsharded through backward: more
        # inflight parameter memory than FULL_SHARD.
        assert zero2.unsharded_param_bytes > full.unsharded_param_bytes
        # NO_SHARD holds full parameters, gradients and optimizer state.
        assert no_shard.total_bytes > full.total_bytes

    def test_checkpointing_reduces_activation_bytes(self):
        wl = calib_workload()
        units = wl.wrap_plan(wl.wrap_choices[1])
        base = at.estimate_peak_memory(units, wl.trace, world_size=8, checkpointing=False)
        ckpt = at.estimate_peak_memory(units, wl.trace, world_size=8, checkpointing=True)
        assert ckpt.activation_bytes < base.activation_bytes

    def test_rate_limiter_bounds_inflight(self):
        wl = calib_workload()
        units = wl.wrap_plan(wl.wrap_choices[1])
        limited = at.estimate_peak_memory(
            units, wl.trace, world_size=8, limit_all_gathers=True, rate_limit_inflight=2
        )
        unlimited = at.estimate_peak_memory(
            units, wl.trace, world_size=8, limit_all_gathers=False
        )
        assert limited.unsharded_param_bytes < unlimited.unsharded_param_bytes


# ----------------------------------------------------------------------
# Latency predictor
# ----------------------------------------------------------------------
class TestLatencyPredictor:
    def test_latency_within_tolerance_of_simulator(self):
        wl = calib_workload()
        plan = at.evaluate_candidate(wl, at.Candidate(wrap=wl.wrap_choices[1]))
        config = wl.sim_config(checkpointing=False)
        config.plan = plan
        result = simulate_training(config)
        rel_err = abs(plan.predicted_latency_s - result.iteration_latency) / result.iteration_latency
        assert rel_err < 0.35, (
            f"predicted {plan.predicted_latency_s * 1e3:.2f} ms, "
            f"simulated {result.iteration_latency * 1e3:.2f} ms"
        )

    def test_backward_prefetch_helps_prediction(self):
        wl = calib_workload()
        pre = at.evaluate_candidate(
            wl,
            at.Candidate(
                wrap=wl.wrap_choices[1], backward_prefetch=BackwardPrefetch.BACKWARD_PRE
            ),
        )
        none = at.evaluate_candidate(
            wl,
            at.Candidate(wrap=wl.wrap_choices[1], backward_prefetch=BackwardPrefetch.NONE),
        )
        assert pre.predicted_latency_s <= none.predicted_latency_s * 1.001

    def test_no_shard_predicts_no_allgather(self):
        wl = calib_workload()
        units = wl.wrap_plan(wl.wrap_choices[1])
        work = at.build_unit_work(
            units,
            wl.trace,
            topology=wl.topology,
            world_size=8,
            strategy=ShardingStrategy.NO_SHARD,
        )
        assert all(u.ag_s == 0.0 for u in work)
        assert all(u.ar_s > 0.0 for u in work)  # gradient all-reduce instead


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class TestPlanner:
    def test_plan_respects_memory_budget(self):
        wl = calib_workload()
        space = at.SearchSpace(
            wrap_choices=wl.wrap_choices[:2],
            strategies=[(ShardingStrategy.FULL_SHARD, None)],
            forward_prefetch=[False],
            rate_limits=[2],
            checkpointing=[False],
        )
        budget = 600 << 20  # prunes whole-model (~750 MiB), keeps per-block
        result = at.plan_sharding(wl, memory_budget=budget, space=space, top_k=1)
        assert result.pruned and result.best is not None
        assert result.best.predicted_peak_bytes <= budget
        assert all(p.predicted_peak_bytes > budget for p in result.pruned)

    def test_validated_plan_carries_simulation(self):
        wl = calib_workload()
        space = at.SearchSpace(
            wrap_choices=wl.wrap_choices[:2],
            strategies=[(ShardingStrategy.FULL_SHARD, None)],
            backward_prefetch=[BackwardPrefetch.BACKWARD_PRE],
            forward_prefetch=[False],
            rate_limits=[2],
            checkpointing=[False],
        )
        result = at.plan_sharding(wl, space=space, top_k=2)
        assert result.best is not None and result.best.simulated is not None
        assert result.best.simulated.iteration_latency > 0
        assert not result.best.simulated.oom
        summary = result.summary()
        assert "best:" in summary and "simulated" in summary

    def test_plan_applies_to_sim_config(self):
        wl = calib_workload()
        candidate = at.Candidate(
            wrap=wl.wrap_choices[1],
            strategy=ShardingStrategy.SHARD_GRAD_OP,
            rate_limit_inflight=4,
            checkpointing=True,
        )
        plan = at.evaluate_candidate(wl, candidate)
        config = plan.apply(wl.sim_config())
        assert config.sharding_strategy is ShardingStrategy.SHARD_GRAD_OP
        assert config.rate_limit_inflight == 4
        assert config.plan is None
        kwargs = plan.fsdp_kwargs()
        assert kwargs["sharding_strategy"] is ShardingStrategy.SHARD_GRAD_OP
        assert kwargs["auto_wrap_policy"] is wl.wrap_choices[1].policy

    def test_search_space_enumeration(self):
        space = at.SearchSpace(
            wrap_choices=[at.WrapChoice.of(None)],
            strategies=[
                (ShardingStrategy.FULL_SHARD, None),
                (ShardingStrategy.HYBRID_SHARD, 8),
            ],
            backward_prefetch=[BackwardPrefetch.BACKWARD_PRE],
            forward_prefetch=[False, True],
            rate_limits=[2, None],
            checkpointing=[False],
        )
        candidates = list(space.candidates())
        assert len(candidates) == len(space) == 2 * 2 * 2
        hybrid = [c for c in candidates if c.strategy is ShardingStrategy.HYBRID_SHARD]
        assert all(c.sharding_factor == 8 for c in hybrid)


# ----------------------------------------------------------------------
# Wrap-plan introspection used by the planner
# ----------------------------------------------------------------------
class TestDescribeWrapPlan:
    def test_module_wrap_matches_blocks(self):
        wl = calib_workload()
        model = wl.deferred_model()
        plan = describe_wrap_plan(model, ModuleWrapPolicy((TransformerBlock,)))
        assert len(plan) == CALIB_GPT.n_layer + 1  # root residual + blocks
        assert plan[0].path == ""
        total = sum(u.numel for u in plan)
        flat = describe_wrap_plan(model, None)
        assert len(flat) == 1 and flat[0].numel == total

    def test_size_based_skips_module_list_containers(self):
        """Regression: size-based must never wrap a bare ModuleList.

        A ModuleList is not callable; wrapping it would break
        ``for block in self.blocks`` iteration at runtime.  The policy
        still descends into the list, so its oversized children wrap.
        """
        wl = calib_workload()
        model = wl.deferred_model()
        threshold = 1_000_000  # each block ~3.2M params, list ~38M
        plan = describe_wrap_plan(model, size_based_auto_wrap_policy(threshold))
        assert all(u.path != "blocks" for u in plan)
        assert any(u.path.startswith("blocks.") for u in plan)
        config = wl.sim_config(checkpointing=False)
        config.auto_wrap_policy = size_based_auto_wrap_policy(threshold)
        result = simulate_training(config)  # iterates model.blocks
        assert result.iteration_latency > 0

    def test_size_based_counts_only_unassigned_params(self):
        """Regression: nested wrapped blocks must not inflate parents.

        With per-block units already assigned, the root's residual
        (embeddings + head) is far below the whole-model total; a
        buggy policy that re-counts nested parameters would wrap every
        ancestor of every block.
        """
        wl = calib_workload()
        model = wl.deferred_model()
        per_block = describe_wrap_plan(model, ModuleWrapPolicy((TransformerBlock,)))
        block_numel = sum(u.numel for u in per_block[1:])
        threshold = block_numel  # > any single block, > root residual
        plan = describe_wrap_plan(model, size_based_auto_wrap_policy(threshold))
        # Nothing exceeds the threshold once children are excluded:
        # a single flat unit results, not one unit per tree level.
        assert len(plan) == 1
