"""LR scheduler tests."""

import math

import pytest

import repro
from repro import nn
from repro.optim import (
    SGD,
    CosineAnnealingLR,
    LinearWarmup,
    StepLR,
)


def make_opt(lr=1.0):
    return SGD(nn.Linear(2, 2).parameters(), lr=lr)


class TestStepLR:
    def test_decay_schedule(self):
        opt = make_opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.param_groups[0]["lr"])
        assert lrs == [1.0, 0.1, 0.1, pytest.approx(0.01), pytest.approx(0.01)]

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_size=0)


class TestCosine:
    def test_endpoints(self):
        opt = make_opt()
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        for _ in range(10):
            sched.step()
        assert opt.param_groups[0]["lr"] == pytest.approx(0.1)

    def test_midpoint(self):
        opt = make_opt()
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(5):
            sched.step()
        assert opt.param_groups[0]["lr"] == pytest.approx(0.5)

    def test_clamps_after_t_max(self):
        opt = make_opt()
        sched = CosineAnnealingLR(opt, t_max=4)
        for _ in range(10):
            sched.step()
        assert opt.param_groups[0]["lr"] == pytest.approx(0.0, abs=1e-9)


class TestWarmup:
    def test_linear_ramp(self):
        opt = make_opt()
        sched = LinearWarmup(opt, warmup_steps=4)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.param_groups[0]["lr"])
        assert lrs == [0.25, 0.5, 0.75, 1.0, 1.0]

    def test_start_factor(self):
        opt = make_opt()
        sched = LinearWarmup(opt, warmup_steps=2, start_factor=0.5)
        sched.step()
        assert opt.param_groups[0]["lr"] == pytest.approx(0.75)

    def test_multiple_groups(self):
        p1 = nn.Linear(2, 2)
        p2 = nn.Linear(2, 2)
        opt = SGD(
            [{"params": list(p1.parameters()), "lr": 1.0},
             {"params": list(p2.parameters()), "lr": 2.0}],
            lr=1.0,
        )
        sched = StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        assert [g["lr"] for g in opt.param_groups] == [0.5, 1.0]
