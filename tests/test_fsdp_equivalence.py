"""FSDP vs local-training equivalence (the §5.2 correctness claim).

Every test builds a reference model locally, copies its weights into
per-rank replicas, trains with FSDP on sharded batches, and asserts
exact (FP32) gradient/parameter agreement with full-batch local
training.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro import distributed as dist, nn
from repro.autograd import no_grad
from repro.ddp import DistributedDataParallel as DDP
from repro.fsdp import (
    BF16_MIXED,
    BackwardPrefetch,
    FullyShardedDataParallel as FSDP,
    ModuleWrapPolicy,
    ShardingStrategy,
    fully_shard,
    size_based_auto_wrap_policy,
)
from repro.optim import SGD, Adam
from tests.conftest import copy_weights, grads_of, snapshot_weights, unflatten_handle_grads

WORLD = 4
BATCH = 8
D_IN, D_H, D_OUT = 6, 12, 3


def build_model():
    return nn.Sequential(
        nn.Linear(D_IN, D_H),
        nn.GELU(),
        nn.Linear(D_H, D_H),
        nn.Tanh(),
        nn.Linear(D_H, D_OUT),
    )


def make_data():
    repro.manual_seed(99)
    xs = repro.randn(BATCH, D_IN).numpy()
    ys = repro.randn(BATCH, D_OUT).numpy()
    return xs, ys


def local_reference(xs, ys, steps=1, optimizer=None, lr=0.1):
    repro.manual_seed(7)
    model = build_model()
    opt = None
    if optimizer == "sgd":
        opt = SGD(model.parameters(), lr=lr)
    elif optimizer == "adam":
        opt = Adam(model.parameters(), lr=lr)
    state0 = snapshot_weights(model)
    for _ in range(steps):
        model.zero_grad()
        out = model(repro.tensor(xs))
        loss = nn.functional.mse_loss(out, repro.tensor(ys))
        loss.backward()
        if opt:
            opt.step()
    return model, state0


def assert_fsdp_grads_match(local_model, rank_results):
    local = grads_of(local_model)
    for grads in rank_results:
        matched = 0
        for key, g in grads.items():
            hit = any(
                lg.shape == g.shape and np.allclose(lg, g, atol=1e-5)
                for lg in local.values()
            )
            assert hit, f"gradient {key} does not match any local gradient"
            matched += 1
        assert matched == len(local)


def shard_batch(xs, ys, rank, world=WORLD):
    n = len(xs) // world
    return xs[rank * n : (rank + 1) * n], ys[rank * n : (rank + 1) * n]


def fsdp_worker_factory(state0, xs, ys, **fsdp_kwargs):
    def worker(rank):
        model = build_model()
        copy_weights(model, state0)
        wrapped = FSDP(model, device=dist.get_device(), **fsdp_kwargs)
        x, y = shard_batch(xs, ys, rank)
        out = wrapped(repro.tensor(x, device=dist.get_device()))
        loss = nn.functional.mse_loss(out, repro.tensor(y, device=dist.get_device()))
        loss.backward()
        return unflatten_handle_grads(wrapped)

    return worker


class TestGradEquivalence:
    @pytest.mark.parametrize(
        "strategy",
        [
            ShardingStrategy.FULL_SHARD,
            ShardingStrategy.SHARD_GRAD_OP,
            ShardingStrategy.NO_SHARD,
        ],
    )
    def test_strategies_match_local(self, strategy):
        xs, ys = make_data()
        local_model, state0 = local_reference(xs, ys)
        results = dist.spawn(
            fsdp_worker_factory(
                state0,
                xs,
                ys,
                sharding_strategy=strategy,
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            ),
            WORLD,
        )
        assert_fsdp_grads_match(local_model, results)

    @pytest.mark.parametrize(
        "strategy",
        [ShardingStrategy.HYBRID_SHARD, ShardingStrategy.HYBRID_SHARD_ZERO2],
    )
    def test_hybrid_matches_local(self, strategy):
        xs, ys = make_data()
        local_model, state0 = local_reference(xs, ys)
        results = dist.spawn(
            fsdp_worker_factory(
                state0,
                xs,
                ys,
                sharding_strategy=strategy,
                sharding_factor=2,
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            ),
            WORLD,
        )
        assert_fsdp_grads_match(local_model, results)

    def test_no_auto_wrap_single_unit(self):
        xs, ys = make_data()
        local_model, state0 = local_reference(xs, ys)
        results = dist.spawn(fsdp_worker_factory(state0, xs, ys), WORLD)
        assert_fsdp_grads_match(local_model, results)

    def test_size_based_policy(self):
        xs, ys = make_data()
        local_model, state0 = local_reference(xs, ys)
        results = dist.spawn(
            fsdp_worker_factory(
                state0, xs, ys, auto_wrap_policy=size_based_auto_wrap_policy(50)
            ),
            WORLD,
        )
        assert_fsdp_grads_match(local_model, results)

    def test_prefetch_variants_do_not_change_numerics(self):
        xs, ys = make_data()
        local_model, state0 = local_reference(xs, ys)
        results = dist.spawn(
            fsdp_worker_factory(
                state0,
                xs,
                ys,
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
                backward_prefetch=BackwardPrefetch.NONE,
                forward_prefetch=True,
                limit_all_gathers=False,
            ),
            WORLD,
        )
        assert_fsdp_grads_match(local_model, results)

    def test_fully_shard_annotator_matches_local(self):
        xs, ys = make_data()
        local_model, state0 = local_reference(xs, ys)

        def worker(rank):
            model = build_model()
            copy_weights(model, state0)
            device = dist.get_device()
            for child in list(model.children()):
                if isinstance(child, nn.Linear):
                    fully_shard(child, device=device)
            fully_shard(model, device=device)
            x, y = shard_batch(xs, ys, rank)
            out = model(repro.tensor(x, device=device))
            loss = nn.functional.mse_loss(out, repro.tensor(y, device=device))
            loss.backward()
            grads = {}
            from repro.fsdp.api import _units_under

            for hi, unit in enumerate(u for u in _units_under(model) if u.handle):
                handle = unit.handle
                g = handle.flat_param.grad
                full = repro.empty(handle.padded_numel, device=device)
                handle.shard_group.all_gather_into_tensor(full, g).wait()
                flat = full.numpy()
                for info in handle.param_infos:
                    grads[(hi, info.offset)] = flat[
                        info.offset : info.offset + info.numel
                    ].reshape(info.shape)
            return grads

        results = dist.spawn(worker, WORLD)
        assert_fsdp_grads_match(local_model, results)


class TestTrainingParity:
    @pytest.mark.parametrize("optimizer", ["sgd", "adam"])
    def test_multi_step_training_matches_local(self, optimizer):
        xs, ys = make_data()
        steps = 3
        local_model, state0 = local_reference(xs, ys, steps=steps, optimizer=optimizer, lr=0.05)
        local_final = snapshot_weights(local_model)

        def worker(rank):
            model = build_model()
            copy_weights(model, state0)
            device = dist.get_device()
            wrapped = FSDP(
                model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
            )
            params = list(wrapped.parameters())
            opt = SGD(params, lr=0.05) if optimizer == "sgd" else Adam(params, lr=0.05)
            x, y = shard_batch(xs, ys, rank)
            for _ in range(steps):
                opt.zero_grad()
                out = wrapped(repro.tensor(x, device=device))
                loss = nn.functional.mse_loss(out, repro.tensor(y, device=device))
                loss.backward()
                opt.step()
            from repro.fsdp.state_dict import full_state_dict

            return {k: v.numpy() for k, v in full_state_dict(wrapped).items()}

        for final in dist.spawn(worker, WORLD):
            for name, value in local_final.items():
                np.testing.assert_allclose(
                    final[name], value, atol=1e-4, err_msg=f"param {name} diverged"
                )

    def test_optimizer_only_sees_sharded_memory(self):
        """Adam state is 2x the *shard*, not 2x the model (ZeRO claim)."""
        xs, ys = make_data()
        _, state0 = local_reference(xs, ys)

        def worker(rank):
            model = build_model()
            copy_weights(model, state0)
            device = dist.get_device()
            wrapped = FSDP(
                model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
            )
            opt = Adam(wrapped.parameters(), lr=0.1)
            x, y = shard_batch(xs, ys, rank)
            out = wrapped(repro.tensor(x, device=device))
            nn.functional.mse_loss(out, repro.tensor(y, device=device)).backward()
            opt.step()
            sharded_numel = sum(h.shard_numel for h in wrapped.flat_handles)
            return opt.state_bytes(), sharded_numel * 4 * 2

        for state_bytes, expected in dist.spawn(worker, WORLD):
            assert state_bytes == expected


class TestGradAccumulation:
    def test_accumulation_with_communication(self):
        """Two backwards without zero_grad == gradients of summed losses."""
        xs, ys = make_data()
        repro.manual_seed(7)
        local_model = build_model()
        state0 = snapshot_weights(local_model)
        out = local_model(repro.tensor(xs))
        nn.functional.mse_loss(out, repro.tensor(ys)).backward()
        out = local_model(repro.tensor(xs))
        nn.functional.mse_loss(out, repro.tensor(ys)).backward()
        local = grads_of(local_model)

        def worker(rank):
            model = build_model()
            copy_weights(model, state0)
            device = dist.get_device()
            wrapped = FSDP(
                model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
            )
            x, y = shard_batch(xs, ys, rank)
            for _ in range(2):
                out = wrapped(repro.tensor(x, device=device))
                nn.functional.mse_loss(out, repro.tensor(y, device=device)).backward()
            return unflatten_handle_grads(wrapped)

        for grads in dist.spawn(worker, WORLD):
            for key, g in grads.items():
                assert any(
                    lg.shape == g.shape and np.allclose(lg, g, atol=1e-5)
                    for lg in local.values()
                ), f"accumulated gradient {key} mismatch"

    def test_no_sync_accumulation(self):
        """no_sync + final sync backward equals two-pass accumulation."""
        xs, ys = make_data()
        repro.manual_seed(7)
        local_model = build_model()
        state0 = snapshot_weights(local_model)
        for _ in range(2):
            out = local_model(repro.tensor(xs))
            nn.functional.mse_loss(out, repro.tensor(ys)).backward()
        local = grads_of(local_model)

        def worker(rank):
            model = build_model()
            copy_weights(model, state0)
            device = dist.get_device()
            wrapped = FSDP(
                model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
            )
            x, y = shard_batch(xs, ys, rank)
            with wrapped.no_sync():
                out = wrapped(repro.tensor(x, device=device))
                nn.functional.mse_loss(out, repro.tensor(y, device=device)).backward()
            out = wrapped(repro.tensor(x, device=device))
            nn.functional.mse_loss(out, repro.tensor(y, device=device)).backward()
            return unflatten_handle_grads(wrapped)

        for grads in dist.spawn(worker, WORLD):
            for key, g in grads.items():
                assert any(
                    lg.shape == g.shape and np.allclose(lg, g, atol=1e-5)
                    for lg in local.values()
                ), f"no_sync gradient {key} mismatch"


class TestClipGradNorm:
    def test_sharded_clip_matches_local(self):
        xs, ys = make_data()
        repro.manual_seed(7)
        local_model = build_model()
        state0 = snapshot_weights(local_model)
        out = local_model(repro.tensor(xs))
        nn.functional.mse_loss(out, repro.tensor(ys)).backward()
        from repro.optim import clip_grad_norm_

        max_norm = 0.01
        local_norm = clip_grad_norm_(local_model.parameters(), max_norm)
        local = grads_of(local_model)

        def worker(rank):
            model = build_model()
            copy_weights(model, state0)
            device = dist.get_device()
            wrapped = FSDP(
                model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
            )
            x, y = shard_batch(xs, ys, rank)
            out = wrapped(repro.tensor(x, device=device))
            nn.functional.mse_loss(out, repro.tensor(y, device=device)).backward()
            total = wrapped.clip_grad_norm_(max_norm)
            return total, unflatten_handle_grads(wrapped)

        for total, grads in dist.spawn(worker, WORLD):
            assert abs(total - local_norm) < 1e-4
            for key, g in grads.items():
                assert any(
                    lg.shape == g.shape and np.allclose(lg, g, atol=1e-6)
                    for lg in local.values()
                ), f"clipped gradient {key} mismatch"


class TestCheckpointInterop:
    def test_activation_checkpoint_inside_fsdp(self):
        """Checkpointed blocks recompute against re-gathered views."""
        xs, ys = make_data()
        local_model, state0 = local_reference(xs, ys)

        class CheckpointedMLP(nn.Module):
            def __init__(self):
                super().__init__()
                self.body = build_model()

            def forward(self, x):
                out = x
                for layer in self.body:
                    out = nn.checkpoint(layer, out)
                return out

        def worker(rank):
            model = CheckpointedMLP()
            copy_weights(model.body, state0)
            device = dist.get_device()
            wrapped = FSDP(
                model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
            )
            x, y = shard_batch(xs, ys, rank)
            # Reentrant checkpointing (like PyTorch's) needs an input
            # that requires grad; real stacks get this from the
            # embedding layer in front of the first checkpointed block.
            xt = repro.tensor(x, device=device).requires_grad_()
            out = wrapped(xt)
            loss = nn.functional.mse_loss(out, repro.tensor(y, device=device))
            loss.backward()
            return unflatten_handle_grads(wrapped)

        results = dist.spawn(worker, WORLD)
        assert_fsdp_grads_match(local_model, results)


class TestEvalAndInference:
    def test_eval_forward_matches_local(self):
        xs, ys = make_data()
        local_model, state0 = local_reference(xs, ys)
        with no_grad():
            expected = local_model(repro.tensor(xs)).numpy()
        # Note: local_reference ran a backward but no optimizer step, so
        # weights still equal state0.

        def worker(rank):
            model = build_model()
            copy_weights(model, state0)
            device = dist.get_device()
            wrapped = FSDP(
                model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
            )
            wrapped.eval()
            with no_grad():
                out = wrapped(repro.tensor(xs, device=device))
            # All handles must be resharded after inference.
            assert all(
                not h.is_unsharded for h in wrapped.flat_handles if h.needs_unshard
            )
            return out.numpy()

        for out in dist.spawn(worker, WORLD):
            np.testing.assert_allclose(out, expected, atol=1e-5)


# ----------------------------------------------------------------------
# Differential FSDP-vs-DDP suite (the §3.1 equivalence claim).
#
# FSDP promises the SAME numerics as DDP: reduce-scattering the averaged
# gradient over flat-parameter shards computes, element for element, the
# same value as DDP's bucketed AllReduce.  In this simulator both
# backends combine payloads in float64 and quantize once to float32, so
# where §3.1 guarantees equivalence the comparison below is BITWISE
# (exact ``==``), not allclose:
#
#   bitwise:  FP32 x {FULL_SHARD, SHARD_GRAD_OP, NO_SHARD}
#             x {sync every step, no_sync accumulation}
#
# Cases that are numerically equivalent but NOT bitwise, with the
# reason and the documented tolerance:
#
#   - accumulation WITH communication: FSDP accumulates two f32-rounded
#     reduced shards (avg(g1) + avg(g2), rounded twice); DDP's second
#     AllReduce sums avg(g1)+g2_r in float64 and rounds once.
#   - HYBRID_SHARD: two-stage reduce (reduce-scatter inside the shard
#     group, then all-reduce across replicas) rounds between stages.
#   - mixed precision: parameters/reductions quantized to bf16.
# ----------------------------------------------------------------------


def _mlp_builder(d_in, d_h, d_out, depth):
    def build():
        layers = [nn.Linear(d_in, d_h), nn.Tanh()]
        for _ in range(depth - 1):
            layers += [nn.Linear(d_h, d_h), nn.GELU()]
        layers.append(nn.Linear(d_h, d_out))
        return nn.Sequential(*layers)

    return build


def _make_parity_case(d_in, d_h, d_out, depth):
    build = _mlp_builder(d_in, d_h, d_out, depth)
    repro.manual_seed(101)
    xs = repro.randn(BATCH, d_in).numpy()
    ys = repro.randn(BATCH, d_out).numpy()
    repro.manual_seed(7)
    state0 = snapshot_weights(build())
    return build, state0, xs, ys


def _train_steps(model_like, opt, x, y, *, steps, accumulate):
    """Shared train loop: per-microbatch losses, optionally no_sync."""
    losses = []
    for _ in range(steps):
        opt.zero_grad()
        if accumulate:
            with model_like.no_sync():
                out = model_like(x)
                loss = nn.functional.mse_loss(out, y)
                loss.backward()
                losses.append(float(loss.numpy()))
        out = model_like(x)
        loss = nn.functional.mse_loss(out, y)
        loss.backward()
        losses.append(float(loss.numpy()))
        opt.step()
    return losses


def ddp_parity_worker(build, state0, xs, ys, *, steps, accumulate, lr=0.05):
    def worker(rank):
        model = build()
        copy_weights(model, state0)
        device = dist.get_device()
        ddp = DDP(model, broadcast_parameters=False)
        opt = SGD(ddp.parameters(), lr=lr)
        x, y = shard_batch(xs, ys, rank)
        x = repro.tensor(x, device=device)
        y = repro.tensor(y, device=device)
        losses = _train_steps(ddp, opt, x, y, steps=steps, accumulate=accumulate)
        return losses, snapshot_weights(model)

    return worker


def fsdp_parity_worker(build, state0, xs, ys, *, steps, accumulate, lr=0.05, **fsdp_kwargs):
    def worker(rank):
        model = build()
        copy_weights(model, state0)
        device = dist.get_device()
        wrapped = FSDP(
            model,
            device=device,
            auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            **fsdp_kwargs,
        )
        opt = SGD(wrapped.parameters(), lr=lr)
        x, y = shard_batch(xs, ys, rank)
        x = repro.tensor(x, device=device)
        y = repro.tensor(y, device=device)
        losses = _train_steps(wrapped, opt, x, y, steps=steps, accumulate=accumulate)
        from repro.fsdp.state_dict import full_state_dict

        return losses, {k: v.numpy().copy() for k, v in full_state_dict(wrapped).items()}

    return worker


class TestDifferentialVsDDP:
    """FSDP must reproduce DDP exactly where §3.1 says it does."""

    @pytest.mark.parametrize(
        "strategy",
        [
            ShardingStrategy.FULL_SHARD,
            ShardingStrategy.SHARD_GRAD_OP,
            ShardingStrategy.NO_SHARD,
        ],
    )
    @settings(deadline=None, max_examples=6)
    @given(
        d_in=st.integers(2, 8),
        d_h=st.integers(4, 12),
        d_out=st.integers(1, 4),
        depth=st.integers(1, 2),
        accumulate=st.booleans(),
    )
    def test_bitwise_parity_with_ddp(self, strategy, d_in, d_h, d_out, depth, accumulate):
        build, state0, xs, ys = _make_parity_case(d_in, d_h, d_out, depth)
        steps = 2
        ddp_results = dist.spawn(
            ddp_parity_worker(build, state0, xs, ys, steps=steps, accumulate=accumulate),
            WORLD,
        )
        fsdp_results = dist.spawn(
            fsdp_parity_worker(
                build,
                state0,
                xs,
                ys,
                steps=steps,
                accumulate=accumulate,
                sharding_strategy=strategy,
            ),
            WORLD,
        )
        for rank, ((dl, dp), (fl, fp)) in enumerate(zip(ddp_results, fsdp_results)):
            # Per-microbatch losses must be bitwise identical...
            assert dl == fl, f"rank {rank} losses diverged: {dl} vs {fl}"
            # ...and so must every final parameter.
            assert dp.keys() == fp.keys()
            for name in dp:
                assert np.array_equal(dp[name], fp[name]), (
                    f"rank {rank} param {name} not bitwise equal to DDP"
                )

    def test_accumulation_with_communication_tolerance(self):
        """Reduce-every-backward accumulation rounds twice; DDP once.

        Same math, different rounding order: agreement is to f32
        round-off (atol 1e-6 on unit-scale values), not bitwise.
        """
        build, state0, xs, ys = _make_parity_case(D_IN, D_H, D_OUT, 2)

        def ddp_worker(rank):
            model = build()
            copy_weights(model, state0)
            device = dist.get_device()
            ddp = DDP(model, broadcast_parameters=False)
            x, y = shard_batch(xs, ys, rank)
            for _ in range(2):
                out = ddp(repro.tensor(x, device=device))
                nn.functional.mse_loss(out, repro.tensor(y, device=device)).backward()
            return grads_of(model)

        def fsdp_worker(rank):
            model = build()
            copy_weights(model, state0)
            device = dist.get_device()
            wrapped = FSDP(
                model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
            )
            x, y = shard_batch(xs, ys, rank)
            for _ in range(2):
                out = wrapped(repro.tensor(x, device=device))
                nn.functional.mse_loss(out, repro.tensor(y, device=device)).backward()
            return unflatten_handle_grads(wrapped)

        ddp_results = dist.spawn(ddp_worker, WORLD)
        fsdp_results = dist.spawn(fsdp_worker, WORLD)
        ddp_grads = list(ddp_results[0].values())
        for grads in fsdp_results:
            for key, g in grads.items():
                assert any(
                    dg.shape == g.shape and np.allclose(dg, g, atol=1e-6)
                    for dg in ddp_grads
                ), f"accumulated gradient {key} outside DDP tolerance"

    def test_hybrid_shard_tolerance(self):
        """HYBRID_SHARD's two-stage reduce matches DDP to f32 round-off."""
        build, state0, xs, ys = _make_parity_case(D_IN, D_H, D_OUT, 2)
        steps = 2
        ddp_results = dist.spawn(
            ddp_parity_worker(build, state0, xs, ys, steps=steps, accumulate=False),
            WORLD,
        )
        fsdp_results = dist.spawn(
            fsdp_parity_worker(
                build,
                state0,
                xs,
                ys,
                steps=steps,
                accumulate=False,
                sharding_strategy=ShardingStrategy.HYBRID_SHARD,
                sharding_factor=2,
            ),
            WORLD,
        )
        for (dl, dp), (fl, fp) in zip(ddp_results, fsdp_results):
            np.testing.assert_allclose(dl, fl, atol=1e-6)
            for name in dp:
                np.testing.assert_allclose(
                    fp[name], dp[name], atol=1e-6, err_msg=f"param {name}"
                )

    def test_mixed_precision_tolerance(self):
        """bf16 compute/reduce tracks the FP32 DDP baseline loosely.

        bfloat16 keeps ~8 mantissa bits, so a 2-step run on unit-scale
        data agrees to ~3e-2 absolute — documented, not bitwise.
        """
        build, state0, xs, ys = _make_parity_case(D_IN, D_H, D_OUT, 2)
        steps = 2
        ddp_results = dist.spawn(
            ddp_parity_worker(build, state0, xs, ys, steps=steps, accumulate=False),
            WORLD,
        )
        fsdp_results = dist.spawn(
            fsdp_parity_worker(
                build,
                state0,
                xs,
                ys,
                steps=steps,
                accumulate=False,
                mixed_precision=BF16_MIXED,
            ),
            WORLD,
        )
        for (dl, dp), (fl, fp) in zip(ddp_results, fsdp_results):
            np.testing.assert_allclose(fl, dl, atol=3e-2, rtol=3e-2)
            for name in dp:
                np.testing.assert_allclose(
                    fp[name], dp[name], atol=3e-2, rtol=3e-2, err_msg=f"param {name}"
                )
