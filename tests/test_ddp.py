"""DistributedDataParallel baseline tests (Section 2.1)."""

import numpy as np
import pytest

import repro
from repro import distributed as dist, nn
from repro.ddp import DistributedDataParallel as DDP
from repro.optim import SGD
from tests.conftest import copy_weights, grads_of, snapshot_weights

WORLD = 4
BATCH = 8


def build():
    return nn.Sequential(nn.Linear(6, 12), nn.ReLU(), nn.Linear(12, 3))


def make_data():
    repro.manual_seed(55)
    return repro.randn(BATCH, 6).numpy(), repro.randn(BATCH, 3).numpy()


class TestGradientSync:
    def test_ddp_matches_local_full_batch(self):
        xs, ys = make_data()
        repro.manual_seed(5)
        local = build()
        state0 = snapshot_weights(local)
        out = local(repro.tensor(xs))
        nn.functional.mse_loss(out, repro.tensor(ys)).backward()
        local_grads = grads_of(local)

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            device = dist.get_device()
            ddp = DDP(model, broadcast_parameters=False)
            n = BATCH // WORLD
            x = repro.tensor(xs[rank * n : (rank + 1) * n], device=device)
            y = repro.tensor(ys[rank * n : (rank + 1) * n], device=device)
            out = ddp(x)
            nn.functional.mse_loss(out, y).backward()
            return grads_of(model)

        for grads in dist.spawn(fn, WORLD):
            for name, g in grads.items():
                np.testing.assert_allclose(
                    g, local_grads[name], atol=1e-5, err_msg=f"grad {name}"
                )

    def test_grads_identical_across_ranks(self):
        xs, ys = make_data()
        repro.manual_seed(5)
        state0 = snapshot_weights(build())

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            ddp = DDP(model, broadcast_parameters=False)
            n = BATCH // WORLD
            x = repro.tensor(xs[rank * n : (rank + 1) * n], device=dist.get_device())
            ddp(x).sum().backward()
            return grads_of(model)

        results = dist.spawn(fn, WORLD)
        for name in results[0]:
            for other in results[1:]:
                np.testing.assert_allclose(results[0][name], other[name], atol=1e-6)

    def test_broadcast_parameters_synchronizes_init(self):
        def fn(rank):
            repro.manual_seed(1000 + rank)  # deliberately different
            model = build()
            DDP(model, broadcast_parameters=True)
            return snapshot_weights(model)

        results = dist.spawn(fn, 2)
        for name in results[0]:
            np.testing.assert_array_equal(results[0][name], results[1][name])

    def test_no_sync_skips_communication(self):
        xs, _ = make_data()

        def fn(rank):
            repro.manual_seed(5)
            model = build()
            ddp = DDP(model, broadcast_parameters=False)
            group = ddp.process_group
            x = repro.tensor(
                xs[rank * 2 : rank * 2 + 2] * (rank + 1), device=dist.get_device()
            )
            with ddp.no_sync():
                ddp(x).sum().backward()
            skipped = group.collective_count
            ddp(x).sum().backward()
            synced = group.collective_count
            return skipped, synced

        for skipped, synced in dist.spawn(fn, WORLD):
            assert skipped == 0
            assert synced > 0


class TestBucketing:
    def test_bucket_count_respects_cap(self):
        def fn(rank):
            model = nn.Sequential(*[nn.Linear(64, 64) for _ in range(4)])
            fine = DDP(model, bucket_cap_bytes=64 * 64 * 4, broadcast_parameters=False)
            model2 = nn.Sequential(*[nn.Linear(64, 64) for _ in range(4)])
            coarse = DDP(model2, bucket_cap_bytes=1 << 30, broadcast_parameters=False)
            return len(fine._buckets), len(coarse._buckets)

        for fine_count, coarse_count in dist.spawn(fn, 2):
            assert fine_count > coarse_count
            assert coarse_count == 1

    def test_bucket_order_reversed(self):
        def fn(rank):
            model = nn.Sequential(nn.Linear(4, 4), nn.Linear(4, 4))
            ddp = DDP(model, bucket_cap_bytes=1, broadcast_parameters=False)
            first_bucket_param = ddp._buckets[0].params[0]
            last_layer_params = list(model._modules["1"].parameters())
            return any(first_bucket_param is p for p in last_layer_params)

        assert all(dist.spawn(fn, 2))

    def test_fewer_collectives_with_bucketing(self):
        def fn(rank):
            device = dist.get_device()
            results = {}
            for label, cap in (("fine", 1), ("coarse", 1 << 30)):
                model = nn.Sequential(*[nn.Linear(16, 16) for _ in range(4)])
                ddp = DDP(model, bucket_cap_bytes=cap, broadcast_parameters=False)
                before = ddp.process_group.collective_count
                x = repro.randn(2, 16, device=device)
                ddp(x).sum().backward()
                results[label] = ddp.process_group.collective_count - before
            return results

        for counts in dist.spawn(fn, 2):
            assert counts["coarse"] < counts["fine"]


class TestTrainingParity:
    def test_multi_step_sgd_matches_local(self):
        xs, ys = make_data()
        repro.manual_seed(5)
        local = build()
        state0 = snapshot_weights(local)
        opt = SGD(local.parameters(), lr=0.1)
        for _ in range(3):
            opt.zero_grad()
            out = local(repro.tensor(xs))
            nn.functional.mse_loss(out, repro.tensor(ys)).backward()
            opt.step()
        expected = snapshot_weights(local)

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            device = dist.get_device()
            ddp = DDP(model, broadcast_parameters=False)
            opt = SGD(model.parameters(), lr=0.1)
            n = BATCH // WORLD
            x = repro.tensor(xs[rank * n : (rank + 1) * n], device=device)
            y = repro.tensor(ys[rank * n : (rank + 1) * n], device=device)
            for _ in range(3):
                opt.zero_grad()
                out = ddp(x)
                nn.functional.mse_loss(out, y).backward()
                opt.step()
            return snapshot_weights(model)

        for final in dist.spawn(fn, WORLD):
            for name, value in expected.items():
                np.testing.assert_allclose(final[name], value, atol=1e-4)

    def test_memory_is_replicated(self):
        """DDP keeps the full model per rank (what OOMs in Figure 6a)."""

        def fn(rank):
            device = dist.get_device()
            model = nn.Linear(256, 256, bias=False, device=device)
            DDP(model, broadcast_parameters=False)
            stats = device.memory_stats()
            return stats["allocated_bytes.all.current"] >= 256 * 256 * 4

        assert all(dist.spawn(fn, 2))
