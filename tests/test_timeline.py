"""Timeline tracing and overlap measurement (Figure 5)."""

import json

import pytest

import repro
from repro import distributed as dist, nn
from repro.fsdp import (
    BackwardPrefetch,
    FullyShardedDataParallel as FSDP,
    ModuleWrapPolicy,
)
from repro.perf.timeline import (
    Tracer,
    merge_intervals,
    overlap_fraction,
    trace_device,
)


@pytest.fixture()
def traced_world():
    dist.shutdown()
    ctx = dist.init_single_process(8, materialize=False)
    tracer = trace_device(ctx.device)
    yield ctx, tracer
    dist.shutdown()


def run_iteration(device, **fsdp_kwargs):
    model = nn.Sequential(*[nn.Linear(512, 512) for _ in range(6)])
    wrapped = FSDP(
        model,
        device=device,
        auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
        **fsdp_kwargs,
    )
    for _ in range(2):
        x = repro.empty(16, 512, device=device)
        wrapped(x).sum().backward()
        wrapped.zero_grad()
    return wrapped


class TestTracer:
    def test_records_kernels_and_collectives(self, traced_world):
        ctx, tracer = traced_world
        run_iteration(ctx.device)
        labels = {e.name for e in tracer.events}
        assert "kernel" in labels
        assert "all_gather_base" in labels
        assert "reduce_scatter" in labels

    def test_streams_separated(self, traced_world):
        ctx, tracer = traced_world
        run_iteration(ctx.device)
        streams = tracer.by_stream()
        assert any("default" in s for s in streams)
        assert any("unshard" in s for s in streams)

    def test_events_well_formed(self, traced_world):
        ctx, tracer = traced_world
        run_iteration(ctx.device)
        for event in tracer.events:
            assert event.end > event.start >= 0.0

    def test_chrome_trace_export(self, traced_world, tmp_path):
        ctx, tracer = traced_world
        run_iteration(ctx.device)
        path = tmp_path / "trace.json"
        tracer.to_chrome_trace(str(path))
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == len(tracer.events)
        assert all("ts" in e and "dur" in e for e in data["traceEvents"])

    def test_ascii_gantt(self, traced_world):
        ctx, tracer = traced_world
        run_iteration(ctx.device)
        chart = tracer.ascii_gantt(width=60)
        assert "default" in chart
        assert "A" in chart  # all-gathers visible

    def test_empty_tracer(self):
        tracer = Tracer()
        assert tracer.ascii_gantt() == "(no events)"
        assert overlap_fraction(tracer) == 1.0

    def test_clear(self, traced_world):
        ctx, tracer = traced_world
        run_iteration(ctx.device)
        tracer.record_mark("fault:delay@r0", 1.0)
        tracer.clear()
        assert not tracer.events
        assert not tracer.marks

    def test_marks_exported_as_instant_events(self, tmp_path):
        tracer = Tracer()
        tracer.record("kernel", "default", 0.0, 1.0)
        tracer.record_mark("fault:straggler@r0", 0.5)
        path = tmp_path / "trace.json"
        tracer.to_chrome_trace(str(path))
        data = json.loads(path.read_text())
        instants = [e for e in data["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "fault:straggler@r0"
        assert instants[0]["ts"] == pytest.approx(0.5e6)

    def test_injected_faults_appear_as_marks(self):
        from repro.distributed import FaultEvent, FaultKind, FaultSchedule

        dist.shutdown()
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.DELAY, collective_index=0, delay_s=1e-3)]
        )
        ctx = dist.init_single_process(8, materialize=False, fault_schedule=schedule)
        try:
            tracer = trace_device(ctx.device)
            run_iteration(ctx.device)
            assert any(name.startswith("fault:delay") for name, _ in tracer.marks)
        finally:
            dist.shutdown()


class TestOverlap:
    def test_busy_interval_merging(self):
        tracer = Tracer()
        tracer.record("kernel", "default", 0.0, 1.0)
        tracer.record("kernel", "default", 0.5, 2.0)
        tracer.record("kernel", "default", 3.0, 4.0)
        merged = tracer.busy_intervals(lambda s: True)
        assert merged == [(0.0, 2.0), (3.0, 4.0)]

    def test_overlap_fraction_bounds(self, traced_world):
        ctx, tracer = traced_world
        run_iteration(ctx.device)
        fraction = overlap_fraction(tracer)
        assert 0.0 <= fraction <= 1.0

    def test_merge_intervals(self):
        assert merge_intervals([]) == []
        assert merge_intervals([(1.0, 2.0), (0.0, 0.5)]) == [(0.0, 0.5), (1.0, 2.0)]
        assert merge_intervals([(0.0, 2.0), (1.0, 3.0), (3.0, 4.0)]) == [(0.0, 4.0)]

    def test_overlap_fraction_regression_pinned(self):
        """Overlapping compute events must not double-count hidden time.

        comm [0,2]∪[1,3] merges to [0,3] (3s total); compute
        [0.5,1.5]∪[1,2.5] merges to [0.5,2.5]; the intersection is
        exactly 2s, so the fraction is pinned at 2/3 — a naive
        unmerged pairwise intersection would report 4.5/5 ≈ 0.9.
        """
        tracer = Tracer()
        tracer.record("all_gather", "fsdp-unshard", 0.0, 2.0)
        tracer.record("all_gather", "fsdp-unshard", 1.0, 3.0)
        tracer.record("kernel", "default", 0.5, 1.5)
        tracer.record("kernel", "default", 1.0, 2.5)
        tracer.record("kernel", "default", 4.0, 5.0)
        assert overlap_fraction(tracer) == pytest.approx(2.0 / 3.0)

    def test_overlap_fraction_disjoint_and_full(self):
        tracer = Tracer()
        tracer.record("all_gather", "comm", 0.0, 1.0)
        tracer.record("kernel", "default", 2.0, 3.0)
        assert overlap_fraction(tracer) == 0.0
        tracer.clear()
        tracer.record("all_gather", "comm", 1.0, 2.0)
        tracer.record("kernel", "default", 0.0, 3.0)
        assert overlap_fraction(tracer) == 1.0

    def test_prefetch_does_not_reduce_overlap(self):
        """Figure 5's claim: the machinery overlaps comm with compute."""
        results = {}
        for prefetch in (BackwardPrefetch.NONE, BackwardPrefetch.BACKWARD_PRE):
            dist.shutdown()
            ctx = dist.init_single_process(8, materialize=False)
            tracer = trace_device(ctx.device)
            run_iteration(ctx.device, backward_prefetch=prefetch)
            results[prefetch] = overlap_fraction(tracer)
            dist.shutdown()
        assert results[BackwardPrefetch.BACKWARD_PRE] >= results[BackwardPrefetch.NONE] - 0.05


# ----------------------------------------------------------------------
# overlap_fraction property: bounded on adversarial traces
# ----------------------------------------------------------------------
from hypothesis import given, strategies as st  # noqa: E402

from repro.hw.comm_model import CollectiveKind, CommModel  # noqa: E402
from repro.hw.specs import cluster_of  # noqa: E402
from repro.profiler import FlightRecorder  # noqa: E402


@st.composite
def _intervals(draw, stream: str):
    """Adversarial (name, stream, start, end) tuples.

    Drawn starts cluster in a narrow range so overlapping, nested,
    duplicated and zero-length intervals are all common.
    """
    count = draw(st.integers(0, 12))
    out = []
    for _ in range(count):
        start = draw(st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False))
        dur = draw(st.floats(0.0, 5.0, allow_nan=False, allow_infinity=False))
        out.append(("op", stream, start, start + dur))
    return out


class TestOverlapFractionProperty:
    @given(comm=_intervals("pg-comm"), compute=_intervals("default"))
    def test_fraction_bounded(self, comm, compute):
        tracer = Tracer()
        for name, stream, start, end in comm + compute:
            tracer.record(name, stream, start, end)
        fraction = overlap_fraction(tracer)
        assert 0.0 <= fraction <= 1.0

    def test_internally_overlapping_comm_not_double_counted(self):
        """Regression: re-merging each side must precede intersection.

        Three mutually-overlapping comm intervals fully covered by one
        compute interval must yield exactly 1.0 — intersecting the raw
        (unmerged) comm list against compute counts the doubly-covered
        span twice and reports > 1.
        """
        tracer = Tracer()
        for start, end in [(0.0, 10.0), (2.0, 4.0), (3.0, 8.0)]:
            tracer.record("all_gather_base", "unshard", start, end)
        tracer.record("kernel", "default", 0.0, 10.0)
        assert overlap_fraction(tracer) == 1.0

    def test_concurrent_compute_streams_count_once(self):
        tracer = Tracer()
        tracer.record("comm", "pg-comm", 0.0, 4.0)
        # Two default-stream contexts busy over the same span.
        tracer.record("kernel", "default", 0.0, 2.0)
        tracer.record("kernel", "default-2", 1.0, 2.0)
        assert overlap_fraction(tracer) == pytest.approx(0.5)

    def test_no_comm_is_fully_overlapped(self):
        tracer = Tracer()
        tracer.record("kernel", "default", 0.0, 1.0)
        assert overlap_fraction(tracer) == 1.0


class TestZeroDurationEvents:
    def test_zero_duration_recorded_as_mark(self):
        tracer = Tracer()
        tracer.record("kernel", "default", 1.0, 2.0)
        tracer.record("broadcast", "pg-comm", 3.0, 3.0)
        assert len(tracer.events) == 1
        assert tracer.marks == [("broadcast", 3.0)]

    def test_counts_reconcile_with_flight_recorder(self):
        """Every issued collective appears in the trace — as an event
        when it has duration, as an instant mark when its simulated
        cost rounds to zero — so trace counts always reconcile with
        the flight recorder's issue count.
        """
        dist.shutdown()
        recorder = FlightRecorder()
        # A free comm model: zero launch and step latency makes
        # zero-byte collectives take exactly 0 simulated seconds.
        free = CommModel(cluster_of(8), launch_overhead=0.0, step_latency=0.0)
        ctx = dist.init_single_process(
            8, materialize=False, comm_model=free, flight_recorder=recorder
        )
        tracer = trace_device(ctx.device)
        try:
            group = dist.default_group()
            payload = repro.empty(64, device=ctx.device)
            gathered = repro.empty(8 * 64, device=ctx.device)
            group.all_gather_into_tensor(gathered, payload).wait()
            group.all_reduce(payload).wait()
            # Zero-byte broadcasts: zero transfer + zero launch = an
            # instant, recorded as a mark rather than dropped.
            empty_msg = repro.empty(0, device=ctx.device)
            group.broadcast(empty_msg, src=0).wait()
            group.broadcast(empty_msg, src=0).wait()
        finally:
            dist.shutdown()

        kinds = {kind.value for kind in CollectiveKind}
        events = sum(1 for e in tracer.events if e.name in kinds)
        marks = sum(1 for name, _ in tracer.marks if name in kinds)
        assert marks >= 2  # the zero-byte broadcasts landed as marks
        assert events + marks == len(recorder)
