"""Elastic recovery: watchdog propagation, crash/restart loss equivalence."""

import time

import numpy as np
import pytest

import repro
from repro import distributed as dist, nn
from repro.distributed import FaultEvent, FaultInjector, FaultKind, FaultSchedule
from repro.errors import (
    CollectiveTimeoutError,
    DistributedError,
    RankCrashedError,
    RankFailureError,
)
from repro.fsdp import FullyShardedDataParallel as FSDP, ModuleWrapPolicy
from repro.perf.trainer import CheckpointStore, train_elastic
from repro.tensor import tensor

WORLD = 4
D = 16


def build_model():
    return nn.Sequential(nn.Linear(D, 2 * D), nn.GELU(), nn.Linear(2 * D, D))


def make_loss(model, rank, iteration):
    # Deterministic in (rank, iteration): recovery must replay the
    # exact batches the crashed incarnation would have seen.
    rng = np.random.default_rng(1000 + 17 * iteration + rank)
    x = tensor(rng.standard_normal((4, D)).astype(np.float32))
    out = model(x)
    return (out * out).mean()


def run_elastic(schedule=None, iterations=6, **kwargs):
    repro.manual_seed(1234)
    return train_elastic(
        build_model=build_model,
        make_loss=make_loss,
        world_size=WORLD,
        iterations=iterations,
        faults=schedule,
        **kwargs,
    )


class TestWatchdogThreaded:
    def test_hung_collective_raises_typed_error_on_all_ranks(self):
        """A hang never deadlocks: the hung rank trips its own watchdog
        (CollectiveTimeoutError) and, with coordinated abort on by
        default, every survivor wakes with a RankFailureError naming
        the hung rank — all well inside the 10s budget."""
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.HANG, rank=1, collective_index=2)]
        )
        injector = FaultInjector(schedule)

        def worker(rank):
            model = build_model()
            wrapped = FSDP(model, auto_wrap_policy=ModuleWrapPolicy({nn.Linear}))
            try:
                for iteration in range(3):
                    loss = make_loss(wrapped, rank, iteration)
                    loss.backward()
                    wrapped.zero_grad()
            except (CollectiveTimeoutError, RankFailureError) as error:
                return error
            return None

        start = time.monotonic()
        results = dist.spawn(
            worker, WORLD, fault_injector=injector, collective_timeout=0.5
        )
        elapsed = time.monotonic() - start
        assert elapsed < 10.0
        hung = results[1]
        assert isinstance(hung, CollectiveTimeoutError)
        assert hung.timeout == 0.5
        assert "timed out" in str(hung)
        for rank, error in enumerate(results):
            if rank == 1:
                continue
            assert isinstance(error, RankFailureError), error
            assert error.failed_ranks == (1,)
            assert error.detection_s == 0.5
        for error in results:
            assert error.kind  # names the collective kind
            assert error.ranks == tuple(range(WORLD))
            assert error.rank in range(WORLD)

    def test_uncoordinated_hang_times_out_every_rank(self):
        """Negative control: with coordinated abort disabled, every rank
        independently burns its own watchdog deadline and reports a
        CollectiveTimeoutError (the pre-abort semantics)."""
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.HANG, rank=1, collective_index=2)]
        )
        injector = FaultInjector(schedule)

        def worker(rank):
            model = build_model()
            wrapped = FSDP(model, auto_wrap_policy=ModuleWrapPolicy({nn.Linear}))
            try:
                for iteration in range(3):
                    loss = make_loss(wrapped, rank, iteration)
                    loss.backward()
                    wrapped.zero_grad()
            except CollectiveTimeoutError as error:
                return error
            return None

        results = dist.spawn(
            worker,
            WORLD,
            fault_injector=injector,
            collective_timeout=0.5,
            coordinated_abort=False,
        )
        assert all(isinstance(r, CollectiveTimeoutError) for r in results)
        for error in results:
            assert error.ranks == tuple(range(WORLD))
            assert "timed out" in str(error)

    def test_crash_propagates_as_typed_cause(self):
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.CRASH, rank=2, iteration=1)]
        )

        def worker(rank):
            injector = dist.get_device().fault_injector
            for iteration in range(3):
                injector.begin_iteration(rank, iteration)
            return rank

        with pytest.raises(DistributedError) as exc_info:
            dist.spawn(worker, WORLD, fault_schedule=schedule)
        cause = exc_info.value.__cause__
        assert isinstance(cause, RankCrashedError)
        assert cause.rank == 2


class TestCheckpointStore:
    def test_latest_ignores_torn_checkpoints(self):
        store = CheckpointStore()
        for rank in range(3):
            store.save(1, rank, {"m": rank}, {"o": rank})
        assert store.latest(world_size=3) == 1
        store.save(2, 0, {"m": 0}, {"o": 0})  # rank 0 only: torn
        assert store.latest(world_size=3) == 1
        for rank in (1, 2):
            store.save(2, rank, {"m": rank}, {"o": rank})
        assert store.latest(world_size=3) == 2
        assert store.load(2, 1)["model"] == {"m": 1}


class TestCrashRecovery:
    def test_losses_match_uninterrupted_run(self):
        baseline = run_elastic()
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.CRASH, rank=1, iteration=3)]
        )
        recovered = run_elastic(schedule)
        assert recovered.restarts == 1
        assert recovered.faults_injected == 1
        # Bitwise-identical loss trajectory, including post-recovery.
        assert recovered.losses == baseline.losses

    def test_sparse_checkpoints_replay_lost_iterations(self):
        baseline = run_elastic(iterations=8, checkpoint_every=3)
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.CRASH, rank=0, iteration=5)]
        )
        recovered = run_elastic(schedule, iterations=8, checkpoint_every=3)
        assert recovered.restarts == 1
        # Crash at 5, last complete checkpoint at 3: two iterations replayed.
        assert recovered.recovered_iterations == 2
        assert recovered.losses == baseline.losses

    def test_two_crashes_two_recoveries(self):
        baseline = run_elastic(iterations=7)
        schedule = FaultSchedule([
            FaultEvent(kind=FaultKind.CRASH, rank=0, iteration=2),
            FaultEvent(kind=FaultKind.CRASH, rank=3, iteration=5),
        ])
        recovered = run_elastic(schedule, iterations=7)
        assert recovered.restarts == 2
        assert recovered.losses == baseline.losses

    def test_restart_budget_exhausted_reraises(self):
        schedule = FaultSchedule([
            FaultEvent(kind=FaultKind.CRASH, rank=0, iteration=i)
            for i in (1, 2, 3)
        ])
        with pytest.raises(DistributedError):
            run_elastic(schedule, max_restarts=2)


class TestShrinkRestart:
    """Losing a rank restarts the job at world size N−1 from a
    *resharded* checkpoint (ISSUE 5 acceptance criterion)."""

    def test_shrink_converges_like_uninterrupted_smaller_world(self):
        # Run A: crash at iteration 4; every restart drops one rank.
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.CRASH, rank=1, iteration=4)]
        )
        shrunk = run_elastic(
            schedule,
            iterations=8,
            checkpoint_every=2,
            restart_world_size=lambda restarts, world: world - 1,
        )
        assert shrunk.restarts == 1
        assert shrunk.world_sizes == [WORLD, WORLD - 1]

        # Control B: a fresh N-rank run up to the same checkpoint, then
        # an uninterrupted (N-1)-rank run resuming from that store.
        first = run_elastic(iterations=4, checkpoint_every=2)
        control = train_elastic(
            build_model=build_model,
            make_loss=make_loss,
            world_size=WORLD - 1,
            iterations=8,
            checkpoint_every=2,
            store=first.store,
        )
        # Resumed runs never execute the pre-checkpoint iterations.
        assert control.losses[:4] == [None] * 4
        # Post-restart trajectory is bitwise identical to the clean
        # (N-1)-rank continuation from the same resharded checkpoint.
        assert shrunk.losses[4:] == control.losses[4:]
        # Pre-crash iterations match the N-rank baseline bitwise.
        baseline = run_elastic(iterations=8, checkpoint_every=2)
        assert shrunk.losses[:4] == baseline.losses[:4]

    def test_grow_restart(self):
        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.CRASH, rank=0, iteration=2)]
        )
        grown = train_elastic(
            build_model=build_model,
            make_loss=make_loss,
            world_size=2,
            iterations=5,
            faults=schedule,
            checkpoint_every=1,
            restart_world_size=lambda restarts, world: world + 2,
        )
        assert grown.restarts == 1
        assert grown.world_sizes == [2, 4]
        assert all(loss is not None for loss in grown.losses)


class TestStorageFaultRecovery:
    """Torn/corrupt checkpoints are detected at load, quarantined, and
    recovery proceeds from the last verified-good iteration."""

    @pytest.mark.parametrize(
        "kind",
        [FaultKind.TORN_WRITE, FaultKind.BIT_CORRUPTION, FaultKind.LOST_SHARD],
    )
    def test_damaged_checkpoint_quarantined_and_older_one_used(self, kind):
        baseline = run_elastic(iterations=8, checkpoint_every=2)
        # Damage the iteration-4 checkpoint as it is written, then crash
        # at iteration 5: recovery must fall back to iteration 2.
        schedule = FaultSchedule([
            FaultEvent(kind=kind, rank=1, iteration=4),
            FaultEvent(kind=FaultKind.CRASH, rank=2, iteration=5),
        ])
        recovered = run_elastic(schedule, iterations=8, checkpoint_every=2)
        assert recovered.restarts == 1
        assert any(f.kind is kind for f in recovered.injector.injected)
        # Crash at 5, verified-good checkpoint at 2: three iterations replayed.
        # A naive last-*complete* scan would have restored the committed but
        # damaged iteration-4 checkpoint and replayed only one.
        assert recovered.recovered_iterations == 3
        # Replay restores the exact trajectory.
        assert recovered.losses == baseline.losses
        # The re-executed save repaired the quarantined iteration: it is
        # un-quarantined and the final verified-good checkpoint is the last.
        assert 4 not in recovered.store.quarantined
        assert recovered.store.latest() == 8


class TestSymmetricElastic:
    def _config(self, **overrides):
        import dataclasses

        from repro.perf import SimConfig

        def make_loss_sym(model, device):
            x = repro.empty(8, D, device=device)
            return model(x).sum()

        base = SimConfig(
            name="elastic-sym",
            build_model=build_model,
            make_loss=make_loss_sym,
            batch_size=8,
            world_size=4,
            auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            iterations=2,
            warmup=1,
        )
        return dataclasses.replace(base, **overrides)

    def test_trainer_recovers_and_reports_overhead(self):
        from repro.perf import simulate_training

        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.CRASH, rank=0, iteration=1)]
        )
        clean = simulate_training(self._config())
        result = simulate_training(self._config(faults=schedule, elastic=True))
        assert not result.oom
        assert result.recoveries == 1
        assert result.faults_injected >= 1
        assert result.recovery_overhead_s > 0
        assert result.iteration_latency > 0
        assert clean.recoveries == 0

    def test_non_elastic_crash_propagates(self):
        from repro.perf import simulate_training

        schedule = FaultSchedule(
            [FaultEvent(kind=FaultKind.CRASH, rank=0, iteration=1)]
        )
        with pytest.raises(RankCrashedError):
            simulate_training(self._config(faults=schedule))

    def test_recovery_budget_exhausted_reraises(self):
        from repro.perf import simulate_training

        schedule = FaultSchedule([
            FaultEvent(kind=FaultKind.CRASH, rank=0, iteration=i) for i in (1, 2)
        ])
        with pytest.raises(RankCrashedError):
            simulate_training(
                self._config(faults=schedule, elastic=True, max_recoveries=1)
            )
