"""Engine-speed overhaul invariants.

Three families of differential tests guard the optimization work:

- **Fast-forward**: the trainer's steady-state extrapolation must
  reproduce the full event-by-event run's metrics, engage only when
  nothing observes per-event state, and report how much it skipped.
- **Meta vs data**: timing-only (abstract) execution must produce an
  event-for-event identical timeline to data-carrying execution — the
  speed of meta mode buys nothing if its timelines drift.
- **Cache parity**: memoized cost models must leave traced timelines
  bitwise identical to the uncached models, with and without the
  stream-order sanitizer watching.
"""

import dataclasses
import os

import pytest

import repro
from repro import distributed as dist, dtypes
from repro.cuda import sanitizer
from repro.fsdp import FullyShardedDataParallel as FSDP, ModuleWrapPolicy
from repro.hw.comm_model import CommModel
from repro.hw.kernel_model import KernelCostModel
from repro.hw.specs import cluster_of
from repro.models import GptConfig, MinGPT, T5_TINY, T5Model
from repro.models.transformer import TransformerBlock
from repro.nn import functional as F
from repro.perf import SimConfig, simulate_training
from repro.perf.timeline import trace_device
from repro.perf.trainer import _fast_forward_safe
from repro.perf.workloads import gpt_builder, gpt_loss_fn

TINY = GptConfig(
    vocab_size=512, block_size=32, n_layer=4, n_head=4, n_embd=64, checkpoint_blocks=False
)

SANITIZER_LANE = os.environ.get("REPRO_SANITIZER", "") not in ("", "0")


def tiny_config(**overrides) -> SimConfig:
    base = SimConfig(
        name="gpt-tiny",
        build_model=gpt_builder(TINY),
        make_loss=gpt_loss_fn(TINY, 2, 32),
        batch_size=2,
        world_size=8,
        auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
        iterations=8,
        warmup=1,
    )
    return dataclasses.replace(base, **overrides)


# ----------------------------------------------------------------------
# Steady-state fast-forward
# ----------------------------------------------------------------------
@pytest.mark.skipif(SANITIZER_LANE, reason="sanitizer disables fast-forward")
class TestFastForward:
    def test_matches_full_simulation(self):
        full = simulate_training(tiny_config(fast_forward=False))
        fast = simulate_training(tiny_config())

        assert "fast_forwarded_iterations" not in full.extras
        # 8 measured iterations: two establish the steady-state delta,
        # one confirms it, the rest are extrapolated.
        assert fast.extras["fast_forwarded_iterations"] >= 4

        assert fast.iteration_latency == pytest.approx(
            full.iteration_latency, rel=1e-9
        )
        assert fast.collectives == full.collectives
        assert fast.comm_gib == pytest.approx(full.comm_gib, rel=1e-12)
        assert fast.cross_host_gib == pytest.approx(full.cross_host_gib, rel=1e-12)
        assert fast.tflops_per_gpu == pytest.approx(full.tflops_per_gpu, rel=1e-9)
        # Memory is periodic in steady state: peaks are bitwise equal.
        assert fast.peak_allocated_gib == full.peak_allocated_gib
        assert fast.peak_reserved_gib == full.peak_reserved_gib
        assert fast.num_alloc_retries == full.num_alloc_retries

    def test_deterministic_across_runs(self):
        a = simulate_training(tiny_config())
        b = simulate_training(tiny_config())
        assert a.iteration_latency == b.iteration_latency
        assert a.extras.get("fast_forwarded_iterations") == b.extras.get(
            "fast_forwarded_iterations"
        )

    def test_disabled_under_profiler(self):
        """A profiler observes every event: no iteration may be skipped."""
        result = simulate_training(tiny_config(profile=True))
        assert "fast_forwarded_iterations" not in result.extras

    def test_disabled_by_config_flag(self):
        result = simulate_training(tiny_config(fast_forward=False))
        assert "fast_forwarded_iterations" not in result.extras


class TestFastForwardGuard:
    """`_fast_forward_safe` must veto every per-event observer."""

    def setup_method(self):
        dist.shutdown()
        self.ctx = dist.init_single_process(4, materialize=False)
        self.config = tiny_config()

    def teardown_method(self):
        dist.shutdown()

    def _safe(self, injector=None, session=None, writer=None) -> bool:
        return _fast_forward_safe(
            self.config, self.ctx.device, injector, session, writer
        )

    def test_clean_device_is_safe(self):
        if SANITIZER_LANE:
            assert not self._safe()  # sanitizer observes every launch
        else:
            assert self._safe()

    @pytest.mark.skipif(SANITIZER_LANE, reason="sanitizer already vetoes")
    def test_observers_veto(self):
        device = self.ctx.device
        tracer = trace_device(device)
        assert not self._safe()  # trace hook installed
        device.trace_hook = None
        assert not self._safe()  # mark hook still installed
        device.mark_hook = None
        assert self._safe()
        del tracer

        device.materialize_data = True
        assert not self._safe()  # data mode: losses must be bitwise
        device.materialize_data = False

        assert not self._safe(injector=object())
        assert not self._safe(session=object())
        assert not self._safe(writer=object())
        assert not _fast_forward_safe(
            dataclasses.replace(self.config, elastic=True),
            device,
            None,
            None,
            None,
        )
        with sanitizer.enabled():
            assert not self._safe()
        assert self._safe()


# ----------------------------------------------------------------------
# Meta (timing-only) vs data execution: identical timelines
# ----------------------------------------------------------------------
def _gpt_loss(model, device):
    ids = repro.zeros(2, 32, dtype=dtypes.int64, device=device)
    labels = repro.zeros(2, 32, dtype=dtypes.int64, device=device)
    return F.cross_entropy(model(ids), labels)


def _t5_loss(model, device):
    src = repro.zeros(2, 16, dtype=dtypes.int64, device=device)
    tgt = repro.zeros(2, 16, dtype=dtypes.int64, device=device)
    labels = repro.zeros(2, 16, dtype=dtypes.int64, device=device)
    return F.cross_entropy(model(src, tgt), labels)


def _traced_timeline(materialize: bool, build_model, loss_fn):
    """Trace two steady-state iterations of FSDP on every rank.

    Runs the threaded backend (the only one that can move real data)
    with ``world_size=2`` and returns each rank's raw timeline.
    """

    def run(rank):
        device = dist.get_device()
        repro.manual_seed(7)
        wrapped = FSDP(
            build_model(),
            device=device,
            auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
        )
        loss_fn(wrapped, device).backward()  # warmup (lazy init)
        wrapped.zero_grad()
        tracer = trace_device(device)
        for _ in range(2):
            loss_fn(wrapped, device).backward()
            wrapped.zero_grad()
        return list(tracer._raw), list(tracer.marks)

    dist.shutdown()
    return dist.spawn(run, 2, materialize=materialize)


class TestMetaDataTimelineParity:
    """Meta mode skips data movement and math, never timing.

    The satellite claim: a meta-mode run's timeline is event-for-event
    identical — same labels, same streams, same float start/end — to
    the data-mode run, so sweeps can run in meta mode and still be
    trusted against traced (data) validations.
    """

    def test_mingpt_identical_timeline(self):
        data = _traced_timeline(True, lambda: MinGPT(TINY), _gpt_loss)
        meta = _traced_timeline(False, lambda: MinGPT(TINY), _gpt_loss)
        assert meta == data

    def test_t5_identical_timeline(self):
        data = _traced_timeline(True, lambda: T5Model(T5_TINY), _t5_loss)
        meta = _traced_timeline(False, lambda: T5Model(T5_TINY), _t5_loss)
        assert meta == data


# ----------------------------------------------------------------------
# Memoized vs uncached cost models: identical traced runs
# ----------------------------------------------------------------------
def _traced_symmetric(build_model, loss_fn, *, cached: bool):
    """Trace two iterations on the symmetric backend, with the comm and
    kernel cost models either memoized (the default) or cache-disabled.
    """
    dist.shutdown()
    topo = cluster_of(8)
    ctx = dist.init_single_process(
        8,
        materialize=False,
        topology=topo,
        comm_model=CommModel(topo, cache=cached),
    )
    try:
        ctx.device.kernel_model = KernelCostModel(ctx.device.spec, cache=cached)
        repro.manual_seed(7)
        wrapped = FSDP(
            build_model(),
            device=ctx.device,
            auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
        )
        loss_fn(wrapped, ctx.device).backward()
        wrapped.zero_grad()
        tracer = trace_device(ctx.device)
        for _ in range(2):
            loss_fn(wrapped, ctx.device).backward()
            wrapped.zero_grad()
        return list(tracer._raw), list(tracer.marks)
    finally:
        dist.shutdown()


class TestCostModelCacheParity:
    def test_golden_timeline_invariant_to_caching(self):
        cached = _traced_symmetric(lambda: MinGPT(TINY), _gpt_loss, cached=True)
        uncached = _traced_symmetric(lambda: MinGPT(TINY), _gpt_loss, cached=False)
        assert cached == uncached

    def test_sanitizer_clean_with_and_without_caches(self):
        """The sanitizer suite's invariant holds under both cost paths."""
        for cached in (True, False):
            run = lambda: _traced_symmetric(  # noqa: E731
                lambda: MinGPT(TINY), _gpt_loss, cached=cached
            )
            if SANITIZER_LANE:
                events, _ = run()  # conftest already enabled it
            else:
                with sanitizer.enabled():
                    events, _ = run()
            assert events  # ran to completion, no StreamOrderViolation
