"""Seeded RNG: determinism, fork seeds, state save/restore."""

import numpy as np

import repro
from repro import random as rrandom


class TestSeeding:
    def test_manual_seed_reproduces(self):
        repro.manual_seed(42)
        a = repro.randn(16).numpy()
        repro.manual_seed(42)
        b = repro.randn(16).numpy()
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        repro.manual_seed(1)
        a = repro.randn(16).numpy()
        repro.manual_seed(2)
        b = repro.randn(16).numpy()
        assert not np.array_equal(a, b)

    def test_sequential_draws_differ(self):
        repro.manual_seed(0)
        a = repro.randn(8).numpy()
        b = repro.randn(8).numpy()
        assert not np.array_equal(a, b)


class TestForkSeeds:
    def test_fork_seed_deterministic_sequence(self):
        repro.manual_seed(9)
        first = [rrandom.fork_seed() for _ in range(4)]
        repro.manual_seed(9)
        second = [rrandom.fork_seed() for _ in range(4)]
        assert first == second

    def test_child_seed_reproduces_values(self):
        repro.manual_seed(5)
        seed = rrandom.fork_seed()
        rng1 = rrandom.Generator.numpy_rng(seed)
        rng2 = rrandom.Generator.numpy_rng(seed)
        np.testing.assert_array_equal(rng1.normal(size=8), rng2.normal(size=8))

    def test_private_generator_isolated(self):
        gen = rrandom.Generator(123)
        repro.manual_seed(0)
        global_before = rrandom.fork_seed()
        s1 = gen.spawn_seed()
        repro.manual_seed(0)
        assert rrandom.fork_seed() == global_before  # untouched by gen


class TestStateSnapshot:
    def test_get_set_state_roundtrip(self):
        repro.manual_seed(7)
        rrandom.fork_seed()
        state = rrandom.get_state()
        a = [rrandom.fork_seed() for _ in range(3)]
        rrandom.set_state(state)
        b = [rrandom.fork_seed() for _ in range(3)]
        assert a == b

    def test_dropout_checkpoint_replay_uses_state(self):
        """The checkpoint mechanism: save state, redraw identically."""
        from repro import ops

        repro.manual_seed(3)
        x = repro.ones(64)
        state = rrandom.get_state()
        out1 = ops.dropout(x, 0.5).numpy()
        rrandom.set_state(state)
        out2 = ops.dropout(x, 0.5).numpy()
        np.testing.assert_array_equal(out1, out2)

    def test_recorded_init_replay_identity(self):
        """Deferred-init records replay bit-identically (Section 3.1)."""
        from repro.cuda.device import meta_device

        repro.manual_seed(11)
        meta = repro.empty(32, device=meta_device())
        from repro.autograd import no_grad

        with no_grad():
            meta.normal_(2.0, 0.5)
        target1 = repro.empty(32)
        meta.replay_init_on(target1)
        repro.manual_seed(999)  # replay must not depend on current RNG
        target2 = repro.empty(32)
        meta.replay_init_on(target2)
        np.testing.assert_array_equal(target1.numpy(), target2.numpy())
        assert abs(target1.numpy().mean() - 2.0) < 0.5
