"""Module-system edge cases and miscellaneous coverage."""

import numpy as np
import pytest

import repro
from repro import nn
from repro.autograd import no_grad


class TestModuleApply:
    def test_apply_visits_children_first(self):
        order = []
        model = nn.Sequential(nn.Linear(2, 2), nn.ReLU())
        model.apply(lambda m: order.append(type(m).__name__))
        assert order == ["Linear", "ReLU", "Sequential"]

    def test_to_moves_params_and_buffers(self):
        from repro.cuda.device import Device

        device = Device("sim_gpu")
        model = nn.Linear(3, 3)
        model.register_buffer("scale", repro.ones(3))
        model.to(device=device)
        assert model.weight.device is device
        assert model.scale.device is device

    def test_to_moves_grads(self):
        from repro.cuda.device import Device

        model = nn.Linear(3, 3)
        model(repro.ones(1, 3)).sum().backward()
        device = Device("sim_gpu")
        model.to(device=device)
        assert model.weight.grad.device is device

    def test_dtype_cast_via_to(self):
        from repro import dtypes

        model = nn.Linear(3, 3)
        model.to(dtype=dtypes.bfloat16)
        assert model.weight.dtype is dtypes.bfloat16


class TestSequentialContainers:
    def test_sequential_iteration_and_len(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.ReLU(), nn.Linear(2, 2))
        assert len(model) == 3
        assert isinstance(model[1], nn.ReLU)
        assert len(list(iter(model))) == 3

    def test_modulelist_append(self):
        blocks = nn.ModuleList()
        blocks.append(nn.Linear(2, 2))
        blocks.append(nn.Linear(2, 2))
        assert len(blocks) == 2
        assert len(list(blocks[0].parameters())) == 2

    def test_modulelist_registers_parameters(self):
        class Holder(nn.Module):
            def __init__(self):
                super().__init__()
                self.blocks = nn.ModuleList([nn.Linear(2, 2)])

        names = [n for n, _ in Holder().named_parameters()]
        assert "blocks.0.weight" in names


class TestParameterSemantics:
    def test_parameter_requires_grad_default(self):
        p = nn.Parameter(repro.randn(3))
        assert p.requires_grad

    def test_frozen_parameter_excluded_from_grads(self):
        layer = nn.Linear(3, 3)
        layer.bias.requires_grad = False
        layer(repro.ones(1, 3)).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is None

    def test_parameter_shares_storage_with_source(self):
        src = repro.randn(4)
        p = nn.Parameter(src)
        with no_grad():
            p.fill_(2.0)
        assert (src.numpy() == 2.0).all()

    def test_parameter_repr(self):
        assert "Parameter" in repr(nn.Parameter(repro.randn(2)))


class TestExtraRepr:
    def test_linear_repr(self):
        text = repr(nn.Linear(3, 4))
        assert "in=3" in text and "out=4" in text

    def test_nested_repr(self):
        text = repr(nn.Sequential(nn.Linear(2, 2)))
        assert "Sequential" in text and "Linear" in text
