"""Model zoo tests: functional training and paper-scale configs."""

import numpy as np
import pytest

import repro
from repro import nn
from repro.models import (
    DEEPVIT_8B,
    DEEPVIT_TINY,
    DHEN,
    DHEN_PAPER,
    DHEN_TINY,
    GPT3_175B,
    GPT_TINY,
    MinGPT,
    REGNET_9B,
    REGNET_TINY,
    RegNet,
    DeepViT,
    T5_11B,
    T5_2B,
    T5_611M,
    T5_TINY,
    T5Model,
)
from repro.models.transformer import MultiHeadAttention, TransformerBlock


def int_tensor(shape, high):
    return repro.tensor(np.random.randint(0, high, shape))


class TestConfigs:
    def test_t5_param_targets(self):
        assert abs(T5_611M.approx_params - 0.611e9) / 0.611e9 < 0.05
        assert abs(T5_2B.approx_params - 2.28e9) / 2.28e9 < 0.05
        assert abs(T5_11B.approx_params - 11e9) / 11e9 < 0.06

    def test_gpt_param_target(self):
        assert abs(GPT3_175B.approx_params - 175e9) / 175e9 < 0.02

    def test_vision_param_targets(self):
        assert abs(REGNET_9B.approx_params - 9e9) / 9e9 < 0.1
        assert abs(DEEPVIT_8B.approx_params - 8e9) / 8e9 < 0.05

    def test_dhen_param_targets(self):
        assert DHEN_PAPER.sparse_params == 768_000_000_000
        assert abs(DHEN_PAPER.dense_params_approx - 550e6) / 550e6 < 0.05

    def test_tiny_configs_actually_build(self):
        # Verify approx formulas track real construction within 25%.
        model = T5Model(T5_TINY)
        actual = model.num_parameters()
        assert abs(actual - T5_TINY.approx_params) / actual < 0.25


class TestAttention:
    def test_wide_inner_dimension(self):
        attn = MultiHeadAttention(d_model=16, num_heads=4, head_dim=8)
        x = repro.randn(2, 5, 16)
        assert attn(x).shape == (2, 5, 16)
        assert attn.q_proj.out_features == 32  # heads * head_dim

    def test_causal_masking_blocks_future(self):
        attn = MultiHeadAttention(d_model=8, num_heads=2, causal=True)
        x = repro.randn(1, 4, 8)
        out1 = attn(x).numpy()
        # Changing the last position must not affect the first output.
        x2 = x.numpy().copy()
        x2[0, -1] += 10.0
        out2 = attn(repro.tensor(x2)).numpy()
        np.testing.assert_allclose(out1[0, 0], out2[0, 0], atol=1e-5)

    def test_cross_attention(self):
        block = TransformerBlock(8, 2, 16, cross_attention=True)
        x = repro.randn(1, 3, 8)
        ctx = repro.randn(1, 6, 8)
        assert block(x, context=ctx).shape == (1, 3, 8)

    def test_reattention_mixes_heads(self):
        attn = MultiHeadAttention(d_model=8, num_heads=2, reattention=True)
        assert attn.reattn is not None
        x = repro.randn(1, 4, 8)
        out = attn(x)
        out.sum().backward()
        assert attn.reattn.weight.grad is not None


class TestTrainability:
    """Each model must run a full forward/backward at tiny scale."""

    def test_mingpt(self):
        model = MinGPT(GPT_TINY)
        loss = model.loss(int_tensor((2, 16), 128), int_tensor((2, 16), 128))
        loss.backward()
        assert all(
            p.grad is not None for p in model.parameters()
        ), "all GPT params must receive gradients"

    def test_mingpt_rejects_long_sequence(self):
        model = MinGPT(GPT_TINY)
        with pytest.raises(ValueError):
            model(int_tensor((1, GPT_TINY.block_size + 1), 10))

    def test_t5(self):
        model = T5Model(T5_TINY)
        loss = model.loss(
            int_tensor((2, 8), 96), int_tensor((2, 6), 96), int_tensor((2, 6), 96)
        )
        loss.backward()
        grads = [p.grad is not None for p in model.parameters()]
        assert all(grads)

    def test_t5_decoder_is_causal(self):
        model = T5Model(T5_TINY)
        model.eval()
        src = int_tensor((1, 4), 96)
        tgt = int_tensor((1, 5), 96)
        from repro.autograd import no_grad

        with no_grad():
            out1 = model(src, tgt).numpy()
            tgt2 = tgt.numpy().copy()
            tgt2[0, -1] = (tgt2[0, -1] + 1) % 96
            out2 = model(src, repro.tensor(tgt2)).numpy()
        np.testing.assert_allclose(out1[0, 0], out2[0, 0], atol=1e-5)

    def test_dhen(self):
        model = DHEN(DHEN_TINY)
        sparse = int_tensor((4, DHEN_TINY.num_features), 1024)
        dense = repro.randn(4, DHEN_TINY.num_dense_features)
        labels = repro.tensor(np.random.randint(0, 2, 4).astype(np.float32))
        loss = model.loss(sparse, dense, labels)
        assert 0.0 < loss.item() < 10.0
        loss.backward()
        assert model.sparse_table.weight.grad is not None

    def test_dhen_loss_is_bce(self):
        model = DHEN(DHEN_TINY)
        sparse = int_tensor((2, DHEN_TINY.num_features), 1024)
        dense = repro.zeros(2, DHEN_TINY.num_dense_features)
        # With any logits, BCE >= 0.
        loss = model.loss(sparse, dense, repro.tensor(np.array([1.0, 0.0], dtype=np.float32)))
        assert loss.item() >= 0.0

    def test_regnet(self):
        model = RegNet(REGNET_TINY)
        images = repro.randn(2, 3, 16, 16)
        loss = model.loss(images, int_tensor((2,), 10))
        loss.backward()
        assert model.stem.weight.grad is not None

    def test_deepvit(self):
        model = DeepViT(DEEPVIT_TINY)
        images = repro.randn(2, 3, 16, 16)
        loss = model.loss(images, int_tensor((2,), 10))
        loss.backward()
        assert model.patch_embed.weight.grad is not None

    def test_checkpointed_variant_same_loss(self):
        import dataclasses

        repro.manual_seed(10)
        plain = MinGPT(GPT_TINY)
        repro.manual_seed(10)
        ckpt_config = dataclasses.replace(GPT_TINY, checkpoint_blocks=True)
        ckpt = MinGPT(ckpt_config)
        idx = int_tensor((2, 8), 128)
        tgt = int_tensor((2, 8), 128)
        l1 = plain.loss(idx, tgt)
        l2 = ckpt.loss(idx, tgt)
        np.testing.assert_allclose(l1.item(), l2.item(), rtol=1e-5)

    def test_training_reduces_loss(self):
        from repro.optim import Adam

        repro.manual_seed(1)
        model = MinGPT(GPT_TINY)
        opt = Adam(model.parameters(), lr=1e-3)
        idx = int_tensor((4, 16), 128)
        tgt = int_tensor((4, 16), 128)
        first = None
        for step in range(12):
            opt.zero_grad()
            loss = model.loss(idx, tgt)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first, "overfitting a fixed batch must reduce loss"
