"""Chaos soak: ``train_elastic`` under randomized seeded fault campaigns.

Each campaign is a :meth:`FaultSchedule.random` draw — pure function of
its seed — mixing collective faults (stragglers, delays, transient
failures, crashes) with storage faults (torn writes, bit corruption,
lost shards).  The invariants:

- **timing-only** schedules (no crashes, no storage damage) leave the
  loss trajectory *bitwise* identical to a fault-free run;
- schedules with crashes and storage damage still converge to the
  fault-free trajectory bitwise, because recovery replays deterministic
  batches from the last verified-good checkpoint — the recovery
  *semantics* (restart count bounded, store left consistent) are
  checked alongside.

The default campaign is small enough for tier-1; the CI chaos-soak
lane widens it with ``REPRO_CHAOS_SEEDS=<n>``.
"""

import os

import numpy as np
import pytest

import repro
from repro.distributed import FaultSchedule
from repro import nn
from repro.perf.trainer import train_elastic
from repro.tensor import tensor

WORLD = 3
ITERS = 6
D = 12

_SOAK = int(os.environ.get("REPRO_CHAOS_SEEDS", "0"))
TIMING_SEEDS = list(range(_SOAK or 2))
CHAOS_SEEDS = list(range(100, 100 + (_SOAK or 2)))


def build_model():
    return nn.Sequential(nn.Linear(D, 2 * D), nn.Tanh(), nn.Linear(2 * D, D))


def make_loss(model, rank, iteration):
    rng = np.random.default_rng(4000 + 29 * iteration + rank)
    x = tensor(rng.standard_normal((4, D)).astype(np.float32))
    out = model(x)
    return (out * out).mean()


def run(schedule=None):
    repro.manual_seed(1234)
    return train_elastic(
        build_model=build_model,
        make_loss=make_loss,
        world_size=WORLD,
        iterations=ITERS,
        faults=schedule,
        checkpoint_every=1,
    )


@pytest.fixture(scope="module")
def baseline_losses():
    return run().losses


class TestTimingOnlyCampaign:
    @pytest.mark.parametrize("seed", TIMING_SEEDS)
    def test_losses_bitwise_identical(self, seed, baseline_losses):
        schedule = FaultSchedule.random(
            seed=seed,
            world_size=WORLD,
            iterations=ITERS,
            stragglers=1,
            delays=2,
            transients=1,
            max_delay_s=2e-3,
        )
        assert schedule.timing_only()
        result = run(schedule)
        assert result.restarts == 0
        assert result.losses == baseline_losses


class TestChaosCampaign:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_recovery_semantics_and_replayed_trajectory(
        self, seed, baseline_losses
    ):
        schedule = FaultSchedule.random(
            seed=seed,
            world_size=WORLD,
            iterations=ITERS,
            stragglers=1,
            delays=1,
            transients=1,
            crashes=1,
            torn_writes=1,
            corruptions=1,
            lost_shards=1,
            max_delay_s=2e-3,
        )
        assert not schedule.timing_only()
        result = run(schedule)
        # Recovery semantics: bounded restarts, a consistent store.
        assert result.restarts <= 4
        latest = result.store.latest()
        assert latest is not None and 0 <= latest <= ITERS
        # Deterministic replay from verified-good checkpoints restores
        # the exact fault-free trajectory.
        assert result.losses == baseline_losses

    def test_campaigns_are_seed_deterministic(self):
        kwargs = dict(
            world_size=WORLD,
            iterations=ITERS,
            crashes=1,
            torn_writes=1,
            corruptions=1,
            lost_shards=1,
        )
        assert FaultSchedule.random(seed=42, **kwargs) == FaultSchedule.random(
            seed=42, **kwargs
        )
        assert FaultSchedule.random(seed=42, **kwargs) != FaultSchedule.random(
            seed=43, **kwargs
        )


class TestCompiledTimingOnlyCampaign:
    """Compile lane: the compiled schedule under timing-only chaos.

    ``train_elastic`` with a compiled FSDP wrapper (iteration one
    captures, the rest replay bucketed/reordered collectives) is run
    through the same timing-only campaigns as the eager lane.  Faults
    that only move time around (stragglers, delays, transient retries)
    must leave the loss trajectory bitwise identical to the *eager
    fault-free* baseline — one assertion covering both compiled-vs-
    eager numerics and compiled-under-chaos determinism — with zero
    restarts (the compiled executor funnels through the same fault-
    aware collectives, so retries stay transparent)."""

    def _run(self, schedule=None):
        from repro.fsdp import FullyShardedDataParallel

        repro.manual_seed(1234)
        return train_elastic(
            build_model=build_model,
            make_loss=make_loss,
            world_size=WORLD,
            iterations=ITERS,
            faults=schedule,
            checkpoint_every=1,
            wrap=lambda m: FullyShardedDataParallel(
                m, compile=True, compile_bucket_elems=64
            ),
        )

    @pytest.mark.parametrize("seed", TIMING_SEEDS)
    def test_compiled_losses_bitwise_identical(self, seed, baseline_losses):
        schedule = FaultSchedule.random(
            seed=seed,
            world_size=WORLD,
            iterations=ITERS,
            stragglers=1,
            delays=2,
            transients=1,
            max_delay_s=2e-3,
        )
        assert schedule.timing_only()
        result = self._run(schedule)
        assert result.restarts == 0
        assert result.losses == baseline_losses

    def test_compiled_fault_free_matches_eager_baseline(self, baseline_losses):
        assert self._run().losses == baseline_losses


HEAL_SEEDS = list(range(300, 300 + (_SOAK or 2)))


class TestHealCampaign:
    """Heal lane: randomized crash campaigns under ``recovery="heal"``.

    Hybrid sharding (W=4, F=2) keeps a surviving replicate peer for any
    single dead rank, so every chaos restart should heal — restoring the
    failed rank's shards from its peer instead of rewinding the world —
    and still replay the exact fault-free trajectory bitwise."""

    HEAL_WORLD = 4

    def _wrap(self, model):
        from repro.fsdp import (
            FullyShardedDataParallel,
            ModuleWrapPolicy,
            ShardingStrategy,
        )

        return FullyShardedDataParallel(
            model,
            auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            sharding_strategy=ShardingStrategy.HYBRID_SHARD,
            sharding_factor=2,
        )

    def _run(self, schedule=None, recovery="heal"):
        repro.manual_seed(1234)
        return train_elastic(
            build_model=build_model,
            make_loss=make_loss,
            world_size=self.HEAL_WORLD,
            iterations=ITERS,
            faults=schedule,
            checkpoint_every=1,
            wrap=self._wrap,
            recovery=recovery,
        )

    @pytest.fixture(scope="class")
    def heal_baseline(self):
        return self._run(recovery="restore").losses

    @pytest.mark.parametrize("seed", TIMING_SEEDS)
    def test_timing_only_campaign_never_heals(self, seed, heal_baseline):
        schedule = FaultSchedule.random(
            seed=seed,
            world_size=self.HEAL_WORLD,
            iterations=ITERS,
            stragglers=1,
            delays=2,
            transients=1,
            max_delay_s=2e-3,
        )
        result = self._run(schedule)
        assert result.restarts == 0
        assert result.healed_ranks == []
        assert result.losses == heal_baseline

    @pytest.mark.parametrize("seed", HEAL_SEEDS)
    def test_crash_campaign_heals_bitwise(self, seed, heal_baseline):
        schedule = FaultSchedule.random(
            seed=seed,
            world_size=self.HEAL_WORLD,
            iterations=ITERS,
            stragglers=1,
            delays=1,
            transients=1,
            crashes=1,
            max_delay_s=2e-3,
        )
        assert not schedule.timing_only()
        result = self._run(schedule)
        # A single dead rank always has a surviving replicate peer at
        # F=2: every restart heals, none falls back to the store.
        assert result.restarts >= 1
        assert len(result.healed_ranks) == result.restarts
        assert result.heal_fallbacks == 0
        assert result.heal_s > 0.0
        assert result.restore_s == 0.0
        assert result.losses == heal_baseline


SERVE_SEEDS = list(range(200, 200 + (_SOAK or 2)))


class TestServingFleetCampaign:
    """Degraded serving fleet: crashes, hangs, delays, damaged images.

    Mirrors the training campaigns above for ``repro.serve``: each seed
    draws a :meth:`FaultSchedule.serving_campaign` and drives an
    autoscaled fleet through it.  The fleet must stay deterministic,
    end at (or above) its replica floor, keep goodput high, and — when
    a replica-killing fault fired with a pre-fault baseline to compare
    against — restore served QPS after repair.
    """

    REPLICAS = 3
    BATCHES = 400

    def _run(self, seed):
        from repro.serve import AutoscaleConfig, FleetConfig, TrafficConfig, simulate_serving
        from tests.test_serve_fleet import stub_service

        service = stub_service()
        capacity = service.throughput()
        schedule = FaultSchedule.serving_campaign(
            seed=seed, replicas=self.REPLICAS, batches=self.BATCHES
        )
        return simulate_serving(
            FleetConfig(
                service=service,
                traffic=TrafficConfig(
                    seed=seed,
                    duration_s=4.0,
                    base_qps=0.5 * capacity * self.REPLICAS,
                    deadline_s=1.0,
                ),
                replicas=self.REPLICAS,
                policy="continuous:8",
                queue_depth=512,
                autoscale=AutoscaleConfig(
                    min_replicas=self.REPLICAS,
                    max_replicas=self.REPLICAS + 2,
                    cooldown_ticks=2,
                ),
                control_interval_s=0.05,
                hang_timeout_s=0.1,
                schedule=schedule,
            )
        )

    @pytest.mark.parametrize("seed", SERVE_SEEDS)
    def test_fleet_survives_campaign(self, seed):
        result = self._run(seed)
        # The campaign actually bit: at least one replica-killing or
        # timing fault fired.
        assert result.crashes + result.hangs + result.retries >= 1
        # The autoscaler repaired every kill: the fleet ends at (or
        # above) its configured floor.
        final = result.samples[-1]
        assert final.live + final.starting >= self.REPLICAS
        # Served work stayed useful despite re-routing and retries.
        assert result.served > 0
        assert result.goodput >= 0.8
        # When a kill fired late enough to have a pre-fault baseline,
        # post-repair QPS must re-attain it.
        ratio = result.recovery_ratio()
        if ratio is not None:
            assert ratio >= 0.85, ratio

    @pytest.mark.parametrize("seed", SERVE_SEEDS[:1])
    def test_fleet_campaign_deterministic(self, seed):
        assert self._run(seed).to_dict() == self._run(seed).to_dict()

    def test_serving_campaigns_are_seed_deterministic(self):
        kwargs = dict(replicas=3, batches=100)
        assert FaultSchedule.serving_campaign(
            seed=7, **kwargs
        ) == FaultSchedule.serving_campaign(seed=7, **kwargs)
        assert FaultSchedule.serving_campaign(
            seed=7, **kwargs
        ) != FaultSchedule.serving_campaign(seed=8, **kwargs)
