"""Determinism and shape properties of the serving traffic generator.

The whole serving stack is built on one promise: a request stream is a
pure function of its :class:`TrafficConfig`.  Same seed ⇒ the identical
stream, bitwise (frozen dataclasses compare exact floats), and — since
the fleet itself is deterministic — identical end-to-end serving
metrics.  Different seeds ⇒ different streams.  Alongside the
determinism pins, property tests bound the stream's shape: sorted
arrivals inside the window, sequential rids, keys inside the key
space, deadlines offset by exactly the SLO.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.serve import FleetConfig, TrafficConfig, TrafficGenerator, simulate_serving
from tests.test_serve_fleet import stub_service


def _config(seed=0, **kw):
    kw.setdefault("duration_s", 2.0)
    kw.setdefault("base_qps", 500.0)
    return TrafficConfig(seed=seed, **kw)


BUSY = dict(
    diurnal_period_s=2.0,
    diurnal_amplitude=0.4,
    bursts=2,
    burst_factor=3.0,
    burst_duration_s=0.2,
)


def test_same_seed_identical_stream():
    first = TrafficGenerator(_config(seed=42, **BUSY)).generate()
    second = TrafficGenerator(_config(seed=42, **BUSY)).generate()
    assert first == second  # bitwise: frozen dataclasses, exact floats
    assert len(first) > 0


def test_generate_is_idempotent():
    generator = TrafficGenerator(_config(seed=42, **BUSY))
    assert generator.generate() == generator.generate()
    # rate() consultation between runs must not perturb the stream.
    generator.rate(1.0)
    assert generator.generate() == TrafficGenerator(_config(seed=42, **BUSY)).generate()


def test_different_seeds_differ():
    first = TrafficGenerator(_config(seed=1)).generate()
    second = TrafficGenerator(_config(seed=2)).generate()
    assert first != second


def test_stream_shape():
    config = _config(seed=7, hot_keys=8, key_space=1000, deadline_s=0.25, **BUSY)
    requests = TrafficGenerator(config).generate()
    assert len(requests) > 0
    arrivals = [r.arrival_s for r in requests]
    assert arrivals == sorted(arrivals)
    assert all(0.0 <= t < config.duration_s for t in arrivals)
    assert [r.rid for r in requests] == list(range(len(requests)))
    assert all(0 <= r.key < config.key_space for r in requests)
    assert all(
        math.isclose(r.deadline_s, r.arrival_s + config.deadline_s)
        for r in requests
    )


def test_hot_fraction_extremes():
    hot = TrafficGenerator(
        _config(seed=3, hot_fraction=1.0, hot_keys=4, key_space=1000)
    ).generate()
    assert all(r.key < 4 for r in hot)
    cold = TrafficGenerator(
        _config(seed=3, hot_fraction=0.0, hot_keys=4, key_space=1000)
    ).generate()
    assert all(r.key >= 4 for r in cold)


def test_zipf_skews_toward_first_hot_key():
    requests = TrafficGenerator(
        _config(
            seed=9, duration_s=4.0, base_qps=2000.0,
            hot_fraction=1.0, hot_keys=8, zipf_s=1.0,
        )
    ).generate()
    counts = [0] * 8
    for r in requests:
        counts[r.key] += 1
    assert counts[0] > counts[7]  # harmonic weights: rank 1 >> rank 8


def test_rate_bounded_by_peak_and_lifted_by_bursts():
    generator = TrafficGenerator(_config(seed=5, **BUSY))
    peak = generator.peak_rate
    times = [i * 1e-3 for i in range(2000)]
    assert all(generator.rate(t) <= peak + 1e-9 for t in times)
    start, end = generator._burst_windows[0]
    inside = generator.rate((start + end) / 2)
    config = generator.config
    assert inside >= config.base_qps * (1 - config.diurnal_amplitude) * (
        config.burst_factor - 1e-9
    )


def test_mean_arrival_rate_tracks_base_qps():
    config = _config(seed=13, duration_s=10.0, base_qps=400.0)
    requests = TrafficGenerator(config).generate()
    observed = len(requests) / config.duration_s
    assert 0.9 * config.base_qps < observed < 1.1 * config.base_qps


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    base_qps=st.floats(20.0, 400.0),
    amplitude=st.floats(0.0, 0.9),
    bursts=st.integers(0, 3),
    hot_fraction=st.floats(0.0, 1.0),
)
def test_stream_properties_hold_for_any_config(
    seed, base_qps, amplitude, bursts, hot_fraction
):
    config = TrafficConfig(
        seed=seed,
        duration_s=1.0,
        base_qps=base_qps,
        diurnal_period_s=1.0 if amplitude else 0.0,
        diurnal_amplitude=amplitude,
        bursts=bursts,
        hot_keys=4,
        key_space=256,
        hot_fraction=hot_fraction,
    )
    first = TrafficGenerator(config).generate()
    assert first == TrafficGenerator(config).generate()
    arrivals = [r.arrival_s for r in first]
    assert arrivals == sorted(arrivals)
    assert all(0.0 <= t < config.duration_s for t in arrivals)
    assert all(0 <= r.key < config.key_space for r in first)


# ----------------------------------------------------------------------
# End-to-end: the fleet inherits the generator's determinism
# ----------------------------------------------------------------------
def _fleet_config(service, seed):
    return FleetConfig(
        service=service,
        traffic=TrafficConfig(seed=seed, duration_s=2.0, base_qps=2000.0, **BUSY),
        replicas=2,
        policy="continuous:8",
    )


def test_same_seed_identical_serving_metrics():
    service = stub_service()
    first = simulate_serving(_fleet_config(service, seed=77))
    second = simulate_serving(_fleet_config(service, seed=77))
    assert first.to_dict() == second.to_dict()
    assert first.samples == second.samples
    assert first.served > 0


def test_different_seeds_different_serving_metrics():
    service = stub_service()
    first = simulate_serving(_fleet_config(service, seed=77))
    second = simulate_serving(_fleet_config(service, seed=78))
    assert first.to_dict() != second.to_dict()
