"""Native mixed precision (Section 4.4) and the sharded grad scaler."""

import numpy as np
import pytest

import repro
from repro import distributed as dist, dtypes, nn
from repro.fsdp import (
    BF16_MIXED,
    FP16_MIXED,
    FullyShardedDataParallel as FSDP,
    MixedPrecision,
    ModuleWrapPolicy,
    ShardedGradScaler,
)
from repro.optim import SGD
from tests.conftest import copy_weights, snapshot_weights


def build():
    return nn.Sequential(nn.Linear(8, 16), nn.GELU(), nn.Linear(16, 4))


class TestConfig:
    def test_defaults_resolve(self):
        mp = MixedPrecision(param_dtype=dtypes.bfloat16)
        assert mp.resolved_reduce_dtype() is dtypes.bfloat16
        assert mp.resolved_buffer_dtype() is dtypes.bfloat16

    def test_independent_dtypes(self):
        mp = MixedPrecision(
            param_dtype=dtypes.bfloat16,
            reduce_dtype=dtypes.float32,
            buffer_dtype=dtypes.float16,
        )
        assert mp.resolved_reduce_dtype() is dtypes.float32
        assert mp.resolved_buffer_dtype() is dtypes.float16

    def test_presets(self):
        assert BF16_MIXED.param_dtype is dtypes.bfloat16
        assert FP16_MIXED.param_dtype is dtypes.float16


class TestComputeDtype:
    def test_views_are_low_precision_params_full(self):
        def fn(rank):
            model = build()
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
                mixed_precision=BF16_MIXED,
            )
            x = repro.randn(2, 8, device=dist.get_device())
            out = wrapped(x)
            assert out.dtype is dtypes.bfloat16
            out.sum().backward()
            for handle in wrapped.flat_handles:
                # Optimizer-facing FlatParameter stays full precision.
                assert handle.flat_param.dtype is dtypes.float32
                assert handle.flat_param.grad.dtype is dtypes.float32
                assert handle.compute_dtype is dtypes.bfloat16

        dist.spawn(fn, 2)

    def test_keep_low_precision_grads(self):
        def fn(rank):
            mp = MixedPrecision(param_dtype=dtypes.bfloat16, keep_low_precision_grads=True)
            wrapped = FSDP(
                build(),
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
                mixed_precision=mp,
            )
            x = repro.randn(2, 8, device=dist.get_device())
            wrapped(x).sum().backward()
            for handle in wrapped.flat_handles:
                assert handle.flat_param.grad.dtype is dtypes.bfloat16

        dist.spawn(fn, 2)

    def test_bf16_grads_close_to_fp32(self):
        repro.manual_seed(3)
        reference = build()
        state0 = snapshot_weights(reference)
        xs = repro.randn(4, 8).numpy()
        out = reference(repro.tensor(xs))
        out.sum().backward()
        fp32_grads = {
            n: p.grad.numpy().copy() for n, p in reference.named_parameters()
        }

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
                mixed_precision=BF16_MIXED,
            )
            x = repro.tensor(xs, device=dist.get_device())
            wrapped(x).sum().backward()
            from tests.conftest import unflatten_handle_grads

            return unflatten_handle_grads(wrapped)

        for grads in dist.spawn(fn, 2):
            for key, g in grads.items():
                close = any(
                    lg.shape == g.shape
                    and np.allclose(lg, g, rtol=0.1, atol=0.05)
                    for lg in fp32_grads.values()
                )
                assert close, f"bf16 gradient {key} too far from fp32"

    def test_buffers_cast(self):
        class WithBuffer(nn.Module):
            def __init__(self):
                super().__init__()
                self.layer = nn.Linear(4, 4)
                self.register_buffer("scale", repro.ones(4))

            def forward(self, x):
                return self.layer(x) * self.scale

        def fn(rank):
            wrapped = FSDP(
                WithBuffer(), device=dist.get_device(), mixed_precision=BF16_MIXED
            )
            assert wrapped.module.scale.dtype is dtypes.bfloat16

        dist.spawn(fn, 2)


class TestMemoryFormula:
    def test_peak_param_memory_drops_with_mixed_precision(self):
        """§4.4: K_full·ψ/F + K_low·ψ < K_full·ψ/F + K_full·ψ."""

        def fn(rank):
            results = {}
            for label, mp in (("fp32", None), ("bf16", BF16_MIXED)):
                model = nn.Linear(64, 64, bias=False)
                wrapped = FSDP(model, device=dist.get_device(), mixed_precision=mp)
                handle = wrapped.flat_handles[0]
                results[label] = handle.sharded_nbytes + handle.unsharded_nbytes
            return results

        for results in dist.spawn(fn, 2):
            psi = 64 * 64 * 4  # bytes at full precision
            assert results["fp32"] == psi // 2 + psi
            assert results["bf16"] == psi // 2 + psi // 2
            assert results["bf16"] < results["fp32"]

    def test_collectives_run_in_low_precision(self):
        def fn(rank):
            model = nn.Linear(32, 32, bias=False)
            wrapped = FSDP(model, device=dist.get_device(), mixed_precision=BF16_MIXED)
            group = wrapped.flat_handles[0].shard_group
            x = repro.randn(2, 32, device=dist.get_device())
            wrapped(x).sum().backward()
            # Volume: AllGather + ReduceScatter of the bf16 flat param.
            handle = wrapped.flat_handles[0]
            padded_bytes = handle.padded_numel * 2
            expected = 2 * int(padded_bytes * (group.world_size - 1) / group.world_size)
            return group.bytes_sent, expected

        for sent, expected in dist.spawn(fn, 2):
            assert sent == expected

    def test_fp16_numerics_emulated(self):
        def fn(rank):
            wrapped = FSDP(
                nn.Linear(4, 4),
                device=dist.get_device(),
                mixed_precision=FP16_MIXED,
            )
            x = repro.randn(2, 4, device=dist.get_device())
            out = wrapped(x)
            assert out.dtype is dtypes.float16

        dist.spawn(fn, 2)


class TestShardedGradScaler:
    def _train_step(self, wrapped, scaler, x, y):
        out = wrapped(x)
        loss = nn.functional.mse_loss(out, y)
        scaler.scale(loss).backward()
        return loss

    def test_all_ranks_agree_on_skip(self):
        """One rank's inf grad must skip the step on every rank (§4.4)."""

        def fn(rank):
            model = build()
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            opt = SGD(wrapped.parameters(), lr=0.1)
            scaler = ShardedGradScaler(init_scale=4.0)
            x = repro.randn(2, 8, device=dist.get_device())
            y = repro.randn(2, 4, device=dist.get_device())
            self._train_step(wrapped, scaler, x, y)
            # Poison rank 1's sharded gradient.
            if rank == 1:
                from repro.autograd import no_grad

                with no_grad():
                    wrapped.flat_handles[0].flat_param.grad.fill_(float("nan"))
            scaler.unscale_(opt)
            stepped = scaler.step(opt)
            scaler.update()
            return stepped, scaler.get_scale()

        results = dist.spawn(fn, 2)
        assert [s for s, _ in results] == [False, False]
        assert all(scale == 2.0 for _, scale in results)  # backed off

    def test_scale_grows_after_interval(self):
        scaler = ShardedGradScaler(init_scale=2.0, growth_interval=2)
        model = nn.Linear(2, 2)
        opt = SGD(model.parameters(), lr=0.1)
        for _ in range(2):
            model.zero_grad()
            (model(repro.randn(1, 2)).sum() * scaler.get_scale()).backward()
            scaler.unscale_(opt)
            assert scaler.step(opt)
            scaler.update()
        assert scaler.get_scale() == 4.0

    def test_unscale_restores_magnitude(self):
        scaler = ShardedGradScaler(init_scale=8.0)
        model = nn.Linear(2, 2, bias=False)
        opt = SGD(model.parameters(), lr=0.1)
        out = scaler.scale(model(repro.ones(1, 2)).sum())
        out.backward()
        scaled = model.weight.grad.numpy().copy()
        scaler.unscale_(opt)
        np.testing.assert_allclose(model.weight.grad.numpy(), scaled / 8.0, rtol=1e-6)

    def test_disabled_scaler_passthrough(self):
        scaler = ShardedGradScaler(enabled=False)
        model = nn.Linear(2, 2)
        opt = SGD(model.parameters(), lr=0.1)
        loss = model(repro.ones(1, 2)).sum()
        assert scaler.scale(loss) is loss
        loss.backward()
        assert scaler.step(opt)
