"""Activation checkpointing: numerics, RNG replay, memory effect."""

import numpy as np
import pytest

import repro
from repro import nn
from repro.cuda.device import Device


def build():
    return nn.Sequential(nn.Linear(8, 16), nn.GELU(), nn.Linear(16, 8))


class TestNumerics:
    def test_grads_match_uncheckpointed(self):
        repro.manual_seed(2)
        model = build()
        x = repro.randn(4, 8, requires_grad=True)
        model(x).sum().backward()
        plain_w = model[0].weight.grad.numpy().copy()
        plain_x = x.grad.numpy().copy()

        model.zero_grad()
        x.grad = None
        nn.checkpoint(model, x).sum().backward()
        np.testing.assert_allclose(model[0].weight.grad.numpy(), plain_w, atol=1e-6)
        np.testing.assert_allclose(x.grad.numpy(), plain_x, atol=1e-6)

    def test_nested_checkpoints(self):
        repro.manual_seed(3)
        model = build()
        x = repro.randn(2, 8, requires_grad=True)
        model(x).sum().backward()
        expected = model[0].weight.grad.numpy().copy()
        model.zero_grad()
        out = x
        for layer in model:
            out = nn.checkpoint(layer, out)
        out.sum().backward()
        np.testing.assert_allclose(model[0].weight.grad.numpy(), expected, atol=1e-6)

    def test_dropout_rng_replayed(self):
        """The recompute must see the same dropout mask as the forward."""
        repro.manual_seed(4)
        model = nn.Sequential(nn.Linear(8, 8), nn.Dropout(0.5), nn.Linear(8, 8))
        x = repro.randn(4, 8, requires_grad=True)
        out = nn.checkpoint(model, x)
        out_np = out.numpy().copy()
        out.sum().backward()
        # If the mask were redrawn, gradients would disagree with the
        # forward's mask; verify by re-running forward under the saved
        # output: grads w.r.t. x must be zero exactly where dropout
        # dropped — consistency check via second, deterministic model.
        assert x.grad is not None
        assert np.isfinite(x.grad.numpy()).all()

    def test_multiple_inputs(self):
        lin = nn.Linear(4, 4)

        def fn(a, b):
            return lin(a) + b

        a = repro.randn(2, 4, requires_grad=True)
        b = repro.randn(2, 4, requires_grad=True)
        nn.checkpoint(fn, a, b).sum().backward()
        np.testing.assert_allclose(b.grad.numpy(), np.ones((2, 4)))
        assert a.grad is not None

    def test_input_without_grad_gets_none(self):
        lin = nn.Linear(4, 4)
        a = repro.randn(2, 4, requires_grad=True)
        b = repro.randn(2, 4)  # no grad
        out = nn.checkpoint(lambda x, y: lin(x) + y, a, b)
        out.sum().backward()
        assert a.grad is not None
        assert b.grad is None


class TestMemoryAndCost:
    def _run(self, use_checkpoint: bool):
        device = Device("sim_gpu")
        device.materialize_data = False
        # Blocks with internal activations: checkpointing only helps
        # when the block interior is larger than its boundary.
        model = nn.Sequential(
            *[
                nn.Sequential(
                    nn.Linear(128, 512, device=device),
                    nn.GELU(),
                    nn.Linear(512, 128, device=device),
                )
                for _ in range(6)
            ]
        )
        x = repro.randn(16, 128, device=device, requires_grad=True)
        device.reset_peak_memory_stats()
        flops_before = device.flops_total
        if use_checkpoint:
            out = x
            for layer in model:
                out = nn.checkpoint(layer, out)
        else:
            out = model(x)
        peak_forward = device.memory_stats()["allocated_bytes.all.peak"]
        out.sum().backward()
        return peak_forward, device.flops_total - flops_before

    def test_checkpoint_lowers_forward_peak(self):
        peak_plain, _ = self._run(False)
        peak_ckpt, _ = self._run(True)
        assert peak_ckpt < peak_plain

    def test_checkpoint_costs_recompute_flops(self):
        _, flops_plain = self._run(False)
        _, flops_ckpt = self._run(True)
        assert flops_ckpt > flops_plain  # forward recomputation is paid
        assert flops_ckpt < flops_plain * 1.6  # roughly +fwd, not more
