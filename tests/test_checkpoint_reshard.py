"""Resharded restores: full ↔ sharded ↔ resharded(N→M) round trips.

The property under test (ISSUE 5 tentpole): a sharded checkpoint taken
at world size N under one wrap granularity restores bitwise-identically
at world size M under another — model *and* optimizer state — because
the manifest's per-FQN layout metadata lets logical tensors be
reassembled offline and re-scattered into any layout.
"""

import numpy as np
import pytest

import repro
from repro import checkpoint as ck, distributed as dist, nn
from repro.errors import ShardLayoutError
from repro.fsdp import FullyShardedDataParallel as FSDP, ModuleWrapPolicy
from repro.fsdp.optim_state import (
    full_optim_state_dict,
    load_sharded_optim_state_dict,
    sharded_optim_state_dict,
)
from repro.fsdp.state_dict import full_state_dict, load_sharded_state_dict
from repro.models import GPT_TINY, T5_TINY, MinGPT, T5Model
from repro.optim import Adam
from repro.tensor import tensor

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st


def int_tensor(rng, shape, high):
    return repro.tensor(rng.integers(0, high, shape))


def gpt_builder():
    return MinGPT(GPT_TINY)


def gpt_loss(model, rank, iteration):
    from repro.nn import functional as F

    rng = np.random.default_rng(900 + 13 * iteration + rank)
    logits = model(int_tensor(rng, (2, 16), GPT_TINY.vocab_size))
    return F.cross_entropy(logits, int_tensor(rng, (2, 16), GPT_TINY.vocab_size))


def t5_builder():
    return T5Model(T5_TINY)


def t5_loss(model, rank, iteration):
    from repro.nn import functional as F

    rng = np.random.default_rng(700 + 13 * iteration + rank)
    logits = model(
        int_tensor(rng, (2, 8), T5_TINY.vocab_size),
        int_tensor(rng, (2, 8), T5_TINY.vocab_size),
    )
    return F.cross_entropy(logits, int_tensor(rng, (2, 8), T5_TINY.vocab_size))


def train_and_save(build, loss_fn, world, wrap_policy, store, *, steps=2):
    """Train a few steps at ``world``, checkpoint, return reference state."""

    def worker(rank):
        repro.manual_seed(77)
        wrapped = FSDP(build(), auto_wrap_policy=wrap_policy)
        opt = Adam(wrapped.parameters(), lr=1e-2)
        for step in range(steps):
            loss_fn(wrapped, rank, step).backward()
            opt.step()
            opt.zero_grad()
        blob = ck.serialize_state(ck.snapshot_payload(wrapped, opt, copy=True))
        store.save_shard(
            iteration=steps,
            rank=rank,
            world_size=world,
            blob=blob,
            units=ck.unit_layouts(wrapped),
        )
        return full_state_dict(wrapped), full_optim_state_dict(wrapped, opt)

    return dist.spawn(worker, world)[0]


def restore_at(build, world, wrap_policy, manifest, payloads):
    def worker(rank):
        repro.manual_seed(31)  # different init: restore must overwrite all of it
        wrapped = FSDP(build(), auto_wrap_policy=wrap_policy)
        opt = Adam(wrapped.parameters(), lr=1e-2)
        ck.load_resharded(wrapped, opt, manifest=manifest, payloads=payloads)
        return full_state_dict(wrapped), full_optim_state_dict(wrapped, opt)

    return dist.spawn(worker, world)[0]


def assert_states_equal(expected, actual):
    ref_model, ref_optim = expected
    got_model, got_optim = actual
    assert sorted(got_model) == sorted(ref_model)
    for fqn, value in ref_model.items():
        np.testing.assert_array_equal(
            got_model[fqn].numpy(), value.numpy(), err_msg=fqn
        )
    assert sorted(got_optim["state"]) == sorted(ref_optim["state"])
    for fqn, entry in ref_optim["state"].items():
        for name, value in entry.items():
            got = got_optim["state"][fqn][name]
            if hasattr(value, "numpy"):
                np.testing.assert_array_equal(
                    got.numpy(), value.numpy(), err_msg=f"{fqn}.{name}"
                )
            else:
                assert got == value, (fqn, name)


LINEAR = ModuleWrapPolicy({nn.Linear})


class TestReshardModels:
    @pytest.mark.parametrize(
        "build,loss_fn",
        [
            pytest.param(gpt_builder, gpt_loss, id="mingpt"),
            pytest.param(t5_builder, t5_loss, id="t5"),
        ],
    )
    @pytest.mark.parametrize(
        "save_world,load_world,load_policy",
        [
            pytest.param(4, 2, None, id="4to2-whole-model"),
            pytest.param(2, 4, LINEAR, id="2to4-per-linear"),
            pytest.param(4, 1, LINEAR, id="4to1"),
            pytest.param(1, 3, None, id="1to3"),
        ],
    )
    def test_n_to_m_round_trip_bitwise(
        self, build, loss_fn, save_world, load_world, load_policy
    ):
        from repro.models.transformer import TransformerBlock

        save_policy = ModuleWrapPolicy({TransformerBlock})
        store = ck.DistributedCheckpointStore()
        reference = train_and_save(build, loss_fn, save_world, save_policy, store)
        assert store.latest() == 2
        manifest, payloads = store.read_all(2)
        assert manifest.world_size == save_world
        restored = restore_at(build, load_world, load_policy, manifest, payloads)
        assert_states_equal(reference, restored)


class TestReshardPropertyMLP:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        save_world=st.integers(min_value=1, max_value=4),
        load_world=st.integers(min_value=1, max_value=4),
        save_per_linear=st.booleans(),
        load_per_linear=st.booleans(),
        depth=st.integers(min_value=1, max_value=3),
    )
    def test_round_trip_bitwise(
        self, seed, save_world, load_world, save_per_linear, load_per_linear, depth
    ):
        dims = 5 + seed % 7

        def build():
            layers = []
            for _ in range(depth):
                layers += [nn.Linear(dims, dims), nn.Tanh()]
            return nn.Sequential(*layers)

        def loss_fn(model, rank, iteration):
            rng = np.random.default_rng(seed + 31 * iteration + rank)
            x = tensor(rng.standard_normal((2, dims)).astype(np.float32))
            out = model(x)
            return (out * out).mean()

        store = ck.DistributedCheckpointStore()
        reference = train_and_save(
            build, loss_fn, save_world, LINEAR if save_per_linear else None, store
        )
        manifest, payloads = store.read_all(2)
        restored = restore_at(
            build, load_world, LINEAR if load_per_linear else None, manifest, payloads
        )
        assert_states_equal(reference, restored)


class TestShardLayoutErrors:
    def test_sharded_load_wrong_world_size_raises_typed_error(self):
        def save_worker(rank):
            repro.manual_seed(5)
            wrapped = FSDP(nn.Sequential(nn.Linear(8, 8), nn.Tanh(), nn.Linear(8, 8)))
            return {
                k: tensor(v.numpy().copy())
                for k, v in __import__(
                    "repro.fsdp.state_dict", fromlist=["sharded_state_dict"]
                ).sharded_state_dict(wrapped).items()
            }

        saved = dist.spawn(save_worker, 4)[0]

        def load_worker(rank):
            repro.manual_seed(5)
            wrapped = FSDP(nn.Sequential(nn.Linear(8, 8), nn.Tanh(), nn.Linear(8, 8)))
            with pytest.raises(ShardLayoutError) as info:
                load_sharded_state_dict(wrapped, saved)
            assert info.value.expected != info.value.actual
            # Back-compat: still catchable as a plain KeyError.
            with pytest.raises(KeyError):
                load_sharded_state_dict(wrapped, saved)
            return True

        assert all(dist.spawn(load_worker, 2))

    def test_sharded_optim_load_mismatch_raises_typed_error(self):
        def save_worker(rank):
            repro.manual_seed(5)
            wrapped = FSDP(nn.Linear(8, 8))
            opt = Adam(wrapped.parameters(), lr=1e-2)
            gpt_like = (wrapped(tensor(np.ones((2, 8), dtype=np.float32))) ** 2).mean()
            gpt_like.backward()
            opt.step()
            opt.zero_grad()
            return sharded_optim_state_dict(wrapped, opt, copy=True)

        saved = dist.spawn(save_worker, 4)[0]

        def load_worker(rank):
            repro.manual_seed(5)
            wrapped = FSDP(nn.Linear(8, 8))
            opt = Adam(wrapped.parameters(), lr=1e-2)
            with pytest.raises(ShardLayoutError):
                load_sharded_optim_state_dict(wrapped, opt, saved)
            return True

        assert all(dist.spawn(load_worker, 2))

    def test_missing_unit_key_raises_shard_layout_error(self):
        def worker(rank):
            wrapped = FSDP(nn.Linear(4, 4))
            with pytest.raises(ShardLayoutError):
                load_sharded_state_dict(wrapped, {})
            return True

        assert all(dist.spawn(worker, 2))
