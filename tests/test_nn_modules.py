"""Module system and layer numerics."""

import numpy as np
import pytest

import repro
from repro import nn
from repro.autograd import no_grad
from repro.nn import functional as F


class TestModuleRegistry:
    def test_parameter_registration(self):
        layer = nn.Linear(3, 4)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert names["weight"].shape == (4, 3)

    def test_submodule_registration(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.ReLU())
        assert len(list(model.modules())) == 3
        assert len(list(model.children())) == 2

    def test_named_parameters_recursive_fqns(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Sequential(nn.Linear(2, 2)))
        names = [n for n, _ in model.named_parameters()]
        assert "0.weight" in names
        assert "1.0.weight" in names

    def test_shared_parameter_deduplicated(self):
        shared = nn.Parameter(repro.randn(2, 2))
        m = nn.Module()
        m.register_parameter("a", shared)
        m.register_parameter("b", shared)
        assert len(list(m.parameters())) == 1

    def test_plain_tensor_assignment_to_param_name_raises(self):
        layer = nn.Linear(2, 2)
        with pytest.raises(TypeError):
            layer.weight = repro.randn(2, 2)

    def test_buffers(self):
        m = nn.Module()
        m.register_buffer("running", repro.zeros(3))
        assert "running" in dict(m.named_buffers())
        assert len(list(m.parameters())) == 0

    def test_get_submodule(self):
        model = nn.Sequential(nn.Sequential(nn.Linear(2, 2)))
        sub = model.get_submodule("0.0")
        assert isinstance(sub, nn.Linear)

    def test_delattr(self):
        layer = nn.Linear(2, 2)
        del layer.bias
        assert "bias" not in dict(layer.named_parameters())

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5), nn.Linear(2, 2))
        model.eval()
        assert not model[0].training
        model.train()
        assert model[0].training

    def test_zero_grad(self):
        layer = nn.Linear(2, 2)
        layer(repro.ones(1, 2)).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        repro.manual_seed(0)
        a = nn.Linear(3, 3)
        b = nn.Linear(3, 3)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.numpy(), b.weight.numpy())

    def test_load_state_dict_strict(self):
        layer = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": repro.zeros(2, 2)})

    def test_num_parameters(self):
        assert nn.Linear(3, 4).num_parameters() == 16

    def test_apply(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Linear(2, 2))
        with no_grad():
            model.apply(
                lambda m: m.weight.fill_(1.0) if isinstance(m, nn.Linear) else None
            )
        assert (model[0].weight.numpy() == 1.0).all()


class TestForwardHooks:
    def test_pre_hook_can_replace_args(self):
        layer = nn.Linear(2, 2)
        layer.register_forward_pre_hook(lambda m, args: (args[0] * 0.0,))
        out = layer(repro.ones(1, 2))
        expected = layer.bias.numpy()
        np.testing.assert_allclose(out.numpy()[0], expected, atol=1e-6)

    def test_post_hook_can_replace_output(self):
        layer = nn.Linear(2, 2)
        layer.register_forward_hook(lambda m, args, out: out * 0.0)
        out = layer(repro.ones(1, 2))
        assert (out.numpy() == 0).all()

    def test_hook_removal(self):
        layer = nn.Linear(2, 2)
        calls = []
        handle = layer.register_forward_hook(lambda m, a, o: calls.append(1))
        layer(repro.ones(1, 2))
        handle.remove()
        layer(repro.ones(1, 2))
        assert len(calls) == 1


class TestLayerNumerics:
    def test_linear_matches_numpy(self):
        layer = nn.Linear(4, 3)
        x = repro.randn(5, 4)
        expected = x.numpy() @ layer.weight.numpy().T + layer.bias.numpy()
        np.testing.assert_allclose(layer(x).numpy(), expected, atol=1e-5)

    def test_linear_batched_3d(self):
        layer = nn.Linear(4, 3)
        x = repro.randn(2, 5, 4)
        out = layer(x)
        assert out.shape == (2, 5, 3)

    def test_embedding_lookup(self):
        table = nn.Embedding(10, 4)
        idx = repro.tensor(np.array([[1, 2], [3, 1]]))
        out = table(idx)
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out.numpy()[0, 0], table.weight.numpy()[1])

    def test_layernorm_normalizes(self):
        ln = nn.LayerNorm(8)
        x = repro.randn(4, 8) * 5.0 + 3.0
        out = ln(x).numpy()
        np.testing.assert_allclose(out.mean(-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(-1), 1.0, atol=1e-2)

    def test_dropout_train_vs_eval(self):
        drop = nn.Dropout(0.5)
        x = repro.ones(1000)
        out = drop(x)
        kept = (out.numpy() != 0).mean()
        assert 0.3 < kept < 0.7
        drop.eval()
        np.testing.assert_array_equal(drop(x).numpy(), x.numpy())

    def test_dropout_scales_kept_values(self):
        drop = nn.Dropout(0.5)
        out = drop(repro.ones(100)).numpy()
        assert set(np.unique(out)).issubset({0.0, 2.0})

    def test_conv2d_matches_explicit(self):
        conv = nn.Conv2d(2, 3, 3, padding=1)
        x = repro.randn(1, 2, 5, 5)
        out = conv(x)
        assert out.shape == (1, 3, 5, 5)
        # Check one output position against the explicit convolution.
        xn, wn, bn = x.numpy(), conv.weight.numpy(), conv.bias.numpy()
        padded = np.pad(xn, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = (padded[0, :, 1:4, 1:4] * wn[0]).sum() + bn[0]
        np.testing.assert_allclose(out.numpy()[0, 0, 1, 1], expected, atol=1e-5)

    def test_conv2d_stride(self):
        conv = nn.Conv2d(1, 1, 2, stride=2, bias=False)
        x = repro.randn(1, 1, 6, 6)
        assert conv(x).shape == (1, 1, 3, 3)

    def test_batchnorm_train_normalizes(self):
        bn = nn.BatchNorm2d(4)
        x = repro.randn(8, 4, 3, 3) * 3.0 + 1.0
        out = bn(x).numpy()
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)

    def test_batchnorm_updates_running_stats(self):
        bn = nn.BatchNorm2d(2, momentum=1.0)
        x = repro.randn(16, 2, 4, 4) + 5.0
        bn(x)
        assert (bn.running_mean.numpy() > 3.0).all()

    def test_batchnorm_eval_uses_running_stats(self):
        bn = nn.BatchNorm2d(2)
        bn.eval()
        x = repro.randn(4, 2, 3, 3)
        out = bn(x)
        np.testing.assert_allclose(out.numpy(), x.numpy(), atol=1e-2)


class TestFunctional:
    def test_cross_entropy_matches_manual(self):
        logits = repro.randn(4, 6)
        targets = repro.tensor(np.array([0, 3, 5, 1]))
        loss = F.cross_entropy(logits, targets)
        ln = logits.numpy()
        probs = np.exp(ln) / np.exp(ln).sum(-1, keepdims=True)
        expected = -np.log(probs[np.arange(4), [0, 3, 5, 1]]).mean()
        np.testing.assert_allclose(loss.item(), expected, rtol=1e-5)

    def test_cross_entropy_3d_logits(self):
        logits = repro.randn(2, 3, 6)
        targets = repro.tensor(np.zeros((2, 3), dtype=np.int64))
        loss = F.cross_entropy(logits, targets)
        assert loss.numel == 1

    def test_mse_loss(self):
        a, b = repro.ones(3), repro.zeros(3)
        assert abs(F.mse_loss(a, b).item() - 1.0) < 1e-6

    def test_softmax_rows_sum_to_one(self):
        out = F.softmax(repro.randn(5, 7), dim=-1).numpy()
        np.testing.assert_allclose(out.sum(-1), 1.0, atol=1e-5)

    def test_causal_mask_cached(self):
        m1 = F.causal_mask(8)
        m2 = F.causal_mask(8)
        assert m1 is m2
        assert m1.numpy()[0, 1] and not m1.numpy()[1, 0]

    def test_attention_causality(self):
        q = repro.randn(1, 1, 4, 8)
        k = repro.randn(1, 1, 4, 8)
        v = repro.randn(1, 1, 4, 8)
        mask = F.causal_mask(4)
        out = F.scaled_dot_product_attention(q, k, v, attn_mask=mask)
        # First position can only attend to itself -> equals v[0].
        np.testing.assert_allclose(
            out.numpy()[0, 0, 0], v.numpy()[0, 0, 0], atol=1e-5
        )

    def test_attention_uniform_when_scores_equal(self):
        q = repro.zeros(1, 1, 3, 4)
        k = repro.zeros(1, 1, 3, 4)
        v = repro.randn(1, 1, 3, 4)
        out = F.scaled_dot_product_attention(q, k, v)
        np.testing.assert_allclose(
            out.numpy()[0, 0, 0], v.numpy()[0, 0].mean(0), atol=1e-5
        )
