"""The functional ``fully_shard`` annotator (Section 4)."""

import numpy as np
import pytest

import repro
from repro import distributed as dist, nn
from repro.errors import FsdpError
from repro.fsdp import fully_shard
from repro.fsdp.flat_param import FlatParameter
from tests.conftest import copy_weights, snapshot_weights


def build():
    return nn.Sequential(nn.Linear(6, 10), nn.GELU(), nn.Linear(10, 2))


class TestAnnotation:
    def test_returns_same_module(self):
        def fn(rank):
            model = build()
            assert fully_shard(model) is model

        dist.spawn(fn, 2)

    def test_preserves_structure_and_fqns(self):
        """The paper's selling point for fully_shard vs the wrapper."""

        def fn(rank):
            model = build()
            names_before = {type(m).__name__ for m in model.modules()}
            fully_shard(model)
            names_after = {type(m).__name__ for m in model.modules()}
            assert names_before == names_after  # no wrapper modules
            # The FlatParameter is registered on the annotated module.
            params = dict(model.named_parameters())
            assert list(params) == ["_flat_param"]
            assert isinstance(params["_flat_param"], FlatParameter)

        dist.spawn(fn, 2)

    def test_double_annotation_rejected(self):
        def fn(rank):
            model = build()
            fully_shard(model)
            with pytest.raises(FsdpError):
                fully_shard(model)

        dist.spawn(fn, 1)

    def test_nested_annotation_blocks_then_root(self):
        def fn(rank):
            model = build()
            for child in list(model.children()):
                if isinstance(child, nn.Linear):
                    fully_shard(child)
            fully_shard(model)
            flat_params = [
                p for _, p in model.named_parameters() if isinstance(p, FlatParameter)
            ]
            # Two Linear units; the root has no residual parameters.
            assert len(flat_params) == 2

        dist.spawn(fn, 2)


class TestPerParamGuards:
    """Typed ``FsdpError`` regressions for the per-parameter backend.

    The two classic mis-uses — annotating a module twice, and applying
    fully_shard top-down so an inner annotation finds its parameters
    already claimed by an ancestor unit — must fail loudly with the
    offending module named, not degrade into empty units or
    double-sharding.
    """

    def test_unknown_backend_rejected(self):
        def fn(rank):
            with pytest.raises(FsdpError, match="unknown fully_shard backend"):
                fully_shard(build(), backend="flat_param_v3")

        dist.spawn(fn, 1)

    def test_double_annotation_rejected(self):
        def fn(rank):
            model = build()
            fully_shard(model, backend="per_param")
            with pytest.raises(FsdpError, match="already annotated"):
                fully_shard(model, backend="per_param")

        dist.spawn(fn, 2)

    def test_double_annotation_rejected_across_backends(self):
        def fn(rank):
            model = build()
            fully_shard(model, backend="per_param")
            with pytest.raises(FsdpError, match="already annotated"):
                fully_shard(model)  # flat_param second

        dist.spawn(fn, 2)

    def test_top_down_application_rejected(self):
        """Root first claims every parameter; a later inner annotation
        must surface the bottom-up ordering requirement."""

        def fn(rank):
            model = build()
            fully_shard(model, backend="per_param")
            inner = next(iter(model.children()))
            with pytest.raises(FsdpError, match="bottom-up"):
                fully_shard(inner, backend="per_param")

        dist.spawn(fn, 2)

    def test_bottom_up_application_composes(self):
        """The supported ordering: inner units first, root last — the
        root unit takes only the parameters no inner unit claimed."""

        def fn(rank):
            model = build()
            for child in list(model.children()):
                if isinstance(child, nn.Linear):
                    fully_shard(child, backend="per_param")
            fully_shard(model, backend="per_param")
            units = {
                id(m._fsdp_unit)
                for m in model.modules()
                if getattr(m, "_fsdp_unit", None) is not None
            }
            assert len(units) == 3  # two Linear units + the root
            assert model._fsdp_unit.handle is None  # nothing left to claim

        dist.spawn(fn, 2)

    def test_cpu_offload_rejected(self):
        from repro.fsdp import CPUOffload

        def fn(rank):
            with pytest.raises(FsdpError, match="CPU offloading"):
                fully_shard(
                    build(),
                    backend="per_param",
                    cpu_offload=CPUOffload(offload_params=True),
                )

        dist.spawn(fn, 1)


class TestExecution:
    def test_training_step_and_grads(self):
        repro.manual_seed(17)
        reference = build()
        state0 = snapshot_weights(reference)
        xs = repro.randn(4, 6).numpy()
        reference(repro.tensor(xs)).mean().backward()
        local_grads = {
            n: p.grad.numpy().copy() for n, p in reference.named_parameters()
        }

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            device = dist.get_device()
            for child in list(model.children()):
                if isinstance(child, nn.Linear):
                    fully_shard(child, device=device)
            fully_shard(model, device=device)
            n = 4 // 2
            x = repro.tensor(xs[rank * n : (rank + 1) * n], device=device)
            model(x).mean().backward()
            grads = []
            for mod in model.modules():
                unit = getattr(mod, "_fsdp_unit", None)
                if unit is None or unit.handle is None:
                    continue
                h = unit.handle
                full = repro.empty(h.padded_numel, device=device)
                h.shard_group.all_gather_into_tensor(full, h.flat_param.grad).wait()
                flat = full.numpy()
                for info in h.param_infos:
                    grads.append(
                        flat[info.offset : info.offset + info.numel].reshape(info.shape)
                    )
            return grads

        for grads in dist.spawn(fn, 2):
            for g in grads:
                # mean-loss per half-batch, averaged across ranks,
                # equals the full-batch mean-loss gradient.
                assert any(
                    lg.shape == g.shape and np.allclose(lg, g, atol=1e-5)
                    for lg in local_grads.values()
                )

    def test_root_lazy_init_on_first_forward(self):
        def fn(rank):
            model = build()
            device = dist.get_device()
            fully_shard(model, device=device)
            unit = model._fsdp_unit
            assert unit.runtime is None
            model(repro.randn(2, 6, device=device))
            assert unit.runtime is not None
            assert unit.is_root

        dist.spawn(fn, 2)

    def test_mixed_precision_input_cast(self):
        from repro import dtypes
        from repro.fsdp import BF16_MIXED

        def fn(rank):
            model = build()
            device = dist.get_device()
            fully_shard(model, device=device, mixed_precision=BF16_MIXED)
            out = model(repro.randn(2, 6, device=device))
            assert out.dtype is dtypes.bfloat16

        dist.spawn(fn, 2)
