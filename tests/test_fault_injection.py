"""Fault-injection subsystem: schedules, injector, watchdog, retries."""

import pytest

import repro
from repro import distributed as dist
from repro.cuda.device import Device
from repro.distributed import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
)
from repro.distributed.fault import TIMING_ONLY_KINDS
from repro.errors import (
    CollectiveFailedError,
    CollectiveTimeoutError,
    RankCrashedError,
)

WORLD = 4


@pytest.fixture()
def faulty_world(request):
    """Symmetric world factory: call with a schedule/injector."""
    created = []

    def make(schedule=None, injector=None, timeout=60.0):
        dist.shutdown()
        ctx = dist.init_single_process(
            WORLD,
            materialize=False,
            fault_schedule=schedule,
            fault_injector=injector,
            collective_timeout=timeout,
        )
        created.append(ctx)
        return ctx

    yield make
    dist.shutdown()


def _one_all_gather(ctx):
    device = ctx.device
    group = dist.default_group()
    shard = repro.empty(1_000_000, device=device)
    out = repro.empty(WORLD * 1_000_000, device=device)
    group.all_gather_into_tensor(out, shard).wait()
    device.synchronize()
    return group


class TestSchedule:
    def test_random_is_seed_deterministic(self):
        kwargs = dict(
            world_size=8, iterations=10, stragglers=2, delays=3, transients=2,
            hangs=1, crashes=1, pressure_events=1,
        )
        a = FaultSchedule.random(seed=7, **kwargs)
        b = FaultSchedule.random(seed=7, **kwargs)
        assert a == b
        assert a.events == b.events
        c = FaultSchedule.random(seed=8, **kwargs)
        assert a != c

    def test_timing_only_classification(self):
        timing = FaultSchedule.random(
            seed=1, world_size=4, iterations=4, stragglers=1, delays=2,
            transients=1, hangs=0, crashes=0, pressure_events=0,
        )
        assert timing.timing_only()
        assert all(e.kind in TIMING_ONLY_KINDS for e in timing)
        crashing = timing.with_events(
            FaultEvent(kind=FaultKind.CRASH, rank=0, iteration=1)
        )
        assert not crashing.timing_only()
        assert len(crashing.crash_events()) == 1

    def test_event_matching(self):
        event = FaultEvent(
            kind=FaultKind.DELAY, rank=1, start_iteration=2, end_iteration=5,
            collective_index=3, collective_kind="all_gather",
        )
        assert event.matches_rank(1) and not event.matches_rank(0)
        assert event.in_window(2) and event.in_window(4)
        assert not event.in_window(1) and not event.in_window(5)
        assert event.matches_collective(rank=1, iteration=3, seq=3, kind="all_gather")
        assert not event.matches_collective(rank=1, iteration=3, seq=4, kind="all_gather")
        assert not event.matches_collective(rank=1, iteration=3, seq=3, kind="all_reduce")


class TestInjectorBookkeeping:
    def test_seq_advances_once_per_logical_collective(self):
        injector = FaultInjector(FaultSchedule())
        injector.on_collective(rank=0, kind="all_gather", attempt=0)
        injector.on_collective(rank=0, kind="all_gather", attempt=1)
        injector.on_collective(rank=0, kind="all_gather", attempt=2)
        assert injector.collective_seq(0) == 1
        injector.on_collective(rank=0, kind="all_reduce", attempt=0)
        assert injector.collective_seq(0) == 2
        assert injector.collective_seq(1) == 0  # per-rank counters

    def test_crash_fires_once_per_observer(self):
        schedule = FaultSchedule([FaultEvent(kind=FaultKind.CRASH, rank=1, iteration=2)])
        injector = FaultInjector(schedule)
        injector.begin_iteration(0, 1)  # outside window: no crash
        for rank in range(2):
            with pytest.raises(RankCrashedError) as exc_info:
                injector.begin_iteration(rank, 2)
            assert exc_info.value.rank == 1
            assert exc_info.value.iteration == 2
        # Survives an elastic restart: same injector, no re-fire.
        injector.begin_iteration(0, 2)
        injector.begin_iteration(1, 2)
        assert [f.kind for f in injector.injected] == [FaultKind.CRASH]

    def test_pressure_bytes_windowed(self):
        schedule = FaultSchedule([
            FaultEvent(kind=FaultKind.OOM_PRESSURE, rank=0,
                       start_iteration=1, end_iteration=3, pressure_bytes=100),
            FaultEvent(kind=FaultKind.OOM_PRESSURE, rank=None,
                       iteration=2, pressure_bytes=50),
        ])
        injector = FaultInjector(schedule)
        assert injector.pressure_bytes(0, 0) == 0
        assert injector.pressure_bytes(0, 1) == 100
        assert injector.pressure_bytes(0, 2) == 150
        assert injector.pressure_bytes(1, 2) == 50
        assert injector.pressure_bytes(0, 3) == 0


class TestCollectiveFaults:
    def test_delay_shifts_simulated_time_only(self, faulty_world):
        ctx = faulty_world()
        _one_all_gather(ctx)
        baseline = ctx.device.now()

        delayed = faulty_world(
            schedule=FaultSchedule([
                FaultEvent(kind=FaultKind.DELAY, collective_index=0, delay_s=5e-3)
            ])
        )
        _one_all_gather(delayed)
        assert delayed.device.now() >= baseline + 5e-3 - 1e-12

    def test_straggler_slows_every_collective(self, faulty_world):
        ctx = faulty_world()
        group = _one_all_gather(ctx)
        _one_all_gather(ctx)
        baseline = ctx.device.now()

        slow = faulty_world(
            schedule=FaultSchedule([
                FaultEvent(kind=FaultKind.STRAGGLER, rank=0, delay_s=2e-3)
            ])
        )
        _one_all_gather(slow)
        _one_all_gather(slow)
        assert slow.device.now() >= baseline + 2 * 2e-3 - 1e-12
        assert len(slow.fault_injector.injected) == 2

    def test_transient_retries_then_succeeds(self, faulty_world):
        ctx = faulty_world(
            schedule=FaultSchedule([
                FaultEvent(kind=FaultKind.TRANSIENT, rank=0,
                           collective_index=0, failures=2)
            ])
        )
        group = _one_all_gather(ctx)
        assert group.retries_attempted == 2
        kinds = [f.kind for f in ctx.fault_injector.injected]
        assert kinds == [FaultKind.TRANSIENT, FaultKind.TRANSIENT]
        # The budget is consumed: the next collective is clean.
        before = group.retries_attempted
        _one_all_gather(ctx)
        assert group.retries_attempted == before

    def test_transient_exhausts_into_permanent_failure(self, faulty_world):
        ctx = faulty_world(
            schedule=FaultSchedule([
                FaultEvent(kind=FaultKind.TRANSIENT, rank=0,
                           collective_index=0, failures=50)
            ])
        )
        group = dist.default_group()
        group.max_collective_retries = 3
        device = ctx.device
        shard = repro.empty(1024, device=device)
        out = repro.empty(WORLD * 1024, device=device)
        with pytest.raises(CollectiveFailedError) as exc_info:
            group.all_gather_into_tensor(out, shard)
        error = exc_info.value
        assert error.kind == "all_gather_base"
        assert error.attempts == 4  # initial try + 3 retries
        assert not error.retryable

    def test_hang_trips_watchdog_with_context(self, faulty_world):
        ctx = faulty_world(
            schedule=FaultSchedule([
                FaultEvent(kind=FaultKind.HANG, rank=0, collective_index=0)
            ]),
            timeout=0.25,
        )
        device = ctx.device
        group = dist.default_group()
        shard = repro.empty(1024, device=device)
        out = repro.empty(WORLD * 1024, device=device)
        before = device.now()
        with pytest.raises(CollectiveTimeoutError) as exc_info:
            group.all_gather_into_tensor(out, shard)
        error = exc_info.value
        assert error.kind == "all_gather_base"
        assert error.ranks == tuple(range(WORLD))
        assert error.timeout == 0.25
        assert error.pending_ops >= 1
        assert "all_gather_base" in str(error)
        # The watchdog charges exactly the deadline on the simulated clock.
        assert device.cpu_time() >= before + 0.25

    def test_slow_collective_beyond_deadline_times_out(self, faulty_world):
        ctx = faulty_world(
            schedule=FaultSchedule([
                FaultEvent(kind=FaultKind.DELAY, collective_index=0,
                           duration_factor=1e9)
            ]),
            timeout=0.5,
        )
        with pytest.raises(CollectiveTimeoutError):
            _one_all_gather(ctx)


class TestAllocatorPressure:
    def test_set_pressure_validates(self):
        device = Device("sim_gpu", index=0, capacity=1 << 20)
        with pytest.raises(ValueError):
            device.allocator.set_pressure(-1)

    def test_pressure_shrinks_usable_capacity(self):
        device = Device("sim_gpu", index=0, capacity=1 << 20)
        allocator = device.allocator
        assert allocator.usable_capacity == 1 << 20
        allocator.set_pressure(1 << 19)
        assert allocator.usable_capacity == 1 << 19
        allocator.set_pressure(1 << 21)
        assert allocator.usable_capacity == 0
        allocator.set_pressure(0)
        assert allocator.usable_capacity == 1 << 20

    def test_pressure_provokes_cudamalloc_retries(self):
        MiB = 1 << 20
        device = Device("sim_gpu", index=0, capacity=100 * MiB)
        allocator = device.allocator
        block = allocator.allocate(40 * MiB, device.default_stream)
        allocator.free(block)  # cached: 40 MiB reserved
        allocator.set_pressure(30 * MiB)
        # 60 MiB fits no cached block; the fresh cudaMalloc (40 + 60)
        # exceeds the 70 MiB usable capacity, so the allocator must
        # flush its cache and retry — the paper's fragmentation signal.
        allocator.allocate(60 * MiB, device.default_stream)
        assert allocator.memory_stats()["num_alloc_retries"] == 1
