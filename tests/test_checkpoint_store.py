"""repro.checkpoint: serialization, two-phase commit, integrity faults."""

import json

import numpy as np
import pytest

from repro import checkpoint as ck, dtypes
from repro.checkpoint.manifest import CheckpointManifest, ParamSpec, ShardEntry, UnitLayout
from repro.distributed import FaultEvent, FaultInjector, FaultKind, FaultSchedule
from repro.errors import CheckpointCorruptionError, CheckpointError
from repro.perf.trainer import CheckpointStore
from repro.tensor import tensor


def payload(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "model": {"flat_param.000.m": tensor(rng.standard_normal(12).astype(np.float32))},
        "optim": {
            "state": {
                "flat_param.000.m": {
                    "step": 3,
                    "exp_avg": tensor(rng.standard_normal(12).astype(np.float32)),
                }
            },
            "param_groups": [{"lr": 0.01}],
        },
        "shard_index": {"flat_param.000.m": 0},
    }


class TestSerialize:
    def test_round_trip_structure_and_values(self):
        original = payload(7)
        back = ck.deserialize_state(ck.serialize_state(original))
        np.testing.assert_array_equal(
            back["model"]["flat_param.000.m"].numpy(),
            original["model"]["flat_param.000.m"].numpy(),
        )
        entry = back["optim"]["state"]["flat_param.000.m"]
        assert entry["step"] == 3
        np.testing.assert_array_equal(
            entry["exp_avg"].numpy(),
            original["optim"]["state"]["flat_param.000.m"]["exp_avg"].numpy(),
        )
        assert back["optim"]["param_groups"][0]["lr"] == 0.01

    def test_round_trip_is_bitwise(self):
        blob = ck.serialize_state(payload(1))
        again = ck.serialize_state(ck.deserialize_state(blob))
        assert blob == again

    def test_scalars_lists_tuples_none(self):
        obj = {"a": [1, 2.5, None, True], "b": ("x", "y"), "c": "s"}
        back = ck.deserialize_state(ck.serialize_state(obj))
        assert back["a"] == [1, 2.5, None, True]
        assert back["b"] == ("x", "y")

    def test_bfloat16_storage_width(self):
        # bf16 is emulated in float32 storage: stored bytes exceed the
        # logical nbytes and the round trip must stay exact anyway.
        t = tensor(np.array([1.5, 2.25, -3.0], dtype=np.float32), dtype=dtypes.bfloat16)
        back = ck.deserialize_state(ck.serialize_state({"t": t}))
        assert back["t"].dtype is dtypes.bfloat16
        np.testing.assert_array_equal(back["t"].numpy(), t.numpy())

    def test_bad_magic_rejected(self):
        with pytest.raises(CheckpointError):
            ck.deserialize_state(b"NOTACKPT" + b"\x00" * 32)

    def test_truncated_blob_rejected(self):
        blob = ck.serialize_state(payload())
        with pytest.raises(CheckpointError):
            ck.deserialize_state(blob[: len(blob) // 3])

    def test_unserializable_type_rejected(self):
        with pytest.raises(CheckpointError):
            ck.serialize_state({"bad": object()})
        with pytest.raises(CheckpointError):
            ck.serialize_state({1: "non-string key"})


class TestManifest:
    def manifest(self):
        return CheckpointManifest(
            iteration=17,
            world_size=4,
            units=(
                UnitLayout(
                    key="flat_param.000.root",
                    label="root",
                    total_numel=100,
                    padded_numel=104,
                    factor=4,
                    shard_numel=26,
                    dtype="float32",
                    params=(ParamSpec(fqn="0.weight", shape=(10, 10), numel=100, offset=0),),
                ),
            ),
            shards=(
                ShardEntry(path="ckpt/00000017/s0", rank=0, nbytes=10, crc32=123),
            ),
            extras={"note": "x"},
        )

    def test_json_round_trip(self):
        m = self.manifest()
        back = CheckpointManifest.from_json(m.to_json())
        assert back == m

    def test_unparseable_manifest_is_typed_error(self):
        with pytest.raises(CheckpointError):
            CheckpointManifest.from_json("{torn json")
        with pytest.raises(CheckpointError):
            CheckpointManifest.from_json(json.dumps({"iteration": 1}))

    def test_shard_for_rank(self):
        m = self.manifest()
        assert m.shard_for_rank(0).crc32 == 123
        with pytest.raises(CheckpointError):
            m.shard_for_rank(3)


class TestTwoPhaseCommit:
    def test_commit_requires_all_shards(self):
        store = ck.DistributedCheckpointStore()
        blob = ck.serialize_state(payload())
        store.save_shard(iteration=1, rank=0, world_size=2, blob=blob)
        assert store.latest() is None  # phase 1 only: uncommitted
        store.save_shard(iteration=1, rank=1, world_size=2, blob=blob)
        assert store.latest() == 1
        # Commit ordering is observable: checksums + manifest written last.
        assert store.storage.exists(store.checksums_path(1))
        assert store.storage.exists(store.manifest_path(1))

    def test_world_size_mismatch_rejected(self):
        store = ck.DistributedCheckpointStore()
        blob = ck.serialize_state(payload())
        store.save_shard(iteration=1, rank=0, world_size=2, blob=blob)
        with pytest.raises(CheckpointError):
            store.save_shard(iteration=1, rank=1, world_size=3, blob=blob)

    def test_latest_prefers_newest_committed(self):
        store = ck.DistributedCheckpointStore()
        blob = ck.serialize_state(payload())
        for iteration in (1, 2, 3):
            store.save_shard(iteration=iteration, rank=0, world_size=1, blob=blob)
        assert store.committed_iterations() == [1, 2, 3]
        assert store.latest() == 3

    def test_load_round_trips_payload(self):
        store = ck.DistributedCheckpointStore()
        original = payload(5)
        store.save_shard(
            iteration=2, rank=0, world_size=1, blob=ck.serialize_state(original)
        )
        back = store.load_shard(2, 0)
        np.testing.assert_array_equal(
            back["model"]["flat_param.000.m"].numpy(),
            original["model"]["flat_param.000.m"].numpy(),
        )


def _store_with_fault(kind, iteration=2, rank=0):
    schedule = FaultSchedule(
        [FaultEvent(kind=kind, rank=rank, iteration=iteration)], seed=11
    )
    injector = FaultInjector(schedule)
    return ck.DistributedCheckpointStore(injector=injector), injector


class TestStorageFaults:
    @pytest.mark.parametrize(
        "kind", [FaultKind.TORN_WRITE, FaultKind.BIT_CORRUPTION, FaultKind.LOST_SHARD]
    )
    def test_damage_is_silent_until_verify(self, kind):
        """The checkpoint commits (manifest lands) but verification fails:
        last *complete* and last *verified-good* genuinely differ."""
        store, injector = _store_with_fault(kind)
        blob = ck.serialize_state(payload())
        for iteration in (1, 2):
            for rank in range(2):
                store.save_shard(
                    iteration=iteration, rank=rank, world_size=2, blob=blob
                )
        # Both iterations committed — the damage is not visible yet.
        assert store.committed_iterations() == [1, 2]
        assert store.latest(verify=False) == 2
        # Verified scan: iteration 2 is quarantined, falls back to 1.
        assert store.latest() == 1
        assert 2 in store.quarantined
        assert any(f.kind is kind for f in injector.injected)

    def test_corrupted_shard_load_raises_typed_error(self):
        store, _ = _store_with_fault(FaultKind.BIT_CORRUPTION)
        blob = ck.serialize_state(payload())
        for iteration in (1, 2):
            store.save_shard(iteration=iteration, rank=0, world_size=1, blob=blob)
        with pytest.raises(CheckpointCorruptionError) as info:
            store.load_shard(2, 0)
        assert info.value.iteration == 2
        assert info.value.expected_crc != info.value.actual_crc
        assert 2 in store.quarantined
        # The older checkpoint still loads.
        assert store.load_shard(1, 0) is not None

    def test_lost_shard_detected(self):
        store, _ = _store_with_fault(FaultKind.LOST_SHARD)
        blob = ck.serialize_state(payload())
        for iteration in (1, 2):
            store.save_shard(iteration=iteration, rank=0, world_size=1, blob=blob)
        with pytest.raises(CheckpointCorruptionError):
            store.load_shard(2, 0)

    def test_resave_repairs_quarantined_iteration(self):
        store, _ = _store_with_fault(FaultKind.TORN_WRITE)
        blob = ck.serialize_state(payload())
        store.save_shard(iteration=2, rank=0, world_size=1, blob=blob)
        assert store.latest() is None
        assert 2 in store.quarantined
        # Storage events are one-shot: a re-save lands cleanly and
        # un-quarantines the iteration.
        store.save_shard(iteration=2, rank=0, world_size=1, blob=blob)
        assert store.latest() == 2
        assert 2 not in store.quarantined

    def test_fault_is_one_shot_per_rank(self):
        store, injector = _store_with_fault(FaultKind.BIT_CORRUPTION, rank=1)
        blob = ck.serialize_state(payload())
        for rank in range(3):
            store.save_shard(iteration=2, rank=rank, world_size=3, blob=blob)
        assert store.latest() is None  # rank 1's shard is damaged
        assert len([f for f in injector.injected if f.kind is FaultKind.BIT_CORRUPTION]) == 1


class TestRandomScheduleStorageEvents:
    def test_random_generates_storage_kinds(self):
        schedule = FaultSchedule.random(
            seed=3,
            world_size=4,
            iterations=10,
            stragglers=0,
            delays=0,
            transients=0,
            torn_writes=2,
            corruptions=1,
            lost_shards=1,
        )
        kinds = [e.kind for e in schedule.storage_events()]
        assert kinds.count(FaultKind.TORN_WRITE) == 2
        assert kinds.count(FaultKind.BIT_CORRUPTION) == 1
        assert kinds.count(FaultKind.LOST_SHARD) == 1
        assert not schedule.timing_only()
        # Pure function of the seed.
        again = FaultSchedule.random(
            seed=3,
            world_size=4,
            iterations=10,
            stragglers=0,
            delays=0,
            transients=0,
            torn_writes=2,
            corruptions=1,
            lost_shards=1,
        )
        assert again == schedule


class TestLegacyCheckpointStore:
    def test_latest_keys_completeness_by_save_time_world_size(self):
        """Regression: a shrink after a partial save must not turn a torn
        iteration complete just because fewer shards now suffice."""
        store = CheckpointStore()
        for rank in range(3):
            store.save(1, rank, {"m": rank}, {"o": rank}, world_size=3)
        store.save(2, 0, {"m": 0}, {"o": 0}, world_size=3)  # torn: 1 of 3
        # Caller now thinks the world is 1 — iteration 2 must stay torn.
        assert store.latest(world_size=1) == 1
        assert store.latest(world_size=3) == 1
        for rank in (1, 2):
            store.save(2, rank, {"m": rank}, {"o": rank}, world_size=3)
        assert store.latest(world_size=1) == 2
