"""Extension features: summon_full_params, CPU offload, BACKWARD_POST."""

import numpy as np
import pytest

import repro
from repro import distributed as dist, nn
from repro.autograd import no_grad
from repro.fsdp import (
    BackwardPrefetch,
    CPUOffload,
    FullyShardedDataParallel as FSDP,
    ModuleWrapPolicy,
)
from repro.optim import SGD
from tests.conftest import copy_weights, grads_of, snapshot_weights, unflatten_handle_grads


def build():
    return nn.Sequential(nn.Linear(6, 10), nn.GELU(), nn.Linear(10, 4))


def reference():
    repro.manual_seed(41)
    model = build()
    return snapshot_weights(model)


class TestSummonFullParams:
    def test_views_valid_inside_context(self):
        state0 = reference()

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            first = model._modules["0"].module  # inside the nested wrapper
            with wrapped.summon_full_params():
                got = first.weight.numpy().copy()
            np.testing.assert_allclose(got, state0["0.weight"], atol=1e-6)
            # Resharded again outside.
            assert all(
                not h.is_unsharded for h in wrapped.flat_handles if h.needs_unshard
            )

        dist.spawn(fn, 4)

    def test_writeback_persists_edits(self):
        state0 = reference()

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            first = model._modules["0"].module  # inside the nested wrapper
            with wrapped.summon_full_params(writeback=True), no_grad():
                first.weight.fill_(3.5)
            from repro.fsdp.state_dict import full_state_dict

            sd = full_state_dict(wrapped)
            return sd["0.weight"].numpy()

        for weight in dist.spawn(fn, 4):
            np.testing.assert_allclose(weight, np.full((10, 6), 3.5), atol=1e-6)

    def test_no_writeback_discards_edits(self):
        state0 = reference()

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            first = model._modules["0"].module  # inside the nested wrapper
            with wrapped.summon_full_params(writeback=False), no_grad():
                first.weight.fill_(3.5)
            from repro.fsdp.state_dict import full_state_dict

            return full_state_dict(wrapped)["0.weight"].numpy()

        for weight in dist.spawn(fn, 4):
            np.testing.assert_allclose(weight, state0["0.weight"], atol=1e-6)

    def test_summon_before_first_forward(self):
        state0 = reference()

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            with wrapped.summon_full_params():
                pass  # must not require lazy root init

        dist.spawn(fn, 2)


class TestCpuOffload:
    def test_shard_lives_on_host(self):
        state0 = reference()

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
                cpu_offload=CPUOffload(offload_params=True),
            )
            for handle in wrapped.flat_handles:
                assert handle.flat_param.device.is_cpu
                assert handle._local_shard.device.is_cpu

        dist.spawn(fn, 2)

    def test_gradients_match_non_offloaded(self):
        state0 = reference()
        repro.manual_seed(77)
        xs = repro.randn(4, 6).numpy()
        ys = repro.randn(4, 4).numpy()

        def worker_factory(offload):
            def fn(rank):
                model = build()
                copy_weights(model, state0)
                device = dist.get_device()
                wrapped = FSDP(
                    model,
                    device=device,
                    auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
                    cpu_offload=CPUOffload(offload_params=True) if offload else None,
                )
                n = 2
                x = repro.tensor(xs[rank * n : (rank + 1) * n], device=device)
                y = repro.tensor(ys[rank * n : (rank + 1) * n], device=device)
                out = wrapped(x)
                nn.functional.mse_loss(out, y).backward()
                return {
                    k: g for k, g in unflatten_handle_grads(wrapped).items()
                }

            return fn

        plain = dist.spawn(worker_factory(False), 2)
        offloaded = dist.spawn(worker_factory(True), 2)
        for p, o in zip(plain, offloaded):
            for key in p:
                np.testing.assert_allclose(p[key], o[key], atol=1e-5)

    def test_training_step_on_host_shards(self):
        state0 = reference()

        def fn(rank):
            model = build()
            copy_weights(model, state0)
            device = dist.get_device()
            wrapped = FSDP(
                model,
                device=device,
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
                cpu_offload=CPUOffload(offload_params=True),
            )
            opt = SGD(wrapped.parameters(), lr=0.1)
            x = repro.randn(2, 6, device=device)
            wrapped(x).sum().backward()
            before = wrapped.flat_handles[0]._local_shard.numpy().copy()
            opt.step()
            after = wrapped.flat_handles[0]._local_shard.numpy()
            assert not np.allclose(before, after), "host shard must be updated"
            # Next forward gathers the updated values without error.
            wrapped.zero_grad()
            wrapped(x).sum().backward()

        dist.spawn(fn, 2)

    def test_offload_reduces_device_memory_at_rest(self):
        def fn(rank):
            import gc

            device = dist.get_device()
            results = {}
            for offload in (False, True):
                model = nn.Linear(128, 128, bias=False)
                wrapped = FSDP(
                    model,
                    device=device,
                    cpu_offload=CPUOffload(offload_params=True) if offload else None,
                )
                gc.collect()
                results[offload] = device.memory_stats()[
                    "allocated_bytes.all.current"
                ]
                del wrapped, model
                gc.collect()
            return results

        for results in dist.spawn(fn, 2):
            assert results[True] < results[False]

    def test_offload_with_mixed_precision(self):
        from repro.fsdp import BF16_MIXED

        def fn(rank):
            model = build()
            device = dist.get_device()
            wrapped = FSDP(
                model,
                device=device,
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
                mixed_precision=BF16_MIXED,
                cpu_offload=CPUOffload(offload_params=True),
            )
            x = repro.randn(2, 6, device=device)
            wrapped(x).sum().backward()
            for handle in wrapped.flat_handles:
                assert handle.flat_param.grad is not None
                assert handle.flat_param.grad.device.is_cpu

        dist.spawn(fn, 2)


class TestBackwardPostPrefetch:
    def test_numerics_unchanged(self):
        state0 = reference()
        repro.manual_seed(88)
        xs = repro.randn(4, 6).numpy()

        def worker_factory(prefetch):
            def fn(rank):
                model = build()
                copy_weights(model, state0)
                device = dist.get_device()
                wrapped = FSDP(
                    model,
                    device=device,
                    auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
                    backward_prefetch=prefetch,
                )
                x = repro.tensor(xs[rank * 2 : rank * 2 + 2], device=device)
                wrapped(x).sum().backward()
                return unflatten_handle_grads(wrapped)

            return fn

        pre = dist.spawn(worker_factory(BackwardPrefetch.BACKWARD_PRE), 2)
        post = dist.spawn(worker_factory(BackwardPrefetch.BACKWARD_POST), 2)
        for a, b in zip(pre, post):
            for key in a:
                np.testing.assert_allclose(a[key], b[key], atol=1e-6)

    def test_post_issues_after_reduce(self):
        def fn(rank):
            model = nn.Sequential(*[nn.Linear(8, 8) for _ in range(3)])
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
                backward_prefetch=BackwardPrefetch.BACKWARD_POST,
            )
            x = repro.randn(2, 8, device=dist.get_device())
            wrapped(x).sum().backward()
            for handle in wrapped.flat_handles:
                assert handle._saved_grad_shard is None  # restored
                assert handle.flat_param.grad is not None

        dist.spawn(fn, 2)
