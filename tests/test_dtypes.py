"""Unit tests for dtype machinery, including bfloat16 emulation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import dtypes


class TestDtypeBasics:
    def test_itemsizes(self):
        assert dtypes.float32.itemsize == 4
        assert dtypes.float16.itemsize == 2
        assert dtypes.bfloat16.itemsize == 2
        assert dtypes.int64.itemsize == 8
        assert dtypes.bool_.itemsize == 1

    def test_bfloat16_stored_as_float32(self):
        assert dtypes.bfloat16.np_dtype == np.dtype(np.float32)

    def test_floating_flags(self):
        assert dtypes.float32.is_floating
        assert dtypes.bfloat16.is_floating
        assert not dtypes.int64.is_floating
        assert not dtypes.bool_.is_floating

    def test_lookup_by_name(self):
        assert dtypes.get("bfloat16") is dtypes.bfloat16
        with pytest.raises(ValueError):
            dtypes.get("float8")

    def test_from_numpy(self):
        assert dtypes.from_numpy_dtype(np.float32) is dtypes.float32
        assert dtypes.from_numpy_dtype(np.int64) is dtypes.int64
        with pytest.raises(ValueError):
            dtypes.from_numpy_dtype(np.complex64)


class TestPromotion:
    def test_same_dtype(self):
        assert dtypes.result_type(dtypes.float32, dtypes.float32) is dtypes.float32

    def test_float_beats_int(self):
        assert dtypes.result_type(dtypes.float16, dtypes.int64) is dtypes.float16
        assert dtypes.result_type(dtypes.int32, dtypes.bfloat16) is dtypes.bfloat16

    def test_float_ranks(self):
        assert dtypes.result_type(dtypes.bfloat16, dtypes.float32) is dtypes.float32
        assert dtypes.result_type(dtypes.float16, dtypes.bfloat16) is dtypes.bfloat16
        assert dtypes.result_type(dtypes.float64, dtypes.float32) is dtypes.float64

    def test_int_widths(self):
        assert dtypes.result_type(dtypes.int32, dtypes.int64) is dtypes.int64


class TestBfloat16Quantization:
    def test_exactly_representable(self):
        # Powers of two and small integers are exact in bfloat16.
        values = np.array([0.0, 1.0, -2.0, 0.5, 256.0], dtype=np.float32)
        out = dtypes.quantize(values, dtypes.bfloat16)
        np.testing.assert_array_equal(out, values)

    def test_rounding_error_bound(self):
        # bf16 has 8 mantissa bits: relative error <= 2^-8.
        values = np.linspace(0.1, 10.0, 1000).astype(np.float32)
        out = dtypes.quantize(values, dtypes.bfloat16)
        rel = np.abs(out - values) / np.abs(values)
        assert rel.max() <= 2.0**-8

    def test_nan_preserved(self):
        values = np.array([np.nan, 1.0], dtype=np.float32)
        out = dtypes.quantize(values, dtypes.bfloat16)
        assert np.isnan(out[0]) and out[1] == 1.0

    def test_inf_preserved(self):
        values = np.array([np.inf, -np.inf], dtype=np.float32)
        out = dtypes.quantize(values, dtypes.bfloat16)
        assert np.isinf(out).all()

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_idempotent(self, value):
        once = dtypes.quantize(np.array([value], dtype=np.float32), dtypes.bfloat16)
        twice = dtypes.quantize(once, dtypes.bfloat16)
        np.testing.assert_array_equal(once, twice)

    @given(st.floats(min_value=1.000000045813705e-18, max_value=9.999999843067494e+17, allow_nan=False, width=32))
    def test_sign_and_magnitude(self, value):
        out = dtypes.quantize(np.array([value], dtype=np.float32), dtypes.bfloat16)[0]
        assert out >= 0
        # within half a ulp of bf16
        assert abs(out - value) <= max(abs(value) * 2.0**-8, 1e-38)

    def test_low_16_bits_cleared(self):
        values = np.random.default_rng(0).normal(size=100).astype(np.float32)
        out = dtypes.quantize(values, dtypes.bfloat16)
        bits = out.view(np.uint32)
        assert (bits & 0xFFFF == 0).all()

    def test_float16_quantize(self):
        values = np.array([1.0, 2.5, 65504.0], dtype=np.float32)
        out = dtypes.quantize(values, dtypes.float16)
        assert out.dtype == np.float16
