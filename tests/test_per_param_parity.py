"""Differential lockdown of the per-parameter backend (fully_shard v2).

Three implementations of the same data-parallel math are run on
identical weights and batches and compared BITWISE wherever the §3.1
equivalence argument applies:

- ``fully_shard(..., backend="per_param")`` — dim-0 per-parameter
  sharding with batched copy-in/copy-out collectives;
- ``fully_shard(..., backend="flat_param")`` — the paper's
  flatten-concat-chunk design;
- DDP — the bucketed-AllReduce baseline.

All three combine reduction payloads elementwise in float64 and
quantize once to the wire dtype, so losses, gradients, final
parameters AND Adam optimizer state must agree exactly (``==``), not
within a tolerance — across world sizes {1, 2, 4}, FULL_SHARD /
SHARD_GRAD_OP / HYBRID_SHARD, mixed precision on and off, and on
minGPT-style and T5-style transformer blocks as well as
hypothesis-generated MLPs.

Known non-bitwise cases (inherited from the flat backend, see
``test_fsdp_equivalence``): HYBRID_SHARD vs DDP rounds between its two
reduction stages (per-param vs flat stays bitwise); mixed precision vs
the FP32 DDP baseline differs by construction (per-param vs flat
stays bitwise).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro import distributed as dist, nn
from repro.ddp import DistributedDataParallel as DDP
from repro.fsdp import BF16_MIXED, ShardingStrategy, fully_shard
from repro.fsdp.optim_state import full_optim_state_dict
from repro.fsdp.state_dict import full_state_dict
from repro.models.transformer import TransformerBlock
from repro.optim import SGD, Adam
from tests.conftest import copy_weights, snapshot_weights

BATCH = 8
D_MODEL = 16


# ----------------------------------------------------------------------
# Model zoo
# ----------------------------------------------------------------------
def _mlp_builder(d_in, d_h, d_out, depth):
    def build():
        layers = [nn.Linear(d_in, d_h), nn.Tanh()]
        for _ in range(depth - 1):
            layers += [nn.Linear(d_h, d_h), nn.GELU()]
        layers.append(nn.Linear(d_h, d_out))
        return nn.Sequential(*layers)

    return build


def _gpt_block_builder():
    """minGPT-style block: causal self-attention + MLP, pre-norm."""
    return lambda: TransformerBlock(D_MODEL, num_heads=2, d_ff=32, causal=True)


class _T5BlockModel(nn.Module):
    """T5-style decoder block: self-attention + cross-attention + MLP.

    Feeds the input back as the encoder memory so the cross-attention
    branch actually runs (unused parameters are a semantic difference
    between the backends by design: flat-param folds them into the
    flat buffer and the optimizer steps them with zero gradient,
    per-param skips them exactly like DDP does).
    """

    def __init__(self):
        super().__init__()
        self.block = TransformerBlock(D_MODEL, num_heads=2, d_ff=32, cross_attention=True)

    def forward(self, x):
        return self.block(x, context=x)


def _t5_block_builder():
    return _T5BlockModel


def _make_case(build, d_in, d_out, *, seq=False):
    repro.manual_seed(101)
    if seq:
        xs = repro.randn(BATCH, 4, d_in).numpy()
        ys = repro.randn(BATCH, 4, d_out).numpy()
    else:
        xs = repro.randn(BATCH, d_in).numpy()
        ys = repro.randn(BATCH, d_out).numpy()
    repro.manual_seed(7)
    state0 = snapshot_weights(build())
    return state0, xs, ys


def _shard_batch(xs, ys, rank, world):
    n = len(xs) // world
    return xs[rank * n : (rank + 1) * n], ys[rank * n : (rank + 1) * n]


# ----------------------------------------------------------------------
# Workers
# ----------------------------------------------------------------------
def _optim_state_numpy(osd):
    out = {}
    for fqn, state in osd["state"].items():
        out[fqn] = {
            k: (v.numpy().copy() if hasattr(v, "numpy") else v)
            for k, v in state.items()
        }
    return out


def _train(model, opt, xs, ys, rank, world, steps):
    device = dist.get_device()
    x, y = _shard_batch(xs, ys, rank, world)
    x = repro.tensor(x, device=device)
    y = repro.tensor(y, device=device)
    losses = []
    for _ in range(steps):
        opt.zero_grad()
        loss = nn.functional.mse_loss(model(x), y)
        loss.backward()
        losses.append(float(loss.numpy()))
        opt.step()
    return losses


def sharded_worker(
    build,
    state0,
    xs,
    ys,
    *,
    backend,
    world,
    steps=2,
    strategy=ShardingStrategy.FULL_SHARD,
    sharding_factor=None,
    mixed_precision=None,
    optimizer="sgd",
    wrap=None,
    lr=0.05,
):
    """Train under ``fully_shard(backend=...)``; return full-state views."""

    def worker(rank):
        model = build()
        copy_weights(model, state0)
        device = dist.get_device()
        kwargs = dict(
            backend=backend,
            device=device,
            sharding_strategy=strategy,
            sharding_factor=sharding_factor,
            mixed_precision=mixed_precision,
        )
        if wrap is not None:
            for path, sub in reversed(list(model.named_modules())):
                if sub is not model and wrap(sub):
                    fully_shard(sub, label=path, **kwargs)
        fully_shard(model, **kwargs)
        params = list(model.parameters())
        opt = SGD(params, lr=lr) if optimizer == "sgd" else Adam(params, lr=lr)
        losses = _train(model, opt, xs, ys, rank, world, steps)
        sd = {k: v.numpy().copy() for k, v in full_state_dict(model).items()}
        osd = _optim_state_numpy(full_optim_state_dict(model, opt))
        return losses, sd, osd

    return worker


def ddp_worker(build, state0, xs, ys, *, world, steps=2, optimizer="sgd", lr=0.05):
    def worker(rank):
        model = build()
        copy_weights(model, state0)
        ddp = DDP(model, broadcast_parameters=False)
        params = list(ddp.parameters())
        opt = SGD(params, lr=lr) if optimizer == "sgd" else Adam(params, lr=lr)
        losses = _train(ddp, opt, xs, ys, rank, world, steps)
        return losses, snapshot_weights(model)

    return worker


def assert_states_bitwise(a, b, *, context=""):
    assert a.keys() == b.keys(), context
    for name in a:
        assert np.array_equal(a[name], b[name]), f"{context}: param {name} differs"


def assert_optim_bitwise(a, b, *, context=""):
    assert a.keys() == b.keys(), context
    for fqn in a:
        assert a[fqn].keys() == b[fqn].keys(), f"{context}: {fqn}"
        for key in a[fqn]:
            va, vb = a[fqn][key], b[fqn][key]
            if isinstance(va, np.ndarray):
                assert np.array_equal(va, vb), f"{context}: {fqn}.{key} differs"
            else:
                assert va == vb, f"{context}: {fqn}.{key} differs"


def run_three_way(
    build,
    state0,
    xs,
    ys,
    *,
    world,
    wrap=None,
    strategy=ShardingStrategy.FULL_SHARD,
    sharding_factor=None,
    mixed_precision=None,
    optimizer="sgd",
    steps=2,
    ddp_bitwise=True,
):
    """per_param vs flat_param (always bitwise) vs DDP."""
    common = dict(
        world=world,
        steps=steps,
        strategy=strategy,
        sharding_factor=sharding_factor,
        mixed_precision=mixed_precision,
        optimizer=optimizer,
        wrap=wrap,
    )
    perp = dist.spawn(
        sharded_worker(build, state0, xs, ys, backend="per_param", **common), world
    )
    flat = dist.spawn(
        sharded_worker(build, state0, xs, ys, backend="flat_param", **common), world
    )
    for rank, ((pl, psd, posd), (fl, fsd, fosd)) in enumerate(zip(perp, flat)):
        assert pl == fl, f"rank {rank} losses diverged: {pl} vs {fl}"
        assert_states_bitwise(psd, fsd, context=f"rank {rank} per_param vs flat")
        assert_optim_bitwise(posd, fosd, context=f"rank {rank} per_param vs flat")
    if mixed_precision is None:
        ddp = dist.spawn(
            ddp_worker(build, state0, xs, ys, world=world, steps=steps, optimizer=optimizer),
            world,
        )
        for rank, ((pl, psd, _), (dl, dsd)) in enumerate(zip(perp, ddp)):
            if ddp_bitwise:
                assert pl == dl, f"rank {rank} losses diverged from DDP"
                assert_states_bitwise(psd, dsd, context=f"rank {rank} per_param vs DDP")
            else:
                np.testing.assert_allclose(pl, dl, atol=1e-6)
                for name in psd:
                    np.testing.assert_allclose(
                        psd[name], dsd[name], atol=1e-6, err_msg=f"param {name}"
                    )
    return perp


# ----------------------------------------------------------------------
# Hypothesis campaign: MLPs under every strategy
# ----------------------------------------------------------------------
class TestHypothesisCampaign:
    @pytest.mark.parametrize(
        "strategy",
        [
            ShardingStrategy.FULL_SHARD,
            ShardingStrategy.SHARD_GRAD_OP,
            ShardingStrategy.HYBRID_SHARD,
        ],
    )
    @settings(deadline=None, max_examples=4)
    @given(
        d_in=st.integers(2, 9),
        d_h=st.integers(3, 13),
        d_out=st.integers(1, 5),
        depth=st.integers(1, 2),
        optimizer=st.sampled_from(["sgd", "adam"]),
    )
    def test_mlp_three_way_bitwise(self, strategy, d_in, d_h, d_out, depth, optimizer):
        """Random odd layer widths hit uneven dim-0 chunks constantly."""
        build = _mlp_builder(d_in, d_h, d_out, depth)
        state0, xs, ys = _make_case(build, d_in, d_out)
        hybrid = strategy is ShardingStrategy.HYBRID_SHARD
        run_three_way(
            build,
            state0,
            xs,
            ys,
            world=4,
            wrap=lambda m: isinstance(m, nn.Linear),
            strategy=strategy,
            sharding_factor=2 if hybrid else None,
            optimizer=optimizer,
            # HYBRID's two-stage reduce rounds between stages, so DDP
            # agreement is to f32 round-off; per_param vs flat is still
            # asserted bitwise inside run_three_way.
            ddp_bitwise=not hybrid,
        )


# ----------------------------------------------------------------------
# World-size sweep
# ----------------------------------------------------------------------
class TestWorldSizes:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_world_sweep_bitwise(self, world):
        """Includes W=1 (degenerate mesh) and uneven 13-wide layers."""
        build = _mlp_builder(6, 13, 3, 2)
        state0, xs, ys = _make_case(build, 6, 3)
        run_three_way(
            build,
            state0,
            xs,
            ys,
            world=world,
            wrap=lambda m: isinstance(m, nn.Linear),
            optimizer="adam",
        )

    @pytest.mark.parametrize("world", [2, 4])
    def test_params_smaller_than_world(self, world):
        """dim-0 smaller than the shard group: some ranks hold nothing."""
        build = _mlp_builder(5, 2, 1, 1)
        state0, xs, ys = _make_case(build, 5, 1)
        run_three_way(
            build,
            state0,
            xs,
            ys,
            world=world,
            wrap=lambda m: isinstance(m, nn.Linear),
        )


# ----------------------------------------------------------------------
# Transformer blocks (minGPT- and T5-style) with Adam state
# ----------------------------------------------------------------------
class TestTransformerBlocks:
    def test_mingpt_block_bitwise(self):
        build = _gpt_block_builder()
        state0, xs, ys = _make_case(build, D_MODEL, D_MODEL, seq=True)
        run_three_way(build, state0, xs, ys, world=4, optimizer="adam")

    def test_t5_block_bitwise(self):
        build = _t5_block_builder()
        state0, xs, ys = _make_case(build, D_MODEL, D_MODEL, seq=True)
        run_three_way(build, state0, xs, ys, world=4, optimizer="adam")

    def test_mingpt_block_nested_units_bitwise(self):
        """Attention/MLP sub-units under a root unit (composability)."""
        from repro.models.transformer import FeedForward, MultiHeadAttention

        build = _gpt_block_builder()
        state0, xs, ys = _make_case(build, D_MODEL, D_MODEL, seq=True)
        run_three_way(
            build,
            state0,
            xs,
            ys,
            world=4,
            wrap=lambda m: isinstance(m, (MultiHeadAttention, FeedForward)),
            optimizer="adam",
        )


# ----------------------------------------------------------------------
# Mixed precision: per_param vs flat stays bitwise in bf16
# ----------------------------------------------------------------------
class TestMixedPrecision:
    @pytest.mark.parametrize("world", [2, 4])
    def test_bf16_backend_parity_bitwise(self, world):
        """Both backends quantize parameters/reductions to bf16
        elementwise, so backend parity must survive mixed precision
        bitwise (the FP32 DDP baseline does not apply)."""
        build = _mlp_builder(6, 13, 3, 2)
        state0, xs, ys = _make_case(build, 6, 3)
        run_three_way(
            build,
            state0,
            xs,
            ys,
            world=world,
            wrap=lambda m: isinstance(m, nn.Linear),
            mixed_precision=BF16_MIXED,
        )

    def test_bf16_gpt_block_bitwise(self):
        build = _gpt_block_builder()
        state0, xs, ys = _make_case(build, D_MODEL, D_MODEL, seq=True)
        run_three_way(
            build, state0, xs, ys, world=4, mixed_precision=BF16_MIXED, optimizer="adam"
        )


# ----------------------------------------------------------------------
# foreach Adam: multi-tensor fast path is bitwise-identical
# ----------------------------------------------------------------------
class TestForeachOptimizer:
    def test_foreach_adam_bitwise_vs_per_tensor(self):
        """`Adam(foreach=True)` fuses the launches, not the math."""
        build = _mlp_builder(6, 13, 3, 2)
        state0, xs, ys = _make_case(build, 6, 3)

        def worker_factory(foreach):
            def worker(rank):
                model = build()
                copy_weights(model, state0)
                device = dist.get_device()
                for path, sub in reversed(list(model.named_modules())):
                    if sub is not model and isinstance(sub, nn.Linear):
                        fully_shard(sub, label=path, backend="per_param", device=device)
                fully_shard(model, backend="per_param", device=device)
                opt = Adam(model.parameters(), lr=0.05, foreach=foreach)
                losses = _train(model, opt, xs, ys, rank, 4, steps=3)
                sd = {k: v.numpy().copy() for k, v in full_state_dict(model).items()}
                osd = _optim_state_numpy(full_optim_state_dict(model, opt))
                return losses, sd, osd

            return worker

        base = dist.spawn(worker_factory(False), 4)
        fused = dist.spawn(worker_factory(True), 4)
        for rank, ((bl, bsd, bosd), (fl, fsd, fosd)) in enumerate(zip(base, fused)):
            assert bl == fl, f"rank {rank} foreach losses diverged"
            assert_states_bitwise(bsd, fsd, context=f"rank {rank} foreach")
            assert_optim_bitwise(bosd, fosd, context=f"rank {rank} foreach")
