"""Property tests for the shared percentile helper (repro.perf.metrics).

``LatencyHistogram`` is the one histogram behind every latency report
(serving SLOs, benchmark tables), so its two regimes are locked down
against sorted-list ground truth:

- below ``exact_limit`` samples, percentiles are *bitwise* nearest-rank
  (the exact-small-n guarantee the serving tests rely on);
- beyond the limit, the bucketed estimate brackets the true value:
  never below it, and above by at most one bucket's relative width.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.perf.metrics import LatencyHistogram, nearest_rank

latencies = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
)
percentiles = st.sampled_from([1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0])


def ground_truth(samples, q):
    return nearest_rank(sorted(samples), q)


class TestNearestRank:
    def test_single_sample(self):
        assert nearest_rank([42.0], 50) == 42.0
        assert nearest_rank([42.0], 99) == 42.0

    def test_matches_numpy_on_round_ranks(self):
        # For q*n/100 integral, nearest-rank equals the classic
        # inclusive definition.
        samples = sorted(range(100))
        assert nearest_rank(samples, 50) == 49
        assert nearest_rank(samples, 99) == 98
        assert nearest_rank(samples, 100) == 99

    def test_rejects_empty_and_bad_q(self):
        with pytest.raises(ValueError):
            nearest_rank([], 50)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 0.0)
        with pytest.raises(ValueError):
            nearest_rank([1.0], 101.0)


class TestExactRegime:
    @given(st.lists(latencies, min_size=1, max_size=200), percentiles)
    @settings(max_examples=200, deadline=None)
    def test_bitwise_nearest_rank(self, samples, q):
        hist = LatencyHistogram(exact_limit=4096)
        hist.extend(samples)
        assert hist.exact
        assert hist.percentile(q) == ground_truth(samples, q)

    @given(st.lists(latencies, min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_count_mean_extrema(self, samples):
        hist = LatencyHistogram()
        hist.extend(samples)
        assert hist.count == len(samples)
        assert hist.max == max(samples)
        assert hist.min == min(samples)
        assert hist.mean == pytest.approx(float(np.mean(samples)), rel=1e-9, abs=1e-12)

    def test_insertion_order_irrelevant(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        samples = [0.5, 0.01, 3.0, 0.01, 7.5, 0.2]
        a.extend(samples)
        b.extend(reversed(samples))
        for q in (50, 95, 99):
            assert a.percentile(q) == b.percentile(q)


class TestBucketedRegime:
    @given(
        st.lists(
            st.floats(min_value=1e-5, max_value=100.0, allow_nan=False),
            min_size=40,
            max_size=120,
        ),
        percentiles,
    )
    @settings(max_examples=100, deadline=None)
    def test_brackets_ground_truth(self, samples, q):
        # Tiny exact window so the fold path is exercised.
        hist = LatencyHistogram(exact_limit=8, resolution=0.01)
        hist.extend(samples)
        assert not hist.exact
        true = ground_truth(samples, q)
        got = hist.percentile(q)
        # Bucketed percentiles report the bucket's upper edge: never an
        # underestimate, and high by at most one relative-width step.
        assert got >= true * (1.0 - 1e-12)
        assert got <= min(true * (1.0 + hist.resolution) + 1e-12, hist.max)

    def test_fold_preserves_count_and_total(self):
        hist = LatencyHistogram(exact_limit=4)
        samples = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6]
        hist.extend(samples)
        assert not hist.exact
        assert hist.count == len(samples)
        assert hist.total == pytest.approx(sum(samples))

    def test_sub_floor_values_share_bucket_zero(self):
        hist = LatencyHistogram(exact_limit=1)
        hist.extend([0.0, 1e-9, 1e-7])
        assert hist.percentile(99) <= LatencyHistogram.FLOOR


class TestMerge:
    def test_exact_merge_stays_exact(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.extend([1.0, 2.0])
        b.extend([3.0])
        a.merge(b)
        assert a.exact
        assert a.percentile(100) == 3.0
        assert a.count == 3

    def test_bucketed_merge_accumulates(self):
        a = LatencyHistogram(exact_limit=2)
        b = LatencyHistogram(exact_limit=2)
        a.extend([0.1, 0.2, 0.3])
        b.extend([0.4, 0.5, 0.6])
        a.merge(b)
        assert a.count == 6
        assert a.max == 0.6
        assert a.percentile(100) == pytest.approx(0.6, rel=0.02)

    def test_resolution_mismatch_rejected(self):
        a = LatencyHistogram(exact_limit=1, resolution=0.01)
        b = LatencyHistogram(exact_limit=1, resolution=0.02)
        a.extend([1.0, 2.0])
        b.extend([1.0, 2.0])
        with pytest.raises(ValueError):
            a.merge(b)


class TestValidation:
    def test_negative_sample_rejected(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.add(-1.0)

    def test_empty_percentile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(50)

    def test_empty_summary_is_zeroes(self):
        assert LatencyHistogram().summary()["count"] == 0

    def test_summary_keys(self):
        hist = LatencyHistogram()
        hist.extend([0.01, 0.02, 0.05])
        s = hist.summary()
        assert s["count"] == 3
        assert s["p50"] == 0.02
        assert s["p99"] == 0.05
        assert s["max"] == 0.05
