"""Property-based robustness tests for the fault-injection subsystem.

The load-bearing property: any seeded schedule of *timing-only* faults
(stragglers, delays, transient retried failures — no crashes, no hangs)
moves points on the simulated clock but leaves the training losses
bitwise identical to a fault-free run.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

import repro
from repro import distributed as dist, nn
from repro.distributed import FaultInjector, FaultKind, FaultSchedule
from repro.perf.trainer import train_elastic
from repro.tensor import tensor

WORLD = 2
ITERATIONS = 3
D = 8

_BASELINE: dict[str, list] = {}


def build_model():
    return nn.Sequential(nn.Linear(D, D), nn.Tanh(), nn.Linear(D, D))


def make_loss(model, rank, iteration):
    rng = np.random.default_rng(500 + 31 * iteration + rank)
    x = tensor(rng.standard_normal((2, D)).astype(np.float32))
    out = model(x)
    return (out * out).mean()


def run_training(schedule=None):
    repro.manual_seed(1234)
    result = train_elastic(
        build_model=build_model,
        make_loss=make_loss,
        world_size=WORLD,
        iterations=ITERATIONS,
        faults=schedule,
    )
    return result.losses


def baseline_losses() -> list:
    if "losses" not in _BASELINE:
        _BASELINE["losses"] = run_training()
    return _BASELINE["losses"]


timing_only_schedules = st.builds(
    lambda seed, stragglers, delays, transients: FaultSchedule.random(
        seed=seed,
        world_size=WORLD,
        iterations=ITERATIONS,
        stragglers=stragglers,
        delays=delays,
        transients=transients,
        hangs=0,
        crashes=0,
        pressure_events=0,
    ),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    stragglers=st.integers(min_value=0, max_value=3),
    delays=st.integers(min_value=0, max_value=4),
    transients=st.integers(min_value=0, max_value=3),
)


@given(schedule=timing_only_schedules)
def test_timing_faults_preserve_losses(schedule):
    assert schedule.timing_only()
    assert run_training(schedule) == baseline_losses()


@pytest.mark.slow
@settings(max_examples=50, deadline=None)
@given(schedule=timing_only_schedules)
def test_timing_faults_preserve_losses_exhaustive(schedule):
    """The same property at the slow profile's example count."""
    assert schedule.timing_only()
    assert run_training(schedule) == baseline_losses()


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    world_size=st.integers(min_value=1, max_value=64),
    iterations=st.integers(min_value=1, max_value=100),
    counts=st.tuples(*[st.integers(min_value=0, max_value=4)] * 6),
)
def test_random_schedule_is_a_pure_function_of_its_seed(
    seed, world_size, iterations, counts
):
    stragglers, delays, transients, hangs, crashes, pressure = counts
    kwargs = dict(
        seed=seed,
        world_size=world_size,
        iterations=iterations,
        stragglers=stragglers,
        delays=delays,
        transients=transients,
        hangs=hangs,
        crashes=crashes,
        pressure_events=pressure,
    )
    a = FaultSchedule.random(**kwargs)
    b = FaultSchedule.random(**kwargs)
    assert a == b
    assert len(a) == sum(counts)
    for event in a:
        if event.kind in (FaultKind.STRAGGLER, FaultKind.OOM_PRESSURE):
            assert 0 <= event.start_iteration < max(iterations, 1)
        if event.rank is not None:
            assert 0 <= event.rank < world_size


@given(
    failures=st.integers(min_value=1, max_value=8),
    rank=st.integers(min_value=0, max_value=3),
)
def test_transient_budget_fails_exactly_n_times(failures, rank):
    from repro.distributed import FaultEvent

    schedule = FaultSchedule(
        [FaultEvent(kind=FaultKind.TRANSIENT, rank=rank, collective_index=0,
                    failures=failures)]
    )
    injector = FaultInjector(schedule)
    observed = 0
    attempt = 0
    while True:
        decision = injector.on_collective(
            rank=rank, kind="all_gather", attempt=attempt
        )
        if not decision.fail:
            break
        observed += 1
        attempt += 1
    assert observed == failures
    # The budget never refills: the next logical collective is clean.
    assert not injector.on_collective(rank=rank, kind="all_gather", attempt=0).fail


@given(
    iteration=st.integers(min_value=0, max_value=10),
    observers=st.integers(min_value=1, max_value=6),
)
def test_crash_fires_exactly_once_per_observer(iteration, observers):
    from repro.distributed import FaultEvent
    from repro.errors import RankCrashedError

    schedule = FaultSchedule(
        [FaultEvent(kind=FaultKind.CRASH, rank=0, iteration=iteration)]
    )
    injector = FaultInjector(schedule)
    for rank in range(observers):
        with pytest.raises(RankCrashedError):
            injector.begin_iteration(rank, iteration)
    # Elastic restart: the same boundary passes cleanly on every rank.
    for rank in range(observers):
        injector.begin_iteration(rank, iteration)
    assert sum(1 for f in injector.injected if f.kind is FaultKind.CRASH) == 1
