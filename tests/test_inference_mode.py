"""Inference-mode FSDP lockdown (the serving subsystem's substrate).

A serving replica runs the sharded model under ``model.eval()`` +
``no_grad()``.  Two properties make that safe and cheap, and both are
pinned here:

- **parity** — an eval-mode forward produces BITWISE identical outputs
  across ``fully_shard(backend="flat_param")``,
  ``fully_shard(backend="per_param")``, DDP, and the unsharded local
  model, for world sizes {1, 2, 4}.  Sharding is a layout change;
  inference must not observe it (the §3.1 equivalence argument, minus
  the gradient half).
- **schedule** — with gradients disabled the runtime unshards
  (AllGather), computes, and reshards; it must never issue a
  ReduceScatter, register backward hooks, or leave parameters
  unsharded after the forward.  Locked via a profiled golden run:
  ``allgather_bytes > 0`` and ``reduce_scatter_bytes == 0``.
"""

import numpy as np
import pytest

import repro
from repro import distributed as dist, nn
from repro.autograd import no_grad
from repro.ddp import DistributedDataParallel as DDP
from repro.fsdp import ShardingStrategy, fully_shard
from repro.models.transformer import TransformerBlock
from repro.profiler import ProfilerSession
from tests.conftest import copy_weights, snapshot_weights

BATCH = 8
D_MODEL = 16
WORLDS = (1, 2, 4)
BACKENDS = ("flat_param", "per_param")


def _mlp_builder():
    return lambda: nn.Sequential(
        nn.Linear(D_MODEL, 32), nn.GELU(), nn.Linear(32, D_MODEL)
    )


def _block_builder():
    return lambda: TransformerBlock(D_MODEL, num_heads=2, d_ff=32, causal=True)


def _make_case(build, *, seq):
    repro.manual_seed(202)
    if seq:
        xs = repro.randn(BATCH, 4, D_MODEL).numpy()
    else:
        xs = repro.randn(BATCH, D_MODEL).numpy()
    repro.manual_seed(11)
    state0 = snapshot_weights(build())
    return state0, xs


def _forward(model, xs):
    device = dist.get_device()
    x = repro.tensor(xs, device=device)
    model.eval()
    with no_grad():
        return model(x).numpy().copy()


def _sharded_worker(build, state0, xs, *, backend, strategy):
    def worker(rank):
        model = build()
        copy_weights(model, state0)
        fully_shard(
            model,
            backend=backend,
            device=dist.get_device(),
            sharding_strategy=strategy,
        )
        out = _forward(model, xs)
        # Inference forwards must leave every unit resharded: serving
        # holds only 1/world of the parameters between batches.
        for handle in getattr(model, "flat_handles", []):
            assert not handle.is_unsharded, handle.label
        return out

    return worker


def _ddp_worker(build, state0, xs):
    def worker(rank):
        model = build()
        copy_weights(model, state0)
        return _forward(DDP(model, broadcast_parameters=False), xs)

    return worker


def _local_reference(build, state0, xs):
    def worker(rank):
        model = build()
        copy_weights(model, state0)
        return _forward(model, xs)

    return dist.spawn(worker, 1)[0]


@pytest.mark.parametrize("world", WORLDS)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "builder,seq", [(_mlp_builder, False), (_block_builder, True)],
    ids=["mlp", "gpt-block"],
)
def test_eval_forward_bitwise_parity(world, backend, builder, seq):
    build = builder()
    state0, xs = _make_case(build, seq=seq)
    reference = _local_reference(build, state0, xs)

    outs = dist.spawn(
        _sharded_worker(
            build, state0, xs, backend=backend,
            strategy=ShardingStrategy.FULL_SHARD,
        ),
        world,
    )
    for rank, out in enumerate(outs):
        assert np.array_equal(out, reference), f"{backend} rank {rank}"

    ddp_outs = dist.spawn(_ddp_worker(build, state0, xs), world)
    for rank, out in enumerate(ddp_outs):
        assert np.array_equal(out, reference), f"ddp rank {rank}"


@pytest.mark.parametrize("backend", BACKENDS)
def test_eval_forward_parity_shard_grad_op(backend):
    """SHARD_GRAD_OP serves identically (it only changes reshard timing)."""
    build = _mlp_builder()
    state0, xs = _make_case(build, seq=False)
    reference = _local_reference(build, state0, xs)
    outs = dist.spawn(
        _sharded_worker(
            build, state0, xs, backend=backend,
            strategy=ShardingStrategy.SHARD_GRAD_OP,
        ),
        2,
    )
    for out in outs:
        assert np.array_equal(out, reference)


def _golden_spec(backend):
    """Replica spec for the trace test, per backend.

    flat_param serves DHEN (FSDP-ignored sparse table + the sparse
    all-to-all exchange); per_param — which rejects ignored modules by
    design — serves a transformer block stack instead.
    """
    from repro.serve import ReplicaSpec

    if backend == "flat_param":
        from repro.models import DHEN_TINY
        from repro.perf.workloads import (
            dhen_builder,
            dhen_ignored_modules,
            dhen_infer_fn,
        )

        return ReplicaSpec(
            name="golden",
            build_model=dhen_builder(DHEN_TINY),
            make_batch=dhen_infer_fn(DHEN_TINY),
            gpus=2,
            backend=backend,
            ignored_modules_of=dhen_ignored_modules,
            max_batch=4,
        )

    def make_batch(model, device, batch):
        x = repro.empty(batch, 4, D_MODEL, device=device)
        return model(x)

    return ReplicaSpec(
        name="golden",
        build_model=_block_builder(),
        make_batch=make_batch,
        gpus=2,
        backend=backend,
        max_batch=4,
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_inference_issues_no_reduce_scatter(backend):
    """Golden-trace check: grads off => AllGathers only, fully resharded.

    Runs through :class:`repro.serve.replica.ServiceModel` — the exact
    path serving replicas measure with — with a profiler attached.
    """
    from repro.serve import ServiceModel

    session = ProfilerSession()
    service = ServiceModel(_golden_spec(backend), profiler=session)
    service.measure()
    totals = session.totals()
    assert totals["allgather_bytes"] > 0
    assert totals["reduce_scatter_bytes"] == 0
    # The measured passes run inside a pinned serve:batch@<replica>
    # span (warmup passes deliberately don't), so serving traffic is
    # attributable in exported traces.
    served = [
        interval
        for unit in session.units.values()
        for interval in unit.comm_intervals
        if "serve:batch@golden" in interval.scope
    ]
    kinds = {interval.kind for interval in served}
    assert any(kind.startswith("all_gather") for kind in kinds)
    assert not any(kind == "reduce_scatter" for kind in kinds)
    if backend == "flat_param":
        # DHEN's sparse exchange also lands under the serving span.
        assert "all_to_all" in kinds
    # Latencies were measured and are positive at every anchor.
    assert all(service.latency(b) > 0 for b in service.anchors)
