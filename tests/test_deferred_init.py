"""Deferred initialization (Section 3.1): record on fake device, replay."""

import numpy as np
import pytest

import repro
from repro import distributed as dist, nn
from repro.cuda.device import cpu_device, meta_device
from repro.errors import DeferredInitError
from repro.fsdp import (
    FullyShardedDataParallel as FSDP,
    ModuleWrapPolicy,
    deferred_init,
    is_deferred,
    materialize_module,
)
from repro.fsdp.state_dict import full_state_dict


def build():
    return nn.Sequential(nn.Linear(6, 12), nn.GELU(), nn.Linear(12, 3))


class TestFakeDevice:
    def test_deferred_params_on_meta(self):
        model = deferred_init(build)
        assert is_deferred(model)
        for param in model.parameters():
            assert param.device.is_meta
            assert not param.is_materialized

    def test_no_host_memory_consumed(self):
        # A model far larger than host memory can be described on meta.
        model = deferred_init(lambda: nn.Linear(100_000, 100_000))  # 40 GB in fp32
        assert model.weight.numel == 10_000_000_000

    def test_init_ops_recorded(self):
        model = deferred_init(build)
        records = model._modules["0"].weight._init_records
        assert records, "kaiming init must be recorded"
        ops_used = [r[0] for r in records]
        assert "uniform_" in ops_used

    def test_factory_must_return_module(self):
        with pytest.raises(DeferredInitError):
            deferred_init(lambda: 42)

    def test_forward_on_meta_propagates_meta(self):
        # Running a fake-device model produces fake outputs: shapes
        # flow, no data exists (reading it raises).
        model = deferred_init(build)
        out = model(repro.randn(2, 6))
        assert out.shape == (2, 3)
        assert not out.is_materialized
        with pytest.raises(RuntimeError):
            out.numpy()


class TestReplay:
    def test_replay_matches_direct_init(self):
        repro.manual_seed(11)
        direct = build()
        direct_state = {n: p.numpy().copy() for n, p in direct.named_parameters()}

        repro.manual_seed(11)
        model = deferred_init(build)
        materialize_module(model, cpu_device())
        assert not is_deferred(model)
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(
                param.numpy(), direct_state[name], err_msg=f"replay mismatch {name}"
            )

    def test_replay_is_deterministic_per_recording(self):
        repro.manual_seed(4)
        model = deferred_init(build)
        clone_records = [
            (n, p._init_records) for n, p in model.named_parameters()
        ]
        materialize_module(model, cpu_device())
        state1 = {n: p.numpy().copy() for n, p in model.named_parameters()}
        # Replaying the same records again gives identical values,
        # regardless of the global RNG state at replay time.
        repro.manual_seed(999)
        model2 = deferred_init(build)
        # fresh recording differs, but replay of *its* records is stable
        materialize_module(model2, cpu_device())
        state2a = {n: p.numpy().copy() for n, p in model2.named_parameters()}
        assert any(
            not np.array_equal(state1[n], state2a[n]) for n in state1
        ), "different seeds should give different inits"

    def test_buffers_replayed(self):
        class WithBuffer(nn.Module):
            def __init__(self):
                super().__init__()
                self.layer = nn.Linear(3, 3)
                self.register_buffer("offset", repro.zeros(3))

        model = deferred_init(WithBuffer)
        materialize_module(model, cpu_device())
        np.testing.assert_array_equal(model.offset.numpy(), np.zeros(3))


class TestFsdpIntegration:
    def test_fsdp_materializes_deferred_unit_by_unit(self):
        repro.manual_seed(21)
        reference = build()
        ref_state = {n: p.numpy().copy() for n, p in reference.named_parameters()}

        def fn(rank):
            repro.manual_seed(21)
            model = deferred_init(build)
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            return {k: v.numpy() for k, v in full_state_dict(wrapped).items()}

        # Single rank avoids the shared-RNG thread race for recording.
        (state,) = dist.spawn(fn, 1)
        for name, value in ref_state.items():
            np.testing.assert_allclose(state[name], value, atol=1e-6)

    def test_fsdp_deferred_peak_is_sharded(self):
        """Materializing unit by unit never holds the whole model."""

        def fn(rank):
            device = dist.get_device()
            model = deferred_init(
                lambda: nn.Sequential(*[nn.Linear(128, 128, bias=False) for _ in range(8)])
            )
            device.reset_peak_memory_stats()
            wrapped = FSDP(
                model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
            )
            peak = device.memory_stats()["allocated_bytes.all.peak"]
            full_model_bytes = 8 * 128 * 128 * 4
            # Peak during init stays near one unsharded unit + shards,
            # far below the full model (Section 3.1's goal).
            assert peak < full_model_bytes * 0.75
            return peak

        dist.spawn(fn, 4)

    def test_deferred_training_runs(self):
        def fn(rank):
            model = deferred_init(build)
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            x = repro.randn(2, 6, device=dist.get_device())
            wrapped(x).sum().backward()
            assert all(h.flat_param.grad is not None for h in wrapped.flat_handles)

        dist.spawn(fn, 2)

    def test_init_on_cpu_streaming_path(self):
        """§4.1's fallback: build on CPU, stream unit by unit to device."""

        def fn(rank):
            model = build()  # materialized on CPU
            for param in model.parameters():
                assert param.device.is_cpu
            wrapped = FSDP(
                model,
                device=dist.get_device(),
                auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            )
            # After wrapping, shards live on the simulated GPU.
            for handle in wrapped.flat_handles:
                assert handle.flat_param.device.is_sim_gpu
            x = repro.randn(2, 6, device=dist.get_device())
            wrapped(x).sum().backward()

        dist.spawn(fn, 2)
