"""Coverage for ops not exercised elsewhere: cast, where, pad, getitem."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro import dtypes, ops
from tests.conftest import gradcheck


class TestCast:
    def test_cast_roundtrip_values(self):
        t = repro.tensor(np.array([1.5, -2.25], dtype=np.float32))
        out = ops.cast(t, dtypes.bfloat16)
        assert out.dtype is dtypes.bfloat16
        np.testing.assert_array_equal(out.numpy(), [1.5, -2.25])  # exact in bf16

    def test_cast_same_dtype_is_identity(self):
        t = repro.randn(3)
        assert ops.cast(t, dtypes.float32) is t

    def test_cast_grad_flows_back_in_source_dtype(self):
        t = repro.randn(3, requires_grad=True)
        out = ops.cast(t, dtypes.bfloat16)
        out.sum().backward()
        assert t.grad.dtype is dtypes.float32
        np.testing.assert_allclose(t.grad.numpy(), np.ones(3))

    def test_bf16_loses_precision(self):
        value = 1.0 + 2.0**-12
        t = repro.tensor(np.array([value], dtype=np.float32))
        out = ops.cast(t, dtypes.bfloat16)
        assert out.numpy()[0] == 1.0


class TestWhereMaskedFill:
    def test_where_values(self):
        cond = repro.tensor(np.array([True, False, True]))
        a = repro.ones(3)
        b = repro.zeros(3)
        np.testing.assert_array_equal(ops.where(cond, a, b).numpy(), [1, 0, 1])

    def test_where_grads_split_by_mask(self):
        cond = repro.tensor(np.array([True, False]))
        a = repro.randn(2, requires_grad=True)
        b = repro.randn(2, requires_grad=True)
        ops.where(cond, a, b).sum().backward()
        np.testing.assert_array_equal(a.grad.numpy(), [1, 0])
        np.testing.assert_array_equal(b.grad.numpy(), [0, 1])

    def test_masked_fill(self):
        mask = repro.tensor(np.array([False, True, False]))
        t = repro.ones(3, requires_grad=True)
        out = ops.masked_fill(t, mask, -9.0)
        np.testing.assert_array_equal(out.numpy(), [1, -9, 1])
        out.sum().backward()
        np.testing.assert_array_equal(t.grad.numpy(), [1, 0, 1])


class TestPadAndGetitem:
    def test_pad_right(self):
        t = repro.tensor(np.array([1.0, 2.0]))
        out = ops.pad_right(t, 3)
        np.testing.assert_array_equal(out.numpy(), [1, 2, 0, 0, 0])

    def test_pad_right_zero_is_identity(self):
        t = repro.randn(4)
        assert ops.pad_right(t, 0) is t

    def test_pad_right_validation(self):
        with pytest.raises(ValueError):
            ops.pad_right(repro.randn(2, 2), 1)
        with pytest.raises(ValueError):
            ops.pad_right(repro.randn(2), -1)

    def test_pad_grad_drops_padding(self):
        t = repro.randn(2, requires_grad=True)
        ops.pad_right(t, 2).sum().backward()
        np.testing.assert_array_equal(t.grad.numpy(), [1, 1])

    def test_getitem_fancy_index_grad(self):
        t = repro.randn(5, requires_grad=True)
        idx = np.array([0, 0, 3])
        out = ops.getitem(t, idx)
        out.sum().backward()
        np.testing.assert_array_equal(t.grad.numpy(), [2, 0, 0, 1, 0])

    def test_negative_index(self):
        t = repro.tensor(np.arange(4, dtype=np.float32))
        assert ops.getitem(t, -1).item() == 3.0


class TestExpandAndDropout:
    def test_expand_values(self):
        t = repro.tensor(np.array([[1.0], [2.0]]))
        out = ops.expand(t, (2, 3))
        np.testing.assert_array_equal(out.numpy(), [[1, 1, 1], [2, 2, 2]])

    def test_expand_grad_sums(self):
        t = repro.ones(1, 2, requires_grad=True)
        ops.expand(t, (3, 2)).sum().backward()
        np.testing.assert_array_equal(t.grad.numpy(), [[3, 3]])

    def test_dropout_identity_when_p_zero(self):
        t = repro.randn(8)
        assert ops.dropout(t, 0.0) is t

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            ops.dropout(repro.randn(2), 1.0)

    def test_dropout_grad_uses_same_mask(self):
        t = repro.ones(64, requires_grad=True)
        out = ops.dropout(t, 0.5)
        out.sum().backward()
        mask = out.numpy() != 0
        np.testing.assert_array_equal((t.grad.numpy() != 0), mask)


class TestHypothesisProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(-100, 100, width=32), min_size=1, max_size=16),
    )
    def test_sum_matches_numpy(self, values):
        arr = np.array(values, dtype=np.float32)
        t = repro.tensor(arr)
        np.testing.assert_allclose(
            ops.sum(t).item(), arr.sum(dtype=np.float32), rtol=1e-4, atol=1e-4
        )

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(1, 6),
        cols=st.integers(1, 6),
        inner=st.integers(1, 6),
    )
    def test_matmul_matches_numpy(self, rows, cols, inner):
        a = np.random.rand(rows, inner).astype(np.float32)
        b = np.random.rand(inner, cols).astype(np.float32)
        out = ops.matmul(repro.tensor(a), repro.tensor(b))
        np.testing.assert_allclose(out.numpy(), a @ b, rtol=1e-5, atol=1e-5)

    @settings(max_examples=25, deadline=None)
    @given(sections=st.lists(st.integers(1, 8), min_size=1, max_size=5))
    def test_split_cat_roundtrip(self, sections):
        total = sum(sections)
        t = repro.tensor(np.random.rand(total).astype(np.float32))
        pieces = ops.split(t, sections)
        back = ops.cat(list(pieces), 0)
        np.testing.assert_array_equal(back.numpy(), t.numpy())

    @settings(max_examples=20, deadline=None)
    @given(shape=st.tuples(st.integers(1, 5), st.integers(1, 5)))
    def test_view_flatten_roundtrip(self, shape):
        t = repro.tensor(np.random.rand(*shape).astype(np.float32))
        assert np.array_equal(
            t.flatten().view(*shape).numpy(), t.numpy()
        )
