"""Workload factory unit tests."""

import pytest

import repro
from repro import distributed as dist
from repro.models import (
    DEEPVIT_TINY,
    DHEN_TINY,
    GPT_TINY,
    REGNET_TINY,
    T5_TINY,
)
from repro.perf.workloads import (
    deepvit_builder,
    deepvit_loss_fn,
    dhen_builder,
    dhen_ignored_modules,
    dhen_loss_fn,
    gpt_builder,
    gpt_loss_fn,
    regnet_builder,
    regnet_loss_fn,
    t5_builder,
    t5_loss_fn,
    transformer_flops,
)


@pytest.fixture()
def abstract_world():
    dist.shutdown()
    ctx = dist.init_single_process(4, materialize=False)
    yield ctx
    dist.shutdown()


class TestFlopsFormula:
    def test_without_checkpointing(self):
        # fwd+bwd = 6 N T
        assert transformer_flops(1e9, 1e3, checkpointing=False) == 6e12

    def test_with_checkpointing(self):
        # + one recompute forward = 8 N T
        assert transformer_flops(1e9, 1e3, checkpointing=True) == 8e12


class TestLossFactories:
    def test_gpt_loss_scalar(self, abstract_world):
        model = gpt_builder(GPT_TINY)()
        from repro.fsdp.deferred_init import materialize_module

        materialize_module(model, abstract_world.device)
        loss = gpt_loss_fn(GPT_TINY, 2, 16)(model, abstract_world.device)
        assert loss.numel == 1
        assert not loss.is_materialized  # abstract mode

    def test_t5_loss_scalar(self, abstract_world):
        from repro.fsdp.deferred_init import materialize_module

        model = t5_builder(T5_TINY)()
        materialize_module(model, abstract_world.device)
        loss = t5_loss_fn(T5_TINY, 2, 8)(model, abstract_world.device)
        assert loss.numel == 1

    def test_dhen_builder_scales_rows_with_world(self, abstract_world):
        model = dhen_builder(DHEN_TINY)()
        # sparse_rows_total=1024 over world 4 => 256 local rows
        assert model.local_rows == 256
        assert dhen_ignored_modules(model) == [model.sparse_table]

    def test_dhen_loss_runs(self, abstract_world):
        from repro.fsdp.deferred_init import materialize_module

        model = dhen_builder(DHEN_TINY)()
        materialize_module(model, abstract_world.device)
        loss = dhen_loss_fn(DHEN_TINY, 4)(model, abstract_world.device)
        assert loss.numel == 1

    def test_vision_losses_run(self, abstract_world):
        from repro.fsdp.deferred_init import materialize_module

        regnet = regnet_builder(REGNET_TINY)()
        materialize_module(regnet, abstract_world.device)
        loss = regnet_loss_fn(REGNET_TINY, 2)(regnet, abstract_world.device)
        assert loss.numel == 1

        deepvit = deepvit_builder(DEEPVIT_TINY)()
        materialize_module(deepvit, abstract_world.device)
        loss = deepvit_loss_fn(DEEPVIT_TINY, 2)(deepvit, abstract_world.device)
        assert loss.numel == 1

    def test_losses_backward_in_abstract_mode(self, abstract_world):
        from repro.fsdp.deferred_init import materialize_module

        model = gpt_builder(GPT_TINY)()
        materialize_module(model, abstract_world.device)
        loss = gpt_loss_fn(GPT_TINY, 2, 16)(model, abstract_world.device)
        loss.backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert all(not g.is_materialized for g in grads)
