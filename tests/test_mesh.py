"""DeviceMesh / placement property tests (per-parameter backend).

The dim-0 chunking arithmetic in :mod:`repro.distributed.mesh` is the
foundation the per-param backend's exactness claim rests on, so its
invariants are checked property-style over the whole input space:
chunks partition the dimension exactly (no overlap, no gap, no
padding), tails shrink to empty when ``size < world``, and the padding
the *flat* layout would have added is accounted analytically.  The
spawn-based tests then check the full shard -> unshard round trip and
FQN preservation through ``fully_shard``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro import distributed as dist, nn
from repro.distributed.mesh import (
    DeviceMesh,
    Replicate,
    Shard,
    chunk_bounds,
    chunk_numels,
    init_device_mesh,
    local_chunk,
    padded_chunk_rows,
)
from repro.errors import ShardingError
from repro.fsdp import ShardingStrategy, fully_shard
from repro.fsdp.state_dict import full_state_dict
from tests.conftest import copy_weights, snapshot_weights


# ----------------------------------------------------------------------
# Chunking arithmetic
# ----------------------------------------------------------------------
class TestChunkBounds:
    @settings(deadline=None, max_examples=200)
    @given(size=st.integers(0, 10_000), world=st.integers(1, 64))
    def test_bounds_partition_exactly(self, size, world):
        """Chunks tile [0, size) in order: no gap, no overlap, no pad."""
        bounds = chunk_bounds(size, world)
        assert len(bounds) == world
        cursor = 0
        for start, end in bounds:
            assert start == min(cursor, size)
            assert start <= end <= size
            cursor = max(cursor, end)
        assert cursor == size
        assert sum(end - start for start, end in bounds) == size

    @settings(deadline=None, max_examples=200)
    @given(size=st.integers(1, 10_000), world=st.integers(1, 64))
    def test_even_chunk_size_is_ceil(self, size, world):
        """Non-tail chunks are exactly ceil(size/world) rows."""
        bounds = chunk_bounds(size, world)
        chunk = -(-size // world)
        for start, end in bounds[:-1]:
            assert end - start in (chunk, 0) or end == size
        # Rank 0 always gets the full even chunk.
        assert bounds[0] == (0, min(chunk, size))

    @settings(deadline=None, max_examples=100)
    @given(world=st.integers(2, 64), size=st.integers(0, 63))
    def test_small_sizes_leave_empty_tails(self, world, size):
        """size < world: trailing ranks legitimately hold nothing."""
        if size >= world:
            size = size % world
        bounds = chunk_bounds(size, world)
        empties = sum(1 for start, end in bounds if start == end)
        assert empties >= world - size
        for start, end in bounds[size:]:
            assert start == end

    @settings(deadline=None, max_examples=200)
    @given(size=st.integers(0, 10_000), world=st.integers(1, 64))
    def test_padded_rows_accounting(self, size, world):
        """flat-style even padding = ceil(size/world)*world - size < world."""
        pad = padded_chunk_rows(size, world)
        chunk = -(-size // world) if size else 0
        assert pad == chunk * world - size
        assert 0 <= pad < max(world, 1)

    @settings(deadline=None, max_examples=100)
    @given(
        shape=st.lists(st.integers(1, 40), min_size=0, max_size=3),
        world=st.integers(1, 16),
    )
    def test_chunk_numels_sum_to_numel(self, shape, world):
        numels = chunk_numels(shape, world)
        assert len(numels) == world
        assert sum(numels) == int(np.prod(shape)) if shape else 1

    @settings(deadline=None, max_examples=100)
    @given(size=st.integers(0, 1000), world=st.integers(1, 16), data=st.data())
    def test_local_chunk_matches_bounds(self, size, world, data):
        rank = data.draw(st.integers(0, world - 1))
        assert local_chunk(size, world, rank) == chunk_bounds(size, world)[rank]

    def test_errors(self):
        with pytest.raises(ShardingError):
            chunk_bounds(-1, 4)
        with pytest.raises(ShardingError):
            chunk_bounds(8, 0)
        with pytest.raises(ShardingError):
            local_chunk(8, 4, 4)
        with pytest.raises(ShardingError):
            local_chunk(8, 4, -1)


# ----------------------------------------------------------------------
# Placements
# ----------------------------------------------------------------------
class TestPlacements:
    @settings(deadline=None, max_examples=100)
    @given(
        shape=st.lists(st.integers(1, 20), min_size=1, max_size=3),
        world=st.integers(1, 8),
    )
    def test_shard_shapes_reassemble(self, shape, world):
        """Concatenating every rank's Shard(0) shape on dim 0 == shape."""
        placement = Shard(0)
        rows = 0
        for rank in range(world):
            local = placement.shard_shape(shape, world, rank)
            assert local[1:] == tuple(shape[1:])
            rows += local[0]
        assert rows == shape[0]

    def test_scalar_is_one_row(self):
        """0-d tensors act as a single row owned by rank 0."""
        assert Shard(0).shard_shape((), 4, 0) == (1,)
        for rank in range(1, 4):
            assert Shard(0).shard_shape((), 4, rank) == (0,)

    def test_replicate_keeps_shape(self):
        assert Replicate().shard_shape((3, 5), 8, 2) == (3, 5)

    def test_only_dim0_supported(self):
        with pytest.raises(ShardingError):
            Shard(1)

    def test_predicates(self):
        assert Shard(0).is_shard and not Shard(0).is_replicate
        assert Replicate().is_replicate and not Replicate().is_shard


# ----------------------------------------------------------------------
# DeviceMesh construction and group resolution
# ----------------------------------------------------------------------
class TestDeviceMesh:
    def test_full_shard_mesh_is_1d(self):
        def worker(rank):
            mesh = init_device_mesh(dist.get_device())
            return (
                mesh.ndim,
                mesh.shape,
                mesh.dim_names,
                mesh.replicate_group is None,
                mesh.shard_rank,
            )

        for rank, (ndim, shape, names, no_rep, shard_rank) in enumerate(
            dist.spawn(worker, 4)
        ):
            assert ndim == 1
            assert shape == (4,)
            assert names == ("shard",)
            assert no_rep
            assert shard_rank == rank

    def test_hybrid_mesh_is_2d(self):
        def worker(rank):
            mesh = init_device_mesh(
                dist.get_device(),
                sharding_strategy=ShardingStrategy.HYBRID_SHARD,
                sharding_factor=2,
            )
            return (
                mesh.ndim,
                mesh.shape,
                mesh.dim_names,
                mesh.size(),
                mesh.size("shard"),
                mesh.get_group("shard") is mesh.shard_group,
                mesh.get_group(0) is mesh.replicate_group,
            )

        for ndim, shape, names, total, shard_n, shard_ok, rep_ok in dist.spawn(worker, 4):
            assert ndim == 2
            assert shape == (2, 2)
            assert names == ("replicate", "shard")
            assert total == 4 and shard_n == 2
            assert shard_ok and rep_ok

    def test_bad_construction(self):
        def worker(rank):
            device = dist.get_device()
            group = dist.default_group()
            with pytest.raises(ShardingError):
                DeviceMesh(device, ())
            with pytest.raises(ShardingError):
                DeviceMesh(device, (group, group), ("a",))
            with pytest.raises(ShardingError):
                DeviceMesh(device, (group, group), ("a", "a"))
            mesh = DeviceMesh(device, (group,), ("shard",))
            with pytest.raises(ShardingError):
                mesh.get_group("nope")
            with pytest.raises(ShardingError):
                mesh.get_group(3)
            return True

        assert all(dist.spawn(worker, 2))


# ----------------------------------------------------------------------
# Shard -> unshard round trip through fully_shard(backend="per_param")
# ----------------------------------------------------------------------
def _roundtrip_worker(build, state0, world, **kwargs):
    def worker(rank):
        model = build()
        copy_weights(model, state0)
        fully_shard(model, backend="per_param", device=dist.get_device(), **kwargs)
        fqns = [name for name, _ in model.named_parameters()]
        sd = {k: v.numpy().copy() for k, v in full_state_dict(model).items()}
        shard_rows = {
            name: p.shape[0] if p.shape else 1 for name, p in model.named_parameters()
        }
        return fqns, sd, shard_rows

    return worker


class TestShardRoundTrip:
    @pytest.mark.parametrize("world", [1, 2, 4])
    @pytest.mark.parametrize("dims", [(7, 13), (3, 2), (1, 5)])
    def test_uneven_roundtrip_and_fqns(self, world, dims):
        """Shard then gather reproduces the weights bitwise; FQNs and
        state-dict keys survive ``fully_shard`` untouched — including
        parameters with fewer rows than the shard group."""
        d_in, d_h = dims

        def build():
            return nn.Sequential(nn.Linear(d_in, d_h), nn.Tanh(), nn.Linear(d_h, 2))

        repro.manual_seed(3)
        reference = build()
        state0 = snapshot_weights(reference)
        expected_fqns = [name for name, _ in reference.named_parameters()]

        for fqns, sd, _ in dist.spawn(_roundtrip_worker(build, state0, world), world):
            assert fqns == expected_fqns
            assert set(sd.keys()) == set(state0.keys())
            for name, original in state0.items():
                assert np.array_equal(sd[name], original), f"{name} round trip"

    def test_sharded_rows_follow_chunk_bounds(self):
        """While sharded, each rank's visible param rows match Shard(0)."""
        world = 4
        rows = 7  # uneven on purpose

        def build():
            return nn.Sequential(nn.Linear(5, rows))

        repro.manual_seed(3)
        state0 = snapshot_weights(build())

        results = dist.spawn(_roundtrip_worker(build, state0, world), world)
        bounds = chunk_bounds(rows, world)
        for rank, (_, _, shard_rows) in enumerate(results):
            start, end = bounds[rank]
            assert shard_rows["0.weight"] == end - start
