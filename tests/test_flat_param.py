"""FlatParameter / FlatParamHandle unit and property tests (§3.2.1, §4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro import distributed as dist, nn
from repro.fsdp.flat_param import FlatParamHandle, FlatParameter
from repro.errors import FsdpError


def _single_rank_handle(shapes, world=1, param_dtype=None):
    """Build a handle on a 1-rank world with modules holding `shapes`."""

    def fn(rank):
        device = dist.get_device()
        modules = []
        triples = []
        for i, shape in enumerate(shapes):
            m = nn.Module()
            p = nn.Parameter(repro.randn(*shape, device=device))
            m.register_parameter("w", p)
            modules.append(m)
            triples.append((m, "w", p))
        handle = FlatParamHandle(
            triples, device, dist.default_group(), param_dtype=param_dtype
        )
        return handle, modules

    return dist.spawn(fn, world)


class TestFlattenConcatChunk:
    def test_total_and_padding(self):
        def fn(rank):
            device = dist.get_device()
            m = nn.Module()
            m.register_parameter("a", nn.Parameter(repro.randn(3, 5, device=device)))
            m.register_parameter("b", nn.Parameter(repro.randn(7, device=device)))
            handle = FlatParamHandle(
                [(m, "a", m.a), (m, "b", m.b)], device, dist.default_group()
            )
            return (
                handle.total_numel,
                handle.padded_numel,
                handle.padding,
                handle.shard_numel,
            )

        for total, padded, padding, shard in dist.spawn(fn, 4):
            assert total == 22
            assert padded == 24  # next multiple of 4
            assert padding == 2
            assert shard == 6
            assert padding <= 4 - 1  # at most F-1 (paper claim)

    @settings(max_examples=25, deadline=None)
    @given(
        numels=st.lists(st.integers(1, 40), min_size=1, max_size=6),
        world=st.sampled_from([1, 2, 4]),
    )
    def test_padding_bound_property(self, numels, world):
        """Flatten-concat-chunk pads by at most F-1 for any shapes."""

        def fn(rank):
            device = dist.get_device()
            triples = []
            for n in numels:
                m = nn.Module()
                m.register_parameter("w", nn.Parameter(repro.randn(n, device=device)))
                triples.append((m, "w", m.w))
            handle = FlatParamHandle(triples, device, dist.default_group())
            return handle.padding, handle.padded_numel, handle.total_numel

        for padding, padded, total in dist.spawn(fn, world):
            assert 0 <= padding <= world - 1
            assert padded == total + padding
            assert padded % world == 0

    def test_shard_roundtrip_preserves_values(self):
        """AllGather of shards reconstructs the original parameters."""
        weights = [np.random.rand(4, 3).astype(np.float32), np.random.rand(5).astype(np.float32)]

        def fn(rank):
            device = dist.get_device()
            triples = []
            ms = []
            for i, w in enumerate(weights):
                m = nn.Module()
                m.register_parameter("w", nn.Parameter(repro.tensor(w, device=device)))
                ms.append(m)
                triples.append((m, "w", m.w))
            handle = FlatParamHandle(triples, device, dist.default_group())
            handle.unshard()
            handle.use_unsharded_views()
            return [ms[0].w.numpy().copy(), ms[1].w.numpy().copy()]

        for got in dist.spawn(fn, 4):
            np.testing.assert_allclose(got[0], weights[0], atol=1e-6)
            np.testing.assert_allclose(got[1], weights[1], atol=1e-6)

    def test_requires_uniform_dtype(self):
        def fn(rank):
            device = dist.get_device()
            m = nn.Module()
            m.register_parameter("a", nn.Parameter(repro.randn(3, device=device)))
            m.register_parameter(
                "b", nn.Parameter(repro.randn(3, device=device).bfloat16())
            )
            with pytest.raises(FsdpError):
                FlatParamHandle(
                    [(m, "a", m.a), (m, "b", m.b)], device, dist.default_group()
                )

        dist.spawn(fn, 1)

    def test_empty_params_rejected(self):
        def fn(rank):
            with pytest.raises(FsdpError):
                FlatParamHandle([], dist.get_device(), dist.default_group())

        dist.spawn(fn, 1)


class TestLifecycle:
    def test_original_params_deregistered(self):
        def fn(rank):
            device = dist.get_device()
            layer = nn.Linear(4, 4, device=device)
            handle = FlatParamHandle(
                [(layer, "weight", layer.weight), (layer, "bias", layer.bias)],
                device,
                dist.default_group(),
            )
            names = [n for n, _ in layer.named_parameters()]
            return names, isinstance(layer.weight, repro.Tensor)

        for names, has_attr in dist.spawn(fn, 2):
            assert names == []  # no registered parameters remain
            assert has_attr  # but attribute access still works

    def test_reshard_releases_storage(self):
        def fn(rank):
            device = dist.get_device()
            layer = nn.Linear(8, 8, device=device)
            handle = FlatParamHandle(
                [(layer, "weight", layer.weight)], device, dist.default_group()
            )
            assert not handle.is_unsharded
            handle.unshard()
            assert handle.is_unsharded
            assert handle._unsharded_storage.block is not None
            handle.reshard()
            assert not handle.is_unsharded
            assert handle._unsharded_storage.block is None
            # flat_param now points at the local shard
            assert handle.flat_param.numel == handle.shard_numel

        dist.spawn(fn, 2)

    def test_storage_identity_survives_cycles(self):
        """Views alias the same storage across release/reallocate."""

        def fn(rank):
            device = dist.get_device()
            layer = nn.Linear(4, 2, device=device)
            handle = FlatParamHandle(
                [(layer, "weight", layer.weight)], device, dist.default_group()
            )
            handle.unshard()
            handle.use_unsharded_views()
            view = layer.weight
            storage_before = view._storage
            handle.reshard()
            handle.unshard()
            assert view._storage is storage_before
            assert view.is_materialized  # refilled by the new AllGather

        dist.spawn(fn, 2)

    def test_unshard_idempotent(self):
        def fn(rank):
            device = dist.get_device()
            layer = nn.Linear(4, 4, device=device)
            handle = FlatParamHandle(
                [(layer, "weight", layer.weight)], device, dist.default_group()
            )
            first = handle.unshard()
            second = handle.unshard()
            assert first is not None
            assert second is None

        dist.spawn(fn, 2)

    def test_views_while_sharded_raises(self):
        def fn(rank):
            device = dist.get_device()
            layer = nn.Linear(4, 4, device=device)
            handle = FlatParamHandle(
                [(layer, "weight", layer.weight)], device, dist.default_group()
            )
            with pytest.raises(FsdpError):
                handle.use_unsharded_views()

        dist.spawn(fn, 2)

    def test_shared_parameters_single_view(self):
        """Two modules sharing one Parameter get the same view (§7.2.2)."""

        def fn(rank):
            device = dist.get_device()
            shared = nn.Parameter(repro.randn(3, 3, device=device))
            m1, m2 = nn.Module(), nn.Module()
            m1.register_parameter("w", shared)
            m2.register_parameter("w", shared)
            handle = FlatParamHandle(
                [(m1, "w", shared), (m2, "w", shared)], device, dist.default_group()
            )
            assert handle.total_numel == 9  # deduplicated
            handle.unshard()
            handle.use_unsharded_views()
            return m1.w is m2.w

        assert all(dist.spawn(fn, 2))

    def test_no_shard_keeps_single_copy(self):
        def fn(rank):
            device = dist.get_device()
            layer = nn.Linear(4, 4, device=device)
            handle = FlatParamHandle(
                [(layer, "weight", layer.weight)],
                device,
                dist.new_group([rank]),
            )
            assert not handle.needs_unshard
            assert handle.is_unsharded  # nothing to gather
            assert handle.flat_param.numel == handle.padded_numel

        dist.spawn(fn, 2)


class TestGradientPath:
    def test_gradient_reaches_flat_param(self):
        def fn(rank):
            device = dist.get_device()
            layer = nn.Linear(3, 2, bias=False, device=device)
            w = layer.weight.numpy().copy()
            handle = FlatParamHandle(
                [(layer, "weight", layer.weight)], device, dist.default_group()
            )
            handle.unshard()
            handle.use_unsharded_views()
            x = repro.ones(1, 3, device=device)
            out = layer(x)
            out.sum().backward()
            grad = handle.flat_param.grad
            assert grad is not None
            assert grad.numel == handle.padded_numel  # unsharded gradient
            return grad.numpy()[: handle.total_numel]

        for grad in dist.spawn(fn, 2):
            np.testing.assert_allclose(grad, np.ones(6), atol=1e-6)

    def test_reduce_grad_shards_and_averages(self):
        def fn(rank):
            device = dist.get_device()
            layer = nn.Linear(2, 2, bias=False, device=device)
            handle = FlatParamHandle(
                [(layer, "weight", layer.weight)], device, dist.default_group()
            )
            handle.unshard()
            handle.use_unsharded_views()
            x = repro.full((1, 2), float(rank + 1), device=device)
            layer(x).sum().backward()
            work = handle.reduce_grad(handle.shard_group.comm_stream)
            if work:
                work.wait()
            # The reduced shard is parked until end-of-backward; the
            # runtime's final callback performs this restore.
            handle.restore_stashed_gradient()
            grad = handle.flat_param.grad
            assert grad.numel == handle.shard_numel
            return grad.numpy()

        results = dist.spawn(fn, 2)
        # grad of w_ij is x_j: rank0 ones, rank1 twos -> avg 1.5 everywhere
        np.testing.assert_allclose(np.concatenate(results), np.full(4, 1.5), atol=1e-6)

    def test_no_sync_accumulates_unsharded(self):
        def fn(rank):
            device = dist.get_device()
            layer = nn.Linear(2, 2, bias=False, device=device)
            handle = FlatParamHandle(
                [(layer, "weight", layer.weight)], device, dist.default_group()
            )
            for _ in range(2):
                handle.unshard()
                handle.use_unsharded_views()
                x = repro.ones(1, 2, device=device)
                layer(x).sum().backward()
                handle.reduce_grad(handle.shard_group.comm_stream, no_sync=True)
                handle.flat_param.grad = None
            assert handle._unsharded_grad_accum is not None
            return handle._unsharded_grad_accum.numpy()

        for accum in dist.spawn(fn, 2):
            np.testing.assert_allclose(accum, np.full(4, 2.0), atol=1e-6)

    def test_gather_full_precision(self):
        weights = np.random.rand(2, 4).astype(np.float32)

        def fn(rank):
            device = dist.get_device()
            layer = nn.Linear(4, 2, bias=False, device=device)
            from repro.autograd import no_grad

            with no_grad():
                layer.weight.copy_(repro.tensor(weights, device=device))
            handle = FlatParamHandle(
                [(layer, "weight", layer.weight)], device, dist.default_group()
            )
            full = handle.gather_full_precision()
            return full.numpy()[:8].reshape(2, 4)

        for got in dist.spawn(fn, 2):
            np.testing.assert_allclose(got, weights, atol=1e-6)


class TestFlatParameterType:
    def test_is_parameter_subclass(self):
        def fn(rank):
            device = dist.get_device()
            layer = nn.Linear(2, 2, device=device)
            handle = FlatParamHandle(
                [(layer, "weight", layer.weight)], device, dist.default_group()
            )
            assert isinstance(handle.flat_param, FlatParameter)
            assert isinstance(handle.flat_param, nn.Parameter)
            assert handle.flat_param.requires_grad

        dist.spawn(fn, 1)

    def test_memory_accounting_helpers(self):
        def fn(rank):
            device = dist.get_device()
            layer = nn.Linear(8, 8, bias=False, device=device)
            handle = FlatParamHandle(
                [(layer, "weight", layer.weight)], device, dist.default_group()
            )
            assert handle.sharded_nbytes == handle.shard_numel * 4
            assert handle.unsharded_nbytes == handle.padded_numel * 4

        dist.spawn(fn, 2)
