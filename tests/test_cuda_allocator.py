"""Caching allocator tests: pools, reuse gating, retries, OOM, stats."""

import pytest

from repro.cuda.device import Device
from repro.errors import OutOfMemoryError
from repro.hw.specs import A100_80GB

MiB = 2**20


def make_device(capacity=256 * MiB):
    device = Device("sim_gpu", capacity=capacity)
    device.materialize_data = False
    return device


class TestBasicAllocation:
    def test_allocate_and_free(self):
        dev = make_device()
        alloc = dev.allocator
        block = alloc.allocate(10 * MiB, dev.default_stream)
        assert block.allocated
        assert alloc.stats.allocated_bytes == 10 * MiB
        alloc.free(block)
        assert alloc.stats.allocated_bytes == 0
        assert alloc.stats.reserved_bytes > 0  # cached, not returned

    def test_same_stream_reuse_is_immediate(self):
        dev = make_device()
        alloc = dev.allocator
        a = alloc.allocate(10 * MiB, dev.default_stream)
        alloc.free(a)
        mallocs_before = alloc.stats.num_cuda_mallocs
        b = alloc.allocate(10 * MiB, dev.default_stream)
        assert alloc.stats.num_cuda_mallocs == mallocs_before
        assert alloc.stats.num_block_reuses >= 1

    def test_small_allocations_share_segment(self):
        dev = make_device()
        alloc = dev.allocator
        alloc.allocate(1000, dev.default_stream)
        mallocs = alloc.stats.num_cuda_mallocs
        alloc.allocate(1000, dev.default_stream)
        # The 2 MiB small segment still has room: no new cudaMalloc.
        assert alloc.stats.num_cuda_mallocs == mallocs

    def test_rounding_to_512(self):
        dev = make_device()
        block = dev.allocator.allocate(1, dev.default_stream)
        assert block.size % 512 == 0

    def test_per_stream_pools(self):
        dev = make_device()
        other = dev.new_stream("other")
        alloc = dev.allocator
        a = alloc.allocate(30 * MiB, dev.default_stream)
        alloc.free(a)
        mallocs = alloc.stats.num_cuda_mallocs
        alloc.allocate(30 * MiB, other)
        # Different stream cannot take the cached block directly.
        assert alloc.stats.num_cuda_mallocs == mallocs + 1


class TestSplitAndCoalesce:
    def test_split_leaves_remainder_in_pool(self):
        dev = make_device()
        alloc = dev.allocator
        big = alloc.allocate(64 * MiB, dev.default_stream)
        alloc.free(big)
        small = alloc.allocate(30 * MiB, dev.default_stream)
        # Remainder (~34 MiB) should serve another allocation w/o malloc.
        mallocs = alloc.stats.num_cuda_mallocs
        other = alloc.allocate(30 * MiB, dev.default_stream)
        assert alloc.stats.num_cuda_mallocs == mallocs

    def test_coalesce_restores_big_block(self):
        dev = make_device()
        alloc = dev.allocator
        big = alloc.allocate(64 * MiB, dev.default_stream)
        alloc.free(big)
        a = alloc.allocate(30 * MiB, dev.default_stream)
        b = alloc.allocate(30 * MiB, dev.default_stream)
        alloc.free(a)
        alloc.free(b)
        mallocs = alloc.stats.num_cuda_mallocs
        again = alloc.allocate(60 * MiB, dev.default_stream)
        assert alloc.stats.num_cuda_mallocs == mallocs, "coalescing failed"


class TestCrossStreamGating:
    def test_pending_cross_stream_use_blocks_reuse(self):
        dev = make_device()
        compute = dev.new_stream("compute")
        alloc = dev.allocator
        block = alloc.allocate(30 * MiB, dev.default_stream)
        # A compute-stream kernel uses the block until t=1.0s, while the
        # CPU is still at ~0.
        alloc.record_use(block, compute, end_time=1.0)
        alloc.free(block)
        mallocs = alloc.stats.num_cuda_mallocs
        alloc.allocate(30 * MiB, dev.default_stream)
        assert alloc.stats.num_cuda_mallocs == mallocs + 1, "reused unsafe block"

    def test_retired_cross_stream_use_allows_reuse(self):
        dev = make_device()
        compute = dev.new_stream("compute")
        alloc = dev.allocator
        block = alloc.allocate(30 * MiB, dev.default_stream)
        alloc.record_use(block, compute, end_time=1.0)
        alloc.free(block)
        dev.advance_cpu_to(2.0)  # CPU observed the kernel finish
        mallocs = alloc.stats.num_cuda_mallocs
        alloc.allocate(30 * MiB, dev.default_stream)
        assert alloc.stats.num_cuda_mallocs == mallocs

    def test_same_stream_use_never_blocks(self):
        dev = make_device()
        alloc = dev.allocator
        block = alloc.allocate(30 * MiB, dev.default_stream)
        alloc.record_use(block, dev.default_stream, end_time=99.0)
        alloc.free(block)
        mallocs = alloc.stats.num_cuda_mallocs
        alloc.allocate(30 * MiB, dev.default_stream)
        assert alloc.stats.num_cuda_mallocs == mallocs

    def test_active_counts_pending_blocks(self):
        dev = make_device()
        compute = dev.new_stream("compute")
        alloc = dev.allocator
        block = alloc.allocate(30 * MiB, dev.default_stream)
        alloc.record_use(block, compute, end_time=1.0)
        alloc.free(block)
        stats = alloc.memory_stats()
        assert stats["allocated_bytes.all.current"] == 0
        assert stats["active_bytes.all.current"] >= 30 * MiB


class TestRetryAndOom:
    def test_retry_frees_cached_and_succeeds(self):
        dev = make_device(capacity=100 * MiB)
        compute = dev.new_stream("compute")
        alloc = dev.allocator
        block = alloc.allocate(60 * MiB, dev.default_stream)
        _, end = compute.enqueue(1.0, issue_time=0.0)
        alloc.record_use(block, compute, end_time=end)
        alloc.free(block)  # cached but unreusable (pending use)
        # A new 60 MiB allocation cannot fit beside the cached one.
        second = alloc.allocate(60 * MiB, dev.default_stream)
        assert alloc.stats.num_alloc_retries == 1
        assert second.allocated
        # The retry synchronized the device: CPU moved past the use.
        assert dev.cpu_time() >= 1.0

    def test_oom_when_live_exceeds_capacity(self):
        dev = make_device(capacity=100 * MiB)
        alloc = dev.allocator
        alloc.allocate(60 * MiB, dev.default_stream)
        with pytest.raises(OutOfMemoryError):
            alloc.allocate(60 * MiB, dev.default_stream)
        assert alloc.stats.num_ooms == 1

    def test_retry_is_costly(self):
        dev = make_device(capacity=100 * MiB)
        compute = dev.new_stream("compute")
        alloc = dev.allocator
        block = alloc.allocate(60 * MiB, dev.default_stream)
        _, end = compute.enqueue(0.5, issue_time=0.0)
        alloc.record_use(block, compute, end_time=end)
        alloc.free(block)
        before = dev.cpu_time()
        alloc.allocate(60 * MiB, dev.default_stream)
        assert dev.cpu_time() - before > 0.4  # sync + free + remap


class TestStats:
    def test_peaks_monotone(self):
        dev = make_device()
        alloc = dev.allocator
        a = alloc.allocate(10 * MiB, dev.default_stream)
        b = alloc.allocate(20 * MiB, dev.default_stream)
        alloc.free(a)
        alloc.free(b)
        stats = alloc.memory_stats()
        assert stats["allocated_bytes.all.peak"] >= 30 * MiB
        assert stats["reserved_bytes.all.peak"] >= stats["allocated_bytes.all.peak"]

    def test_reset_peak(self):
        dev = make_device()
        alloc = dev.allocator
        a = alloc.allocate(50 * MiB, dev.default_stream)
        alloc.free(a)
        dev.reset_peak_memory_stats()
        stats = alloc.memory_stats()
        assert stats["allocated_bytes.all.peak"] == 0

    def test_empty_cache_releases_reserved(self):
        dev = make_device()
        alloc = dev.allocator
        a = alloc.allocate(50 * MiB, dev.default_stream)
        alloc.free(a)
        assert alloc.stats.reserved_bytes >= 50 * MiB
        alloc.empty_cache()
        assert alloc.stats.reserved_bytes == 0

    def test_memory_stats_keys_match_torch_names(self):
        dev = make_device()
        stats = dev.memory_stats()
        assert "num_alloc_retries" in stats
        assert "allocated_bytes.all.current" in stats
        assert "reserved_bytes.all.peak" in stats
