"""CheckpointWrapper / apply_activation_checkpointing tests."""

import numpy as np

import repro
from repro import distributed as dist, nn


def build():
    return nn.Sequential(
        nn.Sequential(nn.Linear(4, 8), nn.GELU(), nn.Linear(8, 4)),
        nn.Sequential(nn.Linear(4, 8), nn.GELU(), nn.Linear(8, 4)),
    )


class TestWrapper:
    def test_same_numerics_as_plain(self):
        repro.manual_seed(5)
        model = build()
        x = repro.randn(2, 4, requires_grad=True)
        model(x).sum().backward()
        plain = model[0][0].weight.grad.numpy().copy()
        model.zero_grad()
        x.grad = None
        wrapped = nn.apply_activation_checkpointing(
            model, lambda m: isinstance(m, nn.Sequential) and len(m) == 3
        )
        wrapped(x).sum().backward()
        inner = wrapped._modules["0"].module
        np.testing.assert_allclose(inner[0].weight.grad.numpy(), plain, atol=1e-6)

    def test_wraps_only_matching(self):
        model = build()
        nn.apply_activation_checkpointing(
            model, lambda m: isinstance(m, nn.Sequential) and len(m) == 3
        )
        assert isinstance(model._modules["0"], nn.CheckpointWrapper)
        assert not isinstance(model, nn.CheckpointWrapper)

    def test_no_double_wrapping(self):
        model = build()
        nn.apply_activation_checkpointing(model, lambda m: isinstance(m, nn.GELU))
        nn.apply_activation_checkpointing(model, lambda m: isinstance(m, nn.GELU))
        wrapper = model._modules["0"]._modules["1"]
        assert isinstance(wrapper, nn.CheckpointWrapper)
        assert not isinstance(wrapper.module, nn.CheckpointWrapper)

    def test_with_fsdp(self):
        def fn(rank):
            from repro.fsdp import FullyShardedDataParallel as FSDP, ModuleWrapPolicy

            model = build()
            nn.apply_activation_checkpointing(
                model, lambda m: isinstance(m, nn.Sequential) and len(m) == 3
            )
            device = dist.get_device()
            wrapped = FSDP(
                model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
            )
            x = repro.randn(2, 4, device=device).requires_grad_()
            wrapped(x).sum().backward()
            assert all(h.flat_param.grad is not None for h in wrapped.flat_handles)

        dist.spawn(fn, 2)

    def test_kwargs_forwarding(self):
        class TakesKw(nn.Module):
            def __init__(self):
                super().__init__()
                self.layer = nn.Linear(4, 4)

            def forward(self, x, scale=1.0):
                return self.layer(x) * scale

        wrapper = nn.CheckpointWrapper(TakesKw())
        x = repro.randn(2, 4, requires_grad=True)
        out = wrapper(x, scale=2.0)
        out.sum().backward()
        assert x.grad is not None


class TestSanitizerComposition:
    """Recompute re-enters FSDP pre-forward mid-backward: it must
    re-gather released parameters on properly ordered streams and must
    not confuse the execution-order validator (the recompute's
    pre-forward is deduplicated per iteration)."""

    def _train(self, device, *, iterations=3):
        from repro.fsdp import FullyShardedDataParallel as FSDP, ModuleWrapPolicy

        model = build()
        nn.apply_activation_checkpointing(
            model, lambda m: isinstance(m, nn.Sequential) and len(m) == 3
        )
        # FULL_SHARD reshards after forward, so the recompute path
        # must re-gather (the unsharded storage was freed), exercising
        # unshard ordering inside backward.
        wrapped = FSDP(
            model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
        )
        for _ in range(iterations):
            x = repro.empty(2, 4, device=device).requires_grad_()
            wrapped(x).sum().backward()
            wrapped.zero_grad()

    def test_recompute_clean_under_sanitizer(self):
        from repro.cuda import sanitizer

        dist.shutdown()
        ctx = dist.init_single_process(4, materialize=False)
        try:
            with sanitizer.enabled():
                self._train(ctx.device)
                assert sanitizer.active().violations == []
        finally:
            dist.shutdown()

    def test_recompute_clean_threaded(self):
        from repro.cuda import sanitizer

        def fn(rank):
            self._train(dist.get_device(), iterations=2)

        with sanitizer.enabled():
            dist.spawn(fn, 2)
            assert sanitizer.active().violations == []
