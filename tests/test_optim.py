"""Optimizer tests: SGD, Adam/AdamW, clipping, grad scaler basics."""

import numpy as np
import pytest

import repro
from repro import nn
from repro.optim import SGD, Adam, AdamW, GradScaler, clip_grad_norm_


def quadratic_param(value=np.array([2.0, -3.0], dtype=np.float32)):
    p = nn.Parameter(repro.tensor(value.copy()))
    return p


class TestSGD:
    def test_basic_step(self):
        p = quadratic_param()
        (p * p).sum().backward()
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.detach().numpy(), [2.0 - 0.4, -3.0 + 0.6], rtol=1e-6)

    def test_momentum_accumulates(self):
        p = quadratic_param(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(2):
            opt.zero_grad()
            (p * 1.0).sum().backward()
            opt.step()
        # v1 = 1, p=0.9; v2 = 0.9+1=1.9, p=0.9-0.19=0.71
        np.testing.assert_allclose(p.detach().numpy(), [0.71], rtol=1e-5)

    def test_weight_decay(self):
        p = quadratic_param(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        np.testing.assert_allclose(p.detach().numpy(), [1.0 - 0.1 * 0.5], rtol=1e-5)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=-1.0)

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        SGD([p], lr=0.1).step()  # no grad: no crash, no change
        np.testing.assert_allclose(p.detach().numpy(), [2.0, -3.0])

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_direction(self):
        p = quadratic_param(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.01)
        (p * 2.0).sum().backward()
        opt.step()
        # First Adam step moves by ~lr regardless of grad magnitude.
        np.testing.assert_allclose(p.detach().numpy(), [1.0 - 0.01], atol=1e-5)

    def test_matches_reference_trajectory(self):
        # Reference computed with the standard Adam recurrences.
        def reference(steps, lr=0.1, b1=0.9, b2=0.999, eps=1e-8):
            x = 1.0
            m = v = 0.0
            for t in range(1, steps + 1):
                g = 2 * x
                m = b1 * m + (1 - b1) * g
                v = b2 * v + (1 - b2) * g * g
                mh = m / (1 - b1**t)
                vh = v / (1 - b2**t)
                x -= lr * mh / (np.sqrt(vh) + eps)
            return x

        p = quadratic_param(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        for _ in range(5):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.detach().numpy(), [reference(5)], rtol=1e-4)

    def test_state_allocation(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.1)
        (p * p).sum().backward()
        opt.step()
        assert opt.state_bytes() == 2 * p.nbytes

    def test_adamw_decoupled_decay(self):
        p = quadratic_param(np.array([1.0], dtype=np.float32))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        # Zero grad: pure decay p *= (1 - lr*wd) = 0.95; Adam part ~0.
        np.testing.assert_allclose(p.detach().numpy(), [0.95], atol=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], betas=(1.5, 0.9))

    def test_param_groups(self):
        p1, p2 = quadratic_param(), quadratic_param()
        opt = Adam([{"params": [p1], "lr": 0.1}, {"params": [p2], "lr": 0.0}])
        for p in (p1, p2):
            (p * p).sum().backward()
        opt.step()
        np.testing.assert_allclose(p2.detach().numpy(), [2.0, -3.0])
        assert not np.allclose(p1.detach().numpy(), [2.0, -3.0])


class TestClipping:
    def test_clip_reduces_norm(self):
        p = quadratic_param(np.array([3.0, 4.0], dtype=np.float32))
        (p * p).sum().backward()  # grad [6, 8], norm 10
        total = clip_grad_norm_([p], max_norm=1.0)
        assert abs(total - 10.0) < 1e-4
        np.testing.assert_allclose(
            np.linalg.norm(p.grad.numpy()), 1.0, rtol=1e-3
        )

    def test_no_clip_below_threshold(self):
        p = quadratic_param(np.array([0.1], dtype=np.float32))
        (p * p).sum().backward()
        grad_before = p.grad.numpy().copy()
        clip_grad_norm_([p], max_norm=100.0)
        np.testing.assert_array_equal(p.grad.numpy(), grad_before)

    def test_global_norm_across_process_group(self):
        """Sharded params must clip by the *global* norm (Section 7.2.1).

        Each rank holds one shard of grad [6, 8]; the local norms are 6
        and 8 but every rank must report and scale by the global 10.
        """
        from repro import distributed as dist
        from repro.autograd.grad_mode import no_grad

        shards = np.array([[6.0], [8.0]], dtype=np.float32)

        def fn(rank):
            device = dist.get_device()
            p = nn.Parameter(repro.zeros(1, device=device))
            with no_grad():
                p.grad = repro.tensor(shards[rank], device=device)
            total = clip_grad_norm_(
                [p], max_norm=1.0, process_group=dist.default_group()
            )
            return total, p.grad.numpy().copy()

        results = dist.spawn(fn, 2)
        for rank, (total, grad) in enumerate(results):
            assert abs(total - 10.0) < 1e-4
            np.testing.assert_allclose(grad, shards[rank] / 10.0, rtol=1e-4)

    def test_local_norm_without_group(self):
        """The default stays single-rank local — existing callers keep
        the unsharded semantics."""
        p = quadratic_param(np.array([3.0, 4.0], dtype=np.float32))
        (p * p).sum().backward()
        total = clip_grad_norm_([p], max_norm=1.0, process_group=None)
        assert abs(total - 10.0) < 1e-4


class TestGradScaler:
    def test_skip_on_inf(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        scaler = GradScaler(init_scale=2.0)
        (p * p).sum().backward()
        from repro.autograd import no_grad

        with no_grad():
            p.grad.fill_(float("inf"))
        scaler.unscale_(opt)
        assert not scaler.step(opt)
        scaler.update()
        assert scaler.get_scale() == 1.0  # backed off
        np.testing.assert_allclose(p.detach().numpy(), [2.0, -3.0])

    def test_zero_grad_variants(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        (p * p).sum().backward()
        opt.zero_grad(set_to_none=False)
        assert p.grad is not None
        assert (p.grad.numpy() == 0).all()
        opt.zero_grad()
        assert p.grad is None
