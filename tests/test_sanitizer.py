"""Stream-order sanitizer: happens-before tracking over simulated streams.

Covers the violation taxonomy (read-after-write, write-after-read,
write-after-write, use-after-free, unretired-block-reuse), each of the
happens-before edge sources that must suppress a report (events, stream
waits, host-side synchronization, the allocator's reuse gate), the
trace integration, and the end-to-end negative test: deleting the
``wait_event`` in the FSDP all-gather path must trip the sanitizer.
"""

import json

import pytest

import repro
from repro import distributed as dist, nn
from repro.cuda import sanitizer
from repro.cuda.device import Device
from repro.dtypes import float32
from repro.errors import DistributedError, StreamOrderViolation
from repro.fsdp import FullyShardedDataParallel as FSDP, ModuleWrapPolicy
from repro.fsdp.runtime import FsdpUnit
from repro.hw.kernel_model import KernelCost
from repro.perf.timeline import trace_device

# Long enough on the GPU that the host clock stays well behind the
# kernel's completion, keeping cross-stream hazards open.
COST = KernelCost(flops=1e9, bytes_moved=1e8)


@pytest.fixture()
def gpu():
    device = Device("sim_gpu", capacity=1 << 30)
    device.materialize_data = False
    return device


@pytest.fixture()
def sanitizer_off():
    """Force the sanitizer off even in the REPRO_SANITIZER=1 CI lane."""
    prev = sanitizer.active()
    sanitizer.disable()
    yield
    if prev is not None:
        sanitizer.enable(raise_on_violation=prev.raise_on_violation)


def launch(device, stream, *, reads=(), writes=(), label="kernel"):
    device.launch(
        COST,
        float32,
        stream=stream,
        reads=tuple(t._storage for t in reads),
        writes=tuple(t._storage for t in writes),
        label=label,
    )


class TestHazards:
    def test_read_after_write_across_streams(self, gpu):
        t = repro.empty(1024, device=gpu)
        side = gpu.new_stream("side")
        with sanitizer.enabled():
            launch(gpu, gpu.default_stream, writes=(t,))
            with pytest.raises(StreamOrderViolation) as exc:
                launch(gpu, side, reads=(t,))
        assert exc.value.kind == "read-after-write"
        assert "default" in str(exc.value) and "side" in str(exc.value)

    def test_write_after_write_across_streams(self, gpu):
        t = repro.empty(1024, device=gpu)
        side = gpu.new_stream("side")
        with sanitizer.enabled():
            launch(gpu, gpu.default_stream, writes=(t,))
            with pytest.raises(StreamOrderViolation) as exc:
                launch(gpu, side, writes=(t,))
        assert exc.value.kind == "write-after-write"

    def test_write_after_read_across_streams(self, gpu):
        t = repro.empty(1024, device=gpu)
        side = gpu.new_stream("side")
        with sanitizer.enabled():
            launch(gpu, gpu.default_stream, reads=(t,))
            with pytest.raises(StreamOrderViolation) as exc:
                launch(gpu, side, writes=(t,))
        assert exc.value.kind == "write-after-read"

    def test_same_stream_accesses_are_ordered(self, gpu):
        t = repro.empty(1024, device=gpu)
        with sanitizer.enabled():
            launch(gpu, gpu.default_stream, writes=(t,))
            launch(gpu, gpu.default_stream, reads=(t,))
            launch(gpu, gpu.default_stream, writes=(t,))

    def test_use_after_free(self, gpu):
        t = repro.empty(1024, device=gpu)
        with sanitizer.enabled():
            launch(gpu, gpu.default_stream, writes=(t,))
            gpu.synchronize()
            t._storage.release()
            with pytest.raises(StreamOrderViolation) as exc:
                launch(gpu, gpu.default_stream, reads=(t,))
        assert exc.value.kind == "use-after-free"


class TestHappensBeforeEdges:
    def test_wait_event_orders_streams(self, gpu):
        t = repro.empty(1024, device=gpu)
        side = gpu.new_stream("side")
        with sanitizer.enabled():
            launch(gpu, gpu.default_stream, writes=(t,))
            event = gpu.default_stream.record_event()
            side.wait_event(event)
            launch(gpu, side, reads=(t,))  # must not raise

    def test_wait_stream_orders_streams(self, gpu):
        t = repro.empty(1024, device=gpu)
        side = gpu.new_stream("side")
        with sanitizer.enabled():
            launch(gpu, gpu.default_stream, writes=(t,))
            side.wait_stream(gpu.default_stream)
            launch(gpu, side, reads=(t,))

    def test_event_synchronize_orders_via_host(self, gpu):
        t = repro.empty(1024, device=gpu)
        side = gpu.new_stream("side")
        with sanitizer.enabled():
            launch(gpu, gpu.default_stream, writes=(t,))
            gpu.default_stream.record_event().synchronize()
            # The host observed completion; later launches on any stream
            # are ordered after the write (cudaEventSynchronize).
            launch(gpu, side, reads=(t,))

    def test_device_synchronize_orders_everything(self, gpu):
        t = repro.empty(1024, device=gpu)
        side = gpu.new_stream("side")
        with sanitizer.enabled():
            launch(gpu, gpu.default_stream, writes=(t,))
            gpu.synchronize()
            launch(gpu, side, reads=(t,))

    def test_wait_only_covers_recorded_prefix(self, gpu):
        """An event waits for kernels recorded *before* it, not after."""
        t = repro.empty(1024, device=gpu)
        side = gpu.new_stream("side")
        with sanitizer.enabled():
            event = gpu.default_stream.record_event()  # before the write
            launch(gpu, gpu.default_stream, writes=(t,))
            side.wait_event(event)
            with pytest.raises(StreamOrderViolation):
                launch(gpu, side, reads=(t,))

    def test_allocator_gated_reuse_is_an_edge(self, gpu):
        """release/reallocate through the allocator resets the shadow.

        The allocator only hands back a block whose cross-stream uses
        retired relative to the CPU clock, so accesses from the previous
        storage lifetime must not be reported against the new one —
        even when the very same ``Block`` object is returned.
        """
        t = repro.empty(1024, device=gpu)
        side = gpu.new_stream("side")
        with sanitizer.enabled():
            launch(gpu, gpu.default_stream, writes=(t,))
            gpu.synchronize()
            launch(gpu, side, reads=(t,))
            gpu.synchronize()  # retire the side-stream read
            storage = t._storage
            storage.release()
            storage.reallocate()
            # Fresh lifetime: a default-stream write must not race the
            # previous lifetime's side-stream reader.
            launch(gpu, gpu.default_stream, writes=(t,))


class TestAllocatorReuseGate:
    def test_unretired_block_reuse_is_caught(self, gpu):
        """If the allocator's retire gate were broken, the sanitizer
        reports the block handed out under a live cross-stream kernel
        (this is the seed ``_retry_free_cached`` bug re-created by
        resetting the pooled block's retire state by hand)."""
        keep1 = repro.empty(1024, device=gpu)
        victim = repro.empty(1024, device=gpu)
        keep2 = repro.empty(1024, device=gpu)
        side = gpu.new_stream("side")
        with sanitizer.enabled():
            launch(gpu, side, reads=(victim,))
            block = victim._storage.block
            assert block is not None
            victim._storage.release()
            # Neighbours are allocated, so the freed block does not
            # coalesce and keeps its identity in the pool.  Clearing the
            # retire time simulates an allocator that ignores pending
            # cross-stream uses.
            block.reuse_ready_time = 0.0
            with pytest.raises(StreamOrderViolation) as exc:
                repro.empty(1024, device=gpu)
        assert exc.value.kind == "unretired-block-reuse"
        del keep1, keep2

    def test_honest_allocator_reuse_not_flagged(self, gpu):
        keep1 = repro.empty(1024, device=gpu)
        victim = repro.empty(1024, device=gpu)
        keep2 = repro.empty(1024, device=gpu)
        side = gpu.new_stream("side")
        with sanitizer.enabled():
            launch(gpu, side, reads=(victim,))
            victim._storage.release()
            # The untampered gate routes the request to fresh memory (or
            # waits for retirement) — no violation either way.
            repro.empty(1024, device=gpu)
        del keep1, keep2


class TestReporting:
    def test_collect_mode_accumulates(self, gpu):
        t = repro.empty(1024, device=gpu)
        side = gpu.new_stream("side")
        with sanitizer.enabled(raise_on_violation=False):
            launch(gpu, gpu.default_stream, writes=(t,))
            launch(gpu, side, reads=(t,))
            launch(gpu, side, writes=(t,))
            san = sanitizer.active()
            kinds = [v.kind for v in san.violations]
        assert "read-after-write" in kinds
        assert len(kinds) >= 2

    def test_violations_export_as_trace_marks(self, gpu, tmp_path):
        tracer = trace_device(gpu)
        t = repro.empty(1024, device=gpu)
        side = gpu.new_stream("side")
        with sanitizer.enabled(raise_on_violation=False):
            launch(gpu, gpu.default_stream, writes=(t,))
            launch(gpu, side, reads=(t,))
        marks = tracer.sanitizer_marks()
        assert marks and marks[0][0] == "sanitizer:read-after-write"
        path = tmp_path / "trace.json"
        tracer.to_chrome_trace(str(path))
        events = json.loads(path.read_text())["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert any(e["name"].startswith("sanitizer:") for e in instants)

    def test_disabled_by_default(self, gpu, sanitizer_off):
        t = repro.empty(1024, device=gpu)
        side = gpu.new_stream("side")
        # Races are modelling bugs, not crashes, when the sanitizer is
        # off — the simulation must keep running.
        launch(gpu, gpu.default_stream, writes=(t,))
        launch(gpu, side, reads=(t,))

    def test_enable_disable_toggle(self, sanitizer_off):
        assert not sanitizer.is_enabled()
        sanitizer.enable()
        try:
            assert sanitizer.is_enabled()
            assert sanitizer.active().raise_on_violation
        finally:
            sanitizer.disable()
        assert not sanitizer.is_enabled()


def _forward_once(device, world):
    model = nn.Sequential(nn.Linear(16, 16), nn.Linear(16, 16))
    wrapped = FSDP(
        model, device=device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
    )
    x = repro.empty(4, 16, device=device)
    wrapped(x).sum().backward()


class TestFsdpIntegration:
    """Acceptance: removing the wait in the all-gather path is caught."""

    def test_missing_unshard_wait_single_process(self, monkeypatch):
        monkeypatch.setattr(FsdpUnit, "_wait_unshard_on_compute", lambda self: None)
        dist.shutdown()
        ctx = dist.init_single_process(4, materialize=False)
        try:
            with sanitizer.enabled():
                with pytest.raises(StreamOrderViolation) as exc:
                    _forward_once(ctx.device, 4)
            assert exc.value.kind == "read-after-write"
            assert "all_gather" in str(exc.value)
        finally:
            dist.shutdown()

    def test_missing_unshard_wait_threaded(self, monkeypatch):
        monkeypatch.setattr(FsdpUnit, "_wait_unshard_on_compute", lambda self: None)

        def fn(rank):
            device = dist.get_device()
            _forward_once(device, 2)

        with sanitizer.enabled():
            with pytest.raises(DistributedError, match="StreamOrderViolation"):
                dist.spawn(fn, 2)

    def test_intact_runtime_is_clean(self):
        dist.shutdown()
        ctx = dist.init_single_process(4, materialize=False)
        try:
            with sanitizer.enabled():
                _forward_once(ctx.device, 4)
                assert sanitizer.active().violations == []
        finally:
            dist.shutdown()
