"""Unit tests for the figure harnesses themselves (fast paths only)."""

import numpy as np

from repro.bench.fig2 import fig2a_rows, fig2b_knee, fig2b_rows
from repro.bench.report import fmt_bytes, fmt_seconds, print_table
from repro.bench.scale import DHEN_STRATEGIES


class TestFig2Harness:
    def test_fig2a_row_fields(self):
        rows = fig2a_rows(world_size=8, sizes=[2**20, 2**24])
        assert len(rows) == 2
        for row in rows:
            assert row.bw_all_gather_base > 0
            assert row.bw_uneven_small > 0

    def test_fig2a_bandwidth_monotone_in_size(self):
        rows = fig2a_rows(world_size=8, sizes=[2**16, 2**20, 2**24, 2**28])
        bws = [r.bw_all_gather_base for r in rows]
        assert all(a < b for a, b in zip(bws, bws[1:]))

    def test_fig2b_respects_total(self):
        rows = fig2b_rows(world_size=8, total_elements=2**24, per_collective=[2**20, 2**24])
        assert len(rows) == 2
        assert rows[0][1] > rows[1][1]

    def test_knee_threshold_sensitivity(self):
        rows = fig2b_rows(world_size=8)
        strict = fig2b_knee(rows, threshold=1.1)
        loose = fig2b_knee(rows, threshold=2.0)
        assert strict >= loose

    def test_world_size_dependence(self):
        small = fig2a_rows(world_size=2, sizes=[2**24])[0]
        large = fig2a_rows(world_size=8, sizes=[2**24])[0]
        # Bus bandwidth is normalized; both should be same order.
        assert 0.1 < small.bw_all_gather_base / large.bw_all_gather_base < 10


class TestReportHelpers:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512.0B"
        assert fmt_bytes(2048) == "2.0KiB"
        assert fmt_bytes(3 * 2**30) == "3.0GiB"

    def test_fmt_seconds(self):
        assert fmt_seconds(5e-6) == "5.0us"
        assert fmt_seconds(0.5) == "500.00ms"
        assert fmt_seconds(2.0) == "2.000s"

    def test_print_table_smoke(self, capsys):
        print_table("t", ["a", "bb"], [(1, 2), ("x", "yyyy")])
        out = capsys.readouterr().out
        assert "t" in out and "yyyy" in out


class TestScaleDefinitions:
    def test_dhen_strategies_cover_paper_grid(self):
        labels = [label for label, _ in DHEN_STRATEGIES]
        assert labels == [
            "FullShard RAF",
            "FullShard NRAF",
            "HybridShard RAF",
            "HybridShard NRAF",
        ]
        from repro.fsdp import ShardingStrategy

        strategies = [s for _, s in DHEN_STRATEGIES]
        raf = [s.reshard_after_forward for s in strategies]
        assert raf == [True, False, True, False]
        hybrid = [s.is_hybrid for s in strategies]
        assert hybrid == [False, False, True, True]
