"""Flight-recorder negative controls: hang diagnosis end to end.

The point of the flight recorder is the failure path: when a rank
hangs, the dump attached to the watchdog's
:class:`~repro.errors.CollectiveTimeoutError` must name the stalled
collective (kind, seq id, payload) and the exact ranks missing from
the rendezvous — and a clean run must dump an *empty* in-flight set,
so a hang report can never be a false positive.

Hangs are induced with ``repro.distributed.fault``; the threaded
backend gives real per-rank semantics (one recorder shared by all rank
threads), the symmetric single-process backend covers the watchdog
wiring in the perf simulator.
"""

import numpy as np
import pytest

import repro
from repro import distributed as dist
from repro.distributed import FaultEvent, FaultKind, FaultSchedule
from repro.errors import CollectiveTimeoutError
from repro.profiler import FlightRecorder

WORLD = 4
HUNG_RANK = 2


def run_world(recorder, *, schedule=None, collectives=2, hang_at=None, timeout=2.0):
    """Spawn a threaded world; each rank runs ``collectives`` AllReduces.

    Workers catch their own watchdog error and return its flight dump,
    so the test can inspect every rank's view of the failure.
    """

    def worker(rank):
        device = dist.get_device()
        group = dist.default_group()
        x = repro.tensor(np.ones(8, dtype=np.float32) * (rank + 1), device=device)
        try:
            for _ in range(collectives):
                group.all_reduce(x).wait()
            device.synchronize()
            return None
        except CollectiveTimeoutError as error:
            return error

    # Coordinated abort is disabled: this suite checks the *watchdog
    # timeout* diagnosis path, where every rank independently parks
    # until its own deadline and surfaces a CollectiveTimeoutError
    # (the coordinated fast path is covered in test_resilience.py).
    return dist.spawn(
        worker,
        WORLD,
        fault_schedule=schedule,
        flight_recorder=recorder,
        collective_timeout=timeout,
        coordinated_abort=False,
    )


class TestThreadedHang:
    @pytest.fixture(scope="class")
    def hang_results(self):
        """One world where rank 2 hangs on its second collective."""
        recorder = FlightRecorder()
        schedule = FaultSchedule([
            FaultEvent(kind=FaultKind.HANG, rank=HUNG_RANK, collective_index=1)
        ])
        results = run_world(recorder, schedule=schedule, timeout=1.0)
        return recorder, results

    def test_every_rank_surfaces_the_timeout(self, hang_results):
        _, results = hang_results
        assert all(isinstance(r, CollectiveTimeoutError) for r in results)
        assert all(r.kind == "all_reduce" for r in results)

    def test_dump_names_stalled_collective_and_missing_ranks(self, hang_results):
        recorder, results = hang_results
        # A peer rank's error carries the shared dump: the stalled
        # collective is the second AllReduce (seq=1), the hung rank is
        # the one with no record for it.
        error = results[0]
        assert error.flight_dump is not None
        in_flight = error.flight_dump.in_flight
        assert len(in_flight) == 1
        stalled = in_flight[0]
        assert stalled.kind == "all_reduce"
        assert stalled.seq == 1
        assert stalled.missing_ranks == (HUNG_RANK,)
        assert stalled.issued_ranks == tuple(
            r for r in range(WORLD) if r != HUNG_RANK
        )
        assert stalled.launched_ranks == ()
        assert stalled.group_ranks == tuple(range(WORLD))

    def test_hung_ranks_own_error_also_carries_a_dump(self, hang_results):
        recorder, results = hang_results
        # The hung rank's watchdog fires while peer threads are still
        # mid-flight, so its snapshot's contents are schedule-dependent
        # — but it must carry a dump, and once every thread has parked,
        # the shared recorder's analysis is unambiguous: seq=1 is
        # stalled and the hung rank is the missing one.
        assert results[HUNG_RANK].flight_dump is not None
        entries = recorder.in_flight()
        assert len(entries) == 1
        assert entries[0].missing_ranks == (HUNG_RANK,)

    def test_render_is_operator_readable(self, hang_results):
        _, results = hang_results
        text = results[0].flight_dump.render()
        assert "IN FLIGHT" in text
        assert "all_reduce seq=1" in text
        assert f"MISSING ranks [{HUNG_RANK}]" in text

    def test_completed_collective_not_reported(self, hang_results):
        recorder, _ = hang_results
        # The first AllReduce (seq=0) completed on every rank and must
        # stay out of the in-flight set.
        seqs = {entry.seq for entry in recorder.in_flight()}
        assert seqs == {1}
        completed = [r for r in recorder.records() if r.seq == 0]
        assert len(completed) == WORLD
        assert all(r.launched for r in completed)


class TestThreadedCleanRun:
    def test_clean_run_dumps_empty_in_flight_set(self):
        recorder = FlightRecorder()
        results = run_world(recorder, collectives=3)
        assert results == [None] * WORLD
        dump = recorder.dump()
        assert dump.in_flight == []
        assert dump.total_recorded == WORLD * 3
        assert "no collectives in flight" in dump.render()
        # Every record launched, with aligned per-rank seq numbers.
        for record in recorder.records():
            assert record.launched
        assert {r.seq for r in recorder.records()} == {0, 1, 2}


class TestSingleProcessWatchdog:
    @pytest.fixture()
    def world(self):
        def make(schedule=None, recorder=None, timeout=0.5):
            dist.shutdown()
            return dist.init_single_process(
                WORLD,
                materialize=False,
                fault_schedule=schedule,
                flight_recorder=recorder,
                collective_timeout=timeout,
            )

        yield make
        dist.shutdown()

    def _one_all_gather(self, ctx):
        device = ctx.device
        group = dist.default_group()
        shard = repro.empty(1024, device=device)
        out = repro.empty(WORLD * 1024, device=device)
        return group.all_gather_into_tensor(out, shard)

    def test_watchdog_error_carries_dump(self, world):
        recorder = FlightRecorder()
        ctx = world(
            schedule=FaultSchedule([
                FaultEvent(kind=FaultKind.HANG, collective_index=0)
            ]),
            recorder=recorder,
        )
        with pytest.raises(CollectiveTimeoutError) as exc_info:
            self._one_all_gather(ctx)
        dump = exc_info.value.flight_dump
        assert dump is not None
        assert len(dump.in_flight) == 1
        stalled = dump.in_flight[0]
        assert stalled.kind == "all_gather_base"
        assert stalled.seq == 0
        # Symmetric backend: only the modeled rank issues; the stalled
        # record is its issued-but-never-launched AllGather.
        assert stalled.launched_ranks == ()
        assert ctx.rank in stalled.issued_ranks

    def test_watchdog_without_recorder_has_no_dump(self, world):
        ctx = world(
            schedule=FaultSchedule([
                FaultEvent(kind=FaultKind.HANG, collective_index=0)
            ]),
        )
        with pytest.raises(CollectiveTimeoutError) as exc_info:
            self._one_all_gather(ctx)
        assert exc_info.value.flight_dump is None

    def test_clean_single_process_run_is_all_launched(self, world):
        recorder = FlightRecorder()
        ctx = world(recorder=recorder)
        self._one_all_gather(ctx).wait()
        ctx.device.synchronize()
        assert recorder.in_flight(now=ctx.device.cpu_time()) == []
        assert recorder.total_recorded == 1
        assert recorder.records()[0].launched
