"""Golden-trace regression tests: §3.3 scheduling invariants on minGPT.

One tiny minGPT configuration is simulated with the profiler attached,
and the recorded timeline is checked against the schedule the paper's
runtime section promises:

1. a unit's AllGather completes before its first kernel starts (the
   compute stream waits on the unshard event, §3.3.1);
2. a backward-prefetch AllGather overlaps the *issuing* unit's gradient
   computation (§3.3.2 — that computation is exactly what the prefetch
   is meant to hide behind);
3. the ReduceScatter of unit *i* overlaps the backward of the unit that
   runs after it (unit *i−1* in forward order, §3.3.1);
4. the rate limiter caps in-flight AllGathers at the configured depth
   (§3.4), and without the limiter the depth genuinely exceeds it
   (negative control — the cap binds).

All four invariants are asserted for BOTH sharding backends — the
golden fixture is parametrized over ``flat_param`` and ``per_param``,
since the per-parameter handle plugs into the same FsdpUnit scheduling
machinery and must inherit its §3.3 guarantees unchanged.  A sanitizer
negative control at the bottom deletes the per-param backend's
unshard->compute wait and demands a ``StreamOrderViolation``: the
ordering is load-bearing, not incidental.

The config is deterministic, so any violation is a scheduling
regression, not noise.
"""

import dataclasses

import pytest

from repro.fsdp import ModuleWrapPolicy
from repro.models.mingpt import GptConfig
from repro.models.transformer import TransformerBlock
from repro.perf import SimConfig, simulate_training
from repro.perf.timeline import merge_intervals
from repro.profiler import ProfilerSession, scope_leaf

N_LAYER = 6
GOLDEN = GptConfig(
    vocab_size=512, block_size=32, n_layer=N_LAYER, n_head=4, n_embd=64,
    checkpoint_blocks=False,
)
EPS = 1e-12


def golden_config(**overrides) -> SimConfig:
    from repro.perf.workloads import gpt_builder, gpt_loss_fn

    base = SimConfig(
        name="golden-gpt",
        build_model=gpt_builder(GOLDEN),
        make_loss=gpt_loss_fn(GOLDEN, 2, 32),
        batch_size=2,
        world_size=8,
        auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
        iterations=1,
        # Two warmup iterations so the caching allocator reaches steady
        # state: the first post-init iteration still pays cudaMalloc
        # stalls while cross-stream frees retire (§3.4), which can stall
        # the CPU long enough to break the overlap invariants the golden
        # trace asserts for the *steady-state* schedule.
        warmup=2,
    )
    return dataclasses.replace(base, **overrides)


def run_profiled(**overrides):
    session = ProfilerSession()
    result = simulate_training(golden_config(profiler=session, **overrides))
    assert not result.oom
    return session, result


@pytest.fixture(scope="module", params=["flat_param", "per_param"])
def golden(request):
    """One profiled run per backend, shared by every invariant check."""
    return run_profiled(backend=request.param)


# ----------------------------------------------------------------------
# Timeline helpers
# ----------------------------------------------------------------------
def compute_kernels(session, phase: str, label: str):
    """Default-stream kernel intervals scoped to ``phase:label``."""
    return merge_intervals(
        (e.start, e.end)
        for e in session.kernel_events
        if e.stream == "default" and scope_leaf(e.scope) == f"{phase}:{label}"
    )


def unshard_intervals(session, label: str, reasons: tuple):
    """AllGather intervals of ``label`` issued for one of ``reasons``."""
    unit = session.units[label]
    wanted = {f"unshard:{label}@{reason}" for reason in reasons}
    return [
        (c.start, c.end)
        for c in unit.comm_intervals
        if c.kind.startswith("all_gather") and scope_leaf(c.scope) in wanted
    ]


def overlap_s(intervals_a, intervals_b) -> float:
    total = 0.0
    for a0, a1 in merge_intervals(intervals_a):
        for b0, b1 in merge_intervals(intervals_b):
            total += max(0.0, min(a1, b1) - max(a0, b0))
    return total


def block_labels(session):
    return sorted(
        (label for label in session.units if ".blocks." in label),
        key=lambda label: int(label.rsplit(".", 1)[-1]),
    )


# ----------------------------------------------------------------------
# Invariant 1: AllGather-before-first-kernel
# ----------------------------------------------------------------------
class TestUnshardOrdering:
    def test_forward_allgather_completes_before_first_forward_kernel(self, golden):
        session, _ = golden
        checked = 0
        for label in session.units:
            gathers = unshard_intervals(session, label, ("forward", "forward_prefetch"))
            kernels = compute_kernels(session, "forward", label)
            if not gathers or not kernels:
                continue
            first_kernel = min(start for start, _ in kernels)
            for _, gather_end in gathers:
                assert gather_end <= first_kernel + EPS, label
            checked += 1
        assert checked >= N_LAYER  # every block ran through the check

    def test_backward_allgather_completes_before_first_backward_kernel(self, golden):
        session, _ = golden
        checked = 0
        for label in block_labels(session):
            gathers = unshard_intervals(
                session, label, ("pre_backward", "backward_prefetch")
            )
            kernels = compute_kernels(session, "backward", label)
            assert gathers, label  # reshard-after-forward: backward regathers
            assert kernels, label
            first_kernel = min(start for start, _ in kernels)
            for _, gather_end in gathers:
                assert gather_end <= first_kernel + EPS, label
            checked += 1
        assert checked == N_LAYER


# ----------------------------------------------------------------------
# Invariant 2: backward prefetch overlaps the issuing unit's gradients
# ----------------------------------------------------------------------
class TestBackwardPrefetchOverlap:
    def test_prefetch_issued_from_previous_backward_scope(self, golden):
        session, _ = golden
        order = session.backward_order
        issues = [
            (label, issue)
            for label in session.units
            for issue in session.units[label].unshard_issues
            if issue.reason == "backward_prefetch"
        ]
        assert len(issues) >= N_LAYER - 1
        for prefetched, issue in issues:
            parent = scope_leaf(issue.parent_scope)
            assert parent.startswith("backward:"), (prefetched, parent)
            issuer = parent.split(":", 1)[1]
            # The prefetched unit is the next one the backward pass
            # needs: it directly follows the issuer in backward order.
            assert order.index(prefetched) == order.index(issuer) + 1

    def test_prefetched_allgather_overlaps_previous_unit_gradients(self, golden):
        session, _ = golden
        for prefetched, issue in [
            (label, issue)
            for label in block_labels(session)
            for issue in session.units[label].unshard_issues
            if issue.reason == "backward_prefetch"
        ]:
            issuer = scope_leaf(issue.parent_scope).split(":", 1)[1]
            gathers = unshard_intervals(session, prefetched, ("backward_prefetch",))
            gradients = compute_kernels(session, "backward", issuer)
            assert gathers and gradients, (prefetched, issuer)
            assert overlap_s(gathers, gradients) > 0.0, (prefetched, issuer)


# ----------------------------------------------------------------------
# Invariant 3: ReduceScatter of unit i overlaps backward of unit i−1
# ----------------------------------------------------------------------
class TestReduceScatterOverlap:
    def test_reduce_scatter_overlaps_next_backward_unit(self, golden):
        session, _ = golden
        # backward_order on blocks is reverse forward order: block i's
        # ReduceScatter is issued at its post-backward and should run
        # under block i−1's gradient kernels.
        order = [label for label in session.backward_order if ".blocks." in label]
        assert [int(l.rsplit(".", 1)[-1]) for l in order] == list(
            range(N_LAYER - 1, -1, -1)
        )
        for current, successor in zip(order, order[1:]):
            scatters = [
                (c.start, c.end)
                for c in session.units[current].comm_intervals
                if c.kind == "reduce_scatter"
            ]
            gradients = compute_kernels(session, "backward", successor)
            assert scatters and gradients, (current, successor)
            assert overlap_s(scatters, gradients) > 0.0, (current, successor)


# ----------------------------------------------------------------------
# Invariant 4: the rate limiter caps in-flight AllGathers
# ----------------------------------------------------------------------
class TestRateLimiter:
    @pytest.mark.parametrize("backend", ["flat_param", "per_param"])
    @pytest.mark.parametrize("inflight", [1, 2])
    def test_depth_never_exceeds_configured_limit(self, inflight, backend):
        session, _ = run_profiled(
            limit_all_gathers=True, rate_limit_inflight=inflight, backend=backend
        )
        assert session.rate_limit_depths
        # depth counts *pending* AllGathers at admission; the admitted
        # one makes depth+1 in flight.
        assert max(session.rate_limit_depths) + 1 <= inflight

    def test_without_limiter_depth_exceeds_cap(self):
        # Negative control: the cap above is the limiter's doing, not
        # an artifact of the schedule.
        session, _ = run_profiled(limit_all_gathers=False)
        assert max(session.rate_limit_depths) + 1 > 2

    def test_limiter_stall_time_is_recorded(self):
        strict, _ = run_profiled(limit_all_gathers=True, rate_limit_inflight=1)
        relaxed, _ = run_profiled(limit_all_gathers=False)
        assert strict.rate_limit_stall_s >= relaxed.rate_limit_stall_s
        assert relaxed.rate_limit_stall_s == 0.0


# ----------------------------------------------------------------------
# Golden prefetch + totals shape
# ----------------------------------------------------------------------
class TestGoldenSummary:
    def test_prefetch_hits_and_the_structural_first_miss(self, golden):
        session, _ = golden
        blocks = block_labels(session)
        # The deepest block opens the backward pass: nothing ran before
        # it that could have prefetched it, so it is a miss by
        # construction (§3.3.2); every other block is prefetch-fed.
        first_backward = blocks[-1]
        assert session.units[first_backward].prefetch_misses == 1
        assert session.units[first_backward].prefetch_hits == 0
        for label in blocks[:-1]:
            assert session.units[label].prefetch_hits == 1, label
            assert session.units[label].prefetch_misses == 0, label

    def test_totals_and_perf_result_agree(self, golden):
        session, result = golden
        totals = session.totals()
        assert totals["exposed_comm_s"] > 0
        assert totals["overlapped_comm_s"] > 0
        assert 0.0 < totals["overlap_fraction"] < 1.0
        assert totals["allgather_bytes"] > totals["reduce_scatter_bytes"] > 0
        # PerfResult carries the same numbers, per iteration.
        assert result.exposed_comm_s == pytest.approx(totals["exposed_comm_s"])
        assert result.overlapped_comm_s == pytest.approx(totals["overlapped_comm_s"])
        assert result.prefetch_hits == totals["prefetch_hits"]
        assert result.prefetch_misses == totals["prefetch_misses"]
        report = result.extras["profiler"]
        assert {u["label"] for u in report["units"]} == set(session.units)


# ----------------------------------------------------------------------
# Sanitizer negative control: the unshard wait is load-bearing
# ----------------------------------------------------------------------
class TestSanitizerNegativeControl:
    def test_deleted_unshard_wait_trips_stream_sanitizer(self, monkeypatch):
        """Drop the per-param backend's AllGather->compute edge and the
        stream-order sanitizer must catch the compute stream reading
        parameter storage the unshard stream is still writing."""
        from repro.cuda import sanitizer
        from repro.errors import StreamOrderViolation
        from repro.fsdp.runtime import FsdpUnit

        monkeypatch.setattr(
            FsdpUnit, "_wait_unshard_on_compute", lambda self: None
        )
        with sanitizer.enabled():
            with pytest.raises(StreamOrderViolation):
                run_profiled(backend="per_param")

    def test_intact_schedule_is_sanitizer_clean(self):
        """Positive control: with the wait in place the same run passes
        under the sanitizer."""
        from repro.cuda import sanitizer

        with sanitizer.enabled():
            session, result = run_profiled(backend="per_param")
        assert not result.oom
