"""Autograd engine tests: gradients, hooks, callbacks, graph shapes."""

import numpy as np
import pytest

import repro
from repro import ops
from repro.autograd import engine, no_grad, queue_callback
from repro.nn import functional as F
from tests.conftest import gradcheck


class TestElementwiseGradients:
    def test_add_broadcast(self):
        gradcheck(
            ops.add,
            [np.random.rand(3, 4).astype(np.float32), np.random.rand(4).astype(np.float32)],
            lambda a, b: (a + b).sum(),
        )

    def test_sub(self):
        gradcheck(
            ops.sub,
            [np.random.rand(3).astype(np.float32), np.random.rand(3).astype(np.float32)],
            lambda a, b: (a - b).sum(),
        )

    def test_mul_broadcast(self):
        gradcheck(
            ops.mul,
            [np.random.rand(2, 3).astype(np.float32), np.random.rand(1, 3).astype(np.float32)],
            lambda a, b: (a * b).sum(),
        )

    def test_div(self):
        gradcheck(
            ops.div,
            [np.random.rand(3).astype(np.float32), np.random.rand(3).astype(np.float32) + 1.0],
            lambda a, b: (a / b).sum(),
        )

    def test_pow(self):
        gradcheck(
            lambda a: ops.pow(a, 3.0),
            [np.random.rand(4).astype(np.float32) + 0.5],
            lambda a: (a**3.0).sum(),
        )

    def test_exp_log_sqrt_tanh_sigmoid(self):
        x = np.random.rand(5).astype(np.float32) + 0.5
        gradcheck(ops.exp, [x], lambda a: np.exp(a).sum())
        gradcheck(ops.log, [x], lambda a: np.log(a).sum())
        gradcheck(ops.sqrt, [x], lambda a: np.sqrt(a).sum())
        gradcheck(ops.tanh, [x], lambda a: np.tanh(a).sum())
        gradcheck(ops.sigmoid, [x], lambda a: (1 / (1 + np.exp(-a))).sum())

    def test_relu_gelu(self):
        x = (np.random.rand(6).astype(np.float32) - 0.5) * 2
        x = x[np.abs(x) > 0.05]  # keep away from the ReLU kink
        gradcheck(ops.relu, [x], lambda a: np.maximum(a, 0).sum())
        c = np.sqrt(2 / np.pi)
        gradcheck(
            ops.gelu,
            [x],
            lambda a: (0.5 * a * (1 + np.tanh(c * (a + 0.044715 * a**3)))).sum(),
        )

    def test_abs_neg(self):
        x = np.array([0.5, -1.5, 2.0], dtype=np.float32)
        gradcheck(ops.abs, [x], lambda a: np.abs(a).sum())
        gradcheck(ops.neg, [x], lambda a: (-a).sum())

    def test_where_maximum(self):
        a = np.random.rand(4).astype(np.float32)
        b = np.random.rand(4).astype(np.float32) + 2.0
        gradcheck(ops.maximum, [a, b], lambda x, y: np.maximum(x, y).sum())


class TestMatmulGradients:
    def test_matmul_2d(self):
        gradcheck(
            ops.matmul,
            [np.random.rand(3, 4).astype(np.float32), np.random.rand(4, 2).astype(np.float32)],
            lambda a, b: (a @ b).sum(),
        )

    def test_matmul_batched(self):
        gradcheck(
            ops.matmul,
            [np.random.rand(2, 3, 4).astype(np.float32), np.random.rand(2, 4, 2).astype(np.float32)],
            lambda a, b: (a @ b).sum(),
        )

    def test_matmul_broadcast_batch(self):
        gradcheck(
            ops.matmul,
            [np.random.rand(2, 3, 4).astype(np.float32), np.random.rand(4, 5).astype(np.float32)],
            lambda a, b: (a @ b).sum(),
        )

    def test_linear(self):
        x = np.random.rand(5, 4).astype(np.float32)
        w = np.random.rand(3, 4).astype(np.float32)
        b = np.random.rand(3).astype(np.float32)
        gradcheck(ops.linear, [x, w, b], lambda x_, w_, b_: (x_ @ w_.T + b_).sum())

    def test_linear_no_bias(self):
        x = np.random.rand(5, 4).astype(np.float32)
        w = np.random.rand(3, 4).astype(np.float32)
        gradcheck(
            lambda x_, w_: ops.linear(x_, w_, None),
            [x, w],
            lambda x_, w_: (x_ @ w_.T).sum(),
        )


class TestReductionAndShapeGradients:
    def test_sum_dims(self):
        x = np.random.rand(3, 4).astype(np.float32)
        gradcheck(lambda a: ops.sum(a, 0), [x], lambda a: a.sum(0).sum())
        gradcheck(lambda a: ops.sum(a, (0, 1)), [x], lambda a: a.sum())

    def test_mean(self):
        x = np.random.rand(3, 4).astype(np.float32)
        gradcheck(lambda a: ops.mean(a, 1), [x], lambda a: a.mean(1).sum())

    def test_max(self):
        x = np.random.rand(7).astype(np.float32)
        gradcheck(ops.max, [x], lambda a: a.max())

    def test_view_split_cat(self):
        x = np.random.rand(6).astype(np.float32)

        def op(a):
            p1, p2 = ops.split(a, [2, 4])
            return ops.cat([ops.mul(p1, p1), p2], 0)

        gradcheck(op, [x], lambda a: (a[:2] ** 2).sum() + a[2:].sum())

    def test_transpose_grad(self):
        x = np.random.rand(3, 4).astype(np.float32)
        gradcheck(
            lambda a: ops.mul(ops.transpose(a, 0, 1), ops.transpose(a, 0, 1)),
            [x],
            lambda a: (a.T * a.T).sum(),
        )

    def test_softmax_logsoftmax(self):
        x = np.random.rand(2, 5).astype(np.float32)
        gradcheck(
            lambda a: ops.mul(ops.softmax(a, -1), ops.softmax(a, -1)),
            [x],
            lambda a: ((np.exp(a) / np.exp(a).sum(-1, keepdims=True)) ** 2).sum(),
        )

    def test_layer_norm(self):
        x = np.random.rand(4, 6).astype(np.float32)
        w = np.random.rand(6).astype(np.float32)
        b = np.random.rand(6).astype(np.float32)

        def ref(x_, w_, b_):
            mu = x_.mean(-1, keepdims=True)
            var = x_.var(-1, keepdims=True)
            return (((x_ - mu) / np.sqrt(var + 1e-5)) * w_ + b_).sum()

        gradcheck(lambda a, w_, b_: ops.layer_norm(a, w_, b_), [x, w, b], ref, atol=5e-3)

    def test_embedding_grad(self):
        w = np.random.rand(10, 4).astype(np.float32)
        idx = repro.tensor(np.array([1, 3, 3, 7]))
        wt = repro.tensor(w).requires_grad_()
        out = ops.embedding(wt, idx)
        out.sum().backward()
        expected = np.zeros_like(w)
        np.add.at(expected, [1, 3, 3, 7], 1.0)
        np.testing.assert_allclose(wt.grad.numpy(), expected)

    def test_conv2d_grad(self):
        x = np.random.rand(2, 3, 5, 5).astype(np.float32)
        w = np.random.rand(4, 3, 3, 3).astype(np.float32)
        b = np.random.rand(4).astype(np.float32)

        def ref(x_, w_, b_):
            from repro.ops.conv import _im2col

            cols = _im2col(x_, 3, 3, 1, 1)
            return (cols @ w_.reshape(4, -1).T + b_).sum()

        gradcheck(
            lambda x_, w_, b_: ops.conv2d(x_, w_, b_, 1, 1), [x, w, b], ref, atol=5e-3
        )


class TestEngineBehavior:
    def test_grad_accumulates_across_backwards(self):
        x = repro.randn(3, requires_grad=True)
        (x * x).sum().backward()
        first = x.grad.numpy().copy()
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad.numpy(), 2 * first, rtol=1e-5)

    def test_diamond_graph(self):
        x = repro.tensor(np.array([2.0])).requires_grad_()
        a = x * 3.0
        out = a * a  # d/dx (3x)^2 = 18x = 36
        out.backward()
        np.testing.assert_allclose(x.grad.numpy(), [36.0], rtol=1e-5)

    def test_shared_input_two_consumers(self):
        x = repro.tensor(np.array([1.0, 2.0])).requires_grad_()
        out = (x * 2.0).sum() + (x * 3.0).sum()
        out.backward()
        np.testing.assert_allclose(x.grad.numpy(), [5.0, 5.0])

    def test_unused_split_output_gets_zero(self):
        x = repro.randn(6, requires_grad=True)
        used, unused = x.split([2, 4])
        used.sum().backward()
        np.testing.assert_allclose(x.grad.numpy()[2:], np.zeros(4))
        np.testing.assert_allclose(x.grad.numpy()[:2], np.ones(2))

    def test_backward_non_scalar_requires_gradient(self):
        x = repro.randn(3, requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_with_explicit_gradient(self):
        x = repro.randn(3, requires_grad=True)
        (x * 2.0).backward(repro.ones(3))
        np.testing.assert_allclose(x.grad.numpy(), [2.0] * 3)

    def test_no_grad_blocks_graph(self):
        x = repro.randn(3, requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert y.grad_fn is None
        assert not y.requires_grad

    def test_retain_graph_allows_second_backward(self):
        x = repro.randn(3, requires_grad=True)
        y = (x * x).sum()
        y.backward(retain_graph=True)
        y.backward()
        np.testing.assert_allclose(x.grad.numpy(), 4 * x.numpy(), rtol=1e-5)

    def test_saved_tensors_released_after_backward(self):
        x = repro.randn(3, requires_grad=True)
        y = x * x
        node = y.grad_fn
        y.sum().backward()
        assert node.ctx.saved_tensors == ()

    def test_engine_grad_function(self):
        x = repro.randn(4, requires_grad=True)
        out = (x * x).sum()
        (grad_x,) = engine.grad([out], [x])
        np.testing.assert_allclose(grad_x.numpy(), 2 * x.numpy(), rtol=1e-5)
        assert x.grad is None  # stashed and restored


class TestHooks:
    def test_tensor_hook_fires(self):
        x = repro.randn(3, requires_grad=True)
        y = x * 2.0
        seen = []
        y.register_hook(lambda g: seen.append(g.numpy().copy()))
        y.sum().backward()
        assert len(seen) == 1
        np.testing.assert_allclose(seen[0], np.ones(3))

    def test_tensor_hook_can_replace_grad(self):
        x = repro.randn(3, requires_grad=True)
        y = x * 1.0
        y.register_hook(lambda g: g * 10.0)
        y.sum().backward()
        np.testing.assert_allclose(x.grad.numpy(), [10.0] * 3)

    def test_hook_registered_after_forward(self):
        # The FSDP pattern: hooks installed on outputs post-forward.
        x = repro.randn(2, requires_grad=True)
        y = x * 2.0
        z = y.sum()
        called = []
        y.register_hook(lambda g: called.append(True))
        z.backward()
        assert called == [True]

    def test_hook_removal(self):
        x = repro.randn(2, requires_grad=True)
        y = x * 2.0
        called = []
        handle = y.register_hook(lambda g: called.append(True))
        handle.remove()
        y.sum().backward()
        assert called == []

    def test_leaf_hook_fires(self):
        x = repro.randn(2, requires_grad=True)
        seen = []
        x.register_hook(lambda g: seen.append(g.numpy().copy()))
        (x * 3.0).sum().backward()
        assert len(seen) == 1
        np.testing.assert_allclose(seen[0], [3.0, 3.0])

    def test_post_accumulate_grad_hook(self):
        x = repro.randn(2, requires_grad=True)
        events = []
        x.register_post_accumulate_grad_hook(lambda t: events.append(t.grad.numpy().copy()))
        (x * 2.0).sum().backward()
        assert len(events) == 1
        np.testing.assert_allclose(events[0], [2.0, 2.0])

    def test_post_accumulate_hook_rejects_nonleaf(self):
        x = repro.randn(2, requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.register_post_accumulate_grad_hook(lambda t: None)

    def test_queue_callback_runs_at_end(self):
        x = repro.randn(2, requires_grad=True)
        y = x * 2.0
        order = []

        def hook(grad):
            queue_callback(lambda: order.append("callback"))
            order.append("hook")

        y.register_hook(hook)
        y.sum().backward()
        assert order == ["hook", "callback"]

    def test_queue_callback_outside_backward_runs_now(self):
        ran = []
        queue_callback(lambda: ran.append(True))
        assert ran == [True]

    def test_pre_backward_hook_order_matches_reverse_forward(self):
        # Hooks on successive layer outputs fire in reverse order.
        x = repro.randn(2, requires_grad=True)
        a = x * 2.0
        b = a * 3.0
        order = []
        a.register_hook(lambda g: order.append("a"))
        b.register_hook(lambda g: order.append("b"))
        b.sum().backward()
        assert order == ["b", "a"]
