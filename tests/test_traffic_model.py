"""Section 3.2.2 cross-host traffic formulas vs simulated counters."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro import distributed as dist, nn
from repro.fsdp import FullyShardedDataParallel as FSDP, ShardingStrategy
from repro.hw.traffic import (
    full_replication_cross_host_bytes,
    full_sharding_cross_host_bytes,
    hybrid_sharding_cross_host_bytes,
)


class TestClosedForms:
    def test_full_replication(self):
        # 2 M (W-1)/W
        assert full_replication_cross_host_bytes(100.0, 4) == pytest.approx(150.0)

    def test_full_sharding(self):
        # 3 M (W-1)/W
        assert full_sharding_cross_host_bytes(100.0, 4) == pytest.approx(225.0)

    def test_hybrid_formula(self):
        # paper approximation: 2 M (W-1)/(G W)
        got = hybrid_sharding_cross_host_bytes(100.0, 16, 8)
        assert got == pytest.approx(2 * 100 * 15 / (8 * 16))

    def test_hybrid_exact_form(self):
        exact = hybrid_sharding_cross_host_bytes(100.0, 16, 8, exact=True)
        # 2 (M/G) (R-1)/R with R = 2 replicas
        assert exact == pytest.approx(2 * (100 / 8) * 0.5)

    def test_hybrid_single_replica_is_zero(self):
        assert hybrid_sharding_cross_host_bytes(100.0, 8, 8) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            full_replication_cross_host_bytes(-1.0, 4)
        with pytest.raises(ValueError):
            hybrid_sharding_cross_host_bytes(1.0, 10, 4)

    @settings(max_examples=30, deadline=None)
    @given(
        model_mb=st.floats(1.0, 1e4),
        hosts=st.integers(2, 64),
        gpus=st.sampled_from([2, 4, 8]),
    )
    def test_hybrid_always_cheapest_cross_host(self, model_mb, hosts, gpus):
        """The paper's headline: hybrid < replication < full sharding."""
        world = hosts * gpus
        m = model_mb * 2**20
        hybrid = hybrid_sharding_cross_host_bytes(m, world, gpus)
        replication = full_replication_cross_host_bytes(m, world)
        full = full_sharding_cross_host_bytes(m, world)
        assert hybrid < replication < full


class TestSimulatedCounters:
    def _run(self, strategy, sharding_factor=None, world=4, topology=None):
        from repro.hw.specs import HostSpec, ClusterTopology

        # 4 "hosts" of 2 GPUs each so cross-host traffic exists.
        topology = ClusterTopology(num_hosts=2, host=HostSpec(gpus_per_host=2))

        def fn(rank):
            device = dist.get_device()
            model = nn.Linear(16, 16, bias=False, device=device)
            wrapped = FSDP(
                model,
                device=device,
                sharding_strategy=strategy,
                sharding_factor=sharding_factor,
            )
            x = repro.randn(2, 16, device=device)
            wrapped(x).sum().backward()
            groups = [wrapped._fsdp_unit.plan.shard_group]
            if wrapped._fsdp_unit.plan.replicate_group is not None:
                groups.append(wrapped._fsdp_unit.plan.replicate_group)
            cross = sum(g.cross_host_bytes for g in groups)
            model_bytes = 16 * 16 * 4
            return cross, model_bytes

        return dist.spawn(fn, world, topology=topology)

    def test_full_shard_counter_matches_formula(self):
        for cross, model_bytes in self._run(ShardingStrategy.FULL_SHARD):
            # Root unit keeps params through backward: 1 AG + 1 RS cross
            # host (the backward AG is skipped for the root).
            expected_min = 2.0 * model_bytes * 3 / 4
            expected_max = full_sharding_cross_host_bytes(model_bytes, 4)
            assert expected_min * 0.99 <= cross <= expected_max * 1.01

    def test_hybrid_has_less_cross_host_traffic(self):
        full = self._run(ShardingStrategy.FULL_SHARD)[0][0]
        hybrid = self._run(ShardingStrategy.HYBRID_SHARD, sharding_factor=2)[0][0]
        assert hybrid < full

    def test_no_shard_matches_replication_formula(self):
        for cross, model_bytes in self._run(ShardingStrategy.NO_SHARD):
            expected = full_replication_cross_host_bytes(model_bytes, 4)
            assert cross == pytest.approx(expected, rel=0.01)

    def test_hybrid_counter_matches_exact_formula(self):
        for cross, model_bytes in self._run(
            ShardingStrategy.HYBRID_SHARD, sharding_factor=2
        ):
            expected = hybrid_sharding_cross_host_bytes(
                model_bytes, 4, 2, exact=True
            )
            assert cross == pytest.approx(expected, rel=0.01)
