"""Stream/event timeline semantics (the substrate of Section 3.3)."""

import pytest

from repro.cuda.device import Device, cpu_device, meta_device
from repro.errors import DeviceError
from repro.hw.kernel_model import KernelCost
from repro import dtypes


def make_device():
    dev = Device("sim_gpu")
    dev.materialize_data = False
    return dev


class TestStreams:
    def test_sequential_ordering_within_stream(self):
        dev = make_device()
        s = dev.default_stream
        start1, end1 = s.enqueue(1.0, issue_time=0.0)
        start2, end2 = s.enqueue(1.0, issue_time=0.0)
        assert start2 == end1
        assert end2 == 2.0

    def test_kernel_cannot_start_before_issue(self):
        dev = make_device()
        s = dev.default_stream
        start, end = s.enqueue(1.0, issue_time=5.0)
        assert start == 5.0

    def test_two_streams_overlap(self):
        dev = make_device()
        a = dev.default_stream
        b = dev.new_stream("comm")
        a.enqueue(1.0, issue_time=0.0)
        start_b, end_b = b.enqueue(1.0, issue_time=0.0)
        assert start_b == 0.0, "separate streams must run concurrently"

    def test_wait_event_orders_across_streams(self):
        dev = make_device()
        a = dev.default_stream
        b = dev.new_stream("comm")
        a.enqueue(2.0, issue_time=0.0)
        event = a.record_event()
        b.wait_event(event)
        start, _ = b.enqueue(0.5, issue_time=0.0)
        assert start == 2.0

    def test_wait_stream(self):
        dev = make_device()
        a = dev.default_stream
        b = dev.new_stream("comm")
        a.enqueue(3.0, issue_time=0.0)
        b.wait_stream(a)
        start, _ = b.enqueue(1.0, issue_time=0.0)
        assert start == 3.0

    def test_wait_unrecorded_event_raises(self):
        dev = make_device()
        event = dev.new_event()
        with pytest.raises(RuntimeError):
            dev.default_stream.wait_event(event)

    def test_negative_duration_rejected(self):
        dev = make_device()
        with pytest.raises(ValueError):
            dev.default_stream.enqueue(-1.0)

    def test_stream_synchronize_blocks_cpu(self):
        dev = make_device()
        dev.default_stream.enqueue(2.5, issue_time=0.0)
        dev.default_stream.synchronize()
        assert dev.cpu_time() == 2.5


class TestEvents:
    def test_query_tracks_cpu_clock(self):
        dev = make_device()
        dev.default_stream.enqueue(1.0, issue_time=0.0)
        event = dev.default_stream.record_event()
        assert not event.query()
        dev.advance_cpu_to(1.5)
        assert event.query()

    def test_event_synchronize(self):
        dev = make_device()
        dev.default_stream.enqueue(1.0, issue_time=0.0)
        event = dev.default_stream.record_event()
        event.synchronize()
        assert dev.cpu_time() == 1.0

    def test_elapsed_time(self):
        dev = make_device()
        e1 = dev.default_stream.record_event()
        dev.default_stream.enqueue(2.0, issue_time=0.0)
        e2 = dev.default_stream.record_event()
        assert e1.elapsed_time(e2) == 2.0


class TestDeviceClocks:
    def test_launch_consumes_cpu_and_counts_flops(self):
        dev = make_device()
        before = dev.cpu_time()
        dev.launch(KernelCost(flops=1e12, bytes_moved=1e6), dtypes.float32)
        assert dev.cpu_time() > before
        assert dev.flops_total == 1e12
        assert dev.kernels_launched == 1

    def test_synchronize_joins_all_streams(self):
        dev = make_device()
        other = dev.new_stream("x")
        dev.default_stream.enqueue(1.0, issue_time=0.0)
        other.enqueue(4.0, issue_time=0.0)
        dev.synchronize()
        assert dev.cpu_time() == 4.0

    def test_now_is_max_frontier(self):
        dev = make_device()
        dev.default_stream.enqueue(7.0, issue_time=0.0)
        assert dev.now() == 7.0

    def test_cpu_monotonicity(self):
        dev = make_device()
        dev.consume_cpu(1.0)
        dev.advance_cpu_to(0.5)  # no-op backwards
        assert dev.cpu_time() == 1.0
        with pytest.raises(ValueError):
            dev.consume_cpu(-1.0)

    def test_stream_context_manager(self):
        dev = make_device()
        comm = dev.new_stream("comm")
        assert dev.current_stream is dev.default_stream
        with dev.stream(comm):
            assert dev.current_stream is comm
        assert dev.current_stream is dev.default_stream

    def test_cpu_and_meta_devices_reject_streams(self):
        with pytest.raises(DeviceError):
            cpu_device().new_stream()
        with pytest.raises(DeviceError):
            meta_device().memory_stats()

    def test_kernel_duration_roofline(self):
        dev = make_device()
        model = dev.kernel_model
        # Compute-bound matmul
        d1 = model.duration(KernelCost(flops=1e13, bytes_moved=1e6, is_matmul=True), dtypes.bfloat16)
        expected = 1e13 / (312e12 * 0.62)
        assert abs(d1 - expected) / expected < 1e-6
        # Bandwidth-bound elementwise
        d2 = model.duration(KernelCost(flops=10, bytes_moved=2e9), dtypes.float32)
        assert abs(d2 - 2e9 / 2e12) / (2e9 / 2e12) < 1e-6
        # Floor
        d3 = model.duration(KernelCost(flops=1, bytes_moved=1), dtypes.float32)
        assert d3 == dev.spec.kernel_min_duration
