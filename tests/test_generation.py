"""Autoregressive generation and argmax."""

import numpy as np
import pytest

import repro
from repro import distributed as dist, nn, ops
from repro.models import GPT_TINY, MinGPT
from repro.models.mingpt import GptConfig


class TestArgmax:
    def test_values(self):
        t = repro.tensor(np.array([[1.0, 5.0, 2.0], [9.0, 0.0, 1.0]]))
        np.testing.assert_array_equal(ops.argmax(t, -1).numpy(), [1, 0])

    def test_dim_zero(self):
        t = repro.tensor(np.array([[1.0, 5.0], [9.0, 0.0]]))
        np.testing.assert_array_equal(ops.argmax(t, 0).numpy(), [1, 0])

    def test_dtype(self):
        from repro import dtypes

        assert ops.argmax(repro.randn(3, 4)).dtype is dtypes.int64


class TestGenerate:
    def test_greedy_extends_sequence(self):
        repro.manual_seed(0)
        model = MinGPT(GPT_TINY)
        idx = repro.tensor(np.array([[1, 2, 3]]))
        out = model.generate(idx, 5, temperature=0)
        assert out.shape == (1, 8)
        np.testing.assert_array_equal(out.numpy()[:, :3], [[1, 2, 3]])

    def test_greedy_is_deterministic(self):
        repro.manual_seed(0)
        model = MinGPT(GPT_TINY)
        idx = repro.tensor(np.array([[7, 8]]))
        a = model.generate(idx, 4, temperature=0).numpy()
        b = model.generate(idx, 4, temperature=0).numpy()
        np.testing.assert_array_equal(a, b)

    def test_sampling_respects_seed(self):
        repro.manual_seed(0)
        model = MinGPT(GPT_TINY)
        idx = repro.tensor(np.array([[7, 8]]))
        repro.manual_seed(123)
        a = model.generate(idx, 4, temperature=1.0).numpy()
        repro.manual_seed(123)
        b = model.generate(idx, 4, temperature=1.0).numpy()
        np.testing.assert_array_equal(a, b)

    def test_window_clipping(self):
        config = GptConfig(vocab_size=32, block_size=4, n_layer=1, n_head=1, n_embd=8)
        repro.manual_seed(0)
        model = MinGPT(config)
        idx = repro.tensor(np.array([[1, 2, 3, 4]]))
        out = model.generate(idx, 3, temperature=0)
        assert out.shape == (1, 7)  # grew past block_size via the window

    def test_batched_generation(self):
        repro.manual_seed(0)
        model = MinGPT(GPT_TINY)
        idx = repro.tensor(np.array([[1, 2], [3, 4], [5, 6]]))
        out = model.generate(idx, 2, temperature=0)
        assert out.shape == (3, 4)

    def test_generation_under_fsdp_summon(self):
        def fn(rank):
            from repro.fsdp import FullyShardedDataParallel as FSDP, ModuleWrapPolicy
            from repro.models.transformer import TransformerBlock

            repro.manual_seed(0)
            model = MinGPT(GPT_TINY)
            device = dist.get_device()
            wrapped = FSDP(
                model,
                device=device,
                auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
            )
            idx = repro.tensor(np.array([[1, 2, 3]]), device=device)
            with wrapped.summon_full_params(writeback=False):
                out = model.generate(idx, 3, temperature=0)
            return out.numpy()

        results = dist.spawn(fn, 2)
        np.testing.assert_array_equal(results[0], results[1])
