"""Shared test fixtures and helpers."""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro
from repro import nn
from repro.autograd.grad_mode import no_grad
from repro.tensor import Tensor

try:
    from hypothesis import HealthCheck, settings

    # "fast" keeps the default tier-1 run quick; CI's slow job selects
    # "slow" via HYPOTHESIS_PROFILE for >=50 examples per property.
    _suppress = [HealthCheck.too_slow]
    settings.register_profile(
        "fast", max_examples=12, deadline=None, suppress_health_check=_suppress
    )
    settings.register_profile(
        "slow", max_examples=60, deadline=None, suppress_health_check=_suppress
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))
except ImportError:  # pragma: no cover - hypothesis is a dev extra
    pass


@pytest.fixture(autouse=True)
def _seed_rng():
    repro.manual_seed(1234)
    yield


@pytest.fixture(autouse=True)
def _sanitizer_mode():
    """Run every test under the stream-order sanitizer when requested.

    ``REPRO_SANITIZER=1 pytest`` turns the whole suite into a dynamic
    race-detection pass: any cross-stream ordering hazard raises
    :class:`repro.errors.StreamOrderViolation` inside the offending
    test.  CI runs a dedicated lane this way.
    """
    from repro.cuda import sanitizer

    if os.environ.get("REPRO_SANITIZER", "") not in ("", "0"):
        with sanitizer.enabled():
            yield
    else:
        yield


def finite_difference(fn, arrays: list[np.ndarray], index: int, eps: float = 1e-4) -> np.ndarray:
    """Numerical gradient of scalar ``fn(*arrays)`` w.r.t. ``arrays[index]``."""
    base = [a.astype(np.float64) for a in arrays]
    grad = np.zeros_like(base[index])
    flat = grad.reshape(-1)
    target = base[index].reshape(-1)
    for i in range(flat.size):
        original = target[i]
        target[i] = original + eps
        plus = fn(*base)
        target[i] = original - eps
        minus = fn(*base)
        target[i] = original
        flat[i] = (plus - minus) / (2 * eps)
    return grad


def gradcheck(op, arrays: list[np.ndarray], numpy_fn, atol: float = 2e-3) -> None:
    """Check autograd gradients of ``op`` against finite differences.

    ``op`` maps repro Tensors to a repro Tensor; ``numpy_fn`` maps the
    same numpy arrays to a float (the scalarized output).
    """
    tensors = [repro.tensor(a).requires_grad_() for a in arrays]
    out = op(*tensors)
    loss = out.sum() if out.numel > 1 else out
    loss.backward()
    for i, t in enumerate(tensors):
        expected = finite_difference(lambda *xs: float(numpy_fn(*xs)), arrays, i)
        assert t.grad is not None, f"missing grad for input {i}"
        np.testing.assert_allclose(
            t.grad.numpy(), expected, atol=atol, rtol=1e-2,
            err_msg=f"gradient mismatch for input {i}",
        )


def copy_weights(model: nn.Module, state: dict[str, np.ndarray]) -> None:
    """Load reference numpy weights (thread-safe model equalizer)."""
    with no_grad():
        for name, param in model.named_parameters():
            param.copy_(repro.tensor(state[name]))


def snapshot_weights(model: nn.Module) -> dict[str, np.ndarray]:
    return {n: p.detach().numpy().copy() for n, p in model.named_parameters()}


def grads_of(model: nn.Module) -> dict[str, np.ndarray]:
    return {
        n: p.grad.numpy().copy()
        for n, p in model.named_parameters()
        if p.grad is not None
    }


def gather_handle_grads(fsdp_model) -> list[np.ndarray]:
    """AllGather each FlatParameter's sharded grad into full flats."""
    flats = []
    for handle in fsdp_model.flat_handles:
        grad = handle.flat_param.grad
        assert grad is not None, f"no grad on {handle.label}"
        if handle.sharding_factor > 1:
            full = repro.empty(handle.padded_numel, device=grad.device)
            handle.shard_group.all_gather_into_tensor(full, grad).wait()
        else:
            full = grad
        flats.append(full.numpy().copy())
    return flats


def unflatten_handle_grads(fsdp_model) -> dict[tuple, np.ndarray]:
    """Map (handle index, offset) -> original-shaped gradient arrays."""
    result: dict[tuple, np.ndarray] = {}
    flats = gather_handle_grads(fsdp_model)
    for hi, handle in enumerate(fsdp_model.flat_handles):
        flat = flats[hi]
        for info in handle.param_infos:
            key = (hi, info.offset)
            if key not in result:
                result[key] = flat[info.offset : info.offset + info.numel].reshape(info.shape)
    return result
