"""Execution-order observation and FlatParameter planning (§4.2)."""

import numpy as np
import pytest

import repro
from repro import distributed as dist, nn
from repro.fsdp.exec_order import (
    execution_order_policy,
    plan_flat_param_groups,
    record_execution_order,
)
from repro.fsdp.flat_param import FlatParamHandle


def build():
    return nn.Sequential(
        nn.Linear(4, 8), nn.GELU(), nn.Linear(8, 8), nn.Linear(8, 2)
    )


class TestRecording:
    def test_order_matches_forward(self):
        model = build()
        order = record_execution_order(model, lambda m: m(repro.randn(1, 4)))
        names = [f"Linear({m.in_features}->{m.out_features})" for m in order]
        assert names == ["Linear(4->8)", "Linear(8->8)", "Linear(8->2)"]

    def test_out_of_structure_execution(self):
        """Modules run out of definition order are recorded as executed."""

        class Reversed(nn.Module):
            def __init__(self):
                super().__init__()
                self.a = nn.Linear(4, 4)
                self.b = nn.Linear(4, 4)

            def forward(self, x):
                return self.a(self.b(x))  # b runs first

        model = Reversed()
        order = record_execution_order(model, lambda m: m(repro.randn(1, 4)))
        assert order[0] is model.b
        assert order[1] is model.a

    def test_unused_modules_appended(self):
        class Partial(nn.Module):
            def __init__(self):
                super().__init__()
                self.used = nn.Linear(4, 4)
                self.unused = nn.Linear(4, 4)

            def forward(self, x):
                return self.used(x)

        model = Partial()
        order = record_execution_order(model, lambda m: m(repro.randn(1, 4)))
        assert order == [model.used, model.unused]

    def test_hooks_removed_after_recording(self):
        model = build()
        record_execution_order(model, lambda m: m(repro.randn(1, 4)))
        for module in model.modules():
            assert not module._forward_pre_hooks


class TestPlanning:
    def test_greedy_grouping(self):
        model = build()
        order = record_execution_order(model, lambda m: m(repro.randn(1, 4)))
        sizes = [sum(p.numel for p in m._parameters.values()) for m in order]
        # sizes: 40, 72, 18
        groups = plan_flat_param_groups(order, target_numel=100)
        group_sizes = [
            sum(sum(p.numel for p in m._parameters.values()) for m in g)
            for g in groups
        ]
        assert group_sizes == [40, 90]  # 40 | 72+18

    def test_oversized_module_own_group(self):
        order = [nn.Linear(50, 50), nn.Linear(2, 2)]
        groups = plan_flat_param_groups(order, target_numel=100)
        assert len(groups) == 2

    def test_single_group_when_target_large(self):
        order = [nn.Linear(2, 2) for _ in range(3)]
        groups = plan_flat_param_groups(order, target_numel=10**6)
        assert len(groups) == 1

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            plan_flat_param_groups([], 0)

    def test_groups_feed_flat_param_handle(self):
        """A planned multi-module group becomes one FlatParameter."""

        def fn(rank):
            model = build()
            order = record_execution_order(
                model, lambda m: m(repro.randn(1, 4))
            )
            groups = plan_flat_param_groups(order, target_numel=100)
            device = dist.get_device()
            # Materialize the second group (two modules) as one handle.
            group = groups[1]
            triples = []
            for module in group:
                module.to(device=device)
                for name, param in list(module._parameters.items()):
                    triples.append((module, name, param))
            handle = FlatParamHandle(triples, device, dist.default_group())
            assert handle.total_numel == 90
            handle.unshard()
            handle.use_unsharded_views()
            # Both modules' attributes alias the one FlatParameter.
            assert group[0].weight._storage is group[1].weight._storage

        dist.spawn(fn, 2)


class TestPolicy:
    def test_policy_wraps_and_trains(self):
        def fn(rank):
            from repro.fsdp import FullyShardedDataParallel as FSDP

            model = build()
            policy = execution_order_policy(
                model, lambda m: m(repro.randn(1, 4)), target_numel=100
            )
            device = dist.get_device()
            wrapped = FSDP(model, device=device, auto_wrap_policy=policy)
            x = repro.randn(2, 4, device=device)
            wrapped(x).sum().backward()
            assert all(
                h.flat_param.grad is not None for h in wrapped.flat_handles
            )

        dist.spawn(fn, 2)


class Skippy(nn.Module):
    """Conditionally skips submodules — the exact pattern Section 3.3.2
    warns breaks prefetching's static execution-order assumption."""

    def __init__(self, device):
        super().__init__()
        self.a = nn.Linear(8, 8, device=device)
        self.b = nn.Linear(8, 8, device=device)
        self.c = nn.Linear(8, 8, device=device)
        self.skip_b = False
        self.skip_c = False

    def forward(self, x):
        x = self.a(x)
        if not self.skip_b:
            x = self.b(x)
        if not self.skip_c:
            x = self.c(x)
        return x


def _wrap_skippy():
    from repro.fsdp import FullyShardedDataParallel as FSDP, ModuleWrapPolicy

    ctx = dist.init_single_process(4, materialize=False)
    model = Skippy(ctx.device)
    wrapped = FSDP(
        model, device=ctx.device, auto_wrap_policy=ModuleWrapPolicy({nn.Linear})
    )
    return ctx, model, wrapped


def _step(ctx, wrapped):
    x = repro.empty(2, 8, device=ctx.device)
    wrapped(x).sum().backward()
    wrapped.zero_grad()


class TestExecOrderValidator:
    def test_skipped_submodule_raises_named_divergence(self):
        from repro.cuda import sanitizer
        from repro.errors import ExecOrderViolation

        dist.shutdown()
        ctx, model, wrapped = _wrap_skippy()
        try:
            with sanitizer.enabled():
                _step(ctx, wrapped)  # warmup records a, b, c
                model.skip_b = True
                with pytest.raises(ExecOrderViolation) as exc:
                    _step(ctx, wrapped)
            # The report names the modules, never bare indices.
            assert "Skippy.b" in str(exc.value)
            assert "Skippy.c" in str(exc.value)
            assert exc.value.expected == "Skippy.b"
            assert exc.value.actual == "Skippy.c"
        finally:
            dist.shutdown()

    def test_missing_tail_unit_raises_at_next_iteration(self):
        from repro.cuda import sanitizer
        from repro.errors import ExecOrderViolation

        dist.shutdown()
        ctx, model, wrapped = _wrap_skippy()
        try:
            with sanitizer.enabled():
                _step(ctx, wrapped)
                model.skip_c = True
                _step(ctx, wrapped)  # too short; noticed at next start
                model.skip_c = False
                with pytest.raises(ExecOrderViolation, match="Skippy.c"):
                    _step(ctx, wrapped)
        finally:
            dist.shutdown()

    def test_permissive_without_sanitizer(self):
        """Seed behaviour is preserved when the sanitizer is off: a
        divergent iteration runs to completion (prefetch quality may
        degrade, but nothing raises)."""
        from repro.cuda import sanitizer

        dist.shutdown()
        prev = sanitizer.active()
        sanitizer.disable()  # force off even in the REPRO_SANITIZER=1 lane
        ctx, model, wrapped = _wrap_skippy()
        try:
            _step(ctx, wrapped)
            model.skip_b = True
            _step(ctx, wrapped)
            model.skip_b = False
            _step(ctx, wrapped)
        finally:
            dist.shutdown()
            if prev is not None:
                sanitizer.enable(raise_on_violation=prev.raise_on_violation)

    def test_stable_order_is_silent(self):
        from repro.cuda import sanitizer

        dist.shutdown()
        ctx, model, wrapped = _wrap_skippy()
        try:
            with sanitizer.enabled():
                for _ in range(3):
                    _step(ctx, wrapped)
                assert sanitizer.active().violations == []
        finally:
            dist.shutdown()
