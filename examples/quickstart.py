"""Quickstart: train a small transformer with FSDP on 4 simulated GPUs.

Demonstrates the core workflow of the paper:

1. spawn SPMD ranks (each with a simulated A100);
2. wrap the model with ``FullyShardedDataParallel`` using an auto-wrap
   policy so every transformer block becomes one FSDP unit;
3. construct the optimizer *after* wrapping so it holds only the
   sharded FlatParameters (the ZeRO memory saving);
4. train, observing that gradients and losses agree with local
   training while per-rank memory holds only 1/W of the model.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro import distributed as dist, nn
from repro.fsdp import FullyShardedDataParallel as FSDP, ModuleWrapPolicy
from repro.models import GptConfig, MinGPT
from repro.models.transformer import TransformerBlock
from repro.optim import Adam

WORLD_SIZE = 4
CONFIG = GptConfig(vocab_size=512, block_size=32, n_layer=4, n_head=4, n_embd=64)
STEPS = 8
BATCH_PER_RANK = 4


def make_batch(rank: int, step: int, device):
    rng = np.random.default_rng(1000 * step + rank)  # per-rank data shard
    tokens = rng.integers(0, CONFIG.vocab_size, (BATCH_PER_RANK, CONFIG.block_size + 1))
    inputs = repro.tensor(tokens[:, :-1], device=device)
    targets = repro.tensor(tokens[:, 1:], device=device)
    return inputs, targets


# Build the initial weights once: in this threaded simulation all
# ranks share one process RNG, so per-rank construction would race.
# (Real multi-process FSDP just seeds identically per process.)
repro.manual_seed(0)
_REFERENCE = MinGPT(CONFIG)
INIT_STATE = _REFERENCE.state_dict()


def worker(rank: int):
    device = dist.get_device()

    model = MinGPT(CONFIG)
    model.load_state_dict(INIT_STATE)

    fsdp_model = FSDP(
        model,
        device=device,
        auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
    )
    # The optimizer sees only sharded FlatParameters.
    optimizer = Adam(fsdp_model.parameters(), lr=3e-4)

    losses = []
    # Overfit a fixed per-rank batch so progress is visible in 8 steps.
    inputs, targets = make_batch(rank, 0, device)
    for step in range(STEPS):
        optimizer.zero_grad()
        logits = fsdp_model(inputs)
        loss = nn.functional.cross_entropy(logits, targets)
        loss.backward()
        fsdp_model.clip_grad_norm_(1.0)
        optimizer.step()
        losses.append(loss.item())
        if rank == 0:
            print(f"step {step}: loss {loss.item():.4f}")

    sharded = sum(h.flat_param.numel for h in fsdp_model.flat_handles)
    total = sum(h.total_numel for h in fsdp_model.flat_handles)
    stats = device.memory_stats()
    from repro.fsdp import full_state_dict

    final = {k: v.numpy() for k, v in full_state_dict(fsdp_model).items()}
    return {
        "losses": losses,
        "sharded_params": sharded,
        "total_params": total,
        "peak_gib": stats["allocated_bytes.all.peak"] / 2**30,
        "final_state": final,
    }


def main():
    print(f"training a {CONFIG.approx_params / 1e6:.1f}M-param GPT "
          f"on {WORLD_SIZE} simulated GPUs with FSDP\n")
    results = dist.spawn(worker, WORLD_SIZE)

    first = results[0]
    print(f"\neach rank holds {first['sharded_params']:,} of "
          f"{first['total_params']:,} parameters "
          f"(1/{first['total_params'] // first['sharded_params']})")
    print(f"peak simulated device memory: {first['peak_gib'] * 1024:.1f} MiB")
    # Per-rank losses differ (each rank trains on its own shard of the
    # batch) but the synchronized parameters must agree exactly.
    for other in results[1:]:
        for name, value in first["final_state"].items():
            assert np.allclose(value, other["final_state"][name]), "ranks diverged!"
    mean_first = np.mean([r["losses"][0] for r in results])
    mean_last = np.mean([r["losses"][-1] for r in results])
    assert mean_last < mean_first, "loss did not decrease"
    print(f"mean loss {mean_first:.4f} -> {mean_last:.4f}; "
          "all ranks hold identical parameters — quickstart OK")


if __name__ == "__main__":
    main()
