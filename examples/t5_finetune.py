"""Fine-tune a T5 encoder-decoder with FSDP + BF16 mixed precision.

Shows the full production recipe from the paper:

- ``deferred_init`` builds the model on the fake device (Section 3.1),
  FSDP materializes it unit by unit on each simulated GPU;
- native BF16 mixed precision (Section 4.4): compute and collectives in
  BF16, optimizer in FP32;
- the sharded gradient scaler (for FP16-style workflows);
- saving and reloading a full (unsharded) checkpoint.

Run:  python examples/t5_finetune.py
"""

import numpy as np

import repro
from repro import distributed as dist, nn
from repro.fsdp import (
    BF16_MIXED,
    FullyShardedDataParallel as FSDP,
    ModuleWrapPolicy,
    ShardedGradScaler,
    deferred_init,
    full_state_dict,
    load_full_state_dict,
)
from repro.models import T5Config, T5Model
from repro.models.transformer import TransformerBlock
from repro.optim import Adam

WORLD_SIZE = 4
CONFIG = T5Config(
    vocab_size=256, d_model=48, d_ff=96, num_heads=4, head_dim=12, num_layers=2
)
STEPS = 6
BATCH, SRC_LEN, TGT_LEN = 4, 10, 8

# Snapshot the recorded-initialization model once (threads share the RNG).
repro.manual_seed(0)
_DEFERRED = deferred_init(T5Model, CONFIG)


def make_batch(rank, device):
    rng = np.random.default_rng(rank)
    src = repro.tensor(rng.integers(0, CONFIG.vocab_size, (BATCH, SRC_LEN)), device=device)
    tgt = repro.tensor(rng.integers(0, CONFIG.vocab_size, (BATCH, TGT_LEN)), device=device)
    labels = repro.tensor(rng.integers(0, CONFIG.vocab_size, (BATCH, TGT_LEN)), device=device)
    return src, tgt, labels


def worker(rank: int):
    device = dist.get_device()
    # Each rank starts from the same initial weights (the materialized
    # deferred-init snapshot computed in main()).
    model = T5Model(CONFIG)
    model.load_state_dict(_reference_state)
    fsdp_model = FSDP(
        model,
        device=device,
        auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
        mixed_precision=BF16_MIXED,
    )
    optimizer = Adam(fsdp_model.parameters(), lr=1e-3)
    scaler = ShardedGradScaler()

    src, tgt, labels = make_batch(rank, device)
    losses = []
    for step in range(STEPS):
        optimizer.zero_grad()
        logits = fsdp_model(src, tgt)
        loss = nn.functional.cross_entropy(logits, labels)
        scaler.scale(loss).backward()
        scaler.unscale_(optimizer)
        stepped = scaler.step(optimizer)
        scaler.update()
        losses.append(loss.item())
        if rank == 0:
            print(f"step {step}: loss {loss.item():.4f} (stepped={stepped})")

    # Save a full checkpoint (gathered unit by unit), reload it, and
    # verify the round trip.
    checkpoint = {k: v.numpy().copy() for k, v in full_state_dict(fsdp_model).items()}
    load_full_state_dict(
        fsdp_model, {k: repro.tensor(v) for k, v in checkpoint.items()}
    )
    after = {k: v.numpy() for k, v in full_state_dict(fsdp_model).items()}
    for key, value in checkpoint.items():
        assert np.allclose(value, after[key]), f"checkpoint round trip broke {key}"
    return losses


def main():
    global _reference_state
    # Materialize the deferred model once on the host: the recorded
    # init ops replay deterministically, giving the shared initial
    # state every rank loads (Section 3.1's record-replay).
    from repro.cuda.device import cpu_device
    from repro.fsdp import materialize_module

    materialize_module(_DEFERRED, cpu_device())
    _reference_state = _DEFERRED.state_dict()

    print(
        f"fine-tuning a {CONFIG.approx_params / 1e6:.2f}M-param T5 on "
        f"{WORLD_SIZE} simulated GPUs (BF16 mixed precision)\n"
    )
    results = dist.spawn(worker, WORLD_SIZE)
    mean_first = np.mean([r[0] for r in results])
    mean_last = np.mean([r[-1] for r in results])
    assert mean_last < mean_first
    print(f"\nmean loss {mean_first:.4f} -> {mean_last:.4f}; checkpoint round trip OK")


if __name__ == "__main__":
    main()
