"""Hybrid sharding on a DHEN recommendation model (Section 3.2.2).

Four simulated GPUs arranged as 2 "hosts" of 2 GPUs each.  With
``HYBRID_SHARD`` and sharding factor 2:

- each FlatParameter is sharded across the 2 GPUs of a host (AllGather
  and ReduceScatter stay on NVLink);
- gradients are additionally all-reduced across the 2 replicas (the
  only traffic crossing hosts).

The example prints the per-group traffic counters and checks them
against the closed-form expressions of Section 3.2.2.

Run:  python examples/hybrid_sharding_dhen.py
"""

import numpy as np

import repro
from repro import distributed as dist, nn
from repro.fsdp import FullyShardedDataParallel as FSDP, ModuleWrapPolicy, ShardingStrategy
from repro.hw.specs import ClusterTopology, HostSpec
from repro.hw.traffic import (
    full_sharding_cross_host_bytes,
    hybrid_sharding_cross_host_bytes,
)
from repro.models import DHEN, DhenConfig
from repro.models.dhen import DhenLayer
from repro.optim import Adam

WORLD_SIZE = 4
CONFIG = DhenConfig(
    num_features=8,
    sparse_rows_total=2048,
    sparse_dim=16,
    num_dense_features=12,
    d_model=32,
    num_layers=3,
    num_heads=2,
    d_ff=64,
)
BATCH = 8

repro.manual_seed(0)
_REFERENCE = DHEN(CONFIG)
INIT_STATE = _REFERENCE.state_dict()


def worker(rank: int):
    device = dist.get_device()
    model = DHEN(CONFIG)
    model.load_state_dict(INIT_STATE)

    fsdp_model = FSDP(
        model,
        device=device,
        sharding_strategy=ShardingStrategy.HYBRID_SHARD,
        sharding_factor=2,  # shard within a "host" of 2 GPUs
        auto_wrap_policy=ModuleWrapPolicy({DhenLayer}),
        ignored_modules=[model.sparse_table],  # sparse stays model-parallel
    )
    optimizer = Adam(fsdp_model.parameters(), lr=1e-3)

    rng = np.random.default_rng(rank)
    sparse_ids = repro.tensor(
        rng.integers(0, CONFIG.sparse_rows_total, (BATCH, CONFIG.num_features)),
        device=device,
    )
    dense = repro.tensor(
        rng.normal(size=(BATCH, CONFIG.num_dense_features)).astype(np.float32),
        device=device,
    )
    labels = repro.tensor(rng.integers(0, 2, BATCH).astype(np.float32), device=device)

    from repro import ops
    from repro.nn import functional as F

    for step in range(4):
        optimizer.zero_grad()
        # Call through the FSDP wrapper (its forward drives the
        # unshard/reshard machinery); compute the BCE loss outside.
        logits = fsdp_model(sparse_ids, dense)
        probs = F.sigmoid(logits)
        loss = F.mse_loss(probs, labels)
        loss.backward()
        optimizer.step()
        if rank == 0:
            print(f"step {step}: loss {loss.item():.4f}")

    unit = fsdp_model._fsdp_unit
    plan = unit.plan
    groups = {id(plan.shard_group): plan.shard_group}
    from repro.fsdp.api import _units_under

    cross_host = 0
    dense_bytes = 0
    for u in _units_under(fsdp_model):
        for g in (u.plan.shard_group, u.plan.replicate_group):
            if g is not None and id(g) not in groups:
                groups[id(g)] = g
        if u.handle is not None:
            dense_bytes += u.handle.total_numel * 4
    cross_host = sum(g.cross_host_bytes for g in groups.values())
    return {
        "shard_group": plan.shard_group.ranks,
        "replicate_group": plan.replicate_group.ranks,
        "cross_host_bytes": cross_host,
        "dense_bytes": dense_bytes,
    }


def main():
    # 2 hosts x 2 GPUs: collectives inside a host ride NVLink.
    topology = ClusterTopology(num_hosts=2, host=HostSpec(gpus_per_host=2))
    print(f"DHEN ({CONFIG.dense_params_approx / 1e3:.0f}K dense params) on "
          "2 hosts x 2 GPUs, HYBRID_SHARD with F=2\n")
    results = dist.spawn(worker, WORLD_SIZE, topology=topology)

    first = results[0]
    print(f"\nrank 0 shard group:     {first['shard_group']}")
    print(f"rank 0 replicate group: {first['replicate_group']}")

    steps = 4
    measured = first["cross_host_bytes"] / steps
    m = first["dense_bytes"]
    hybrid_expected = hybrid_sharding_cross_host_bytes(m, WORLD_SIZE, 2, exact=True)
    full_expected = full_sharding_cross_host_bytes(m, WORLD_SIZE)
    print(f"\ncross-host traffic per iteration per GPU: {measured / 1024:.1f} KiB")
    print(f"  closed-form hybrid (Section 3.2.2):     {hybrid_expected / 1024:.1f} KiB")
    print(f"  full sharding would move:               {full_expected / 1024:.1f} KiB")
    assert abs(measured - hybrid_expected) / hybrid_expected < 0.05
    assert measured < full_expected
    print("\nhybrid sharding keeps AllGathers on NVLink — example OK")


if __name__ == "__main__":
    main()
