"""Deferred initialization (Section 3.1): build huge models on a fake device.

Constructs a model far larger than host memory on the meta device —
tensors carry shapes and *recorded* init operations, no storage — then
shows FSDP materializing it unit by unit so that peak device memory
stays near one unsharded unit instead of the whole model.

Run:  python examples/deferred_init_demo.py
"""

import numpy as np

import repro
from repro import distributed as dist, nn
from repro.fsdp import (
    FullyShardedDataParallel as FSDP,
    ModuleWrapPolicy,
    deferred_init,
    is_deferred,
    materialize_module,
)
from repro.cuda.device import cpu_device


def build_tower(width: int, depth: int) -> nn.Module:
    return nn.Sequential(*[nn.Linear(width, width) for _ in range(depth)])


def main():
    # ------------------------------------------------------------------
    # Part 1: a 40 GB model described without allocating anything.
    # ------------------------------------------------------------------
    huge = deferred_init(build_tower, width=100_000, depth=1)
    params = sum(p.numel for p in huge.parameters())
    print(f"described a {params * 4 / 2**30:.1f} GiB (fp32) model on the fake device")
    assert is_deferred(huge)

    # ------------------------------------------------------------------
    # Part 2: record/replay reproduces the user's init bit-for-bit.
    # ------------------------------------------------------------------
    repro.manual_seed(123)
    direct = build_tower(16, 2)
    repro.manual_seed(123)
    recorded = deferred_init(build_tower, 16, 2)
    materialize_module(recorded, cpu_device())
    for (name, a), (_, b) in zip(direct.named_parameters(), recorded.named_parameters()):
        assert np.array_equal(a.numpy(), b.numpy()), name
    print("record/replay reproduced the direct initialization exactly")

    # ------------------------------------------------------------------
    # Part 3: FSDP materializes unit by unit — peak ~ one unit, not the
    # model (run on 4 simulated GPUs; measure the init phase).
    # ------------------------------------------------------------------
    WIDTH, DEPTH, WORLD = 512, 8, 4
    model_bytes = DEPTH * (WIDTH * WIDTH + WIDTH) * 4

    def worker(rank):
        device = dist.get_device()
        deferred = deferred_init(build_tower, WIDTH, DEPTH)
        device.reset_peak_memory_stats()
        FSDP(
            deferred,
            device=device,
            auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
        )
        return device.memory_stats()["allocated_bytes.all.peak"]

    peaks = dist.spawn(worker, WORLD)
    unit_bytes = (WIDTH * WIDTH + WIDTH) * 4
    print(f"\nmodel size          : {model_bytes / 2**20:.1f} MiB")
    print(f"one unsharded unit  : {unit_bytes / 2**20:.1f} MiB")
    print(f"init peak per rank  : {peaks[0] / 2**20:.1f} MiB")
    assert peaks[0] < 0.6 * model_bytes, "init peak should stay near one unit"
    print("\nunit-by-unit materialization kept the init peak low — demo OK")


if __name__ == "__main__":
    main()
