"""Autotune a minGPT FSDP configuration, then train with the result.

The planner searches wrap granularity, sharding strategy, prefetch and
rate-limiter settings against the analytic cost model (no simulation),
validates only the top-k candidates in the simulator, and returns an
:class:`~repro.autotune.AutotunePlan`.  The plan plugs straight into
``FullyShardedDataParallel`` via :meth:`AutotunePlan.fsdp_kwargs`.

Run:  python examples/autotune_mingpt.py
"""

from dataclasses import replace

import numpy as np

import repro
from repro import distributed as dist, nn
from repro.autotune import gpt_workload, plan_sharding
from repro.fsdp import FullyShardedDataParallel as FSDP
from repro.models import GptConfig, MinGPT
from repro.optim import Adam

WORLD_SIZE = 4
CONFIG = GptConfig(vocab_size=1024, block_size=64, n_layer=6, n_head=4, n_embd=256)
BATCH_PER_RANK = 4
STEPS = 3


def tune():
    workload = gpt_workload(
        CONFIG, batch_size=BATCH_PER_RANK, seq_len=CONFIG.block_size,
        world_size=WORLD_SIZE,
    )
    result = plan_sharding(workload, top_k=3)
    print(result.summary())
    plan = result.best
    print(f"\nchosen configuration: {plan.label()}")
    print(f"  predicted latency  {plan.predicted_latency_s * 1e3:8.2f} ms")
    print(f"  predicted peak     {plan.predicted_peak_bytes / (1 << 20):8.1f} MiB")
    if plan.simulated is not None:
        print(f"  simulated latency  {plan.simulated.iteration_latency * 1e3:8.2f} ms")
        print(f"  simulated reserved {plan.simulated.peak_reserved_gib * 1024:8.1f} MiB")
    return plan


# One shared init (threaded simulation shares the process RNG).
repro.manual_seed(0)
_INIT_STATE = None  # populated in main() after tuning


def worker(rank: int, plan):
    device = dist.get_device()
    config = replace(CONFIG, checkpoint_blocks=plan.candidate.checkpointing)
    model = MinGPT(config)
    model.load_state_dict(_INIT_STATE)

    fsdp_model = FSDP(model, device=device, **plan.fsdp_kwargs())
    optimizer = Adam(fsdp_model.parameters(), lr=3e-4)

    rng = np.random.default_rng(rank)
    tokens = rng.integers(0, config.vocab_size, (BATCH_PER_RANK, config.block_size + 1))
    inputs = repro.tensor(tokens[:, :-1], device=device)
    targets = repro.tensor(tokens[:, 1:], device=device)

    losses = []
    for _ in range(STEPS):
        optimizer.zero_grad()
        loss = nn.functional.cross_entropy(fsdp_model(inputs), targets)
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    return losses


def main():
    global _INIT_STATE
    print(f"autotuning a {CONFIG.approx_params / 1e6:.1f}M-param GPT "
          f"for {WORLD_SIZE} simulated GPUs\n")
    plan = tune()

    reference = MinGPT(CONFIG)
    _INIT_STATE = reference.state_dict()
    print(f"\ntraining {STEPS} steps with FSDP(**plan.fsdp_kwargs())")
    results = dist.spawn(worker, WORLD_SIZE, args=(plan,))
    mean_first = np.mean([r[0] for r in results])
    mean_last = np.mean([r[-1] for r in results])
    assert mean_last < mean_first, "loss did not decrease"
    print(f"mean loss {mean_first:.4f} -> {mean_last:.4f} — autotune OK")


if __name__ == "__main__":
    main()
