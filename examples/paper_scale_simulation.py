"""Simulate GPT-175B training on 128 simulated A100s (Figure 7(b)).

Runs the paper's flagship configuration end to end in *abstract* mode:
the full FSDP code path executes — deferred init, unit-by-unit
sharding, AllGathers on the communication stream, backward prefetching,
the rate limiter, BF16 collectives, Adam on the shards — with
shape-only tensors, an analytic A100 kernel model and a RoCE fat-tree
communication model.  Finishes in seconds of wall-clock time.

Run:  python examples/paper_scale_simulation.py
"""

from repro.fsdp import ModuleWrapPolicy
from repro.fsdp.mixed_precision import BF16_MIXED
from repro.models import GPT3_175B
from repro.models.transformer import TransformerBlock
from repro.perf import SimConfig, simulate_training
from repro.perf.workloads import gpt_builder, gpt_loss_fn

WORLD_SIZE = 128
BATCH = 1
SEQ = 2048


def main():
    print(
        f"simulating minGPT-175B ({GPT3_175B.approx_params / 1e9:.0f}B params) "
        f"on {WORLD_SIZE} simulated A100-80GB GPUs\n"
        f"batch {BATCH}/GPU, seq {SEQ}, BF16, activation checkpointing, "
        "full sharding, backward prefetch, rate limiter\n"
    )
    config = SimConfig(
        name="GPT-175B",
        build_model=gpt_builder(GPT3_175B),
        make_loss=gpt_loss_fn(GPT3_175B, BATCH, SEQ),
        batch_size=BATCH,
        world_size=WORLD_SIZE,
        auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
        mixed_precision=BF16_MIXED,
        iterations=1,
    )
    result = simulate_training(config)

    print(f"iteration latency:     {result.iteration_latency:.2f} s")
    print(f"TFLOPS per GPU:        {result.tflops_per_gpu:.1f} "
          f"({result.tflops_per_gpu / 312 * 100:.0f}% of BF16 peak; paper: ~173, 55%)")
    print(f"peak memory (GiB):     allocated {result.peak_allocated_gib:.1f}, "
          f"active {result.peak_active_gib:.1f}, reserved {result.peak_reserved_gib:.1f}")
    print(f"cudaMalloc retries:    {result.num_alloc_retries}")
    print(f"comm volume per iter:  {result.comm_gib:.1f} GiB/GPU "
          f"({result.cross_host_gib:.1f} GiB cross-host) in {result.collectives} collectives")
    assert not result.oom
    assert result.tflops_per_gpu > 150
    print("\npaper-scale simulation OK")


if __name__ == "__main__":
    main()
