"""Matrix multiplication ops (the tensor-core lane of the cost model)."""

from __future__ import annotations

import math

import numpy as np

from repro.autograd.function import Function
from repro.ops._helpers import KernelCost, make_result, sum_to_shape
from repro.tensor import Tensor

__all__ = ["matmul", "linear", "matmul_flops", "linear_flops"]


_batch_shape_cache: dict[tuple, tuple[int, ...]] = {}


def _batch_shape(a_shape, b_shape) -> tuple[int, ...]:
    """Broadcast batch dims, memoized (same shapes every iteration)."""
    key = (a_shape, b_shape)
    batch = _batch_shape_cache.get(key)
    if batch is None:
        batch = _batch_shape_cache[key] = tuple(np.broadcast_shapes(a_shape, b_shape))
    return batch


def matmul_flops(a_shape: tuple[int, ...], b_shape: tuple[int, ...]) -> float:
    """FLOPs of ``a @ b`` (2 * batch * m * k * n)."""
    m, k = a_shape[-2], a_shape[-1]
    k2, n = b_shape[-2], b_shape[-1]
    if k != k2:
        raise ValueError(f"matmul shape mismatch: {a_shape} @ {b_shape}")
    batch_shape = _batch_shape(tuple(a_shape[:-2]), tuple(b_shape[:-2]))
    batch = math.prod(batch_shape) if batch_shape else 1
    return 2.0 * batch * m * k * n


def linear_flops(batch_elems: int, in_features: int, out_features: int) -> float:
    return 2.0 * batch_elems * in_features * out_features


def _matmul_out_shape(a_shape, b_shape) -> tuple[int, ...]:
    batch = _batch_shape(tuple(a_shape[:-2]), tuple(b_shape[:-2]))
    return batch + (a_shape[-2], b_shape[-1])


class _Matmul(Function):
    @staticmethod
    def forward(ctx, a: Tensor, b: Tensor) -> Tensor:
        if a.ndim < 2 or b.ndim < 2:
            raise ValueError("matmul requires >=2-D tensors (use view for vectors)")
        ctx.save_for_backward(a, b)
        shape = _matmul_out_shape(a.shape, b.shape)
        flops = matmul_flops(a.shape, b.shape)
        out_bytes = math.prod(shape) * a.dtype.itemsize
        cost = KernelCost(
            flops=flops, bytes_moved=a.nbytes + b.nbytes + out_bytes, is_matmul=True
        )
        return make_result(
            lambda: np.matmul(a._np, b._np), shape, a.dtype, (a, b), cost=cost
        )

    @staticmethod
    def backward(ctx, grad: Tensor):
        a, b = ctx.saved_tensors
        grad_a = grad_b = None
        needs = ctx.needs_input_grad
        if needs[0]:
            bt = _swap_last(b)
            grad_a = sum_to_shape(matmul(grad, bt), a.shape)
        if needs[1]:
            at = _swap_last(a)
            grad_b = sum_to_shape(matmul(at, grad), b.shape)
        return grad_a, grad_b


def _swap_last(t: Tensor) -> Tensor:
    from repro.ops.shape import transpose

    return transpose(t, t.ndim - 2, t.ndim - 1)


class _Linear(Function):
    """``y = x @ W^T + b`` fused, matching ``nn.functional.linear``."""

    @staticmethod
    def forward(ctx, x: Tensor, weight: Tensor, bias) -> Tensor:
        if weight.ndim != 2:
            raise ValueError("linear weight must be 2-D (out_features, in_features)")
        out_features, in_features = weight.shape
        if x.shape[-1] != in_features:
            raise ValueError(
                f"linear input has {x.shape[-1]} features, weight expects {in_features}"
            )
        ctx.save_for_backward(x, weight, bias)
        batch_elems = x.numel // in_features
        shape = x.shape[:-1] + (out_features,)
        flops = linear_flops(batch_elems, in_features, out_features)
        out_bytes = batch_elems * out_features * x.dtype.itemsize
        cost = KernelCost(
            flops=flops, bytes_moved=x.nbytes + weight.nbytes + out_bytes, is_matmul=True
        )
        inputs = (x, weight) if bias is None else (x, weight, bias)

        def compute():
            y = x._np.reshape(-1, in_features) @ weight._np.T
            if bias is not None:
                y = y + bias._np
            return y.reshape(shape)

        return make_result(compute, shape, x.dtype, inputs, cost=cost)

    @staticmethod
    def backward(ctx, grad: Tensor):
        x, weight, bias = ctx.saved_tensors
        needs = ctx.needs_input_grad
        in_features = weight.shape[1]
        out_features = weight.shape[0]
        batch_elems = x.numel // in_features

        from repro.ops.shape import view
        from repro.ops.reduce import sum as rsum

        grad2d = view(grad, (batch_elems, out_features))
        grad_x = grad_w = grad_b = None
        if needs[0]:
            grad_x = view(matmul(grad2d, weight), x.shape)
        if needs[1]:
            x2d = view(x, (batch_elems, in_features))
            grad_w = matmul(_swap_last(grad2d), x2d)
        if bias is not None and needs[2]:
            grad_b = rsum(grad2d, 0)
        return grad_x, grad_w, grad_b


def matmul(a: Tensor, b: Tensor) -> Tensor:
    return _Matmul.apply(a, b)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    return _Linear.apply(x, weight, bias)
