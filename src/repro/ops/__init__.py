"""Differentiable tensor ops (the library's kernel set).

Every op produces real numpy results in functional mode and shape/cost
flow in abstract mode; all allocate through the simulated caching
allocator and advance simulated time via the kernel cost model.
"""

from repro.ops.basic import (
    abs,
    add,
    cast,
    clone,
    div,
    dropout,
    exp,
    gelu,
    log,
    masked_fill,
    maximum,
    mul,
    neg,
    pow,
    relu,
    sigmoid,
    sqrt,
    sub,
    tanh,
    to_device,
    where,
)
from repro.ops.conv import conv2d, conv2d_flops
from repro.ops.matmul import linear, linear_flops, matmul, matmul_flops
from repro.ops.nnops import embedding, layer_norm, log_softmax, nll_loss, softmax
from repro.ops.reduce import argmax, max, mean, sum
from repro.ops.shape import (
    cat,
    expand,
    getitem,
    narrow,
    pad_right,
    permute,
    split,
    transpose,
    view,
)

__all__ = [
    "abs",
    "add",
    "argmax",
    "cast",
    "cat",
    "clone",
    "conv2d",
    "conv2d_flops",
    "div",
    "dropout",
    "embedding",
    "exp",
    "expand",
    "gelu",
    "getitem",
    "layer_norm",
    "linear",
    "linear_flops",
    "log",
    "log_softmax",
    "masked_fill",
    "matmul",
    "matmul_flops",
    "max",
    "maximum",
    "mean",
    "mul",
    "narrow",
    "neg",
    "nll_loss",
    "pad_right",
    "permute",
    "pow",
    "relu",
    "sigmoid",
    "softmax",
    "split",
    "sqrt",
    "sub",
    "sum",
    "tanh",
    "to_device",
    "transpose",
    "view",
    "where",
]
