"""Shared machinery for op implementations.

Each op builds its output through :func:`make_result`, which

- allocates output storage on the right device (through the caching
  allocator on simulated GPUs),
- enqueues a kernel with an analytic :class:`KernelCost` so simulated
  time advances,
- runs the numpy computation only when every input is materialized
  (functional mode); in abstract mode only shapes/costs flow.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

import numpy as np

from repro import dtypes
from repro.cuda.device import Device, cpu_device
from repro.hw.kernel_model import KernelCost
from repro.storage import Storage
from repro.tensor import Tensor

__all__ = ["make_result", "elementwise_cost", "resolve_device", "sum_to_shape", "KernelCost"]


def resolve_device(inputs: Sequence[Tensor]) -> Device:
    """The common device of ``inputs`` (scalars ride along)."""
    device = None
    for t in inputs:
        d = t._storage.device
        if d.is_sim_gpu or d.is_meta:
            if device is not None and device is not d and t.numel > 1:
                raise RuntimeError(f"tensors on different devices: {device} vs {d}")
            if device is None or not device.is_sim_gpu:
                device = d
    return device or (inputs[0]._storage.device if inputs else cpu_device())


def elementwise_cost(*tensors: Tensor, flops_per_element: float = 1.0) -> KernelCost:
    """Bandwidth-bound cost of an elementwise kernel over ``tensors``."""
    nbytes = 0
    numel = 0
    for t in tensors:
        nbytes += t.nbytes
        if t.numel > numel:
            numel = t.numel
    return KernelCost(flops=numel * flops_per_element, bytes_moved=nbytes)


def make_result(
    compute: Optional[Callable[[], np.ndarray]],
    shape: tuple[int, ...],
    dtype: dtypes.DType,
    inputs: Sequence[Tensor],
    *,
    cost: Optional[KernelCost] = None,
    device: Optional[Device] = None,
    stream=None,
) -> Tensor:
    """Allocate, cost and (when possible) compute an op's output."""
    if device is None:
        device = resolve_device(inputs)
    materialize = (
        compute is not None
        and device.materialize_data
        and all(t._storage.data is not None for t in inputs)
    )
    shape = tuple(shape)
    numel = math.prod(shape) if shape else 1
    storage = Storage(device, dtype, numel, materialize=materialize)
    out = Tensor(storage, shape)
    if device.is_sim_gpu:
        if cost is None:
            cost = elementwise_cost(*inputs, out)
        device.launch(
            cost,
            dtype,
            stream=stream,
            reads=tuple(t._storage for t in inputs),
            writes=(storage,),
        )
    if materialize:
        result = compute()
        out._np[...] = dtypes.quantize(np.asarray(result), dtype).reshape(shape)
    return out


def sum_to_shape(grad: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reduce a broadcasted gradient back to ``shape``."""
    from repro import ops

    if grad.shape == tuple(shape):
        return grad
    # Leading dims that were added by broadcasting.
    extra = grad.ndim - len(shape)
    reduce_dims = list(range(extra))
    for i, target in enumerate(shape):
        if target == 1 and grad.shape[extra + i] != 1:
            reduce_dims.append(extra + i)
    result = ops.sum(grad, tuple(reduce_dims), keepdim=False) if reduce_dims else grad
    return result.view(*shape)
