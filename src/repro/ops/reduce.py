"""Reduction ops: sum, mean, max."""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

import numpy as np

from repro.autograd.function import Function
from repro.ops._helpers import KernelCost, make_result
from repro.tensor import Tensor

__all__ = ["sum", "mean", "max", "argmax"]

_builtin_sum = sum

DimArg = Union[None, int, Sequence[int]]


def _normalize_dims(dim: DimArg, ndim: int) -> Optional[tuple[int, ...]]:
    if dim is None:
        return None
    if isinstance(dim, int):
        dim = (dim,)
    return tuple(d % ndim for d in dim)


def _reduced_shape(shape: tuple[int, ...], dims: Optional[tuple[int, ...]], keepdim: bool):
    if dims is None:
        return (tuple(1 for _ in shape) if keepdim else ())
    out = []
    for i, s in enumerate(shape):
        if i in dims:
            if keepdim:
                out.append(1)
        else:
            out.append(s)
    return tuple(out)


class _Sum(Function):
    @staticmethod
    def forward(ctx, a: Tensor, dim: DimArg, keepdim: bool) -> Tensor:
        dims = _normalize_dims(dim, a.ndim)
        ctx.src_shape = a.shape
        ctx.dims = dims
        shape = _reduced_shape(a.shape, dims, keepdim)
        cost = KernelCost(flops=a.numel, bytes_moved=a.nbytes)
        axis = dims if dims is not None else None
        return make_result(
            lambda: np.sum(a._np, axis=axis, keepdims=keepdim),
            shape,
            a.dtype,
            (a,),
            cost=cost,
        )

    @staticmethod
    def backward(ctx, grad: Tensor):
        from repro.ops.shape import expand, view

        keep_shape = _reduced_shape(ctx.src_shape, ctx.dims, keepdim=True)
        grad = view(grad, keep_shape)
        return expand(grad, ctx.src_shape), None, None


class _Max(Function):
    """Full reduction max to a scalar."""

    @staticmethod
    def forward(ctx, a: Tensor) -> Tensor:
        ctx.save_for_backward(a)
        out = make_result(
            lambda: np.max(a._np),
            (),
            a.dtype,
            (a,),
            cost=KernelCost(flops=a.numel, bytes_moved=a.nbytes),
        )
        ctx.out = out
        return out

    @staticmethod
    def backward(ctx, grad: Tensor):
        (a,) = ctx.saved_tensors
        out = ctx.out

        def compute():
            flat = a._np.reshape(-1)
            mask = np.zeros_like(flat)
            mask[int(np.argmax(flat))] = 1.0
            return mask.reshape(a.shape) * grad._np

        return make_result(compute, a.shape, a.dtype, (a, out, grad))


def argmax(a: Tensor, dim: int = -1) -> Tensor:
    """Indices of the maxima along ``dim`` (not differentiable)."""
    from repro import dtypes
    from repro.ops._helpers import make_result

    dim = dim % a.ndim
    shape = tuple(s for i, s in enumerate(a.shape) if i != dim)
    return make_result(
        lambda: np.argmax(a._np, axis=dim),
        shape,
        dtypes.int64,
        (a,),
        cost=KernelCost(flops=a.numel, bytes_moved=a.nbytes),
    )


def sum(a: Tensor, dim: DimArg = None, keepdim: bool = False) -> Tensor:
    return _Sum.apply(a, dim, keepdim)


def mean(a: Tensor, dim: DimArg = None, keepdim: bool = False) -> Tensor:
    dims = _normalize_dims(dim, a.ndim)
    if dims is None:
        count = a.numel
    else:
        count = math.prod(a.shape[d] for d in dims)
    from repro.ops.basic import div, _scalar_like

    total = sum(a, dim, keepdim)
    return div(total, _scalar_like(float(count), total))


def max(a: Tensor) -> Tensor:
    return _Max.apply(a)
