"""Neural-network primitive ops: softmax, layer norm, embedding, NLL."""

from __future__ import annotations

import math

import numpy as np

from repro.autograd.function import Function
from repro.ops._helpers import KernelCost, make_result
from repro.tensor import Tensor

__all__ = ["softmax", "log_softmax", "layer_norm", "embedding", "nll_loss"]


class _Softmax(Function):
    @staticmethod
    def forward(ctx, a: Tensor, dim: int) -> Tensor:
        dim = dim % a.ndim
        ctx.dim = dim
        cost = KernelCost(flops=5 * a.numel, bytes_moved=3 * a.nbytes)

        def compute():
            x = a._np
            shifted = x - np.max(x, axis=dim, keepdims=True)
            e = np.exp(shifted)
            return e / np.sum(e, axis=dim, keepdims=True)

        out = make_result(compute, a.shape, a.dtype, (a,), cost=cost)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, grad: Tensor):
        (out,) = ctx.saved_tensors
        dim = ctx.dim
        cost = KernelCost(flops=4 * out.numel, bytes_moved=3 * out.nbytes)

        def compute():
            y, g = out._np, grad._np
            inner = np.sum(y * g, axis=dim, keepdims=True)
            return y * (g - inner)

        return make_result(compute, out.shape, out.dtype, (out, grad), cost=cost), None


class _LogSoftmax(Function):
    @staticmethod
    def forward(ctx, a: Tensor, dim: int) -> Tensor:
        dim = dim % a.ndim
        ctx.dim = dim
        cost = KernelCost(flops=5 * a.numel, bytes_moved=3 * a.nbytes)

        def compute():
            x = a._np
            shifted = x - np.max(x, axis=dim, keepdims=True)
            return shifted - np.log(np.sum(np.exp(shifted), axis=dim, keepdims=True))

        out = make_result(compute, a.shape, a.dtype, (a,), cost=cost)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, grad: Tensor):
        (out,) = ctx.saved_tensors
        dim = ctx.dim
        cost = KernelCost(flops=4 * out.numel, bytes_moved=3 * out.nbytes)

        def compute():
            y, g = out._np, grad._np
            return g - np.exp(y) * np.sum(g, axis=dim, keepdims=True)

        return make_result(compute, out.shape, out.dtype, (out, grad), cost=cost), None


class _LayerNorm(Function):
    """Layer normalization over the trailing dimension."""

    @staticmethod
    def forward(ctx, a: Tensor, weight, bias, eps: float) -> Tensor:
        ctx.eps = eps
        ctx.save_for_backward(a, weight, bias)
        inputs = tuple(t for t in (a, weight, bias) if t is not None)
        cost = KernelCost(flops=8 * a.numel, bytes_moved=3 * a.nbytes)

        def compute():
            x = a._np
            mu = x.mean(axis=-1, keepdims=True)
            var = x.var(axis=-1, keepdims=True)
            y = (x - mu) / np.sqrt(var + eps)
            if weight is not None:
                y = y * weight._np
            if bias is not None:
                y = y + bias._np
            return y

        return make_result(compute, a.shape, a.dtype, inputs, cost=cost)

    @staticmethod
    def backward(ctx, grad: Tensor):
        a, weight, bias = ctx.saved_tensors
        eps = ctx.eps
        needs = ctx.needs_input_grad
        n = a.shape[-1]
        cost = KernelCost(flops=12 * a.numel, bytes_moved=4 * a.nbytes)

        def normed():
            x = a._np
            mu = x.mean(axis=-1, keepdims=True)
            var = x.var(axis=-1, keepdims=True)
            return (x - mu) / np.sqrt(var + eps), np.sqrt(var + eps)

        grad_a = grad_w = grad_b = None
        if needs[0]:

            def compute_ga():
                xhat, std = normed()
                g = grad._np
                if weight is not None:
                    g = g * weight._np
                gm = g.mean(axis=-1, keepdims=True)
                gxm = (g * xhat).mean(axis=-1, keepdims=True)
                return (g - gm - xhat * gxm) / std

            grad_a = make_result(compute_ga, a.shape, a.dtype, (a, grad), cost=cost)
        if weight is not None and needs[1]:

            def compute_gw():
                xhat, _ = normed()
                return (grad._np * xhat).reshape(-1, n).sum(axis=0)

            grad_w = make_result(compute_gw, (n,), a.dtype, (a, grad))
        if bias is not None and needs[2]:
            grad_b = make_result(
                lambda: grad._np.reshape(-1, n).sum(axis=0), (n,), a.dtype, (grad,)
            )
        return grad_a, grad_w, grad_b, None


class _Embedding(Function):
    @staticmethod
    def forward(ctx, weight: Tensor, indices: Tensor) -> Tensor:
        if weight.ndim != 2:
            raise ValueError("embedding weight must be 2-D")
        ctx.save_for_backward(indices)
        ctx.weight_shape = weight.shape
        dim = weight.shape[1]
        shape = indices.shape + (dim,)
        nbytes = math.prod(shape) * weight.dtype.itemsize
        cost = KernelCost(bytes_moved=2 * nbytes)
        return make_result(
            lambda: weight._np[indices._np], shape, weight.dtype, (weight, indices), cost=cost
        )

    @staticmethod
    def backward(ctx, grad: Tensor):
        (indices,) = ctx.saved_tensors
        weight_shape = ctx.weight_shape
        cost = KernelCost(bytes_moved=2 * grad.nbytes)

        def compute():
            out = np.zeros(weight_shape, dtype=grad.dtype.np_dtype)
            np.add.at(out, indices._np.reshape(-1), grad._np.reshape(-1, weight_shape[1]))
            return out

        return make_result(compute, weight_shape, grad.dtype, (grad, indices), cost=cost), None


class _NllLoss(Function):
    """Mean negative log likelihood over flattened (N, C) log-probs."""

    @staticmethod
    def forward(ctx, log_probs: Tensor, targets: Tensor) -> Tensor:
        if log_probs.ndim != 2:
            raise ValueError("nll_loss expects (N, C) log-probabilities")
        ctx.save_for_backward(log_probs, targets)
        n = log_probs.shape[0]
        ctx.n = n
        cost = KernelCost(bytes_moved=log_probs.nbytes)

        def compute():
            rows = np.arange(n)
            return -log_probs._np[rows, targets._np].mean()

        return make_result(compute, (), log_probs.dtype, (log_probs, targets), cost=cost)

    @staticmethod
    def backward(ctx, grad: Tensor):
        log_probs, targets = ctx.saved_tensors
        n = ctx.n

        def compute():
            out = np.zeros(log_probs.shape, dtype=grad.dtype.np_dtype)
            out[np.arange(n), targets._np] = -1.0 / n
            return out * grad._np

        return (
            make_result(compute, log_probs.shape, grad.dtype, (log_probs, grad)),
            None,
        )


def softmax(a: Tensor, dim: int = -1) -> Tensor:
    return _Softmax.apply(a, dim)


def log_softmax(a: Tensor, dim: int = -1) -> Tensor:
    return _LogSoftmax.apply(a, dim)


def layer_norm(a: Tensor, weight=None, bias=None, eps: float = 1e-5) -> Tensor:
    return _LayerNorm.apply(a, weight, bias, eps)


def embedding(weight: Tensor, indices: Tensor) -> Tensor:
    return _Embedding.apply(weight, indices)


def nll_loss(log_probs: Tensor, targets: Tensor) -> Tensor:
    return _NllLoss.apply(log_probs, targets)
