"""Elementwise and pointwise differentiable ops."""

from __future__ import annotations

import numpy as np

from repro import dtypes
from repro.autograd.function import Function
from repro.cuda.device import Device
from repro.ops._helpers import KernelCost, elementwise_cost, make_result, sum_to_shape
from repro.tensor import Tensor

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow",
    "abs",
    "sqrt",
    "exp",
    "log",
    "tanh",
    "clone",
    "cast",
    "to_device",
    "where",
    "maximum",
    "masked_fill",
    "dropout",
    "relu",
    "gelu",
    "sigmoid",
]


_broadcast_cache: dict[tuple, tuple[int, ...]] = {}


def _broadcast_shape(a: Tensor, b: Tensor) -> tuple[int, ...]:
    # Models apply the same few hundred shape pairs every iteration;
    # numpy's broadcast_shapes is ~10x the cost of a dict hit.
    if a.shape == b.shape:
        return a.shape
    key = (a.shape, b.shape)
    shape = _broadcast_cache.get(key)
    if shape is None:
        shape = _broadcast_cache[key] = tuple(np.broadcast_shapes(a.shape, b.shape))
    return shape


class _Add(Function):
    @staticmethod
    def forward(ctx, a: Tensor, b: Tensor) -> Tensor:
        ctx.a_shape, ctx.b_shape = a.shape, b.shape
        dtype = dtypes.result_type(a.dtype, b.dtype)
        return make_result(
            lambda: a._np + b._np, _broadcast_shape(a, b), dtype, (a, b)
        )

    @staticmethod
    def backward(ctx, grad: Tensor):
        return sum_to_shape(grad, ctx.a_shape), sum_to_shape(grad, ctx.b_shape)


class _Sub(Function):
    @staticmethod
    def forward(ctx, a: Tensor, b: Tensor) -> Tensor:
        ctx.a_shape, ctx.b_shape = a.shape, b.shape
        dtype = dtypes.result_type(a.dtype, b.dtype)
        return make_result(
            lambda: a._np - b._np, _broadcast_shape(a, b), dtype, (a, b)
        )

    @staticmethod
    def backward(ctx, grad: Tensor):
        return sum_to_shape(grad, ctx.a_shape), sum_to_shape(neg(grad), ctx.b_shape)


class _Mul(Function):
    @staticmethod
    def forward(ctx, a: Tensor, b: Tensor) -> Tensor:
        ctx.save_for_backward(a, b)
        dtype = dtypes.result_type(a.dtype, b.dtype)
        return make_result(
            lambda: a._np * b._np, _broadcast_shape(a, b), dtype, (a, b)
        )

    @staticmethod
    def backward(ctx, grad: Tensor):
        a, b = ctx.saved_tensors
        return sum_to_shape(mul(grad, b), a.shape), sum_to_shape(mul(grad, a), b.shape)


class _Div(Function):
    @staticmethod
    def forward(ctx, a: Tensor, b: Tensor) -> Tensor:
        ctx.save_for_backward(a, b)
        dtype = dtypes.result_type(a.dtype, b.dtype)
        return make_result(
            lambda: a._np / b._np, _broadcast_shape(a, b), dtype, (a, b)
        )

    @staticmethod
    def backward(ctx, grad: Tensor):
        a, b = ctx.saved_tensors
        grad_a = sum_to_shape(div(grad, b), a.shape)
        grad_b = sum_to_shape(neg(div(mul(grad, a), mul(b, b))), b.shape)
        return grad_a, grad_b


class _Neg(Function):
    @staticmethod
    def forward(ctx, a: Tensor) -> Tensor:
        return make_result(lambda: -a._np, a.shape, a.dtype, (a,))

    @staticmethod
    def backward(ctx, grad: Tensor):
        return neg(grad)


class _Pow(Function):
    @staticmethod
    def forward(ctx, a: Tensor, exponent: float) -> Tensor:
        ctx.save_for_backward(a)
        ctx.exponent = exponent
        return make_result(lambda: a._np**exponent, a.shape, a.dtype, (a,))

    @staticmethod
    def backward(ctx, grad: Tensor):
        (a,) = ctx.saved_tensors
        e = ctx.exponent
        return mul(grad, mul(pow(a, e - 1.0), _scalar_like(e, grad))), None


class _Abs(Function):
    @staticmethod
    def forward(ctx, a: Tensor) -> Tensor:
        ctx.save_for_backward(a)
        return make_result(lambda: np.abs(a._np), a.shape, a.dtype, (a,))

    @staticmethod
    def backward(ctx, grad: Tensor):
        (a,) = ctx.saved_tensors
        sign = make_result(lambda: np.sign(a._np), a.shape, a.dtype, (a,))
        return mul(grad, sign)


class _Sqrt(Function):
    @staticmethod
    def forward(ctx, a: Tensor) -> Tensor:
        out = make_result(lambda: np.sqrt(a._np), a.shape, a.dtype, (a,))
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, grad: Tensor):
        (out,) = ctx.saved_tensors
        return div(grad, mul(out, _scalar_like(2.0, out)))


class _Exp(Function):
    @staticmethod
    def forward(ctx, a: Tensor) -> Tensor:
        out = make_result(lambda: np.exp(a._np), a.shape, a.dtype, (a,))
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, grad: Tensor):
        (out,) = ctx.saved_tensors
        return mul(grad, out)


class _Log(Function):
    @staticmethod
    def forward(ctx, a: Tensor) -> Tensor:
        ctx.save_for_backward(a)
        return make_result(lambda: np.log(a._np), a.shape, a.dtype, (a,))

    @staticmethod
    def backward(ctx, grad: Tensor):
        (a,) = ctx.saved_tensors
        return div(grad, a)


class _Tanh(Function):
    @staticmethod
    def forward(ctx, a: Tensor) -> Tensor:
        out = make_result(lambda: np.tanh(a._np), a.shape, a.dtype, (a,))
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, grad: Tensor):
        (out,) = ctx.saved_tensors
        one = _scalar_like(1.0, out)
        return mul(grad, sub(one, mul(out, out)))


class _Sigmoid(Function):
    @staticmethod
    def forward(ctx, a: Tensor) -> Tensor:
        out = make_result(
            lambda: 1.0 / (1.0 + np.exp(-a._np)), a.shape, a.dtype, (a,)
        )
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, grad: Tensor):
        (out,) = ctx.saved_tensors
        one = _scalar_like(1.0, out)
        return mul(grad, mul(out, sub(one, out)))


class _Relu(Function):
    @staticmethod
    def forward(ctx, a: Tensor) -> Tensor:
        out = make_result(lambda: np.maximum(a._np, 0.0), a.shape, a.dtype, (a,))
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx, grad: Tensor):
        (out,) = ctx.saved_tensors
        mask = make_result(
            lambda: (out._np > 0).astype(out.dtype.np_dtype), out.shape, out.dtype, (out,)
        )
        return mul(grad, mask)


_GELU_C = float(np.sqrt(2.0 / np.pi))


class _Gelu(Function):
    """Tanh-approximated GELU, the transformer default."""

    @staticmethod
    def forward(ctx, a: Tensor) -> Tensor:
        ctx.save_for_backward(a)
        cost = elementwise_cost(a, a, flops_per_element=10.0)

        def compute():
            x = a._np
            return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * x**3)))

        return make_result(compute, a.shape, a.dtype, (a,), cost=cost)

    @staticmethod
    def backward(ctx, grad: Tensor):
        (a,) = ctx.saved_tensors
        cost = elementwise_cost(a, a, flops_per_element=14.0)

        def compute():
            x = a._np
            inner = _GELU_C * (x + 0.044715 * x**3)
            tanh_inner = np.tanh(inner)
            sech2 = 1.0 - tanh_inner**2
            d_inner = _GELU_C * (1.0 + 3 * 0.044715 * x**2)
            return 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner

        deriv = make_result(compute, a.shape, a.dtype, (a,), cost=cost)
        return mul(grad, deriv)


class _Clone(Function):
    @staticmethod
    def forward(ctx, a: Tensor) -> Tensor:
        return make_result(lambda: a._np.copy(), a.shape, a.dtype, (a,))

    @staticmethod
    def backward(ctx, grad: Tensor):
        return grad


class _Cast(Function):
    @staticmethod
    def forward(ctx, a: Tensor, dtype: dtypes.DType) -> Tensor:
        ctx.src_dtype = a.dtype
        return make_result(lambda: a._np, a.shape, dtype, (a,))

    @staticmethod
    def backward(ctx, grad: Tensor):
        return cast(grad, ctx.src_dtype), None


class _ToDevice(Function):
    @staticmethod
    def forward(ctx, a: Tensor, device: Device) -> Tensor:
        ctx.src_device = a.device
        cost = None
        if device.is_sim_gpu or a.device.is_sim_gpu:
            gpu = device if device.is_sim_gpu else a.device
            # Host<->device copies ride PCIe.
            cost = KernelCost(bytes_moved=a.nbytes * (gpu.spec.mem_bandwidth / 25e9))
        compute = (lambda: a._np.copy()) if a.is_materialized else None
        return make_result(compute, a.shape, a.dtype, (a,), cost=cost, device=device)

    @staticmethod
    def backward(ctx, grad: Tensor):
        return (to_device(grad, ctx.src_device), None)


class _Where(Function):
    @staticmethod
    def forward(ctx, cond: Tensor, a: Tensor, b: Tensor) -> Tensor:
        ctx.save_for_backward(cond)
        dtype = dtypes.result_type(a.dtype, b.dtype)
        shape = tuple(np.broadcast_shapes(cond.shape, a.shape, b.shape))
        ctx.a_shape, ctx.b_shape = a.shape, b.shape
        return make_result(
            lambda: np.where(cond._np, a._np, b._np), shape, dtype, (cond, a, b)
        )

    @staticmethod
    def backward(ctx, grad: Tensor):
        (cond,) = ctx.saved_tensors
        zero = _scalar_like(0.0, grad)
        grad_a = sum_to_shape(where(cond, grad, zero), ctx.a_shape)
        grad_b = sum_to_shape(where(cond, zero, grad), ctx.b_shape)
        return None, grad_a, grad_b


class _Maximum(Function):
    @staticmethod
    def forward(ctx, a: Tensor, b: Tensor) -> Tensor:
        ctx.save_for_backward(a, b)
        dtype = dtypes.result_type(a.dtype, b.dtype)
        return make_result(
            lambda: np.maximum(a._np, b._np), _broadcast_shape(a, b), dtype, (a, b)
        )

    @staticmethod
    def backward(ctx, grad: Tensor):
        a, b = ctx.saved_tensors
        mask = make_result(
            lambda: (a._np >= b._np).astype(grad.dtype.np_dtype),
            _broadcast_shape(a, b),
            grad.dtype,
            (a, b),
        )
        one = _scalar_like(1.0, grad)
        grad_a = sum_to_shape(mul(grad, mask), a.shape)
        grad_b = sum_to_shape(mul(grad, sub(one, mask)), b.shape)
        return grad_a, grad_b


class _MaskedFill(Function):
    @staticmethod
    def forward(ctx, a: Tensor, mask: Tensor, value: float) -> Tensor:
        ctx.save_for_backward(mask)
        shape = tuple(np.broadcast_shapes(a.shape, mask.shape))
        ctx.a_shape = a.shape
        return make_result(
            lambda: np.where(mask._np, np.asarray(value, dtype=a.dtype.np_dtype), a._np),
            shape,
            a.dtype,
            (a, mask),
        )

    @staticmethod
    def backward(ctx, grad: Tensor):
        (mask,) = ctx.saved_tensors
        zero = _scalar_like(0.0, grad)
        return sum_to_shape(where(mask, zero, grad), ctx.a_shape), None, None


class _Dropout(Function):
    @staticmethod
    def forward(ctx, a: Tensor, p: float, seed: int) -> Tensor:
        ctx.p = p
        scale = 1.0 / (1.0 - p)

        mask_holder: dict[str, np.ndarray] = {}

        def compute():
            from repro import random as rrandom

            rng = rrandom.Generator.numpy_rng(seed)
            mask = (rng.random(a.shape) >= p).astype(a.dtype.np_dtype) * scale
            mask_holder["mask"] = mask
            return a._np * mask

        out = make_result(compute, a.shape, a.dtype, (a,))
        if "mask" in mask_holder:
            from repro.tensor import tensor as make_tensor

            ctx.mask = make_tensor(mask_holder["mask"], dtype=a.dtype, device=a.device)
        else:
            ctx.mask = None
        return out

    @staticmethod
    def backward(ctx, grad: Tensor):
        if ctx.mask is None:
            # Abstract mode: account for the bandwidth cost only.
            return (
                make_result(None, grad.shape, grad.dtype, (grad,)),
                None,
                None,
            )
        return mul(grad, ctx.mask), None, None


def _scalar_like(value: float, like: Tensor) -> Tensor:
    from repro.tensor import tensor as make_tensor

    return make_tensor(
        np.asarray(value, dtype=like.dtype.np_dtype), dtype=like.dtype, device=like.device
    )


# ----------------------------------------------------------------------
# Public functional API
# ----------------------------------------------------------------------
def add(a: Tensor, b: Tensor) -> Tensor:
    return _Add.apply(a, b)


def sub(a: Tensor, b: Tensor) -> Tensor:
    return _Sub.apply(a, b)


def mul(a: Tensor, b: Tensor) -> Tensor:
    return _Mul.apply(a, b)


def div(a: Tensor, b: Tensor) -> Tensor:
    return _Div.apply(a, b)


def neg(a: Tensor) -> Tensor:
    return _Neg.apply(a)


def pow(a: Tensor, exponent: float) -> Tensor:
    return _Pow.apply(a, exponent)


def abs(a: Tensor) -> Tensor:
    return _Abs.apply(a)


def sqrt(a: Tensor) -> Tensor:
    return _Sqrt.apply(a)


def exp(a: Tensor) -> Tensor:
    return _Exp.apply(a)


def log(a: Tensor) -> Tensor:
    return _Log.apply(a)


def tanh(a: Tensor) -> Tensor:
    return _Tanh.apply(a)


def sigmoid(a: Tensor) -> Tensor:
    return _Sigmoid.apply(a)


def relu(a: Tensor) -> Tensor:
    return _Relu.apply(a)


def gelu(a: Tensor) -> Tensor:
    return _Gelu.apply(a)


def clone(a: Tensor) -> Tensor:
    return _Clone.apply(a)


def cast(a: Tensor, dtype: dtypes.DType) -> Tensor:
    if dtype is a.dtype:
        return a
    return _Cast.apply(a, dtype)


def to_device(a: Tensor, device: Device) -> Tensor:
    if device is a.device:
        return a
    return _ToDevice.apply(a, device)


def where(cond: Tensor, a: Tensor, b: Tensor) -> Tensor:
    return _Where.apply(cond, a, b)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    return _Maximum.apply(a, b)


def masked_fill(a: Tensor, mask: Tensor, value: float) -> Tensor:
    return _MaskedFill.apply(a, mask, value)


def dropout(a: Tensor, p: float = 0.5, training: bool = True) -> Tensor:
    if not training or p == 0.0:
        return a
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    from repro import random as rrandom

    return _Dropout.apply(a, p, rrandom.fork_seed())
