"""2-D convolution (im2col formulation), for the vision workloads.

RegNet and DeepViT (Section 5.3's rate-limiter experiments) need
convolutions; the op is implemented as an im2col GEMM so its simulated
cost rides the tensor-core lane with the true convolution FLOP count
``2 · B · Ho · Wo · Cout · Cin · kh · kw``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autograd.function import Function
from repro.ops._helpers import KernelCost, make_result
from repro.tensor import Tensor

__all__ = ["conv2d", "conv2d_flops"]


def conv2d_flops(
    batch: int, in_channels: int, out_channels: int, out_h: int, out_w: int, kernel: int
) -> float:
    return 2.0 * batch * out_h * out_w * out_channels * in_channels * kernel * kernel


def _out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """(B, Cin, H, W) -> (B, Ho, Wo, Cin*kh*kw)."""
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, :: stride]  # (B, Cin, Ho, Wo, kh, kw)
    b, cin, ho, wo = windows.shape[:4]
    return windows.transpose(0, 2, 3, 1, 4, 5).reshape(b, ho, wo, cin * kh * kw)


class _Conv2d(Function):
    @staticmethod
    def forward(ctx, x: Tensor, weight: Tensor, bias, stride: int, padding: int) -> Tensor:
        if x.ndim != 4 or weight.ndim != 4:
            raise ValueError("conv2d expects x (B,C,H,W) and weight (Co,Ci,kh,kw)")
        batch, cin, h, w = x.shape
        cout, cin_w, kh, kw = weight.shape
        if cin != cin_w:
            raise ValueError(f"conv2d channel mismatch: {cin} vs {cin_w}")
        out_h = _out_size(h, kh, stride, padding)
        out_w = _out_size(w, kw, stride, padding)
        ctx.save_for_backward(x, weight, bias)
        ctx.stride, ctx.padding = stride, padding
        shape = (batch, cout, out_h, out_w)
        flops = conv2d_flops(batch, cin, cout, out_h, out_w, kh)
        out_bytes = math.prod(shape) * x.dtype.itemsize
        cost = KernelCost(
            flops=flops, bytes_moved=x.nbytes + weight.nbytes + out_bytes, is_matmul=True
        )
        inputs = (x, weight) if bias is None else (x, weight, bias)

        def compute():
            cols = _im2col(x._np, kh, kw, stride, padding)
            wmat = weight._np.reshape(cout, -1)
            out = cols @ wmat.T  # (B, Ho, Wo, Cout)
            if bias is not None:
                out = out + bias._np
            return out.transpose(0, 3, 1, 2)

        return make_result(compute, shape, x.dtype, inputs, cost=cost)

    @staticmethod
    def backward(ctx, grad: Tensor):
        x, weight, bias = ctx.saved_tensors
        stride, padding = ctx.stride, ctx.padding
        batch, cin, h, w = x.shape
        cout, _, kh, kw = weight.shape
        needs = ctx.needs_input_grad
        out_h, out_w = grad.shape[2], grad.shape[3]
        flops = conv2d_flops(batch, cin, cout, out_h, out_w, kh)

        grad_x = grad_w = grad_b = None
        if needs[0]:

            def compute_gx():
                g = grad._np.transpose(0, 2, 3, 1).reshape(-1, cout)
                wmat = weight._np.reshape(cout, -1)
                cols_grad = (g @ wmat).reshape(batch, out_h, out_w, cin, kh, kw)
                padded = np.zeros(
                    (batch, cin, h + 2 * padding, w + 2 * padding), dtype=x.dtype.np_dtype
                )
                for i in range(kh):
                    for j in range(kw):
                        padded[
                            :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                        ] += cols_grad[:, :, :, :, i, j].transpose(0, 3, 1, 2)
                if padding:
                    return padded[:, :, padding:-padding, padding:-padding]
                return padded

            cost = KernelCost(flops=flops, bytes_moved=2 * x.nbytes, is_matmul=True)
            grad_x = make_result(compute_gx, x.shape, x.dtype, (x, grad), cost=cost)
        if needs[1]:

            def compute_gw():
                cols = _im2col(x._np, kh, kw, stride, padding).reshape(-1, cin * kh * kw)
                g = grad._np.transpose(0, 2, 3, 1).reshape(-1, cout)
                return (g.T @ cols).reshape(cout, cin, kh, kw)

            cost = KernelCost(flops=flops, bytes_moved=2 * weight.nbytes, is_matmul=True)
            grad_w = make_result(compute_gw, weight.shape, weight.dtype, (x, grad), cost=cost)
        if bias is not None and needs[2]:
            grad_b = make_result(
                lambda: grad._np.sum(axis=(0, 2, 3)), (cout,), grad.dtype, (grad,)
            )
        return grad_x, grad_w, grad_b, None, None


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None, stride: int = 1, padding: int = 0) -> Tensor:
    return _Conv2d.apply(x, weight, bias, stride, padding)
