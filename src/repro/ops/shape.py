"""Shape ops: views, split, narrow, cat, transpose, permute, expand.

``view``/``split``/``narrow`` are true aliasing views (shared storage,
no kernel), matching the autograd-visible ``torch.split()`` /
``torch.view()`` calls FSDP uses to make original parameters views into
their unsharded FlatParameter (Section 3.2.3).  Their backwards route
gradients to the right offsets, which is how the unsharded
FlatParameter gradient gets assembled by the engine.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.autograd.function import Function
from repro.ops._helpers import KernelCost, make_result
from repro.tensor import Tensor

__all__ = [
    "view",
    "split",
    "narrow",
    "cat",
    "transpose",
    "permute",
    "expand",
    "getitem",
    "pad_right",
]


def _alias(t: Tensor, shape: tuple[int, ...], offset: int) -> Tensor:
    return Tensor(t._storage, shape, offset=offset, dtype=t.dtype, base=t if t._base is None else t._base)


class _View(Function):
    @staticmethod
    def forward(ctx, a: Tensor, shape: tuple[int, ...]) -> Tensor:
        shape = _resolve_shape(shape, a.numel)
        if math.prod(shape) != a.numel:
            raise ValueError(f"cannot view {a.shape} as {shape}")
        ctx.src_shape = a.shape
        return _alias(a, shape, a._offset)

    @staticmethod
    def backward(ctx, grad: Tensor):
        return view(grad, ctx.src_shape), None


class _Split(Function):
    @staticmethod
    def forward(ctx, a: Tensor, sections: tuple[int, ...]) -> tuple:
        if a.ndim != 1:
            raise ValueError("split views are supported on 1-D tensors only")
        if sum(sections) != a.numel:
            raise ValueError(
                f"split sections {sections} do not cover {a.numel} elements"
            )
        ctx.sections = sections
        ctx.dtype = a.dtype
        ctx.device = a.device
        outs = []
        offset = a._offset
        for length in sections:
            outs.append(_alias(a, (length,), offset))
            offset += length
        return tuple(outs)

    @staticmethod
    def backward(ctx, *grads):
        from repro.tensor import zeros

        pieces = []
        for grad, length in zip(grads, ctx.sections):
            if grad is None:
                pieces.append(zeros(length, dtype=ctx.dtype, device=ctx.device))
            else:
                pieces.append(grad)
        return cat(pieces, 0), None


class _Narrow(Function):
    @staticmethod
    def forward(ctx, a: Tensor, dim: int, start: int, length: int) -> Tensor:
        if dim != 0:
            raise ValueError("narrow views are supported on dim 0 only")
        if not 0 <= start <= a.shape[0] - length:
            raise ValueError(
                f"narrow out of range: start={start} length={length} size={a.shape[0]}"
            )
        row = a.numel // a.shape[0] if a.shape[0] else 0
        ctx.src_shape = a.shape
        ctx.start = start
        shape = (length,) + a.shape[1:]
        return _alias(a, shape, a._offset + start * row)

    @staticmethod
    def backward(ctx, grad: Tensor):
        from repro.tensor import zeros

        src_shape = ctx.src_shape
        before = ctx.start
        after = src_shape[0] - before - grad.shape[0]
        pieces = []
        if before:
            pieces.append(zeros(before, *src_shape[1:], dtype=grad.dtype, device=grad.device))
        pieces.append(grad)
        if after:
            pieces.append(zeros(after, *src_shape[1:], dtype=grad.dtype, device=grad.device))
        return cat(pieces, 0), None, None, None


class _Cat(Function):
    @staticmethod
    def forward(ctx, *args) -> Tensor:
        *tensors, dim = args
        if not tensors:
            raise ValueError("cat requires at least one tensor")
        first = tensors[0]
        ctx.dim = dim
        ctx.sizes = tuple(t.shape[dim] for t in tensors)
        shape = list(first.shape)
        shape[dim] = sum(ctx.sizes)
        nbytes = sum(t.nbytes for t in tensors)
        cost = KernelCost(bytes_moved=2 * nbytes)
        return make_result(
            lambda: np.concatenate([t._np for t in tensors], axis=dim),
            tuple(shape),
            first.dtype,
            tuple(tensors),
            cost=cost,
        )

    @staticmethod
    def backward(ctx, grad: Tensor):
        grads = []
        offset = 0
        for size in ctx.sizes:
            grads.append(narrow_along(grad, ctx.dim, offset, size))
            offset += size
        return (*grads, None)


def narrow_along(t: Tensor, dim: int, start: int, length: int) -> Tensor:
    """Copy-based narrow along any dim (used by cat's backward)."""
    if dim == 0:
        return narrow(t, 0, start, length)
    return _NarrowCopy.apply(t, dim, start, length)


class _NarrowCopy(Function):
    @staticmethod
    def forward(ctx, a: Tensor, dim: int, start: int, length: int) -> Tensor:
        ctx.src_shape, ctx.dim, ctx.start = a.shape, dim, start
        shape = list(a.shape)
        shape[dim] = length
        index = [slice(None)] * a.ndim
        index[dim] = slice(start, start + length)
        return make_result(
            lambda: a._np[tuple(index)].copy(), tuple(shape), a.dtype, (a,)
        )

    @staticmethod
    def backward(ctx, grad: Tensor):
        from repro.tensor import zeros

        dim, start = ctx.dim, ctx.start

        def compute():
            out = np.zeros(ctx.src_shape, dtype=grad.dtype.np_dtype)
            index = [slice(None)] * len(ctx.src_shape)
            index[dim] = slice(start, start + grad.shape[dim])
            out[tuple(index)] = grad._np
            return out

        return (
            make_result(compute, ctx.src_shape, grad.dtype, (grad,)),
            None,
            None,
            None,
        )


class _Transpose(Function):
    @staticmethod
    def forward(ctx, a: Tensor, dim0: int, dim1: int) -> Tensor:
        ctx.dims = (dim0, dim1)
        shape = list(a.shape)
        shape[dim0], shape[dim1] = shape[dim1], shape[dim0]
        cost = KernelCost(bytes_moved=2 * a.nbytes)
        return make_result(
            lambda: np.swapaxes(a._np, dim0, dim1).copy(),
            tuple(shape),
            a.dtype,
            (a,),
            cost=cost,
        )

    @staticmethod
    def backward(ctx, grad: Tensor):
        dim0, dim1 = ctx.dims
        return transpose(grad, dim0, dim1), None, None


class _Permute(Function):
    @staticmethod
    def forward(ctx, a: Tensor, dims: tuple[int, ...]) -> Tensor:
        if sorted(dims) != list(range(a.ndim)):
            raise ValueError(f"invalid permutation {dims} for {a.ndim}-D tensor")
        ctx.dims = dims
        shape = tuple(a.shape[d] for d in dims)
        cost = KernelCost(bytes_moved=2 * a.nbytes)
        return make_result(
            lambda: np.transpose(a._np, dims).copy(), shape, a.dtype, (a,), cost=cost
        )

    @staticmethod
    def backward(ctx, grad: Tensor):
        inverse = [0] * len(ctx.dims)
        for i, d in enumerate(ctx.dims):
            inverse[d] = i
        return permute(grad, tuple(inverse)), None


class _Expand(Function):
    @staticmethod
    def forward(ctx, a: Tensor, shape: tuple[int, ...]) -> Tensor:
        ctx.src_shape = a.shape
        cost = KernelCost(bytes_moved=a.nbytes + math.prod(shape) * a.dtype.itemsize)
        return make_result(
            lambda: np.broadcast_to(a._np, shape).copy(), shape, a.dtype, (a,), cost=cost
        )

    @staticmethod
    def backward(ctx, grad: Tensor):
        from repro.ops._helpers import sum_to_shape

        return sum_to_shape(grad, ctx.src_shape), None


class _GetItemCopy(Function):
    """Fancy-indexed gather (functional mode only)."""

    @staticmethod
    def forward(ctx, a: Tensor, index) -> Tensor:
        ctx.src_shape = a.shape
        ctx.index = index
        result = a._np[index]
        return make_result(lambda: result, result.shape, a.dtype, (a,))

    @staticmethod
    def backward(ctx, grad: Tensor):
        index = ctx.index

        def compute():
            out = np.zeros(ctx.src_shape, dtype=grad.dtype.np_dtype)
            np.add.at(out, index, grad._np)
            return out

        return make_result(compute, ctx.src_shape, grad.dtype, (grad,)), None


def _resolve_shape(shape: tuple[int, ...], numel: int) -> tuple[int, ...]:
    shape = tuple(int(s) for s in shape)
    if shape.count(-1) > 1:
        raise ValueError("only one dimension may be -1")
    if -1 in shape:
        known = -math.prod(shape)
        if known == 0 or numel % known:
            raise ValueError(f"cannot infer -1 for numel {numel} in shape {shape}")
        shape = tuple(numel // known if s == -1 else s for s in shape)
    return shape


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def view(a: Tensor, shape: tuple[int, ...]) -> Tensor:
    return _View.apply(a, tuple(shape))


def split(a: Tensor, split_size_or_sections, dim: int = 0):
    if dim != 0:
        raise ValueError("split is supported on dim 0 only")
    if isinstance(split_size_or_sections, int):
        size = split_size_or_sections
        total = a.shape[0]
        sections = [size] * (total // size)
        if total % size:
            sections.append(total % size)
        sections = tuple(sections)
    else:
        sections = tuple(int(s) for s in split_size_or_sections)
    return _Split.apply(a, sections)


def narrow(a: Tensor, dim: int, start: int, length: int) -> Tensor:
    return _Narrow.apply(a, dim, start, length)


def cat(tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    return _Cat.apply(*tensors, dim)


def transpose(a: Tensor, dim0: int, dim1: int) -> Tensor:
    dim0 = dim0 % a.ndim
    dim1 = dim1 % a.ndim
    return _Transpose.apply(a, dim0, dim1)


def permute(a: Tensor, dims: tuple[int, ...]) -> Tensor:
    return _Permute.apply(a, tuple(d % a.ndim for d in dims))


def expand(a: Tensor, shape: tuple[int, ...]) -> Tensor:
    return _Expand.apply(a, tuple(shape))


def getitem(a: Tensor, index):
    if isinstance(index, int):
        if index < 0:
            index += a.shape[0]
        return narrow(a, 0, index, 1).view(*a.shape[1:])
    if isinstance(index, slice):
        start, stop, step = index.indices(a.shape[0])
        if step == 1:
            return narrow(a, 0, start, stop - start)
    return _GetItemCopy.apply(a, index)


def pad_right(a: Tensor, padding: int) -> Tensor:
    """Right-pad a 1-D tensor with zeros (FlatParameter padding)."""
    if a.ndim != 1:
        raise ValueError("pad_right expects a 1-D tensor")
    if padding < 0:
        raise ValueError("padding must be non-negative")
    if padding == 0:
        return a
    from repro.tensor import zeros

    return cat([a, zeros(padding, dtype=a.dtype, device=a.device)], 0)
