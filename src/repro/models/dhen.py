"""DHEN — Deep and Hierarchical Ensemble Network recommendation model.

The paper's recommendation workload (Sections 5.1, 5.4): 768B *sparse*
parameters (embedding tables) and 550M *dense* parameters.  Sparse
tables are sharded row-wise across ranks outside FSDP (the standard
recommendation-model setup); their lookups cost an all-to-all exchange
per iteration.  The dense DHEN stack — layers that ensemble an
attention module and an MLP module over the feature embeddings — is
what FSDP shards, and QPS (samples/GPU/second) is the reported metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import nn, ops
from repro.distributed import ProcessGroup
from repro.models.transformer import MultiHeadAttention
from repro.nn import functional as F
from repro.tensor import Tensor

__all__ = ["DhenConfig", "DHEN", "DHEN_TINY", "DHEN_PAPER"]


@dataclass(frozen=True)
class DhenConfig:
    num_features: int            # sparse feature slots per sample
    sparse_rows_total: int       # total embedding rows across all tables
    sparse_dim: int              # embedding dimension
    num_dense_features: int      # dense (float) input features
    d_model: int                 # width of the interaction stack
    num_layers: int              # DHEN layers
    num_heads: int
    d_ff: int
    checkpoint_blocks: bool = False

    @property
    def sparse_params(self) -> int:
        return self.sparse_rows_total * self.sparse_dim

    @property
    def dense_params_approx(self) -> int:
        d = self.d_model
        attn = 4 * d * d
        mlp = 2 * d * self.d_ff
        combine = 2 * d * d
        per_layer = attn + mlp + combine
        proj = self.sparse_dim * d + self.num_dense_features * d
        head = d * self.num_features
        return self.num_layers * per_layer + proj + head


DHEN_TINY = DhenConfig(
    num_features=8,
    sparse_rows_total=1024,
    sparse_dim=16,
    num_dense_features=12,
    d_model=32,
    num_layers=2,
    num_heads=2,
    d_ff=64,
)

#: The paper's production-scale config: 768B sparse + ~550M dense.
DHEN_PAPER = DhenConfig(
    num_features=128,
    sparse_rows_total=6_000_000_000,  # x 128 dims = 768B sparse params
    sparse_dim=128,
    num_dense_features=1024,
    d_model=1024,
    num_layers=24,
    num_heads=16,
    d_ff=8192,
    checkpoint_blocks=True,
)


class DhenLayer(nn.Module):
    """One DHEN layer: ensemble of attention and MLP interaction modules."""

    def __init__(self, config: DhenConfig, device=None, dtype=None):
        super().__init__()
        kwargs = {}
        if device is not None:
            kwargs["device"] = device
        if dtype is not None:
            kwargs["dtype"] = dtype
        d = config.d_model
        self.norm = nn.LayerNorm(d, **kwargs)
        self.attention = MultiHeadAttention(
            d, config.num_heads, device=device, dtype=dtype
        )
        self.mlp = nn.Sequential(
            nn.Linear(d, config.d_ff, **kwargs),
            nn.ReLU(),
            nn.Linear(config.d_ff, d, **kwargs),
        )
        self.combine = nn.Linear(2 * d, d, **kwargs)

    def forward(self, x: Tensor) -> Tensor:
        normed = self.norm(x)
        attended = self.attention(normed)
        mixed = self.mlp(normed)
        ensemble = ops.cat([attended, mixed], dim=-1)
        return x + self.combine(ensemble)


class DHEN(nn.Module):
    """DHEN with rank-local sparse shards and an FSDP-shardable dense stack.

    Args:
        config: model geometry.
        sparse_group: process group used for the per-iteration sparse
            all-to-all (usually the default group); None disables the
            exchange (single-rank functional runs).
        local_sparse_rows: rows actually *materialized* per rank — the
            functional stand-in for the paper's 768B-row tables, which
            no single host could hold.  Costs are accounted for the
            full ``config`` geometry regardless.
    """

    def __init__(
        self,
        config: DhenConfig,
        sparse_group: Optional[ProcessGroup] = None,
        local_sparse_rows: Optional[int] = None,
        device=None,
        dtype=None,
    ):
        super().__init__()
        self.config = config
        self.sparse_group = sparse_group
        kwargs = {}
        if device is not None:
            kwargs["device"] = device
        if dtype is not None:
            kwargs["dtype"] = dtype
        world = sparse_group.world_size if sparse_group is not None else 1
        rows = local_sparse_rows
        if rows is None:
            rows = max(1, config.sparse_rows_total // world)
        self.local_rows = rows
        self.sparse_table = nn.Embedding(rows, config.sparse_dim, **kwargs)
        self.dense_proj = nn.Linear(config.num_dense_features, config.d_model, **kwargs)
        self.feature_proj = nn.Linear(config.sparse_dim, config.d_model, **kwargs)
        self.layers = nn.ModuleList(
            DhenLayer(config, device=device, dtype=dtype) for _ in range(config.num_layers)
        )
        self.head = nn.Linear(config.d_model * config.num_features, 1, **kwargs)

    def dense_stack(self) -> nn.Module:
        """The FSDP-shardable dense part (projections + layers + head)."""
        stack = nn.Module()
        stack.dense_proj = self.dense_proj
        stack.feature_proj = self.feature_proj
        stack.layers = self.layers
        stack.head = self.head
        return stack

    def forward(self, sparse_ids: Tensor, dense_features: Tensor) -> Tensor:
        """``sparse_ids``: (B, num_features) int64; ``dense``: (B, D_in)."""
        batch = sparse_ids.shape[0]
        config = self.config
        embedded = self.sparse_table(sparse_ids)  # (B, F, sparse_dim)
        if self.sparse_group is not None and self.sparse_group.world_size > 1:
            payload = batch * config.num_features * config.sparse_dim * embedded.dtype.itemsize
            self.sparse_group.all_to_all_bytes(payload).wait(
                self.sparse_group.device.default_stream
            )
        features = self.feature_proj(embedded)  # (B, F, d_model)
        dense = self.dense_proj(dense_features).view(batch, 1, config.d_model)
        x = features + dense
        for layer in self.layers:
            if config.checkpoint_blocks:
                x = nn.checkpoint(layer, x)
            else:
                x = layer(x)
        flat = x.view(batch, config.d_model * config.num_features)
        return self.head(flat).view(batch)

    def predict(self, sparse_ids: Tensor, dense_features: Tensor) -> Tensor:
        """Inference entry point: CTR probabilities under ``no_grad``.

        This is what a serving replica calls per batch — no autograd
        graph, no gradient buffers, and (under FSDP) no ReduceScatter:
        the runtime reshards immediately after the forward.
        """
        from repro.autograd.grad_mode import no_grad

        with no_grad():
            return F.sigmoid(self.forward(sparse_ids, dense_features))

    def loss(self, sparse_ids: Tensor, dense_features: Tensor, labels: Tensor) -> Tensor:
        """Binary cross entropy with logits (CTR prediction)."""
        logits = self.forward(sparse_ids, dense_features)
        probs = F.sigmoid(logits)
        eps = 1e-7
        one = _scalar(1.0, probs)
        safe = ops.maximum(probs, _scalar(eps, probs))
        safe_inv = ops.maximum(ops.sub(one, probs), _scalar(eps, probs))
        loss = ops.add(
            ops.mul(labels, ops.log(safe)),
            ops.mul(ops.sub(one, labels), ops.log(safe_inv)),
        )
        return ops.neg(ops.mean(loss))


def _scalar(value: float, like: Tensor):
    import numpy as np

    from repro.tensor import tensor

    return tensor(
        np.asarray(value, dtype=like.dtype.np_dtype), dtype=like.dtype, device=like.device
    )
