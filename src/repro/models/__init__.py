"""Evaluation models: the workloads of the paper's Section 5."""

from repro.models.deepvit import DEEPVIT_8B, DEEPVIT_TINY, DeepViT, DeepViTConfig
from repro.models.dhen import DHEN, DHEN_PAPER, DHEN_TINY, DhenConfig
from repro.models.mingpt import GPT3_175B, GPT_MEDIUM_SIM, GPT_TINY, GptConfig, MinGPT
from repro.models.regnet import REGNET_9B, REGNET_TINY, RegNet, RegNetConfig
from repro.models.t5 import T5_11B, T5_2B, T5_611M, T5_TINY, T5Config, T5Model
from repro.models.transformer import FeedForward, MultiHeadAttention, TransformerBlock

__all__ = [
    "TransformerBlock",
    "MultiHeadAttention",
    "FeedForward",
    "MinGPT",
    "GptConfig",
    "GPT_TINY",
    "GPT3_175B",
    "GPT_MEDIUM_SIM",
    "T5Model",
    "T5Config",
    "T5_TINY",
    "T5_611M",
    "T5_2B",
    "T5_11B",
    "DHEN",
    "DhenConfig",
    "DHEN_TINY",
    "DHEN_PAPER",
    "RegNet",
    "RegNetConfig",
    "REGNET_TINY",
    "REGNET_9B",
    "DeepViT",
    "DeepViTConfig",
    "DEEPVIT_TINY",
    "DEEPVIT_8B",
]
