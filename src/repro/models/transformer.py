"""Shared transformer building blocks for the evaluation models."""

from __future__ import annotations

import math
from typing import Optional

from repro import nn, ops
from repro.nn import functional as F
from repro.tensor import Tensor

__all__ = ["MultiHeadAttention", "TransformerBlock", "FeedForward"]


class MultiHeadAttention(nn.Module):
    """Multi-head attention with an optionally wider inner dimension.

    ``inner_dim`` decouples the attention width from the model width —
    T5-11B uses 128 heads of 128 dims over a 1024-wide residual stream.
    ``reattention`` adds DeepViT's head-mixing transform.
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        head_dim: Optional[int] = None,
        dropout: float = 0.0,
        causal: bool = False,
        reattention: bool = False,
        device=None,
        dtype=None,
    ):
        super().__init__()
        kwargs = {}
        if device is not None:
            kwargs["device"] = device
        if dtype is not None:
            kwargs["dtype"] = dtype
        head_dim = head_dim or d_model // num_heads
        inner = num_heads * head_dim
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.causal = causal
        self.dropout = dropout
        self.q_proj = nn.Linear(d_model, inner, bias=False, **kwargs)
        self.k_proj = nn.Linear(d_model, inner, bias=False, **kwargs)
        self.v_proj = nn.Linear(d_model, inner, bias=False, **kwargs)
        self.out_proj = nn.Linear(inner, d_model, bias=False, **kwargs)
        if reattention:
            # DeepViT re-attention: a learned mixing across heads.
            self.reattn = nn.Linear(num_heads, num_heads, bias=False, **kwargs)
        else:
            self.reattn = None

    def _shape_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        x = x.view(batch, seq, self.num_heads, self.head_dim)
        return ops.permute(x, (0, 2, 1, 3))

    def forward(self, x: Tensor, context: Optional[Tensor] = None) -> Tensor:
        batch, seq, _ = x.shape
        source = context if context is not None else x
        src_len = source.shape[1]
        q = self._shape_heads(self.q_proj(x), batch, seq)
        k = self._shape_heads(self.k_proj(source), batch, src_len)
        v = self._shape_heads(self.v_proj(source), batch, src_len)

        mask = None
        if self.causal and context is None:
            mask = F.causal_mask(seq, device=x.device)

        if self.reattn is None:
            attended = F.scaled_dot_product_attention(
                q, k, v, attn_mask=mask, dropout_p=self.dropout, training=self.training
            )
        else:
            scores = ops.matmul(q, ops.transpose(k, -2, -1))
            scores = ops.mul(scores, _scalar(1.0 / math.sqrt(self.head_dim), scores))
            if mask is not None:
                scores = ops.masked_fill(scores, mask, -1e9)
            weights = ops.softmax(scores, dim=-1)
            # Mix attention maps across heads: (B, H, T, S) viewed with
            # heads last for the linear transform, then restored.
            mixed = ops.permute(weights, (0, 2, 3, 1))
            mixed = self.reattn(mixed)
            weights = ops.permute(mixed, (0, 3, 1, 2))
            if self.dropout:
                weights = ops.dropout(weights, self.dropout, training=self.training)
            attended = ops.matmul(weights, v)

        merged = ops.permute(attended, (0, 2, 1, 3)).view(
            batch, seq, self.num_heads * self.head_dim
        )
        return self.out_proj(merged)


class FeedForward(nn.Module):
    """Two-layer MLP with GELU."""

    def __init__(self, d_model: int, d_ff: int, dropout: float = 0.0, device=None, dtype=None):
        super().__init__()
        kwargs = {}
        if device is not None:
            kwargs["device"] = device
        if dtype is not None:
            kwargs["dtype"] = dtype
        self.up = nn.Linear(d_model, d_ff, **kwargs)
        self.down = nn.Linear(d_ff, d_model, **kwargs)
        self.dropout = dropout

    def forward(self, x: Tensor) -> Tensor:
        x = F.gelu(self.up(x))
        if self.dropout:
            x = F.dropout(x, self.dropout, training=self.training)
        return self.down(x)


class TransformerBlock(nn.Module):
    """Pre-norm block: [cross-]attention + MLP with residuals."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: int,
        head_dim: Optional[int] = None,
        causal: bool = False,
        cross_attention: bool = False,
        dropout: float = 0.0,
        reattention: bool = False,
        device=None,
        dtype=None,
    ):
        super().__init__()
        kwargs = {}
        if device is not None:
            kwargs["device"] = device
        if dtype is not None:
            kwargs["dtype"] = dtype
        self.ln1 = nn.LayerNorm(d_model, **kwargs)
        self.attn = MultiHeadAttention(
            d_model,
            num_heads,
            head_dim,
            dropout=dropout,
            causal=causal,
            reattention=reattention,
            device=device,
            dtype=dtype,
        )
        if cross_attention:
            self.ln_cross = nn.LayerNorm(d_model, **kwargs)
            self.cross_attn = MultiHeadAttention(
                d_model, num_heads, head_dim, dropout=dropout, device=device, dtype=dtype
            )
        else:
            self.ln_cross = None
            self.cross_attn = None
        self.ln2 = nn.LayerNorm(d_model, **kwargs)
        self.mlp = FeedForward(d_model, d_ff, dropout=dropout, device=device, dtype=dtype)

    def forward(self, x: Tensor, context: Optional[Tensor] = None) -> Tensor:
        x = x + self.attn(self.ln1(x))
        if self.cross_attn is not None and context is not None:
            x = x + self.cross_attn(self.ln_cross(x), context=context)
        x = x + self.mlp(self.ln2(x))
        return x


def _scalar(value: float, like: Tensor):
    import numpy as np

    from repro.tensor import tensor

    return tensor(
        np.asarray(value, dtype=like.dtype.np_dtype), dtype=like.dtype, device=like.device
    )
