"""RegNet-style convolutional network (~9B parameters in Section 5.3).

A stem plus four stages of bottleneck residual blocks; widths and
depths are parameterized so the paper's 9B-parameter rate-limiter
workload can be instantiated, alongside a tiny functional config.
Convolutions dominate — few, large, compute-bound kernels, the regime
where the rate limiter is expected to be neutral.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import nn, ops
from repro.nn import functional as F
from repro.tensor import Tensor

__all__ = ["RegNetConfig", "RegNet", "REGNET_TINY", "REGNET_9B"]


@dataclass(frozen=True)
class RegNetConfig:
    stem_width: int
    stage_widths: tuple[int, ...]
    stage_depths: tuple[int, ...]
    image_size: int = 224
    in_channels: int = 3
    num_classes: int = 1000
    checkpoint_blocks: bool = False

    @property
    def approx_params(self) -> int:
        total = self.stem_width * self.in_channels * 9
        prev = self.stem_width
        for width, depth in zip(self.stage_widths, self.stage_depths):
            total += prev * width  # projection shortcut
            total += depth * (2 * width * width + 9 * width * width)
            prev = width
        total += prev * self.num_classes
        return total


REGNET_TINY = RegNetConfig(
    stem_width=8, stage_widths=(8, 16), stage_depths=(1, 1), image_size=16, num_classes=10
)

#: ~9B parameters: very wide stages, shallow depth (RegNet scaling).
REGNET_9B = RegNetConfig(
    stem_width=256,
    stage_widths=(1024, 2048, 4096, 8192),
    stage_depths=(2, 6, 14, 8),
    image_size=224,
    num_classes=1000,
    checkpoint_blocks=True,
)


class Bottleneck(nn.Module):
    """1x1 → 3x3 → 1x1 residual bottleneck with BatchNorm."""

    def __init__(self, width: int, device=None, dtype=None):
        super().__init__()
        kwargs = {}
        if device is not None:
            kwargs["device"] = device
        if dtype is not None:
            kwargs["dtype"] = dtype
        self.conv1 = nn.Conv2d(width, width, 1, bias=False, **kwargs)
        self.bn1 = nn.BatchNorm2d(width, **kwargs)
        self.conv2 = nn.Conv2d(width, width, 3, padding=1, bias=False, **kwargs)
        self.bn2 = nn.BatchNorm2d(width, **kwargs)
        self.conv3 = nn.Conv2d(width, width, 1, bias=False, **kwargs)
        self.bn3 = nn.BatchNorm2d(width, **kwargs)

    def forward(self, x: Tensor) -> Tensor:
        out = F.relu(self.bn1(self.conv1(x)))
        out = F.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        return F.relu(out + x)


class Stage(nn.Module):
    """Width transition (stride-2) followed by bottleneck blocks."""

    def __init__(self, in_width: int, width: int, depth: int, device=None, dtype=None):
        super().__init__()
        kwargs = {}
        if device is not None:
            kwargs["device"] = device
        if dtype is not None:
            kwargs["dtype"] = dtype
        self.transition = nn.Conv2d(in_width, width, 1, stride=2, bias=False, **kwargs)
        self.bn = nn.BatchNorm2d(width, **kwargs)
        self.blocks = nn.ModuleList(
            Bottleneck(width, device=device, dtype=dtype) for _ in range(depth)
        )

    def forward(self, x: Tensor) -> Tensor:
        x = F.relu(self.bn(self.transition(x)))
        for block in self.blocks:
            x = block(x)
        return x


class RegNet(nn.Module):
    def __init__(self, config: RegNetConfig, device=None, dtype=None):
        super().__init__()
        self.config = config
        kwargs = {}
        if device is not None:
            kwargs["device"] = device
        if dtype is not None:
            kwargs["dtype"] = dtype
        self.stem = nn.Conv2d(
            config.in_channels, config.stem_width, 3, stride=2, padding=1, bias=False, **kwargs
        )
        self.stem_bn = nn.BatchNorm2d(config.stem_width, **kwargs)
        stages = []
        prev = config.stem_width
        for width, depth in zip(config.stage_widths, config.stage_depths):
            stages.append(Stage(prev, width, depth, device=device, dtype=dtype))
            prev = width
        self.stages = nn.ModuleList(stages)
        self.head = nn.Linear(prev, config.num_classes, **kwargs)

    def forward(self, images: Tensor) -> Tensor:
        x = F.relu(self.stem_bn(self.stem(images)))
        for stage in self.stages:
            if self.config.checkpoint_blocks:
                x = nn.checkpoint(stage, x)
            else:
                x = stage(x)
        pooled = ops.mean(x, (2, 3))  # global average pool -> (B, C)
        return self.head(pooled)

    def loss(self, images: Tensor, labels: Tensor) -> Tensor:
        return F.cross_entropy(self.forward(images), labels)
