"""T5-style encoder-decoder transformers (Sections 5.2–5.4).

Configurations match the parameter counts the paper evaluates:
T5-611M, T5-2.28B and T5-11B.  Following the HuggingFace T5-11B
geometry, the attention inner width is decoupled from the model width
(128 heads × 128 dims over a 1024-wide stream, 65536-wide FFN).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import nn
from repro.nn import functional as F
from repro.models.transformer import TransformerBlock
from repro.tensor import Tensor

__all__ = ["T5Config", "T5Model", "T5_TINY", "T5_611M", "T5_2B", "T5_11B"]


@dataclass(frozen=True)
class T5Config:
    vocab_size: int
    d_model: int
    d_ff: int
    num_heads: int
    head_dim: int
    num_layers: int  # per stack (encoder and decoder each)
    dropout: float = 0.0
    checkpoint_blocks: bool = False

    @property
    def approx_params(self) -> int:
        inner = self.num_heads * self.head_dim
        attn = 4 * self.d_model * inner
        ff = 2 * self.d_model * self.d_ff
        encoder = self.num_layers * (attn + ff)
        decoder = self.num_layers * (2 * attn + ff)
        embed = self.vocab_size * self.d_model
        return encoder + decoder + 2 * embed


T5_TINY = T5Config(
    vocab_size=96, d_model=32, d_ff=64, num_heads=2, head_dim=16, num_layers=2
)
#: ~0.61B parameters (T5-Large-ish geometry).
T5_611M = T5Config(
    vocab_size=32128,
    d_model=1024,
    d_ff=4096,
    num_heads=16,
    head_dim=64,
    num_layers=19,
    checkpoint_blocks=True,
)
#: ~2.28B parameters (T5-XL-ish geometry).
T5_2B = T5Config(
    vocab_size=32128,
    d_model=2048,
    d_ff=8192,
    num_heads=32,
    head_dim=64,
    num_layers=18,
    checkpoint_blocks=True,
)
#: ~11.3B parameters, HuggingFace T5-11B geometry.
T5_11B = T5Config(
    vocab_size=32128,
    d_model=1024,
    d_ff=65536,
    num_heads=128,
    head_dim=128,
    num_layers=24,
    checkpoint_blocks=True,
)


class T5Model(nn.Module):
    """Encoder-decoder transformer with a shared embedding."""

    def __init__(self, config: T5Config, device=None, dtype=None):
        super().__init__()
        self.config = config
        kwargs = {}
        if device is not None:
            kwargs["device"] = device
        if dtype is not None:
            kwargs["dtype"] = dtype
        self.embedding = nn.Embedding(config.vocab_size, config.d_model, **kwargs)
        self.encoder = nn.ModuleList(
            TransformerBlock(
                config.d_model,
                config.num_heads,
                config.d_ff,
                head_dim=config.head_dim,
                dropout=config.dropout,
                device=device,
                dtype=dtype,
            )
            for _ in range(config.num_layers)
        )
        self.decoder = nn.ModuleList(
            TransformerBlock(
                config.d_model,
                config.num_heads,
                config.d_ff,
                head_dim=config.head_dim,
                causal=True,
                cross_attention=True,
                dropout=config.dropout,
                device=device,
                dtype=dtype,
            )
            for _ in range(config.num_layers)
        )
        self.final_norm = nn.LayerNorm(config.d_model, **kwargs)
        self.lm_head = nn.Linear(config.d_model, config.vocab_size, bias=False, **kwargs)

    def _run_block(self, block, x, context=None):
        if self.config.checkpoint_blocks:
            if context is None:
                return nn.checkpoint(block, x)
            return nn.checkpoint(lambda a, c: block(a, context=c), x, context)
        return block(x, context=context) if context is not None else block(x)

    def forward(self, input_ids: Tensor, decoder_input_ids: Tensor) -> Tensor:
        encoded = self.embedding(input_ids)
        for block in self.encoder:
            encoded = self._run_block(block, encoded)
        decoded = self.embedding(decoder_input_ids)
        for block in self.decoder:
            decoded = self._run_block(block, decoded, encoded)
        decoded = self.final_norm(decoded)
        return self.lm_head(decoded)

    def loss(self, input_ids: Tensor, decoder_input_ids: Tensor, labels: Tensor) -> Tensor:
        logits = self.forward(input_ids, decoder_input_ids)
        return F.cross_entropy(logits, labels)
