"""DeepViT — deep vision transformer with re-attention (~8B, Section 5.3).

Patch embedding followed by many transformer blocks whose attention
maps are mixed across heads ("re-attention", the DeepViT fix for
attention collapse in deep ViTs).  In the paper this is the
communication-dominated workload where the rate limiter *hurts* (~5%),
because delaying AllGathers directly delays dependent compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import nn
from repro.nn import functional as F
from repro.models.transformer import TransformerBlock
from repro.tensor import Tensor, zeros

__all__ = ["DeepViTConfig", "DeepViT", "DEEPVIT_TINY", "DEEPVIT_8B"]


@dataclass(frozen=True)
class DeepViTConfig:
    image_size: int
    patch_size: int
    d_model: int
    num_layers: int
    num_heads: int
    d_ff: int
    num_classes: int = 1000
    in_channels: int = 3
    checkpoint_blocks: bool = False

    @property
    def num_patches(self) -> int:
        return (self.image_size // self.patch_size) ** 2

    @property
    def approx_params(self) -> int:
        per_block = 4 * self.d_model**2 + 2 * self.d_model * self.d_ff
        patch = self.in_channels * self.patch_size**2 * self.d_model
        return self.num_layers * per_block + patch + self.d_model * self.num_classes


DEEPVIT_TINY = DeepViTConfig(
    image_size=16, patch_size=4, d_model=32, num_layers=2, num_heads=2, d_ff=64, num_classes=10
)

#: ~8B parameters: 56 wide re-attention blocks.
DEEPVIT_8B = DeepViTConfig(
    image_size=224,
    patch_size=16,
    d_model=3456,
    num_layers=56,
    num_heads=32,
    d_ff=13824,
    checkpoint_blocks=True,
)


class DeepViT(nn.Module):
    def __init__(self, config: DeepViTConfig, device=None, dtype=None):
        super().__init__()
        self.config = config
        kwargs = {}
        if device is not None:
            kwargs["device"] = device
        if dtype is not None:
            kwargs["dtype"] = dtype
        self.patch_embed = nn.Conv2d(
            config.in_channels,
            config.d_model,
            config.patch_size,
            stride=config.patch_size,
            **kwargs,
        )
        self.pos_emb = nn.Parameter(
            zeros(1, config.num_patches, config.d_model, **kwargs)
        )
        self.blocks = nn.ModuleList(
            TransformerBlock(
                config.d_model,
                config.num_heads,
                config.d_ff,
                reattention=True,
                device=device,
                dtype=dtype,
            )
            for _ in range(config.num_layers)
        )
        self.norm = nn.LayerNorm(config.d_model, **kwargs)
        self.head = nn.Linear(config.d_model, config.num_classes, **kwargs)

    def forward(self, images: Tensor) -> Tensor:
        from repro import ops

        patches = self.patch_embed(images)  # (B, C, P, P)
        batch, channels = patches.shape[0], patches.shape[1]
        num_patches = patches.shape[2] * patches.shape[3]
        x = ops.permute(patches.view(batch, channels, num_patches), (0, 2, 1))
        x = x + self.pos_emb.view(self.config.num_patches, -1).view(
            1, self.config.num_patches, self.config.d_model
        )
        for block in self.blocks:
            if self.config.checkpoint_blocks:
                x = nn.checkpoint(block, x)
            else:
                x = block(x)
        x = self.norm(x)
        pooled = ops.mean(x, 1)  # (B, d_model)
        return self.head(pooled)

    def loss(self, images: Tensor, labels: Tensor) -> Tensor:
        return F.cross_entropy(self.forward(images), labels)
