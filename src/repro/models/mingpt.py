"""minGPT — the decoder-only transformer of the 175B experiments.

Configurations follow Karpathy's minGPT [9]; ``gpt3_175b`` matches the
paper's Section 5.4 setup (vocab 50000, block size 2048).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import nn
from repro.nn import functional as F
from repro.models.transformer import TransformerBlock
from repro.tensor import Tensor, zeros

__all__ = ["GptConfig", "MinGPT", "GPT_TINY", "GPT3_175B", "GPT_MEDIUM_SIM"]


@dataclass(frozen=True)
class GptConfig:
    vocab_size: int
    block_size: int
    n_layer: int
    n_head: int
    n_embd: int
    dropout: float = 0.0
    checkpoint_blocks: bool = False

    @property
    def approx_params(self) -> int:
        per_block = 12 * self.n_embd**2
        embeddings = self.vocab_size * self.n_embd + self.block_size * self.n_embd
        head = self.vocab_size * self.n_embd
        return self.n_layer * per_block + embeddings + head


GPT_TINY = GptConfig(vocab_size=128, block_size=32, n_layer=2, n_head=2, n_embd=32)
#: The paper's large model: ~175B parameters.
GPT3_175B = GptConfig(
    vocab_size=50000,
    block_size=2048,
    n_layer=96,
    n_head=96,
    n_embd=12288,
    checkpoint_blocks=True,
)
#: A mid-size config for faster simulator sweeps (~2.8B parameters).
GPT_MEDIUM_SIM = GptConfig(
    vocab_size=50000, block_size=1024, n_layer=24, n_head=16, n_embd=3072,
    checkpoint_blocks=True,
)


class MinGPT(nn.Module):
    """GPT: token+position embeddings, causal blocks, tied-width head."""

    def __init__(self, config: GptConfig, device=None, dtype=None):
        super().__init__()
        self.config = config
        kwargs = {}
        if device is not None:
            kwargs["device"] = device
        if dtype is not None:
            kwargs["dtype"] = dtype
        self.tok_emb = nn.Embedding(config.vocab_size, config.n_embd, **kwargs)
        self.pos_emb = nn.Parameter(
            zeros(1, config.block_size, config.n_embd, **kwargs)
        )
        self.blocks = nn.ModuleList(
            TransformerBlock(
                config.n_embd,
                config.n_head,
                4 * config.n_embd,
                causal=True,
                dropout=config.dropout,
                device=device,
                dtype=dtype,
            )
            for _ in range(config.n_layer)
        )
        self.ln_f = nn.LayerNorm(config.n_embd, **kwargs)
        self.head = nn.Linear(config.n_embd, config.vocab_size, bias=False, **kwargs)

    def forward(self, idx: Tensor) -> Tensor:
        batch, seq = idx.shape
        if seq > self.config.block_size:
            raise ValueError(f"sequence length {seq} exceeds block size")
        x = self.tok_emb(idx)
        # Slice positions [0, seq): pos_emb is (1, block, C).
        pos_slice = self.pos_emb.view(self.config.block_size, -1).narrow(0, 0, seq)
        x = x + pos_slice.view(1, seq, -1)
        for block in self.blocks:
            if self.config.checkpoint_blocks:
                x = nn.checkpoint(block, x)
            else:
                x = block(x)
        x = self.ln_f(x)
        return self.head(x)

    def loss(self, idx: Tensor, targets: Tensor) -> Tensor:
        logits = self.forward(idx)
        return F.cross_entropy(logits, targets)

    def generate(self, idx: Tensor, max_new_tokens: int, temperature: float = 1.0) -> Tensor:
        """Greedy/temperature sampling of ``max_new_tokens`` continuations.

        ``temperature <= 0`` selects the argmax (greedy decoding).
        Works with FSDP via ``summon_full_params`` or a normal forward.
        """
        import numpy as np

        from repro import ops
        from repro.autograd import no_grad
        from repro.tensor import cat, tensor

        from repro import random as rrandom

        with no_grad():
            for _ in range(max_new_tokens):
                window = idx
                if idx.shape[1] > self.config.block_size:
                    start = idx.shape[1] - self.config.block_size
                    # Take the trailing block for each row.
                    window = tensor(
                        idx.numpy()[:, start:], device=idx.device
                    )
                logits = self.forward(window)
                last = logits.numpy()[:, -1, :]
                if temperature <= 0:
                    next_token = last.argmax(axis=-1)
                else:
                    scaled = last / temperature
                    scaled = scaled - scaled.max(axis=-1, keepdims=True)
                    probs = np.exp(scaled)
                    probs /= probs.sum(axis=-1, keepdims=True)
                    rng = rrandom.Generator.numpy_rng(rrandom.fork_seed())
                    next_token = np.array(
                        [rng.choice(len(p), p=p) for p in probs]
                    )
                next_column = tensor(
                    next_token.reshape(-1, 1).astype(np.int64), device=idx.device
                )
                idx = cat([idx, next_column], 1)
        return idx
