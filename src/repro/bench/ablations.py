"""Ablation benches for the design choices DESIGN.md calls out.

- FlatParameter wrap granularity (one unit per block vs per N blocks
  vs whole model): the memory-throughput trade-off of Section 3.2.1.
- Rate-limiter inflight cap sweep (1/2/4/unlimited).
- Hybrid sharding factor sweep F ∈ {1, 2, 4, ..., W}.
- Gradient accumulation with vs without communication (Section 3.3.4).
"""

from __future__ import annotations

import dataclasses

from repro.bench.report import print_table
from repro.fsdp import ModuleWrapPolicy, ShardingStrategy
from repro.fsdp.mixed_precision import BF16_MIXED
from repro.models import T5_11B
from repro.models.transformer import TransformerBlock
from repro.perf import PerfResult, SimConfig, simulate_training
from repro.perf.workloads import t5_builder, t5_loss_fn

__all__ = [
    "wrap_granularity_rows",
    "rate_limit_rows",
    "sharding_factor_rows",
    "cpu_offload_rows",
    "grad_accumulation_rows",
    "main",
]


def _t5_base(name: str, world_size: int = 16, batch: int = 8, seq: int = 512) -> SimConfig:
    return SimConfig(
        name=name,
        build_model=t5_builder(T5_11B),
        make_loss=t5_loss_fn(T5_11B, batch, seq),
        batch_size=batch,
        world_size=world_size,
        auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
        mixed_precision=BF16_MIXED,
        iterations=1,
    )


def wrap_granularity_rows(world_size: int = 16) -> list[PerfResult]:
    """Sub-block units vs per-block units vs one whole-model unit.

    Finer FlatParameters lower the peak (smaller max ψ_i) but issue
    more collectives; one giant unit minimizes collectives but must
    materialize the entire model (Section 3.2.1's trade-off).
    Wrap points must be modules invoked through their own forward —
    annotating a bare ModuleList would bypass the FSDP hooks, which is
    why the fine level wraps attention/FFN sub-modules instead.
    """
    from repro.models.transformer import FeedForward, MultiHeadAttention

    results = []
    fine = dataclasses.replace(
        _t5_base("wrap: per-attn/ffn", world_size),
        auto_wrap_policy=ModuleWrapPolicy({MultiHeadAttention, FeedForward}),
    )
    results.append(simulate_training(fine))
    per_block = _t5_base("wrap: per-block", world_size)
    results.append(simulate_training(per_block))
    whole = dataclasses.replace(per_block, name="wrap: whole-model", auto_wrap_policy=None)
    results.append(simulate_training(whole))
    return results


def rate_limit_rows(world_size: int = 16, batch: int = 2) -> list[PerfResult]:
    """Inflight AllGather cap: 1, 2 (the paper's choice), 4, unlimited."""
    results = []
    base = _t5_base("", world_size, batch=batch)
    for cap, label in ((1, "limit=1"), (2, "limit=2"), (4, "limit=4"), (0, "unlimited")):
        config = dataclasses.replace(
            base,
            name=f"rate limiter {label}",
            limit_all_gathers=cap > 0,
            rate_limit_inflight=max(cap, 1),
        )
        results.append(simulate_training(config))
    return results


def sharding_factor_rows(world_size: int = 64, batch: int = 8) -> list[PerfResult]:
    """Hybrid sharding factor sweep: F=W (full) down to F=8 (one host)."""
    results = []
    base = _t5_base("", world_size, batch=batch)
    full = dataclasses.replace(base, name=f"F={world_size} (full shard)")
    results.append(simulate_training(full))
    factor = world_size // 2
    while factor >= 8:
        config = dataclasses.replace(
            base,
            name=f"F={factor} (hybrid)",
            sharding_strategy=ShardingStrategy.HYBRID_SHARD,
            sharding_factor=factor,
        )
        results.append(simulate_training(config))
        factor //= 2
    return results


def cpu_offload_rows(world_size: int = 8, batch: int = 8) -> list[PerfResult]:
    """CPU parameter offloading: device-memory relief for PCIe copies.

    The per-unshard H2D copy and per-reduction D2H copy appear on the
    communication stream (here they hide under compute); the host-side
    optimizer step is *not* costed — in deployment it is the offload
    recipe's main slowdown.  The demonstrated effect is the device
    memory drop (params, grads and optimizer state leave the device).
    """
    results = []
    base = _t5_base("", world_size, batch=batch)
    plain = dataclasses.replace(base, name="params on device")
    results.append(simulate_training(plain))
    offloaded = dataclasses.replace(
        base, name="params offloaded to CPU", cpu_offload=True
    )
    results.append(simulate_training(offloaded))
    return results


def grad_accumulation_rows(
    world_size: int = 16, batch: int = 4, accumulate: int = 4
) -> list[PerfResult]:
    """§3.3.4: accumulation with vs without communication.

    ``no_sync`` skips per-microbatch reduction — less communication,
    but each rank holds *unsharded* gradients across microbatches.
    """
    results = []
    base = _t5_base("", world_size, batch=batch)
    no_accum = dataclasses.replace(base, name="no accumulation")
    results.append(simulate_training(no_accum))
    with_comm = dataclasses.replace(
        base,
        name=f"accumulate x{accumulate} (with communication)",
        accumulate_steps=accumulate,
    )
    results.append(simulate_training(with_comm))
    without_comm = dataclasses.replace(
        base,
        name=f"accumulate x{accumulate} (no_sync)",
        accumulate_steps=accumulate,
        accumulate_no_sync=True,
    )
    results.append(simulate_training(without_comm))
    return results


def main() -> None:
    for title, rows in (
        ("Ablation: FlatParameter wrap granularity (T5-11B, 16 GPUs)", wrap_granularity_rows()),
        ("Ablation: rate-limiter inflight cap (T5-11B, 16 GPUs)", rate_limit_rows()),
        ("Ablation: sharding factor F (T5-11B, 64 GPUs)", sharding_factor_rows()),
        ("Ablation: CPU parameter offloading (T5-11B, 8 GPUs)", cpu_offload_rows()),
        ("Ablation: gradient accumulation (T5-11B, 16 GPUs, 4 microbatches)", grad_accumulation_rows()),
    ):
        print_table(
            title,
            ["config", "TFLOPS/GPU", "latency", "alloc GiB", "reserved GiB", "retries", "collectives"],
            [
                (
                    r.name,
                    "OOM" if r.oom else f"{r.tflops_per_gpu:.1f}",
                    "-" if r.oom else f"{r.iteration_latency * 1e3:.0f}ms",
                    "-" if r.oom else f"{r.peak_allocated_gib:.1f}",
                    "-" if r.oom else f"{r.peak_reserved_gib:.1f}",
                    r.num_alloc_retries,
                    r.collectives,
                )
                for r in rows
            ],
        )


if __name__ == "__main__":
    main()
