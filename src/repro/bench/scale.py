"""Shared large-scale sweeps for Figures 7 and 8.

Figure 7 reports throughput (QPS for DHEN, TFLOPS/GPU for GPT-175B and
T5-11B); Figure 8 reports the peak-memory series of the same runs.
Each sweep returns :class:`PerfResult` rows carrying both.
"""

from __future__ import annotations

from repro.fsdp import ModuleWrapPolicy, ShardingStrategy
from repro.fsdp.mixed_precision import BF16_MIXED
from repro.models import DHEN_PAPER, GPT3_175B, T5_11B
from repro.models.dhen import DhenLayer
from repro.models.transformer import TransformerBlock
from repro.perf import PerfResult, SimConfig, simulate_training
from repro.perf.workloads import (
    dhen_builder,
    dhen_ignored_modules,
    dhen_loss_fn,
    gpt_builder,
    gpt_loss_fn,
    t5_builder,
    t5_loss_fn,
)

__all__ = ["dhen_sweep", "gpt175b_sweep", "t5_11b_sweep", "DHEN_STRATEGIES"]

#: The four DHEN configurations of Figures 7(a)/8(a): full or hybrid
#: sharding, resharding after forward (RAF) or not (NRAF).
DHEN_STRATEGIES = (
    ("FullShard RAF", ShardingStrategy.FULL_SHARD),
    ("FullShard NRAF", ShardingStrategy.SHARD_GRAD_OP),
    ("HybridShard RAF", ShardingStrategy.HYBRID_SHARD),
    ("HybridShard NRAF", ShardingStrategy.HYBRID_SHARD_ZERO2),
)


def dhen_sweep(
    world_sizes: tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512),
    global_batch: int = 1024,
    iterations: int = 1,
) -> list[PerfResult]:
    """DHEN with the paper's global batch of 1024 split across GPUs.

    Shrinking per-GPU batches make communication progressively more
    prominent, which is what separates the four sharding
    configurations at scale (Figure 7(a)).
    """
    results = []
    for label, strategy in DHEN_STRATEGIES:
        for world in world_sizes:
            batch = max(1, global_batch // world)
            results.append(
                simulate_training(
                    SimConfig(
                        name=f"DHEN {label}",
                        build_model=dhen_builder(DHEN_PAPER),
                        make_loss=dhen_loss_fn(DHEN_PAPER, batch),
                        batch_size=batch,
                        world_size=world,
                        sharding_strategy=strategy,
                        auto_wrap_policy=ModuleWrapPolicy({DhenLayer}),
                        mixed_precision=BF16_MIXED,
                        ignored_modules_of=dhen_ignored_modules,
                        iterations=iterations,
                        warmup=3,
                    )
                )
            )
    return results


def gpt175b_sweep(
    world_sizes: tuple[int, ...] = (128, 192, 256, 384, 512),
    batch_sizes: tuple[int, ...] = (1, 2),
    seq: int = 2048,
    iterations: int = 1,
) -> list[PerfResult]:
    results = []
    for batch in batch_sizes:
        for world in world_sizes:
            results.append(
                simulate_training(
                    SimConfig(
                        name=f"GPT-175B bs={batch}",
                        build_model=gpt_builder(GPT3_175B),
                        make_loss=gpt_loss_fn(GPT3_175B, batch, seq),
                        batch_size=batch,
                        world_size=world,
                        auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
                        mixed_precision=BF16_MIXED,
                        iterations=iterations,
                        warmup=2,
                    )
                )
            )
    return results


def t5_11b_sweep(
    world_sizes: tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512),
    batch_sizes: tuple[int, ...] = (8, 16),
    seq: int = 512,
    iterations: int = 1,
) -> list[PerfResult]:
    results = []
    for batch in batch_sizes:
        for world in world_sizes:
            results.append(
                simulate_training(
                    SimConfig(
                        name=f"T5-11B bs={batch}",
                        build_model=t5_builder(T5_11B),
                        make_loss=t5_loss_fn(T5_11B, batch, seq),
                        batch_size=batch,
                        world_size=world,
                        auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
                        mixed_precision=BF16_MIXED,
                        iterations=iterations,
                        warmup=2,
                    )
                )
            )
    return results
