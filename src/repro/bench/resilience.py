"""Resilience bench: checkpoint-free peer healing vs. checkpoint restart.

Runs the real-data elastic loop (``train_elastic``) under deterministic
crash schedules and compares the two recovery modes at the same fault
schedule:

- **restore** — every restart rewinds the whole world to the latest
  verified-good checkpoint (read at 5 GiB/s + CRC verify at 10 GiB/s
  for every rank's shard) and replays the lost iterations;
- **heal** — hybrid sharding only: survivors keep their live state and
  each failed rank adopts a surviving replicate-group peer's shards
  over a 25 GiB/s link, so recovery cost scales with *one* rank's
  state and no completed iteration is replayed.

The sweep crosses fault rate (one vs. two crashes) with replication
factor (sharding factor F at world size W: F=2 leaves W/F=2 replicas
per shard; F=W is FULL_SHARD-like — no replica survives a failure, so
``recovery="heal"`` must fall back to the checkpoint store).

Writes ``BENCH_resilience.json``; ``benchmarks/test_resilience.py``
asserts the headline claim (heal strictly cheaper than restore at the
same schedule) off this artifact.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

import repro
from repro import nn
from repro.bench.report import fmt_seconds, print_table
from repro.distributed import FaultEvent, FaultKind, FaultSchedule
from repro.fsdp import (
    FullyShardedDataParallel as FSDP,
    ModuleWrapPolicy,
    ShardingStrategy,
)
from repro.perf.trainer import train_elastic
from repro.tensor import tensor

__all__ = ["bench_point", "main", "ARTIFACT", "WORLD", "FACTORS"]

ARTIFACT = pathlib.Path("BENCH_resilience.json")

WORLD = 4
#: Sharding factors swept: F=2 keeps a surviving replica per shard
#: (healable), F=4 shards across the full world (heal must fall back).
FACTORS = (2, 4)
ITERATIONS = 8
CHECKPOINT_EVERY = 2
D = 32

#: Fault campaigns: name -> crash events (rank, iteration).
CAMPAIGNS = {
    "single-crash": ((1, 3),),
    "double-crash": ((1, 3), (2, 6)),
}


def _build_model():
    return nn.Sequential(nn.Linear(D, 2 * D), nn.GELU(), nn.Linear(2 * D, D))


def _make_loss(model, rank, iteration):
    rng = np.random.default_rng(9000 + 31 * iteration + rank)
    x = tensor(rng.standard_normal((4, D)).astype(np.float32))
    out = model(x)
    return (out * out).mean()


def _wrap(factor):
    strategy = (
        ShardingStrategy.FULL_SHARD
        if factor == WORLD
        else ShardingStrategy.HYBRID_SHARD
    )

    def wrap(model):
        return FSDP(
            model,
            auto_wrap_policy=ModuleWrapPolicy({nn.Linear}),
            sharding_strategy=strategy,
            sharding_factor=factor,
        )

    return wrap


def _run(*, factor, crashes=(), recovery="restore"):
    schedule = (
        FaultSchedule(
            [
                FaultEvent(kind=FaultKind.CRASH, rank=rank, iteration=iteration)
                for rank, iteration in crashes
            ]
        )
        if crashes
        else None
    )
    repro.manual_seed(1234)
    return train_elastic(
        build_model=_build_model,
        make_loss=_make_loss,
        world_size=WORLD,
        iterations=ITERATIONS,
        faults=schedule,
        wrap=_wrap(factor),
        checkpoint_every=CHECKPOINT_EVERY,
        recovery=recovery,
    )


def bench_point(campaign: str, factor: int, recovery: str) -> dict:
    """One sweep point: fault campaign × sharding factor × recovery mode."""
    baseline = _run(factor=factor)
    result = _run(factor=factor, crashes=CAMPAIGNS[campaign], recovery=recovery)
    return {
        "campaign": campaign,
        "sharding_factor": factor,
        "replicas": WORLD // factor,
        "recovery": recovery,
        "restarts": result.restarts,
        "faults_injected": result.faults_injected,
        "detection_s": result.detection_s,
        "restore_s": result.restore_s,
        "heal_s": result.heal_s,
        "replay_s": result.replay_s,
        "recovery_overhead_s": result.recovery_overhead_s,
        "recovered_iterations": result.recovered_iterations,
        "healed_restarts": len(result.healed_ranks),
        "heal_fallbacks": result.heal_fallbacks,
        "losses_match_baseline": result.losses == baseline.losses,
    }


def main(*, artifact: pathlib.Path = ARTIFACT, verbose: bool = True) -> dict:
    points = [
        bench_point(campaign, factor, recovery)
        for campaign in CAMPAIGNS
        for factor in FACTORS
        for recovery in ("restore", "heal")
    ]
    payload = {
        "world_size": WORLD,
        "iterations": ITERATIONS,
        "checkpoint_every": CHECKPOINT_EVERY,
        "campaigns": {name: list(map(list, events)) for name, events in CAMPAIGNS.items()},
        "points": points,
    }
    if verbose:
        rows = [
            (
                point["campaign"],
                f"F={point['sharding_factor']}",
                point["recovery"],
                str(point["restarts"]),
                f"{point['healed_restarts']}/{point['heal_fallbacks']}",
                fmt_seconds(point["detection_s"]),
                fmt_seconds(point["restore_s"] + point["heal_s"]),
                fmt_seconds(point["replay_s"]),
                fmt_seconds(point["recovery_overhead_s"]),
                "yes" if point["losses_match_baseline"] else "NO",
            )
            for point in points
        ]
        print_table(
            f"resilience (W={WORLD}, checkpoint every {CHECKPOINT_EVERY})",
            [
                "campaign",
                "factor",
                "recovery",
                "restarts",
                "heal/fb",
                "detect",
                "state xfer",
                "replay",
                "total ovh",
                "bitwise",
            ],
            rows,
        )
    artifact.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if verbose:
        print(f"\nwrote {artifact}")
    return payload


if __name__ == "__main__":
    main()
