"""Simulator engine speed benchmark (``BENCH_simspeed.json``).

Measures *simulated seconds per wall-clock second* — how much cluster
time one second of host CPU buys — for the paper-scale sweep workloads
at several world sizes.  Two rows are produced per workload:

- ``full_sim``: the event-by-event engine with the steady-state
  fast-forward disabled.  This is the honest per-op dispatch speed of
  the simulator core (cost-model memoization, allocator fast paths,
  tensor/op dispatch overhead).
- ``meta``: the default sweep mode — timing-only (abstract) execution
  with the trainer's steady-state fast-forward enabled, which is how
  Section 5 sweeps actually run ("losses come from the bitwise path;
  sweeps come from meta mode").

``BASELINE`` holds the same harness's numbers measured at the pre-PR
commit on the reference machine, so the JSON artifact reports speedups
against a fixed denominator.  Iteration latencies are part of the
baseline and must not move: the engine overhaul is a pure wall-clock
optimization, asserted bitwise by the benchmark suite.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from typing import Callable, Optional

from repro.fsdp import ModuleWrapPolicy
from repro.fsdp.mixed_precision import BF16_MIXED
from repro.models import GPT_MEDIUM_SIM, T5_11B
from repro.models.transformer import TransformerBlock
from repro.perf import SimConfig, simulate_training
from repro.perf.workloads import gpt_builder, gpt_loss_fn, t5_builder, t5_loss_fn

__all__ = ["BASELINE", "ITERATIONS", "bench_configs", "measure", "run_sweep", "main"]

#: Measured window per workload.  Large enough that the fast-forward
#: has iterations to skip and setup cost amortizes, small enough that
#: the full-sim rows stay tractable in CI.
ITERATIONS = 32

#: Pre-PR numbers from this exact harness (``ITERATIONS`` iterations,
#: one warmup) at the commit preceding the engine overhaul, on the
#: reference machine.  ``iteration_latency`` is simulated time and
#: machine-independent; ``ratio`` is sim-seconds-per-wall-second.
BASELINE = {
    "minGPT/ws64": {"iteration_latency": 0.20007339530645263, "ratio": 1.2836},
    "minGPT/ws512": {"iteration_latency": 0.36028901882590275, "ratio": 1.8604},
    "T5-11B/ws512": {"iteration_latency": 3.004333135421107, "ratio": 6.5252},
}


def bench_configs() -> list[tuple[str, SimConfig]]:
    """The sweep workloads: minGPT at two world sizes, T5-11B at 512."""
    policy = ModuleWrapPolicy({TransformerBlock})
    rows: list[tuple[str, SimConfig]] = []
    for world_size in (64, 512):
        rows.append(
            (
                f"minGPT/ws{world_size}",
                SimConfig(
                    name="minGPT",
                    build_model=gpt_builder(GPT_MEDIUM_SIM),
                    make_loss=gpt_loss_fn(GPT_MEDIUM_SIM, 2, 512),
                    batch_size=2,
                    world_size=world_size,
                    auto_wrap_policy=policy,
                    mixed_precision=BF16_MIXED,
                    iterations=ITERATIONS,
                    warmup=1,
                ),
            )
        )
    rows.append(
        (
            "T5-11B/ws512",
            SimConfig(
                name="T5-11B",
                build_model=t5_builder(T5_11B),
                make_loss=t5_loss_fn(T5_11B, 8, 512),
                batch_size=8,
                world_size=512,
                auto_wrap_policy=policy,
                mixed_precision=BF16_MIXED,
                iterations=ITERATIONS,
                warmup=1,
            ),
        )
    )
    return rows


def measure(config: SimConfig, *, fast_forward: bool) -> dict:
    """Run one configuration; return wall time and sim-speed ratio."""
    run = replace(config, fast_forward=fast_forward)
    start = time.perf_counter()
    result = simulate_training(run)
    wall_s = time.perf_counter() - start
    sim_s = result.iteration_latency * config.iterations
    return {
        "wall_s": wall_s,
        "iteration_latency": result.iteration_latency,
        "sim_s": sim_s,
        "ratio": sim_s / wall_s if wall_s else float("inf"),
        "fast_forwarded_iterations": result.extras.get(
            "fast_forwarded_iterations", 0
        ),
    }


def run_sweep(
    *, full_sim: bool = True, keys: Optional[list[str]] = None
) -> dict:
    """Measure every workload; returns the ``BENCH_simspeed.json`` payload.

    ``full_sim=False`` skips the (slow) fast-forward-disabled rows;
    ``keys`` restricts the sweep to specific workloads.
    """
    payload: dict = {"iterations": ITERATIONS, "workloads": {}}
    for key, config in bench_configs():
        if keys is not None and key not in keys:
            continue
        row: dict = {"world_size": config.world_size}
        row["meta"] = measure(config, fast_forward=True)
        if full_sim:
            row["full_sim"] = measure(config, fast_forward=False)
        baseline = BASELINE.get(key)
        if baseline is not None:
            row["baseline"] = dict(baseline)
            row["speedup_vs_baseline"] = row["meta"]["ratio"] / baseline["ratio"]
            if full_sim:
                row["full_sim_speedup_vs_baseline"] = (
                    row["full_sim"]["ratio"] / baseline["ratio"]
                )
        payload["workloads"][key] = row
    return payload


def main(path: str = "BENCH_simspeed.json", *, verbose: bool = True) -> dict:
    payload = run_sweep()
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    if verbose:
        for key, row in payload["workloads"].items():
            speedup = row.get("speedup_vs_baseline")
            print(
                f"{key}: meta {row['meta']['ratio']:.1f} sim-s/wall-s"
                + (
                    f" (full sim {row['full_sim']['ratio']:.2f})"
                    if "full_sim" in row
                    else ""
                )
                + (f", {speedup:.1f}x vs pre-PR" if speedup else "")
            )
    return payload


if __name__ == "__main__":
    main()
