"""Figure 5 — overlapping communication and computation, visualized.

Traces one simulated training iteration of a small transformer under
FSDP and renders the stream timelines as an ASCII Gantt chart: the
AllGathers (A) on the unshard stream running under the compute
kernels (#), the ReduceScatters (R) of backward, and the effect of
disabling backward prefetching (the paper's AG/RS serialization).
"""

from __future__ import annotations

from repro import distributed as dist
from repro.fsdp import BackwardPrefetch, FullyShardedDataParallel, ModuleWrapPolicy
from repro.fsdp.mixed_precision import BF16_MIXED
from repro.models.mingpt import GptConfig, MinGPT
from repro.models.transformer import TransformerBlock
from repro.perf.timeline import overlap_fraction, trace_device
from repro.perf.workloads import gpt_loss_fn

__all__ = ["trace_iteration", "main"]

SMALL_GPT = GptConfig(
    vocab_size=8000, block_size=256, n_layer=6, n_head=8, n_embd=1024
)


def trace_iteration(backward_prefetch: BackwardPrefetch, world_size: int = 8):
    """One traced steady-state iteration; returns (tracer, latency)."""
    dist.shutdown()
    ctx = dist.init_single_process(world_size, materialize=False)
    device = ctx.device
    from repro.fsdp.deferred_init import deferred_init

    model = deferred_init(lambda: MinGPT(SMALL_GPT))
    wrapped = FullyShardedDataParallel(
        model,
        device=device,
        auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
        mixed_precision=BF16_MIXED,
        backward_prefetch=backward_prefetch,
    )
    make_loss = gpt_loss_fn(SMALL_GPT, 8, 256)
    # Warm up, then trace one iteration.
    for _ in range(2):
        make_loss(wrapped, device).backward()
        wrapped.zero_grad()
    device.synchronize()
    tracer = trace_device(device)
    start = device.now()
    make_loss(wrapped, device).backward()
    wrapped.zero_grad()
    device.synchronize()
    latency = device.now() - start
    device.trace_hook = None
    result = (tracer, latency)
    dist.shutdown()
    return result


def main() -> None:
    for prefetch in (BackwardPrefetch.BACKWARD_PRE, BackwardPrefetch.NONE):
        tracer, latency = trace_iteration(prefetch)
        print(f"\n== Figure 5: one iteration, backward_prefetch={prefetch.value} ==")
        print(tracer.ascii_gantt(width=100))
        print(
            f"iteration {latency * 1e3:.2f} ms; "
            f"{overlap_fraction(tracer) * 100:.0f}% of communication hidden "
            "under computation"
        )


if __name__ == "__main__":
    main()
