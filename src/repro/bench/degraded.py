"""Degraded-cluster bench: throughput under injected faults.

Production FSDP runs on imperfect fleets (Sections 3.4 and 5.4):
straggler ranks, slow links, flapping collectives, memory pressure from
co-tenant processes, and outright rank crashes.  Each row trains the
same T5-11B configuration under one fault regime and reports the
throughput cost plus the recovery accounting (restarts, re-executed
iterations, recovery overhead).
"""

from __future__ import annotations

import dataclasses

from repro.bench.report import print_table
from repro.distributed import FaultEvent, FaultKind, FaultSchedule
from repro.fsdp import ModuleWrapPolicy
from repro.fsdp.mixed_precision import BF16_MIXED
from repro.models import T5_11B
from repro.models.transformer import TransformerBlock
from repro.perf import PerfResult, SimConfig, simulate_training
from repro.perf.workloads import t5_builder, t5_loss_fn

__all__ = ["degraded_rows", "main"]


def _t5_base(name: str, world_size: int = 16, batch: int = 8, seq: int = 512) -> SimConfig:
    return SimConfig(
        name=name,
        build_model=t5_builder(T5_11B),
        make_loss=t5_loss_fn(T5_11B, batch, seq),
        batch_size=batch,
        world_size=world_size,
        auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
        mixed_precision=BF16_MIXED,
        iterations=2,
        warmup=1,
    )


def degraded_rows(world_size: int = 16) -> list[PerfResult]:
    """Healthy cluster vs five fault regimes, same model and scale."""
    results = []
    results.append(simulate_training(_t5_base("healthy cluster", world_size)))

    straggler = FaultSchedule(
        [FaultEvent(kind=FaultKind.STRAGGLER, rank=0, delay_s=2e-3)]
    )
    results.append(
        simulate_training(
            dataclasses.replace(
                _t5_base("straggler rank (+2ms/collective)", world_size),
                faults=straggler,
            )
        )
    )

    slow_links = FaultSchedule(
        [
            FaultEvent(kind=FaultKind.DELAY, rank=0, duration_factor=3.0),
            FaultEvent(
                kind=FaultKind.DELAY, rank=0, delay_s=1e-3, collective_kind="all_gather"
            ),
        ]
    )
    results.append(
        simulate_training(
            dataclasses.replace(
                _t5_base("slow links (3x collectives)", world_size), faults=slow_links
            )
        )
    )

    flapping = FaultSchedule(
        [
            FaultEvent(kind=FaultKind.TRANSIENT, rank=0, collective_index=i, failures=2)
            for i in (3, 17, 41)
        ]
    )
    results.append(
        simulate_training(
            dataclasses.replace(
                _t5_base("flapping collectives (retried)", world_size), faults=flapping
            )
        )
    )

    pressure = FaultSchedule(
        [
            FaultEvent(
                kind=FaultKind.OOM_PRESSURE,
                rank=0,
                start_iteration=1,
                pressure_bytes=61 << 30,
            )
        ]
    )
    results.append(
        simulate_training(
            dataclasses.replace(
                _t5_base("memory pressure (61 GiB stolen)", world_size), faults=pressure
            )
        )
    )

    crash = FaultSchedule([FaultEvent(kind=FaultKind.CRASH, rank=0, iteration=2)])
    results.append(
        simulate_training(
            dataclasses.replace(
                _t5_base("rank crash + elastic recovery", world_size),
                faults=crash,
                elastic=True,
            )
        )
    )
    return results


def main() -> None:
    rows = degraded_rows()
    print_table(
        "Degraded cluster: T5-11B, 16 GPUs, per-fault-regime throughput",
        [
            "regime",
            "TFLOPS/GPU",
            "latency",
            "retries",
            "faults",
            "recoveries",
            "recovery ovh",
        ],
        [
            (
                r.name,
                "OOM" if r.oom else f"{r.tflops_per_gpu:.1f}",
                "-" if r.oom else f"{r.iteration_latency * 1e3:.0f}ms",
                r.num_alloc_retries,
                r.faults_injected,
                f"{r.recoveries}/{r.recovered_iterations}it",
                f"{r.recovery_overhead_s * 1e3:.1f}ms",
            )
            for r in rows
        ],
    )


if __name__ == "__main__":
    main()
