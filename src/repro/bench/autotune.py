"""Autotune evaluation: planner choice vs. exhaustive grid sweep.

For each workload, simulate *every* candidate of a restricted search
space (the grid), run the planner over the same space (predict, prune,
validate top-k), and compare the planner's chosen configuration
against the grid's best simulated latency.  The planner wins if it
finds a configuration within a few percent of the grid optimum while
simulating only ``top_k`` candidates instead of all of them.
"""

from __future__ import annotations

from typing import Optional

from repro.autotune import (
    Candidate,
    SearchSpace,
    TuneWorkload,
    evaluate_candidate,
    gpt_workload,
    plan_sharding,
    t5_workload,
)
from repro.bench.report import print_perf_table
from repro.fsdp.runtime import BackwardPrefetch
from repro.fsdp.sharding import ShardingStrategy
from repro.models.mingpt import GptConfig
from repro.models.t5 import T5Config
from repro.perf.trainer import simulate_training

__all__ = [
    "bench_gpt_workload",
    "bench_t5_workload",
    "restricted_space",
    "grid_sweep",
    "planner_vs_grid",
    "main",
]

BENCH_GPT = GptConfig(vocab_size=2048, block_size=128, n_layer=12, n_head=8, n_embd=512)
BENCH_T5 = T5Config(
    vocab_size=2048, d_model=256, d_ff=1024, num_heads=4, head_dim=64, num_layers=4
)


def bench_gpt_workload(world_size: int = 8) -> TuneWorkload:
    return gpt_workload(BENCH_GPT, batch_size=4, seq_len=128, world_size=world_size)


def bench_t5_workload(world_size: int = 8) -> TuneWorkload:
    return t5_workload(BENCH_T5, batch_size=4, seq_len=64, world_size=world_size)


def restricted_space(workload: TuneWorkload) -> SearchSpace:
    """A grid small enough to sweep exhaustively (16 candidates)."""
    return SearchSpace(
        wrap_choices=workload.wrap_choices[:2],  # whole-model, per-block
        strategies=[
            (ShardingStrategy.FULL_SHARD, None),
            (ShardingStrategy.SHARD_GRAD_OP, None),
        ],
        backward_prefetch=[BackwardPrefetch.BACKWARD_PRE, BackwardPrefetch.NONE],
        forward_prefetch=[False],
        rate_limits=[2],
        checkpointing=[False, True],
    )


def grid_sweep(workload: TuneWorkload, space: SearchSpace) -> list[tuple[Candidate, object]]:
    """Simulate every candidate; returns (candidate, PerfResult) pairs."""
    rows = []
    for candidate in space.candidates():
        plan = evaluate_candidate(workload, candidate)
        suffix = " ckpt" if candidate.checkpointing else ""
        config = workload.sim_config(
            name=f"{workload.name} grid{suffix}", checkpointing=candidate.checkpointing
        )
        config.plan = plan
        rows.append((candidate, simulate_training(config)))
    return rows


def planner_vs_grid(
    workload: TuneWorkload,
    *,
    space: Optional[SearchSpace] = None,
    top_k: int = 3,
    memory_budget: Optional[float] = None,
    verbose: bool = True,
) -> dict:
    """Run planner and grid over the same space; return the comparison."""
    if space is None:
        space = restricted_space(workload)
    result = plan_sharding(
        workload, space=space, top_k=top_k, memory_budget=memory_budget
    )
    grid = grid_sweep(workload, space)
    feasible = [
        (c, r) for c, r in grid if not r.oom
    ]
    best_candidate, best_result = min(feasible, key=lambda cr: cr[1].iteration_latency)
    chosen = result.best
    chosen_latency = (
        chosen.simulated.iteration_latency
        if chosen is not None and chosen.simulated is not None
        else float("inf")
    )
    gap = chosen_latency / best_result.iteration_latency - 1.0
    comparison = {
        "workload": workload.name,
        "grid_size": len(grid),
        "validated": len(result.validated),
        "grid_best_config": best_candidate.label(),
        "grid_best_latency_s": best_result.iteration_latency,
        "planner_config": chosen.label() if chosen is not None else None,
        "planner_latency_s": chosen_latency,
        "planner_gap": gap,
    }
    if verbose:
        print(f"\n== {workload.name}: grid of {len(grid)} vs planner (top-{top_k}) ==")
        print_perf_table("grid sweep", [r for _, r in grid])
        print(result.summary())
        print(
            f"  grid best: {best_candidate.label()} "
            f"at {best_result.iteration_latency * 1e3:.2f} ms; "
            f"planner gap {gap:+.1%} while simulating "
            f"{len(result.validated)}/{len(grid)} configurations"
        )
    return comparison


def main() -> list[dict]:
    comparisons = [
        planner_vs_grid(bench_gpt_workload()),
        planner_vs_grid(bench_t5_workload()),
    ]
    return comparisons


if __name__ == "__main__":
    main()
