"""Figure 8 — memory footprint of the large-model runs.

Prints the three series ``torch.cuda.memory_stats()`` exposes — peak
allocated, peak active and peak reserved — for the DHEN, GPT-175B and
T5-11B sweeps (the same runs as Figure 7).

Expected shapes: memory decreases as GPUs are added (smaller shards);
GPT-175B at 128 GPUs with batch size 2 pushes reserved memory to the
80GB capacity (the defragmentation case); T5-11B runs comfortably
below capacity everywhere.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.report import print_table
from repro.bench.scale import dhen_sweep, gpt175b_sweep, t5_11b_sweep
from repro.perf import PerfResult

__all__ = ["print_memory_table", "main"]


def print_memory_table(title: str, results: list[PerfResult]) -> None:
    print_table(
        title,
        ["config", "GPUs", "alloc GiB", "active GiB", "reserved GiB", "retries"],
        [
            (
                r.name,
                r.world_size,
                "OOM" if r.oom else f"{r.peak_allocated_gib:.1f}",
                "OOM" if r.oom else f"{r.peak_active_gib:.1f}",
                "OOM" if r.oom else f"{r.peak_reserved_gib:.1f}",
                r.num_alloc_retries,
            )
            for r in results
        ],
    )


def main(
    dhen: Optional[list[PerfResult]] = None,
    gpt: Optional[list[PerfResult]] = None,
    t5: Optional[list[PerfResult]] = None,
) -> None:
    dhen = dhen if dhen is not None else dhen_sweep()
    gpt = gpt if gpt is not None else gpt175b_sweep()
    t5 = t5 if t5 is not None else t5_11b_sweep()
    print_memory_table("Figure 8(a): DHEN peak memory", dhen)
    print_memory_table("Figure 8(b): GPT-175B peak memory (80GB capacity)", gpt)
    print_memory_table("Figure 8(c): T5-11B peak memory", t5)


if __name__ == "__main__":
    main()
