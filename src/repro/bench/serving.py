"""Serving-fleet bench: QPS scaling, batching policies, fault recovery.

Three experiments over a DHEN inference fleet (each replica is an
8-GPU FSDP-sharded instance whose batch latency is *measured* from the
simulator, then multiplexed by the ``repro.serve`` event loop):

1. **Replica scaling** — drive N ∈ {1, 2, 4} replicas slightly past
   capacity and report served QPS: it must scale near-linearly with N
   (each replica is an independent sharded world; the fleet adds no
   coordination collectives).
2. **Batching policies** — equal offered load (~25% of fleet
   capacity, where policy differences are starkest), three policies:
   fixed-size batching pays the batch-fill wait in tail latency;
   continuous batching serves whatever is queued the moment a replica
   frees up and wins p99 outright; the token bucket sits between.
3. **Elastic recovery** — an autoscaled fleet takes a replica crash
   mid-traffic; the autoscaler's capacity-repair path provisions a
   replacement (restore + verify at the elastic trainer's bandwidths)
   and post-recovery QPS must re-attain >= 90% of pre-fault QPS.

All offered loads are calibrated against the measured per-replica
capacity, so the assertions in ``benchmarks/test_serving.py`` hold
across cost-model changes.  Writes ``BENCH_serving.json``.
"""

from __future__ import annotations

import json
import pathlib

from repro.bench.report import print_table
from repro.distributed.fault import FaultEvent, FaultKind, FaultSchedule
from repro.models import DhenConfig
from repro.perf.workloads import dhen_builder, dhen_ignored_modules, dhen_infer_fn
from repro.serve import (
    AutoscaleConfig,
    FleetConfig,
    ReplicaSpec,
    ServiceModel,
    TrafficConfig,
    simulate_serving,
)

__all__ = ["build_service", "main", "ARTIFACT", "SERVE_DHEN"]

ARTIFACT = pathlib.Path("BENCH_serving.json")

#: Bench-sized DHEN (same structure as the paper config, minutes not
#: hours): each replica shards the dense stack over 8 simulated GPUs,
#: sparse tables stay model-parallel (unsharded by FSDP).
SERVE_DHEN = DhenConfig(
    num_features=32,
    sparse_rows_total=1_000_000,
    sparse_dim=32,
    num_dense_features=64,
    d_model=256,
    num_layers=4,
    num_heads=4,
    d_ff=1024,
)

GPUS_PER_REPLICA = 8
MAX_BATCH = 32


def build_service(
    *,
    gpus: int = GPUS_PER_REPLICA,
    max_batch: int = MAX_BATCH,
    backend: str = "flat_param",
    config: DhenConfig = SERVE_DHEN,
) -> ServiceModel:
    """Measured service model for one DHEN inference replica."""
    spec = ReplicaSpec(
        name="dhen",
        build_model=dhen_builder(config),
        make_batch=dhen_infer_fn(config),
        gpus=gpus,
        backend=backend,
        ignored_modules_of=dhen_ignored_modules,
        max_batch=max_batch,
    )
    return ServiceModel(spec).measure()


def _scaling(service: ServiceModel, *, counts, duration_s: float) -> dict:
    """Experiment 1: served QPS vs. replica count past saturation."""
    capacity = service.throughput()  # requests/s per replica, max batch
    rows = []
    points = {}
    for count in counts:
        result = simulate_serving(
            FleetConfig(
                service=service,
                traffic=TrafficConfig(
                    seed=11,
                    duration_s=duration_s,
                    base_qps=1.15 * capacity * count,
                    deadline_s=1.0,
                ),
                replicas=count,
                policy=f"continuous:{service.spec.max_batch}",
                queue_depth=512,
            )
        )
        points[count] = result.to_dict()
        rows.append(
            [
                count,
                f"{result.qps:.0f}",
                f"{result.qps_per_gpu:.1f}",
                f"{result.latency_p50_s * 1e3:.1f}",
                f"{result.latency_p99_s * 1e3:.1f}",
                f"{result.shed}",
            ]
        )
    print_table(
        "serving scale-out (offered 1.15x capacity per point)",
        ["replicas", "QPS", "QPS/GPU", "p50 ms", "p99 ms", "shed"],
        rows,
    )
    return {"per_replica_capacity_qps": capacity, "points": points}


def _policies(service: ServiceModel, *, replicas: int, duration_s: float) -> dict:
    """Experiment 2: batching policies at equal moderate offered load."""
    max_batch = service.spec.max_batch
    capacity = service.throughput()
    # Moderate load: high enough to keep replicas warm, low enough that
    # fixed-size batching's fill wait dominates its tail (the pathology
    # this experiment quantifies).
    offered = 0.15 * capacity * replicas
    # Token bucket metered so batches average about half-full: a damper
    # between the two extremes.
    bucket_rate = offered / max(max_batch / 2, 1)
    specs = [
        f"fixed:{max_batch}",
        f"continuous:{max_batch}",
        f"token_bucket:{max_batch}@{bucket_rate:.3f}",
    ]
    traffic = TrafficConfig(
        seed=23,
        duration_s=duration_s,
        base_qps=offered,
        diurnal_period_s=duration_s,
        diurnal_amplitude=0.3,
        bursts=2,
        burst_factor=3.0,
        deadline_s=2.0,
    )
    rows = []
    points = {}
    for policy in specs:
        result = simulate_serving(
            FleetConfig(
                service=service,
                traffic=traffic,
                replicas=replicas,
                policy=policy,
                queue_depth=512,
            )
        )
        points[policy] = result.to_dict()
        rows.append(
            [
                policy,
                f"{result.qps:.0f}",
                f"{result.avg_batch:.1f}",
                f"{result.latency_p50_s * 1e3:.1f}",
                f"{result.latency_p95_s * 1e3:.1f}",
                f"{result.latency_p99_s * 1e3:.1f}",
            ]
        )
    print_table(
        f"batching policies at equal offered load ({offered:.0f} QPS)",
        ["policy", "QPS", "avg batch", "p50 ms", "p95 ms", "p99 ms"],
        rows,
    )
    return {"offered_qps": offered, "points": points}


def _recovery(service: ServiceModel, *, replicas: int, duration_s: float) -> dict:
    """Experiment 3: replica crash mid-traffic, autoscaled repair."""
    capacity = service.throughput()
    # Land the crash ~1 simulated second in (after the metrics windows
    # have a stable pre-fault baseline): a saturated replica serves
    # capacity/max_batch batches per second, and this fleet runs at 65%.
    crash_at = max(10, int(capacity / service.spec.max_batch))
    schedule = FaultSchedule(
        [FaultEvent(kind=FaultKind.CRASH, rank=1, iteration=crash_at)]
    )
    result = simulate_serving(
        FleetConfig(
            service=service,
            traffic=TrafficConfig(
                seed=37,
                duration_s=duration_s,
                base_qps=0.65 * capacity * replicas,
                deadline_s=1.0,
            ),
            replicas=replicas,
            policy=f"continuous:{service.spec.max_batch}",
            queue_depth=512,
            autoscale=AutoscaleConfig(
                min_replicas=replicas,
                max_replicas=replicas + 2,
                p99_slo_s=0.5,
                cooldown_ticks=2,
            ),
            control_interval_s=0.1,
            schedule=schedule,
        )
    )
    report = result.to_dict()
    ratio = result.recovery_ratio()
    print_table(
        "elastic recovery (1 replica crash mid-traffic)",
        ["crashes", "provisions", "QPS", "p99 ms", "recovery"],
        [
            [
                result.crashes,
                result.provisions,
                f"{result.qps:.0f}",
                f"{result.latency_p99_s * 1e3:.1f}",
                "n/a" if ratio is None else f"{ratio * 100:.0f}%",
            ]
        ],
    )
    return report


def main(fast: bool = False) -> dict:
    service = build_service()
    duration = 4.0 if fast else 10.0
    report = {
        "model": "dhen",
        "gpus_per_replica": service.spec.gpus,
        "max_batch": service.spec.max_batch,
        "latency_curve_ms": {
            str(b): service.latency(b) * 1e3 for b in service.anchors
        },
        "scaling": _scaling(
            service, counts=(1, 2) if fast else (1, 2, 4), duration_s=duration
        ),
        "policies": _policies(service, replicas=2, duration_s=duration),
        "recovery": _recovery(service, replicas=3, duration_s=2 * duration),
    }
    ARTIFACT.write_text(json.dumps(report, indent=2))
    print(f"\nwrote {ARTIFACT}")
    return report


if __name__ == "__main__":
    main()
