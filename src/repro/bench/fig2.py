"""Figure 2 — collective communication efficiency vs input size.

(a) Achieved algorithm bandwidth of All-Gather Base (NCCL native,
    even inputs), All-Gather with a list of output tensors (extra
    copies), and the broadcast fallback ProcessGroup uses for *uneven*
    inputs (1 element and 1e6 elements moved between ranks).
(b) Total time to communicate 2^30 FP32 elements split across k
    all-gathers of E elements each; the knee where launch overhead
    starts dominating sits near 33M elements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.comm_model import CollectiveKind, CommModel
from repro.hw.specs import cluster_of
from repro.bench.report import fmt_bytes, fmt_seconds, print_table

__all__ = ["fig2a_rows", "fig2b_rows", "fig2b_knee", "main"]

FP32 = 4


@dataclass
class Fig2aRow:
    elements: int
    bw_all_gather_base: float
    bw_all_gather_list: float
    bw_uneven_small: float
    bw_uneven_large: float


def _comm_model(world_size: int) -> tuple[CommModel, list[int]]:
    topology = cluster_of(world_size)
    return CommModel(topology), list(range(world_size))


def fig2a_rows(
    world_size: int = 8,
    sizes: list[int] | None = None,
) -> list[Fig2aRow]:
    """Bus bandwidth (bytes/s) for the four collective variants."""
    model, ranks = _comm_model(world_size)
    if sizes is None:
        sizes = [2**p for p in range(14, 31, 2)]
    rows = []
    for elements in sizes:
        nbytes = elements * FP32
        shard = nbytes // world_size
        base = model.bus_bandwidth(CollectiveKind.ALL_GATHER_BASE, nbytes, ranks)
        listed = model.bus_bandwidth(CollectiveKind.ALL_GATHER_LIST, nbytes, ranks)
        # Unevenness: move 1 element / 1e6 elements from rank 1 to 0.
        uneven_small = _uneven_bandwidth(model, ranks, shard, delta_bytes=1 * FP32)
        uneven_large = _uneven_bandwidth(
            model, ranks, shard, delta_bytes=min(int(1e6) * FP32, shard)
        )
        rows.append(Fig2aRow(elements, base, listed, uneven_small, uneven_large))
    return rows


def _uneven_bandwidth(model: CommModel, ranks, shard_bytes: int, delta_bytes: int) -> float:
    shards = [shard_bytes] * len(ranks)
    shards[0] += delta_bytes
    shards[1] = max(0, shards[1] - delta_bytes)
    total = sum(shards)
    return model.bus_bandwidth(
        CollectiveKind.ALL_GATHER_UNEVEN, total, ranks, shard_nbytes=shards
    )


def fig2b_rows(
    world_size: int = 8,
    total_elements: int = 2**30,
    per_collective: list[int] | None = None,
) -> list[tuple[int, float]]:
    """(per-all-gather elements, total time) with fixed total volume."""
    model, ranks = _comm_model(world_size)
    if per_collective is None:
        per_collective = [2**p for p in range(20, 31)]
    rows = []
    for elements in per_collective:
        count = max(1, total_elements // elements)
        one = model.time(CollectiveKind.ALL_GATHER_BASE, elements * FP32, ranks)
        rows.append((elements, count * one))
    return rows


def fig2b_knee(rows: list[tuple[int, float]], threshold: float = 1.3) -> int:
    """Largest per-collective size whose total time exceeds
    ``threshold``× the single-collective asymptote."""
    asymptote = rows[-1][1]
    knee = 0
    for elements, duration in rows:
        if duration > threshold * asymptote:
            knee = max(knee, elements)
    return knee


def main(world_size: int = 8) -> None:
    rows_a = fig2a_rows(world_size)
    print_table(
        "Figure 2(a): collective bandwidth vs input size "
        f"(world={world_size}, one NVLink host)",
        ["elements", "AllGatherBase", "AllGather(list)", "uneven(1 elem)", "uneven(1e6)"],
        [
            (
                f"{r.elements:>12,}",
                fmt_bytes(r.bw_all_gather_base) + "/s",
                fmt_bytes(r.bw_all_gather_list) + "/s",
                fmt_bytes(r.bw_uneven_small) + "/s",
                fmt_bytes(r.bw_uneven_large) + "/s",
            )
            for r in rows_a
        ],
    )
    rows_b = fig2b_rows(world_size)
    print_table(
        "Figure 2(b): total time for 2^30 FP32 elements vs per-all-gather size",
        ["elements/collective", "collectives", "total time"],
        [
            (f"{e:>12,}", f"{max(1, 2**30 // e):>6}", fmt_seconds(t))
            for e, t in rows_b
        ],
    )
    knee = fig2b_knee(rows_b)
    print(f"\nknee (total time > 1.3x asymptote) at {knee:,} elements "
          f"(paper: rapid increase below ~33M)")


if __name__ == "__main__":
    main()
