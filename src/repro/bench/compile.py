"""Compiler bench: eager vs. compiled exposed communication.

Runs the three evaluation workloads (minGPT, T5, DHEN — the same
configurations as ``repro.bench.profile``) twice each with the
profiler attached: once eager, once with ``SimConfig(compile=True)``
(graph capture + bucketing to the Figure-2 knee + overlap reordering +
dead-wait elimination).  Checkpointing is off in both arms — the
compiler refuses recompute-in-step captures, so the comparison is
apples to apples.

Reports per workload: exposed/overlapped communication seconds,
iteration latency, peak reserved memory, and the compiled schedule
summary (bucket tables, collectives merged, dead waits removed).
Writes ``BENCH_compile.json``.
"""

from __future__ import annotations

import json
import pathlib

from repro.autotune import TuneWorkload
from repro.bench.autotune import bench_gpt_workload, bench_t5_workload
from repro.bench.profile import bench_dhen_workload
from repro.bench.report import fmt_bytes, fmt_seconds, print_table
from repro.perf.trainer import simulate_training
from repro.profiler import ProfilerSession

__all__ = ["ARTIFACT", "bench_workload", "main"]

ARTIFACT = pathlib.Path("BENCH_compile.json")

GiB = 1 << 30


def _arm(workload: TuneWorkload, *, compile: bool) -> dict:
    config = workload.sim_config(name=workload.name, checkpointing=False)
    config.auto_wrap_policy = workload.wrap_choices[1].policy
    config.profiler = ProfilerSession()
    config.compile = compile
    result = simulate_training(config)
    arm = {
        "oom": result.oom,
        "iteration_latency_s": result.iteration_latency,
        "exposed_comm_s": result.exposed_comm_s,
        "overlapped_comm_s": result.overlapped_comm_s,
        "rate_limit_stall_s": result.rate_limit_stall_s,
        "peak_reserved_bytes": int(result.peak_reserved_gib * GiB),
        "comm_gib_per_iteration": result.comm_gib,
        "collectives_per_iteration": result.collectives,
    }
    if compile:
        arm["schedule"] = result.extras.get("compile")
    return arm


def bench_workload(workload: TuneWorkload, *, verbose: bool = True) -> dict:
    """Eager vs. compiled on one workload; returns a JSON-able report."""
    eager = _arm(workload, compile=False)
    compiled = _arm(workload, compile=True)
    report = {
        "workload": workload.name,
        "world_size": workload.world_size,
        "batch_size": workload.batch_size,
        "eager": eager,
        "compiled": compiled,
        "exposed_comm_improvement_s": eager["exposed_comm_s"]
        - compiled["exposed_comm_s"],
        "strict_win": compiled["exposed_comm_s"] < eager["exposed_comm_s"],
    }
    if verbose:
        _print_report(report)
    return report


def _print_report(report: dict) -> None:
    rows = []
    for arm in ("eager", "compiled"):
        data = report[arm]
        rows.append(
            (
                arm,
                fmt_seconds(data["iteration_latency_s"]),
                fmt_seconds(data["exposed_comm_s"]),
                fmt_seconds(data["overlapped_comm_s"]),
                str(data["collectives_per_iteration"]),
                fmt_bytes(data["peak_reserved_bytes"]),
            )
        )
    print_table(
        f"{report['workload']} (W={report['world_size']}) eager vs compiled",
        ["arm", "latency", "exposed", "overlapped", "colls/iter", "reserved"],
        rows,
    )
    schedule = report["compiled"].get("schedule") or {}
    stats = schedule.get("stats", {})
    print(
        f"  compiled: {len(schedule.get('all_gather_buckets', []))} AG buckets, "
        f"{len(schedule.get('reduce_scatter_buckets', []))} RS buckets, "
        f"merged {stats.get('collectives_merged')}, "
        f"dead waits removed {stats.get('dead_waits_removed')}; "
        f"exposed-comm saved {fmt_seconds(report['exposed_comm_improvement_s'])}"
        f" ({'strict win' if report['strict_win'] else 'NO WIN'})"
    )


def main(*, artifact: pathlib.Path = ARTIFACT) -> dict:
    reports = [
        bench_workload(bench_gpt_workload()),
        bench_workload(bench_t5_workload()),
        bench_workload(bench_dhen_workload()),
    ]
    wins = sum(r["strict_win"] for r in reports)
    payload = {"workloads": reports, "strict_wins": wins}
    artifact.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\n{wins}/{len(reports)} workloads strictly improved; wrote {artifact}")
    return payload


if __name__ == "__main__":
    main()
