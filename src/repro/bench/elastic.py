"""Elastic checkpointing bench: recovery overhead vs. checkpoint interval.

Sweeps the checkpoint interval for the minGPT workload under a
mid-training crash, in both synchronous (training stalls for the full
D2H drain) and asynchronous (side-stream snapshot, background commit)
checkpointing modes, and reports the two costs the interval trades off:

- **checkpoint cost** — exposed stall per save (sync) vs. near-zero
  (async, where the D2H overlaps compute on the checkpoint stream);
- **recovery cost** — iterations replayed after the crash, which grows
  with the interval, plus the async writer's wider loss-of-work window
  (an in-flight save at crash time is not durably committed).

Writes ``BENCH_elastic.json``; the EXPERIMENTS.md recovery-overhead
table is read off this artifact.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.bench.autotune import bench_gpt_workload
from repro.bench.report import fmt_seconds, print_table
from repro.distributed import FaultEvent, FaultKind, FaultSchedule
from repro.perf.trainer import simulate_training
from repro.profiler import ProfilerSession

__all__ = ["bench_point", "main", "ARTIFACT", "INTERVALS"]

ARTIFACT = pathlib.Path("BENCH_elastic.json")

INTERVALS = (1, 2, 4, 8)
ITERATIONS = 16
CRASH_AT = 13


def _config(interval: int, async_ckpt: bool, *, crash: bool, profiler=None):
    workload = bench_gpt_workload()
    config = workload.sim_config(
        name=f"elastic-{'async' if async_ckpt else 'sync'}-every{interval}"
    )
    config.auto_wrap_policy = workload.wrap_choices[1].policy
    faults = (
        FaultSchedule([FaultEvent(kind=FaultKind.CRASH, rank=0, iteration=CRASH_AT)])
        if crash
        else None
    )
    return dataclasses.replace(
        config,
        iterations=ITERATIONS,
        warmup=2,
        elastic=True,
        faults=faults,
        checkpoint_every=interval,
        async_checkpoint=async_ckpt,
        profiler=profiler,
    )


def bench_point(interval: int, async_ckpt: bool, *, crash: bool = True) -> dict:
    """One sweep point: interval × mode, with a crash at ``CRASH_AT``."""
    session = ProfilerSession()
    result = simulate_training(_config(interval, async_ckpt, crash=crash, profiler=session))
    totals = result.extras.get("profiler", {}).get("totals", {})
    return {
        "interval": interval,
        "mode": "async" if async_ckpt else "sync",
        "crash": crash,
        "iteration_latency_s": result.iteration_latency,
        "checkpoint_saves": result.checkpoint_saves,
        "checkpoint_save_s": result.checkpoint_save_s,
        "checkpoint_stall_s": result.checkpoint_stall_s,
        "checkpoint_load_s": result.checkpoint_load_s,
        "checkpoint_verify_s": result.checkpoint_verify_s,
        "checkpoint_exposed_s": totals.get("checkpoint_exposed_s", 0.0),
        "checkpoint_overlapped_s": totals.get("checkpoint_overlapped_s", 0.0),
        "recovery_overhead_s": result.recovery_overhead_s,
        "recoveries": result.recoveries,
    }


def main(*, artifact: pathlib.Path = ARTIFACT, verbose: bool = True) -> dict:
    points = [
        bench_point(interval, async_ckpt)
        for async_ckpt in (False, True)
        for interval in INTERVALS
    ]
    payload = {
        "workload": "mingpt",
        "iterations": ITERATIONS,
        "crash_at": CRASH_AT,
        "points": points,
    }
    if verbose:
        rows = [
            (
                point["mode"],
                str(point["interval"]),
                str(point["checkpoint_saves"]),
                fmt_seconds(point["checkpoint_stall_s"]),
                fmt_seconds(point["checkpoint_overlapped_s"]),
                fmt_seconds(point["recovery_overhead_s"]),
                fmt_seconds(point["iteration_latency_s"]),
            )
            for point in points
        ]
        print_table(
            f"elastic checkpointing (crash at iteration {CRASH_AT})",
            ["mode", "every", "saves", "stall", "overlapped", "recovery", "iter latency"],
            rows,
        )
    artifact.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if verbose:
        print(f"\nwrote {artifact}")
    return payload


if __name__ == "__main__":
    main()
