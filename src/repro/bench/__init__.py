"""Figure harnesses: regenerate every table and figure of Section 5.

Run everything with ``python -m repro.bench`` (takes a few minutes);
individual figures via ``python -m repro.bench.fig2`` etc.  The pytest
wrappers in ``benchmarks/`` run reduced sweeps with shape assertions.
"""

from repro.bench import (
    ablations,
    fig2,
    fig5,
    fig6,
    fig7,
    fig8,
    resilience,
    scale,
    serving,
    xhost_traffic,
)

__all__ = [
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "scale",
    "ablations",
    "resilience",
    "serving",
    "xhost_traffic",
]
