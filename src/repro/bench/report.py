"""Table-printing helpers shared by the figure harnesses."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["print_table", "print_perf_table", "fmt_bytes", "fmt_seconds"]


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def print_perf_table(title: str, results: Iterable) -> None:
    """Print PerfResult rows with the configuration that produced each.

    Sweeps and autotune output share this format, so a planner's chosen
    row is directly comparable with the grid it was searched against.
    """
    rows = []
    for r in results:
        rows.append(
            (
                r.name,
                r.config_label() or "-",
                "OOM" if r.oom else f"{r.tflops_per_gpu:.1f}",
                "-" if r.oom else f"{r.iteration_latency * 1e3:.1f}ms",
                "-" if r.oom else f"{r.peak_reserved_gib:.2f}",
                r.num_alloc_retries,
            )
        )
    print_table(
        title,
        ["config", "knobs", "TFLOPS/GPU", "latency", "reserved GiB", "retries"],
        rows,
    )


def fmt_bytes(nbytes: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(nbytes) < 1024 or unit == "TiB":
            return f"{nbytes:.1f}{unit}"
        nbytes /= 1024
    return f"{nbytes:.1f}TiB"


def fmt_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"
