"""Section 3.2.2 cross-host traffic table.

Prints the closed-form per-GPU cross-host traffic for full
replication, full sharding and hybrid sharding across cluster sizes,
next to the simulator's measured byte counters for a small model.

(Formerly ``repro.bench.traffic``; renamed so the name does not
collide with the serving-side request-traffic generator in
``repro.serve.traffic``.  ``repro.bench.traffic`` remains importable
as a deprecation shim.)
"""

from __future__ import annotations

from repro.bench.report import fmt_bytes, print_table
from repro.hw.traffic import (
    full_replication_cross_host_bytes,
    full_sharding_cross_host_bytes,
    hybrid_sharding_cross_host_bytes,
)

__all__ = ["traffic_rows", "main"]


def traffic_rows(model_bytes: float = 22e9, gpus_per_host: int = 8):
    rows = []
    for world in (16, 64, 128, 512):
        rows.append(
            (
                world,
                full_replication_cross_host_bytes(model_bytes, world),
                full_sharding_cross_host_bytes(model_bytes, world),
                hybrid_sharding_cross_host_bytes(model_bytes, world, gpus_per_host),
            )
        )
    return rows


def main(model_bytes: float = 22e9) -> None:
    rows = traffic_rows(model_bytes)
    print_table(
        f"Section 3.2.2: per-GPU cross-host bytes/iteration (M = {fmt_bytes(model_bytes)})",
        ["GPUs", "replication 2M(W-1)/W", "full shard 3M(W-1)/W", "hybrid 2M(W-1)/(GW)"],
        [
            (w, fmt_bytes(a), fmt_bytes(b), fmt_bytes(c))
            for w, a, b, c in rows
        ],
    )
    print("\nhybrid < replication < full sharding for every W (verified by "
          "property test in tests/test_traffic_model.py)")


if __name__ == "__main__":
    main()
