"""Per-parameter vs flat-param sharding backend comparison.

The fully_shard v2 bench behind ``BENCH_perparam.json``.  Two claims
are measured for each workload, with the flat-param backend as the
baseline under an otherwise identical configuration:

- **memory**: per-parameter dim-0 sharding stores *exactly* the model
  — the flatten-concat padding disappears (an analytic identity
  asserted per unit: ``flat.padded_numel == per_param.total_numel +
  flat.padding`` and ``per_param.padding == 0``), and the simulated
  peak falls further because gather/reduce buffers live per parameter
  instead of as one padded flat buffer per unit;
- **latency**: the price is more, smaller collectives per unit (one
  all-gather / reduce-scatter per parameter instead of per flat
  buffer), reported as a latency ratio.

Workloads: the autotune bench models (minGPT, T5) wrapped per
transformer block, plus an odd-dimension MLP whose sizes share no
factor with the world size, so every parameter exercises the uneven
chunking and uneven-collective paths.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

import repro
from repro import distributed as dist
from repro import nn
from repro.fsdp.sharding import ShardingStrategy
from repro.fsdp.wrap import ModuleWrapPolicy
from repro.models.mingpt import GptConfig
from repro.models.t5 import T5Config
from repro.models.transformer import TransformerBlock
from repro.perf.metrics import PerfResult
from repro.perf.trainer import SimConfig, _all_units, _wrap_model, simulate_training

__all__ = [
    "bench_configs",
    "padding_accounting",
    "compare_backends",
    "main",
]

BENCH_GPT = GptConfig(vocab_size=2048, block_size=128, n_layer=12, n_head=8, n_embd=512)
BENCH_T5 = T5Config(
    vocab_size=2048, d_model=256, d_ff=1024, num_heads=4, head_dim=64, num_layers=4
)

#: Odd-dimension MLP: 1021 and 509 are prime, so no layer divides the
#: world size and every shard boundary lands mid-row.
ODD_DIMS = (1024, 4096, 1021, 509, 1024)


def _odd_mlp_builder() -> Callable[[], nn.Module]:
    def build() -> nn.Module:
        layers: list[nn.Module] = []
        for d_in, d_out in zip(ODD_DIMS, ODD_DIMS[1:]):
            layers.append(nn.Linear(d_in, d_out))
            layers.append(nn.GELU())
        return nn.Sequential(*layers)

    return build


def _odd_mlp_loss(batch_size: int):
    def make_loss(model, device):
        x = repro.randn(batch_size, ODD_DIMS[0], device=device)
        out = model(x)
        return nn.functional.mse_loss(out, repro.zeros_like(out))

    return make_loss


def bench_configs(world_size: int = 8) -> list[SimConfig]:
    """Flat-param baseline configs; the comparison flips ``backend``."""
    from repro.autotune import gpt_workload, t5_workload

    block_policy = ModuleWrapPolicy((TransformerBlock,))
    gpt = gpt_workload(
        BENCH_GPT, batch_size=4, seq_len=128, world_size=world_size, name="minGPT"
    ).sim_config()
    gpt.auto_wrap_policy = block_policy
    t5 = t5_workload(
        BENCH_T5, batch_size=4, seq_len=64, world_size=world_size, name="T5"
    ).sim_config()
    t5.auto_wrap_policy = block_policy
    odd = SimConfig(
        name="odd-mlp",
        build_model=_odd_mlp_builder(),
        make_loss=_odd_mlp_loss(8),
        batch_size=8,
        world_size=world_size,
        auto_wrap_policy=lambda m: isinstance(m, nn.Linear),
        wrap_policy_label="per-linear",
        iterations=2,
        warmup=2,
    )
    return [gpt, t5, odd]


def padding_accounting(config: SimConfig) -> dict:
    """Analytic storage accounting for both backends of one workload.

    Builds each backend's sharded model (no training) and reads the
    handles: the flat backend's world-summed parameter storage is
    ``sum(padded_numel)`` while the per-parameter backend stores
    ``sum(total_numel)`` — the difference is exactly the flatten-concat
    padding, which is the bytes-level claim the simulated peaks then
    have to at least match in sign.
    """
    per_backend: dict[str, dict] = {}
    for backend in ("flat_param", "per_param"):
        dist.shutdown()
        ctx = dist.init_single_process(
            config.world_size, topology=config.topology, materialize=False
        )
        wrapped = _wrap_model(replace(config, backend=backend), ctx.device)
        units = [u for u in _all_units(wrapped) if u.handle is not None]
        itemsizes = {
            u.handle.full_precision_dtype.itemsize for u in units
        }
        per_backend[backend] = {
            "units": len(units),
            "total_numel": sum(u.handle.total_numel for u in units),
            "padded_numel": sum(u.handle.padded_numel for u in units),
            "padding_elems": sum(u.handle.padding for u in units),
            "itemsize": max(itemsizes),
            "rank0_sharded_bytes": sum(u.handle.sharded_nbytes for u in units),
        }
        dist.shutdown()
    flat, perp = per_backend["flat_param"], per_backend["per_param"]
    return {
        "flat_param": flat,
        "per_param": perp,
        "padding_bytes_eliminated": flat["padding_elems"] * flat["itemsize"],
        # World-summed parameter storage: padded for flat, exact for
        # per-parameter.  The delta IS the padding, by construction.
        "world_param_bytes_flat": flat["padded_numel"] * flat["itemsize"],
        "world_param_bytes_per_param": perp["total_numel"] * perp["itemsize"],
    }


def compare_backends(config: SimConfig) -> dict:
    """Run one workload under both backends; return rows + accounting."""
    accounting = padding_accounting(config)
    rows: dict[str, PerfResult] = {}
    for backend in ("flat_param", "per_param"):
        # foreach Adam for BOTH rows: real FSDP2 is paired with
        # multi-tensor optimizers, and enabling it on one side only
        # would hide (or exaggerate) the per-leaf launch overhead.
        run = replace(config, backend=backend, foreach_optimizer=True)
        run.name = f"{config.name} {backend}"
        rows[backend] = simulate_training(run)
    flat, perp = rows["flat_param"], rows["per_param"]
    return {
        "workload": config.name,
        "world_size": config.world_size,
        "rows": rows,
        "accounting": accounting,
        "peak_reserved_delta_gib": flat.peak_reserved_gib - perp.peak_reserved_gib,
        "peak_allocated_delta_gib": flat.peak_allocated_gib - perp.peak_allocated_gib,
        "latency_ratio": (
            perp.iteration_latency / flat.iteration_latency
            if flat.iteration_latency
            else float("inf")
        ),
    }


def main(world_size: int = 8, *, verbose: bool = True) -> list[dict]:
    from repro.bench.report import print_perf_table

    comparisons = [compare_backends(config) for config in bench_configs(world_size)]
    if verbose:
        for comparison in comparisons:
            rows = comparison["rows"]
            print_perf_table(comparison["workload"], list(rows.values()))
            acct = comparison["accounting"]
            print(
                f"  padding eliminated: {acct['padding_bytes_eliminated']} B; "
                f"peak reserved delta {comparison['peak_reserved_delta_gib'] * 1024:.1f} MiB; "
                f"latency ratio {comparison['latency_ratio']:.2f}x"
            )
    return comparisons


if __name__ == "__main__":
    main()
