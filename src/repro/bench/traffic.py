"""Deprecated alias for :mod:`repro.bench.xhost_traffic`.

The §3.2.2 cross-host byte-table bench used to live here; it was
renamed to ``repro.bench.xhost_traffic`` when the serving subsystem
introduced a *request*-traffic generator (``repro.serve.traffic``)
that the old name collided with.  Importing this module re-exports the
renamed bench and emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.bench.xhost_traffic import main, traffic_rows

__all__ = ["traffic_rows", "main"]

warnings.warn(
    "repro.bench.traffic was renamed to repro.bench.xhost_traffic "
    "(the old name now collides with the serving traffic generator "
    "repro.serve.traffic); update imports",
    DeprecationWarning,
    stacklevel=2,
)

if __name__ == "__main__":
    main()
