"""Regenerate every figure of the paper's evaluation section.

Usage::

    python -m repro.bench            # all figures, full sweeps
    python -m repro.bench --fast     # reduced sweeps (~2-3 minutes)
"""

from __future__ import annotations

import sys
import time

from repro.bench import (
    ablations,
    autotune,
    compile as compile_bench,
    degraded,
    elastic,
    fig2,
    fig5,
    fig6,
    fig7,
    fig8,
    profile,
    serving,
    xhost_traffic,
)

# Deprecation alias: the §3.2.2 byte-table bench was renamed from
# ``traffic`` to ``xhost_traffic`` (the serving subsystem owns the name
# "traffic" now, see repro.serve.traffic).  Kept one release so
# ``from repro.bench.__main__ import traffic`` and figure scripts keep
# working; importing ``repro.bench.traffic`` itself warns.
traffic = xhost_traffic


def main(argv: list[str]) -> None:
    fast = "--fast" in argv
    start = time.time()

    print("#" * 72)
    print("# Figure 2 — collective communication efficiency")
    print("#" * 72)
    fig2.main()

    print("\n" + "#" * 72)
    print("# Figure 5 — communication/computation overlap (traced)")
    print("#" * 72)
    fig5.main()

    print("\n" + "#" * 72)
    print("# Section 3.2.2 — cross-host traffic closed forms")
    print("#" * 72)
    xhost_traffic.main()

    print("\n" + "#" * 72)
    print("# Figure 6 — model scale, prefetching, rate limiting")
    print("#" * 72)
    fig6.main(fast=fast)

    print("\n" + "#" * 72)
    print("# Figures 7 and 8 — throughput and memory at scale")
    print("#" * 72)
    if fast:
        from repro.bench.scale import dhen_sweep, gpt175b_sweep, t5_11b_sweep

        dhen = dhen_sweep(world_sizes=(8, 64, 512))
        gpt = gpt175b_sweep(world_sizes=(128, 256, 512))
        t5 = t5_11b_sweep(world_sizes=(8, 64, 512))
    else:
        dhen = gpt = t5 = None
    dhen, gpt, t5 = fig7.main(dhen, gpt, t5)
    fig8.main(dhen, gpt, t5)

    print("\n" + "#" * 72)
    print("# Ablations — wrap granularity, rate-limit cap, sharding factor")
    print("#" * 72)
    ablations.main()

    print("\n" + "#" * 72)
    print("# Degraded cluster — fault injection and elastic recovery")
    print("#" * 72)
    degraded.main()

    print("\n" + "#" * 72)
    print("# Elastic checkpointing — recovery overhead vs. interval")
    print("#" * 72)
    elastic.main()

    print("\n" + "#" * 72)
    print("# Autotune — planner choice vs. exhaustive grid sweep")
    print("#" * 72)
    autotune.main()

    print("\n" + "#" * 72)
    print("# Profiler — per-unit exposed vs. overlapped communication")
    print("#" * 72)
    profile.main()

    print("\n" + "#" * 72)
    print("# Compiler — eager vs compiled exposed communication")
    print("#" * 72)
    compile_bench.main()

    print("\n" + "#" * 72)
    print("# Serving fleet — continuous batching, SLO, elastic autoscaling")
    print("#" * 72)
    serving.main(fast=fast)

    print(f"\nall figures regenerated in {time.time() - start:.0f}s")


if __name__ == "__main__":
    main(sys.argv[1:])
