"""Profiler report: per-unit exposed vs. overlapped communication.

Runs the three evaluation workloads (minGPT, T5, DHEN) with a
:class:`repro.profiler.ProfilerSession` installed and prints, per FSDP
unit, the all-gather / reduce-scatter traffic, the exposed vs.
overlapped split of its communication time, prefetch hits/misses and
rate-limiter stall — the numbers the paper's Section 5 discussion
reads off Kineto traces.  Writes ``BENCH_profiler.json``.
"""

from __future__ import annotations

import json
import pathlib

from repro.autotune import TuneWorkload, dhen_workload
from repro.bench.autotune import bench_gpt_workload, bench_t5_workload
from repro.bench.report import fmt_bytes, fmt_seconds, print_table
from repro.models import DhenConfig
from repro.perf.trainer import simulate_training
from repro.profiler import ProfilerSession

__all__ = ["bench_dhen_workload", "profile_workload", "main", "ARTIFACT"]

ARTIFACT = pathlib.Path("BENCH_profiler.json")

#: Modest DHEN for the bench lane (the full paper config would need
#: hundreds of ranks to be interesting; this one produces the same
#: per-unit structure in seconds).
BENCH_DHEN = DhenConfig(
    num_features=32,
    sparse_rows_total=1_000_000,
    sparse_dim=32,
    num_dense_features=64,
    d_model=256,
    num_layers=4,
    num_heads=4,
    d_ff=1024,
)


def bench_dhen_workload(world_size: int = 8) -> TuneWorkload:
    return dhen_workload(BENCH_DHEN, batch_size=4, world_size=world_size)


def profile_workload(workload: TuneWorkload, *, verbose: bool = True) -> dict:
    """Simulate ``workload`` per-block-wrapped with profiling on.

    Returns a JSON-able report: the headline PerfResult numbers plus the
    profiler summary (totals, per-unit table, memory attribution).
    """
    session = ProfilerSession()
    config = workload.sim_config(name=workload.name)
    # Per-block wrapping so the per-unit table has one row per layer
    # (wrap_choices[0] is whole-model; [1] is the block policy).
    config.auto_wrap_policy = workload.wrap_choices[1].policy
    config.profiler = session
    result = simulate_training(config)
    summary = result.extras.get("profiler", session.summary())
    report = {
        "workload": workload.name,
        "world_size": workload.world_size,
        "batch_size": workload.batch_size,
        "oom": result.oom,
        "iteration_latency_s": result.iteration_latency,
        "exposed_comm_s": result.exposed_comm_s,
        "overlapped_comm_s": result.overlapped_comm_s,
        "prefetch_hits": result.prefetch_hits,
        "prefetch_misses": result.prefetch_misses,
        "rate_limit_stall_s": result.rate_limit_stall_s,
        "profiler": summary,
    }
    if verbose:
        _print_report(report)
    return report


def _print_report(report: dict) -> None:
    summary = report["profiler"]
    rows = []
    for unit in summary["units"]:
        total = unit["exposed_comm_s"] + unit["overlapped_comm_s"]
        overlap = unit["overlapped_comm_s"] / total if total else 0.0
        rows.append(
            (
                unit["label"],
                fmt_bytes(unit["allgather_bytes"]),
                fmt_bytes(unit["reduce_scatter_bytes"]),
                fmt_seconds(unit["exposed_comm_s"]),
                fmt_seconds(unit["overlapped_comm_s"]),
                f"{overlap:.0%}",
                f"{unit['prefetch_hits']}/{unit['prefetch_misses']}",
                fmt_seconds(unit["rate_limit_stall_s"]),
            )
        )
    print_table(
        f"{report['workload']} (W={report['world_size']}) per-unit comm",
        ["unit", "AG bytes", "RS bytes", "exposed", "overlapped", "overlap", "hit/miss", "stall"],
        rows,
    )
    totals = summary["totals"]
    print(
        f"  totals: exposed={fmt_seconds(totals['exposed_comm_s'])} "
        f"overlapped={fmt_seconds(totals['overlapped_comm_s'])} "
        f"({totals['overlap_fraction']:.0%} hidden), "
        f"prefetch {totals['prefetch_hits']} hit / {totals['prefetch_misses']} miss, "
        f"limiter stall={fmt_seconds(totals['rate_limit_stall_s'])} "
        f"(max depth {totals['max_rate_limit_depth']})"
    )
    memory = summary["memory"]
    print(
        f"  peak active {fmt_bytes(memory['peak_active_bytes'])} "
        f"owned by {memory['peak_scope'] or '(unscoped)'}"
    )


def main(*, artifact: pathlib.Path = ARTIFACT) -> dict:
    reports = [
        profile_workload(bench_gpt_workload()),
        profile_workload(bench_t5_workload()),
        profile_workload(bench_dhen_workload()),
    ]
    payload = {"workloads": reports}
    artifact.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {artifact}")
    return payload


if __name__ == "__main__":
    main()
