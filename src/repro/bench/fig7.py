"""Figure 7 — training throughput at scale.

(a) DHEN QPS per GPU under the four sharding configurations;
(b) GPT-175B TFLOPS per GPU (batch 1 and 2, 128→512 GPUs), with the
    batch-2 dip at 128 GPUs caused by cudaMalloc retries;
(c) T5-11B TFLOPS per GPU (batch 8 and 16, 8→512 GPUs) with the ~7%
    regression as communication outgrows computation.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.report import print_table
from repro.bench.scale import dhen_sweep, gpt175b_sweep, t5_11b_sweep
from repro.perf import PerfResult

__all__ = ["print_fig7a", "print_fig7b", "print_fig7c", "main"]


def print_fig7a(results: list[PerfResult]) -> None:
    print_table(
        "Figure 7(a): DHEN throughput (QPS = samples/GPU/second)",
        ["config", "GPUs", "QPS/GPU", "latency", "retries"],
        [
            (
                r.name,
                r.world_size,
                "OOM" if r.oom else f"{r.qps_per_gpu:.0f}",
                "-" if r.oom else f"{r.iteration_latency * 1e3:.0f}ms",
                r.num_alloc_retries,
            )
            for r in results
        ],
    )


def print_fig7b(results: list[PerfResult]) -> None:
    print_table(
        "Figure 7(b): GPT-175B TFLOPS per GPU (paper: ~173 bs=1, ~186 bs=2; dip at 128 GPUs bs=2)",
        ["config", "GPUs", "TFLOPS/GPU", "latency", "retries"],
        [
            (
                r.name,
                r.world_size,
                "OOM" if r.oom else f"{r.tflops_per_gpu:.1f}",
                "-" if r.oom else f"{r.iteration_latency:.2f}s",
                r.num_alloc_retries,
            )
            for r in results
        ],
    )


def print_fig7c(results: list[PerfResult]) -> None:
    print_table(
        "Figure 7(c): T5-11B TFLOPS per GPU (paper: ~7% regression 8 -> 512 GPUs)",
        ["config", "GPUs", "TFLOPS/GPU", "latency"],
        [
            (
                r.name,
                r.world_size,
                "OOM" if r.oom else f"{r.tflops_per_gpu:.1f}",
                "-" if r.oom else f"{r.iteration_latency * 1e3:.0f}ms",
            )
            for r in results
        ],
    )


def main(
    dhen: Optional[list[PerfResult]] = None,
    gpt: Optional[list[PerfResult]] = None,
    t5: Optional[list[PerfResult]] = None,
) -> tuple[list[PerfResult], list[PerfResult], list[PerfResult]]:
    dhen = dhen if dhen is not None else dhen_sweep()
    gpt = gpt if gpt is not None else gpt175b_sweep()
    t5 = t5 if t5 is not None else t5_11b_sweep()
    print_fig7a(dhen)
    print_fig7b(gpt)
    print_fig7c(t5)
    return dhen, gpt, t5


if __name__ == "__main__":
    main()
