"""Figure 6 — model scale, backward prefetching, rate limiting.

(a) FSDP vs DDP TFLOPS per GPU on T5-611M / T5-2.28B / T5-11B
    (8 GPUs).  DDP runs out of memory above 2.28B; FSDP+BF16 is the
    fastest configuration.
(b) Backward prefetching on GPT-175B across cluster sizes: ~18%
    TFLOPS gain that persists as the cluster grows.
(c) Rate limiting on RegNet-9B / T5-11B / DeepViT-8B at 2 and 4
    nodes: large win where the CPU thread over-allocates (T5),
    neutral where it does not (RegNet), a small loss where
    communication dominates (DeepViT).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.report import print_table
from repro.fsdp import BackwardPrefetch, ModuleWrapPolicy
from repro.fsdp.mixed_precision import BF16_MIXED
from repro.models import (
    DEEPVIT_8B,
    REGNET_9B,
    T5_11B,
    T5_2B,
    T5_611M,
    GPT3_175B,
)
from repro.models.regnet import Bottleneck, Stage
from repro.models.transformer import TransformerBlock
from repro.perf import PerfResult, SimConfig, simulate_training
from repro.perf.workloads import (
    deepvit_builder,
    deepvit_loss_fn,
    gpt_builder,
    gpt_loss_fn,
    regnet_builder,
    regnet_loss_fn,
    t5_builder,
    t5_loss_fn,
)

__all__ = ["fig6a_rows", "fig6b_rows", "fig6c_rows", "main"]

_T5_WRAP = ModuleWrapPolicy({TransformerBlock})


def _t5_config(name, config, *, parallelism, mixed_precision, world_size, batch, seq, iterations):
    return SimConfig(
        name=name,
        build_model=t5_builder(config),
        make_loss=t5_loss_fn(config, batch, seq),
        batch_size=batch,
        world_size=world_size,
        parallelism=parallelism,
        auto_wrap_policy=_T5_WRAP if parallelism == "fsdp" else None,
        mixed_precision=mixed_precision,
        iterations=iterations,
        warmup=2,
    )


def fig6a_rows(
    world_size: int = 8, batch: int = 8, seq: int = 512, iterations: int = 1
) -> list[PerfResult]:
    """FSDP vs DDP across T5 sizes (Figure 6(a))."""
    results = []
    for label, config in (("T5-611M", T5_611M), ("T5-2.28B", T5_2B), ("T5-11B", T5_11B)):
        results.append(
            simulate_training(
                _t5_config(
                    f"{label} DDP fp32",
                    config,
                    parallelism="ddp",
                    mixed_precision=None,
                    world_size=world_size,
                    batch=batch,
                    seq=seq,
                    iterations=iterations,
                )
            )
        )
        results.append(
            simulate_training(
                _t5_config(
                    f"{label} FSDP fp32",
                    config,
                    parallelism="fsdp",
                    mixed_precision=None,
                    world_size=world_size,
                    batch=batch,
                    seq=seq,
                    iterations=iterations,
                )
            )
        )
        results.append(
            simulate_training(
                _t5_config(
                    f"{label} FSDP bf16",
                    config,
                    parallelism="fsdp",
                    mixed_precision=BF16_MIXED,
                    world_size=world_size,
                    batch=batch,
                    seq=seq,
                    iterations=iterations,
                )
            )
        )
    return results


def fig6b_rows(
    world_sizes: tuple[int, ...] = (128, 256, 384, 512),
    batch: int = 1,
    seq: int = 2048,
    iterations: int = 1,
) -> list[PerfResult]:
    """Backward prefetch on/off for GPT-175B (Figure 6(b))."""
    results = []
    for world in world_sizes:
        for prefetch, label in (
            (BackwardPrefetch.BACKWARD_PRE, "prefetch"),
            (BackwardPrefetch.NONE, "no-prefetch"),
        ):
            results.append(
                simulate_training(
                    SimConfig(
                        name=f"GPT-175B {label}",
                        build_model=gpt_builder(GPT3_175B),
                        make_loss=gpt_loss_fn(GPT3_175B, batch, seq),
                        batch_size=batch,
                        world_size=world,
                        auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
                        mixed_precision=BF16_MIXED,
                        backward_prefetch=prefetch,
                        iterations=iterations,
                        warmup=2,
                    )
                )
            )
    return results


def fig6c_rows(
    node_counts: tuple[int, ...] = (2, 4), iterations: int = 2
) -> list[PerfResult]:
    """Rate limiter on/off across three model types (Figure 6(c)).

    Section 5.3 runs *without* activation checkpointing at the maximum
    feasible batch per model.  Our substrate's unfused kernels carry a
    larger activation footprint than fused CUDA kernels, so the
    max-feasible batches are smaller than the paper's labels (48/72,
    2, 105/120) — the near-capacity regime is what matters (see
    EXPERIMENTS.md).
    """
    import dataclasses

    regnet = dataclasses.replace(REGNET_9B, checkpoint_blocks=False)
    t5 = dataclasses.replace(T5_11B, checkpoint_blocks=False)
    deepvit = dataclasses.replace(DEEPVIT_8B, checkpoint_blocks=False)
    workloads = []
    for nodes in node_counts:
        world = nodes * 8
        regnet_batch = 32 if nodes == 2 else 40
        t5_batch = 3
        deepvit_batch = 16 if nodes == 2 else 20
        workloads.extend(
            [
                (
                    f"RegNet-9B {nodes} nodes bs={regnet_batch}",
                    SimConfig(
                        name="",
                        build_model=regnet_builder(regnet),
                        make_loss=regnet_loss_fn(regnet, regnet_batch),
                        batch_size=regnet_batch,
                        world_size=world,
                        auto_wrap_policy=ModuleWrapPolicy({Bottleneck, Stage}),
                        mixed_precision=BF16_MIXED,
                        iterations=iterations,
                    ),
                ),
                (
                    f"T5-11B {nodes} nodes bs={t5_batch}",
                    SimConfig(
                        name="",
                        build_model=t5_builder(t5),
                        make_loss=t5_loss_fn(t5, t5_batch, 512),
                        batch_size=t5_batch,
                        world_size=world,
                        auto_wrap_policy=_T5_WRAP,
                        mixed_precision=BF16_MIXED,
                        iterations=iterations,
                    ),
                ),
                (
                    f"DeepViT-8B {nodes} nodes bs={deepvit_batch}",
                    SimConfig(
                        name="",
                        build_model=deepvit_builder(deepvit),
                        make_loss=deepvit_loss_fn(deepvit, deepvit_batch),
                        batch_size=deepvit_batch,
                        world_size=world,
                        auto_wrap_policy=ModuleWrapPolicy({TransformerBlock}),
                        mixed_precision=BF16_MIXED,
                        iterations=iterations,
                    ),
                ),
            ]
        )
    results = []
    for label, base in workloads:
        for limited in (False, True):
            config = dataclasses.replace(
                base,
                name=f"{label} {'limit=2' if limited else 'no-limit'}",
                limit_all_gathers=limited,
            )
            results.append(simulate_training(config))
    return results


def main(fast: bool = False) -> None:
    rows_a = fig6a_rows()
    print_table(
        "Figure 6(a): FSDP vs DDP, T5 models, 8 GPUs",
        ["config", "TFLOPS/GPU", "latency", "peak reserved GiB"],
        [
            (
                r.name,
                "OOM" if r.oom else f"{r.tflops_per_gpu:.1f}",
                "-" if r.oom else f"{r.iteration_latency * 1e3:.0f}ms",
                "-" if r.oom else f"{r.peak_reserved_gib:.1f}",
            )
            for r in rows_a
        ],
    )
    sizes = (128, 512) if fast else (128, 256, 384, 512)
    rows_b = fig6b_rows(world_sizes=sizes)
    table = []
    for i in range(0, len(rows_b), 2):
        with_prefetch, without = rows_b[i], rows_b[i + 1]
        gain = (
            (with_prefetch.tflops_per_gpu - without.tflops_per_gpu)
            / without.tflops_per_gpu
            * 100.0
            if without.tflops_per_gpu
            else 0.0
        )
        table.append(
            (
                f"{with_prefetch.world_size} GPUs",
                f"{with_prefetch.tflops_per_gpu:.1f}",
                f"{without.tflops_per_gpu:.1f}",
                f"{gain:+.1f}%",
            )
        )
    print_table(
        "Figure 6(b): backward prefetch, GPT-175B (paper: ~+18%)",
        ["cluster", "prefetch TFLOPS", "no-prefetch TFLOPS", "gain"],
        table,
    )
    rows_c = fig6c_rows(node_counts=(2,) if fast else (2, 4))
    table = []
    for i in range(0, len(rows_c), 2):
        off, on = rows_c[i], rows_c[i + 1]
        speedup = off.iteration_latency / on.iteration_latency if on.iteration_latency else 0.0
        table.append(
            (
                on.name.replace(" limit=2", ""),
                f"{off.iteration_latency * 1e3:.0f}ms / {off.num_alloc_retries}",
                f"{on.iteration_latency * 1e3:.0f}ms / {on.num_alloc_retries}",
                f"{speedup:.2f}x",
            )
        )
    print_table(
        "Figure 6(c): rate limiter (latency / cudaMalloc retries)",
        ["workload", "no limit", "limit=2", "speedup"],
        table,
    )


if __name__ == "__main__":
    main()
