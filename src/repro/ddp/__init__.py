"""DistributedDataParallel — the model-replication baseline (Section 2.1)."""

from repro.ddp.distributed_data_parallel import DistributedDataParallel

__all__ = ["DistributedDataParallel"]
