"""DistributedDataParallel (DDP) baseline.

Re-implements the design of Li et al. [13] that the paper compares
against (Sections 2.1 and 5.2):

- the full model is replicated on every rank (so memory = parameters +
  gradients + optimizer states + activations, which is what OOMs for
  T5 models above 2.28B on the simulated 80GB device — Figure 6(a));
- gradients are synchronized with AllReduce, bucketed to amortize
  collective launch overhead (default 25 MB buckets, reverse
  registration order like PyTorch);
- AllReduces are issued from post-accumulate-grad hooks as buckets
  fill, overlapping communication with the rest of backward;
- an end-of-backward callback waits for pending AllReduces and copies
  reduced data back into ``param.grad``;
- ``no_sync()`` skips communication for gradient accumulation.
"""

from __future__ import annotations

import contextlib
from typing import Optional

from repro import nn
from repro.autograd.engine import queue_callback
from repro.autograd.grad_mode import no_grad
from repro.distributed import ProcessGroup, ReduceOp, default_group
from repro.tensor import Tensor, cat

__all__ = ["DistributedDataParallel"]

_DEFAULT_BUCKET_CAP = 25 * 2**20  # 25 MiB, PyTorch's default


class _Bucket:
    """A group of parameters whose gradients all-reduce together."""

    def __init__(self, params: list):
        self.params = params
        self.pending = 0
        self.work = None
        self.flat_grad: Optional[Tensor] = None

    def reset(self) -> None:
        self.pending = len(self.params)
        self.work = None
        self.flat_grad = None


class DistributedDataParallel(nn.Module):
    """Replicated data parallelism with bucketed gradient AllReduce."""

    def __init__(
        self,
        module: nn.Module,
        process_group: Optional[ProcessGroup] = None,
        bucket_cap_bytes: int = _DEFAULT_BUCKET_CAP,
        broadcast_parameters: bool = True,
    ):
        super().__init__()
        self.module = module
        self.process_group = process_group or default_group()
        self.bucket_cap_bytes = bucket_cap_bytes
        self.require_backward_grad_sync = True
        self._buckets = self._build_buckets()
        self._hooks = []
        self._backward_prepared = False
        for bucket in self._buckets:
            for param in bucket.params:
                handle = param.register_post_accumulate_grad_hook(
                    self._make_grad_hook(bucket)
                )
                self._hooks.append(handle)
        if broadcast_parameters and self.process_group.world_size > 1:
            self._broadcast_parameters()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _build_buckets(self) -> list[_Bucket]:
        # Reverse order approximates the gradient-ready order in
        # backward, so early buckets fill (and communicate) early.
        params = [p for p in self.module.parameters() if p.requires_grad]
        params.reverse()
        buckets: list[_Bucket] = []
        current: list = []
        current_bytes = 0
        for param in params:
            current.append(param)
            current_bytes += param.nbytes
            if current_bytes >= self.bucket_cap_bytes:
                buckets.append(_Bucket(current))
                current, current_bytes = [], 0
        if current:
            buckets.append(_Bucket(current))
        return buckets

    def _broadcast_parameters(self) -> None:
        with no_grad():
            for param in self.module.parameters():
                self.process_group.broadcast(param.detach(), src=self.process_group.ranks[0])
        for buffer in self.module.buffers():
            self.process_group.broadcast(buffer, src=self.process_group.ranks[0])
        # The broadcasts ran on the group's communication stream; the
        # first forward reads the parameters on the compute stream and
        # must observe the synchronized values.
        device = self.process_group.device
        if device.is_sim_gpu:
            device.default_stream.wait_stream(self.process_group.comm_stream)

    # ------------------------------------------------------------------
    # Forward / backward plumbing
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        if self.require_backward_grad_sync:
            for bucket in self._buckets:
                bucket.reset()
            self._backward_prepared = True
        return self.module(*args, **kwargs)

    def _make_grad_hook(self, bucket: _Bucket):
        def hook(param) -> None:
            if not (self.require_backward_grad_sync and self._backward_prepared):
                return
            bucket.pending -= 1
            if bucket.pending == 0:
                self._launch_bucket(bucket)
                queue_callback(self._finalize_backward_once())

        return hook

    def _finalize_backward_once(self):
        def finalize() -> None:
            if not self._backward_prepared:
                return
            self._backward_prepared = False
            self._copy_back()

        return finalize

    def _launch_bucket(self, bucket: _Bucket) -> None:
        group = self.process_group
        with no_grad():
            grads = [param.grad.flatten() for param in bucket.params]
            flat = cat(grads, 0) if len(grads) > 1 else grads[0]
        # The AllReduce input must be ready: the communication stream
        # waits for the compute stream that produced the gradients.
        group.comm_stream.wait_stream(group.device.default_stream)
        bucket.flat_grad = flat
        bucket.work = group.all_reduce(flat, op=ReduceOp.AVG)

    def _copy_back(self) -> None:
        with no_grad():
            for bucket in self._buckets:
                if bucket.work is None:
                    continue
                # Block the CPU until the collective retires, then copy
                # reduced slices back into each parameter's gradient.
                bucket.work.wait()
                offset = 0
                for param in bucket.params:
                    piece = bucket.flat_grad.narrow(0, offset, param.numel)
                    param.grad.copy_(piece.view(*param.shape))
                    offset += param.numel
                bucket.work = None
                bucket.flat_grad = None

    # ------------------------------------------------------------------
    # Gradient accumulation
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def no_sync(self):
        """Skip gradient synchronization (accumulation iterations)."""
        previous = self.require_backward_grad_sync
        self.require_backward_grad_sync = False
        try:
            yield
        finally:
            self.require_backward_grad_sync = previous
