"""Checkpoint manifest: the commit record of a distributed checkpoint.

A checkpoint directory holds one shard file per saving rank plus a
``MANIFEST.json`` written *last*.  The manifest's presence is the
commit point of the two-phase protocol: readers that do not find a
parseable manifest treat the whole checkpoint as uncommitted, so a
crash between shard writes can never surface a torn checkpoint.

Beyond commit marking, the manifest captures everything a restoring
job with a *different* topology needs in order to reassemble logical
tensors: per-unit flat-parameter layout (``UnitLayout``) including the
per-FQN ``ParamSpec`` offsets into the unpadded flat parameter, and
per-shard integrity checksums (``ShardEntry``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import CheckpointError

__all__ = [
    "ParamSpec",
    "UnitLayout",
    "ShardEntry",
    "CheckpointManifest",
    "MANIFEST_VERSION",
]

MANIFEST_VERSION = 1


@dataclass(frozen=True)
class ParamSpec:
    """One original parameter inside a flat parameter."""

    fqn: str
    shape: tuple[int, ...]
    numel: int
    offset: int  # element offset into the unpadded flat parameter

    def to_json(self) -> dict:
        return {
            "fqn": self.fqn,
            "shape": list(self.shape),
            "numel": self.numel,
            "offset": self.offset,
        }

    @staticmethod
    def from_json(obj: dict) -> "ParamSpec":
        return ParamSpec(
            fqn=obj["fqn"],
            shape=tuple(obj["shape"]),
            numel=obj["numel"],
            offset=obj["offset"],
        )


@dataclass(frozen=True)
class UnitLayout:
    """Sharding layout of one FSDP unit's flat parameter at save time."""

    key: str  # sharded-state-dict key, e.g. "flat_param.003.block2"
    label: str
    total_numel: int
    padded_numel: int
    factor: int  # sharding factor: number of chunks the flat param is split into
    shard_numel: int
    dtype: str
    params: tuple[ParamSpec, ...]

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "label": self.label,
            "total_numel": self.total_numel,
            "padded_numel": self.padded_numel,
            "factor": self.factor,
            "shard_numel": self.shard_numel,
            "dtype": self.dtype,
            "params": [p.to_json() for p in self.params],
        }

    @staticmethod
    def from_json(obj: dict) -> "UnitLayout":
        return UnitLayout(
            key=obj["key"],
            label=obj["label"],
            total_numel=obj["total_numel"],
            padded_numel=obj["padded_numel"],
            factor=obj["factor"],
            shard_numel=obj["shard_numel"],
            dtype=obj["dtype"],
            params=tuple(ParamSpec.from_json(p) for p in obj["params"]),
        )


@dataclass(frozen=True)
class ShardEntry:
    """One rank's shard file plus its declared integrity checksum."""

    path: str
    rank: int
    nbytes: int
    crc32: int

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "rank": self.rank,
            "nbytes": self.nbytes,
            "crc32": self.crc32,
        }

    @staticmethod
    def from_json(obj: dict) -> "ShardEntry":
        return ShardEntry(
            path=obj["path"],
            rank=obj["rank"],
            nbytes=obj["nbytes"],
            crc32=obj["crc32"],
        )


@dataclass
class CheckpointManifest:
    """The commit record for one checkpoint iteration."""

    iteration: int
    world_size: int
    units: tuple[UnitLayout, ...] = ()
    shards: tuple[ShardEntry, ...] = ()
    version: int = MANIFEST_VERSION
    extras: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": self.version,
                "iteration": self.iteration,
                "world_size": self.world_size,
                "units": [u.to_json() for u in self.units],
                "shards": [s.to_json() for s in self.shards],
                "extras": self.extras,
            },
            indent=1,
        )

    @staticmethod
    def from_json(text: str) -> "CheckpointManifest":
        try:
            obj = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(f"manifest unreadable: {exc}") from exc
        try:
            return CheckpointManifest(
                iteration=obj["iteration"],
                world_size=obj["world_size"],
                units=tuple(UnitLayout.from_json(u) for u in obj["units"]),
                shards=tuple(ShardEntry.from_json(s) for s in obj["shards"]),
                version=obj.get("version", MANIFEST_VERSION),
                extras=obj.get("extras", {}),
            )
        except (KeyError, TypeError) as exc:
            raise CheckpointError(f"manifest missing field: {exc}") from exc

    def shard_for_rank(self, rank: int) -> ShardEntry:
        for entry in self.shards:
            if entry.rank == rank:
                return entry
        raise CheckpointError(
            f"manifest for iteration {self.iteration} has no shard for rank {rank} "
            f"(world size at save: {self.world_size})"
        )
