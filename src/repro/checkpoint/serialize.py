"""Checkpoint shard serialization.

A shard payload (a nested structure of dicts / lists / scalars /
tensors) is encoded into one self-describing byte blob::

    MAGIC | header_len (8 bytes LE) | header JSON | tensor data region

The header records the structure; each tensor entry carries its dtype,
shape and an offset into the data region.  Tensors that are *not*
materialized (abstract-mode simulations carry shapes and costs but no
values) contribute zero data bytes — the header still records their
logical ``nbytes`` so manifests and cost models account for the real
checkpoint size.  Checksums are computed over the full blob, so a torn
write or flipped bit in either the header or the data region is caught
by the same CRC verify.
"""

from __future__ import annotations

import json
import zlib
from typing import Any

import numpy as np

from repro import dtypes
from repro.cuda.device import cpu_device, meta_device
from repro.errors import CheckpointError
from repro.tensor import Tensor, empty, tensor

__all__ = ["serialize_state", "deserialize_state", "blob_crc32", "MAGIC"]

MAGIC = b"RPCKPT1\n"


def blob_crc32(blob: bytes) -> int:
    return zlib.crc32(blob) & 0xFFFFFFFF


def _encode(obj: Any, data: list[bytes], cursor: list[int]):
    if isinstance(obj, Tensor):
        detached = obj.detach()
        entry = {
            "__tensor__": True,
            "dtype": detached.dtype.name,
            "shape": list(detached.shape),
            "nbytes": detached.nbytes,
            "materialized": bool(detached.is_materialized),
            "offset": cursor[0],
            "stored": 0,
        }
        if detached.is_materialized:
            # Storage bytes, not logical bytes: bfloat16 is emulated in
            # float32 storage, so ``stored`` can exceed ``nbytes``.
            raw = np.ascontiguousarray(
                detached._np, dtype=detached.dtype.np_dtype
            ).tobytes()
            entry["stored"] = len(raw)
            data.append(raw)
            cursor[0] += len(raw)
        return entry
    if isinstance(obj, dict):
        for key in obj:
            if not isinstance(key, str):
                raise CheckpointError(
                    f"checkpoint dict keys must be strings, got {key!r}"
                )
        return {"__dict__": {k: _encode(v, data, cursor) for k, v in obj.items()}}
    if isinstance(obj, (list, tuple)):
        return {
            "__list__": [_encode(v, data, cursor) for v in obj],
            "tuple": isinstance(obj, tuple),
        }
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise CheckpointError(f"cannot serialize {type(obj).__name__} in a checkpoint")


def serialize_state(obj: Any) -> bytes:
    """Encode a nested payload into one blob (see module docstring)."""
    data: list[bytes] = []
    cursor = [0]
    header = json.dumps(_encode(obj, data, cursor)).encode("utf-8")
    return MAGIC + len(header).to_bytes(8, "little") + header + b"".join(data)


def _decode(entry: Any, data: memoryview):
    if isinstance(entry, dict):
        if entry.get("__tensor__"):
            dtype = dtypes.get(entry["dtype"])
            shape = tuple(entry["shape"])
            if not entry["materialized"]:
                # Abstract-mode tensor: shape/dtype only.  Recreate it
                # on the meta device so downstream ``copy_`` calls are
                # no-ops exactly like the original.
                return empty(*shape, dtype=dtype, device=meta_device())
            start = entry["offset"]
            end = start + entry["stored"]
            if end > len(data):
                raise CheckpointError(
                    f"tensor data region truncated: need {end} bytes, have {len(data)}"
                )
            array = np.frombuffer(data[start:end], dtype=dtype.np_dtype).reshape(shape)
            return tensor(np.array(array), dtype=dtype, device=cpu_device())
        if "__dict__" in entry:
            return {k: _decode(v, data) for k, v in entry["__dict__"].items()}
        if "__list__" in entry:
            items = [_decode(v, data) for v in entry["__list__"]]
            return tuple(items) if entry.get("tuple") else items
    return entry


def deserialize_state(blob: bytes) -> Any:
    """Decode a blob produced by :func:`serialize_state`.

    Raises :class:`CheckpointError` on any structural damage (bad
    magic, truncated header or data region).  Bit flips that keep the
    structure parseable are *not* detected here — that is the
    checksum's job (:meth:`DistributedCheckpointStore.verify`).
    """
    if blob[: len(MAGIC)] != MAGIC:
        raise CheckpointError("not a checkpoint blob (bad magic)")
    if len(blob) < len(MAGIC) + 8:
        raise CheckpointError("checkpoint blob truncated before header length")
    header_len = int.from_bytes(blob[len(MAGIC) : len(MAGIC) + 8], "little")
    header_end = len(MAGIC) + 8 + header_len
    if len(blob) < header_end:
        raise CheckpointError("checkpoint blob truncated inside header")
    try:
        header = json.loads(blob[len(MAGIC) + 8 : header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"checkpoint header unreadable: {exc}") from exc
    return _decode(header, memoryview(blob)[header_end:])
