"""Resilient distributed checkpointing (paper §4.1, made restartable).

The subsystem has four layers:

- :mod:`repro.checkpoint.serialize` — tensor-payload blobs + CRCs;
- :mod:`repro.checkpoint.manifest` — per-checkpoint commit record:
  shard checksums plus the flat-parameter layout metadata that makes
  shards relocatable;
- :mod:`repro.checkpoint.store` — two-phase-committed, integrity-
  verified storage with injectable faults (torn write, bit corruption,
  lost shard) and *verified-good* ``latest()`` semantics;
- :mod:`repro.checkpoint.reshard` — N→M restore across world sizes and
  wrap granularities by reassembling per-FQN logical tensors;
- :mod:`repro.checkpoint.writer` — cost-modeled async snapshots on a
  dedicated stream with background commit.
"""

from repro.checkpoint.manifest import (
    MANIFEST_VERSION,
    CheckpointManifest,
    ParamSpec,
    ShardEntry,
    UnitLayout,
)
from repro.checkpoint.reshard import (
    assemble_full_state,
    layouts_match,
    load_resharded,
    snapshot_payload,
    unit_layouts,
)
from repro.checkpoint.serialize import (
    MAGIC,
    blob_crc32,
    deserialize_state,
    serialize_state,
)
from repro.checkpoint.store import (
    DistributedCheckpointStore,
    InMemoryStorage,
    StorageStats,
)
from repro.checkpoint.writer import (
    DRAIN_BANDWIDTH,
    PCIE_BANDWIDTH,
    AsyncCheckpointWriter,
    CheckpointSaveRecord,
)

__all__ = [
    "ParamSpec",
    "UnitLayout",
    "ShardEntry",
    "CheckpointManifest",
    "MANIFEST_VERSION",
    "serialize_state",
    "deserialize_state",
    "blob_crc32",
    "MAGIC",
    "InMemoryStorage",
    "DistributedCheckpointStore",
    "StorageStats",
    "unit_layouts",
    "snapshot_payload",
    "assemble_full_state",
    "load_resharded",
    "layouts_match",
    "AsyncCheckpointWriter",
    "CheckpointSaveRecord",
    "PCIE_BANDWIDTH",
    "DRAIN_BANDWIDTH",
]
