"""Async checkpoint writer: snapshot on a side stream, commit in background.

The cost model mirrors production async checkpointing (and the D2H
staging copies elsewhere in this codebase, e.g.
``FlatParamHandle._h2d_copy``):

1. **Snapshot (D2H)** — each shard's bytes cross PCIe on a dedicated
   ``checkpoint`` stream.  The copy is issued as a cost-modeled kernel,
   so it lands in the profiler/Chrome trace under its own
   ``checkpoint:save`` scope and naturally overlaps compute running on
   the other streams; only the kernel *launch* overhead touches the
   CPU clock.
2. **Commit (background writer)** — a simulated writer thread drains
   the snapshot to persistent storage at ``drain_bandwidth``.  The
   commit completes at ``snapshot_done + nbytes / drain_bandwidth``
   without blocking the training loop.

``async_=False`` degenerates to synchronous checkpointing: the CPU
clock blocks until the commit time, which is exactly the "exposed"
checkpoint stall the paper's async design removes.  Both flavours keep
per-save accounting so :class:`~repro.perf.metrics.PerfResult` can
report save time, exposed stall and overlap fraction.

Recovery interacts with commit time: a crash at time *t* can only use
checkpoints whose commit finished *before t* — ``committed_iteration``
answers "what would be durable right now", which is what makes async
checkpointing's larger loss-of-work window observable in experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hw.kernel_model import KernelCost

__all__ = ["AsyncCheckpointWriter", "CheckpointSaveRecord", "PCIE_BANDWIDTH", "DRAIN_BANDWIDTH"]

#: Host-link bandwidth for the D2H snapshot copy (matches the PCIe
#: model used by parameter offload staging).
PCIE_BANDWIDTH = 25e9

#: Background-writer drain bandwidth to persistent storage, modeling a
#: parallel filesystem client (slower than PCIe; the commit tail).
DRAIN_BANDWIDTH = 5e9


@dataclass
class CheckpointSaveRecord:
    """Accounting for one checkpoint save on one rank."""

    iteration: int
    nbytes: int
    issue_time: float  # CPU time when the save was issued
    snapshot_done: float  # D2H copy finished (GPU state consistent)
    commit_time: float  # durable on storage
    stall_s: float  # CPU time the training loop lost to this save
    async_: bool


class AsyncCheckpointWriter:
    """Cost-models checkpoint saves for one rank's device."""

    def __init__(
        self,
        device,
        *,
        async_: bool = True,
        pcie_bandwidth: float = PCIE_BANDWIDTH,
        drain_bandwidth: float = DRAIN_BANDWIDTH,
    ):
        self.device = device
        self.async_ = async_
        self.pcie_bandwidth = pcie_bandwidth
        self.drain_bandwidth = drain_bandwidth
        self.stream = (
            device.new_stream("checkpoint") if device is not None and device.is_sim_gpu else None
        )
        self.records: list[CheckpointSaveRecord] = []

    # ------------------------------------------------------------------
    def save(self, *, iteration: int, nbytes: int, dtype=None) -> CheckpointSaveRecord:
        """Issue one shard save; returns its accounting record.

        Must be called at the point in the step where the snapshot is
        taken (parameters/optimizer state consistent) — the D2H kernel
        is ordered on the checkpoint stream after everything already
        enqueued there, like a real ``cudaMemcpyAsync`` on a side
        stream.
        """
        from repro import dtypes

        device = self.device
        issue = device.cpu_time()
        if self.stream is not None and nbytes > 0:
            profiler = getattr(device, "profiler", None)
            if profiler is not None:
                profiler.push_scope(f"checkpoint:save@{iteration}")
            try:
                _, snapshot_done = device.launch(
                    KernelCost(
                        bytes_moved=nbytes * (device.spec.mem_bandwidth / self.pcie_bandwidth)
                    ),
                    dtype or dtypes.uint8,
                    stream=self.stream,
                    label="ckpt-d2h",
                )
            finally:
                if profiler is not None:
                    profiler.pop_scope(f"checkpoint:save@{iteration}")
        else:
            snapshot_done = issue
        commit_time = snapshot_done + (nbytes / self.drain_bandwidth if nbytes else 0.0)
        stall = 0.0
        if not self.async_:
            # Synchronous save: the training loop blocks until durable.
            before = device.cpu_time()
            device.advance_cpu_to(commit_time)
            stall = device.cpu_time() - before
        record = CheckpointSaveRecord(
            iteration=iteration,
            nbytes=nbytes,
            issue_time=issue,
            snapshot_done=snapshot_done,
            commit_time=commit_time,
            stall_s=stall,
            async_=self.async_,
        )
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    def committed_iteration(self, at_time: Optional[float] = None) -> Optional[int]:
        """Newest iteration durably committed by ``at_time``.

        An async save still in flight at crash time is *lost* — this is
        the recovery-semantics difference between sync and async
        checkpointing, and the rewind target elastic recovery must use.
        """
        if at_time is None:
            at_time = self.device.now()
        best: Optional[int] = None
        for record in self.records:
            if record.commit_time <= at_time and (best is None or record.iteration > best):
                best = record.iteration
        return best

    def drain(self) -> None:
        """Block the CPU until every issued save is durable."""
        for record in self.records:
            self.device.advance_cpu_to(record.commit_time)

    # -- aggregate accounting ------------------------------------------
    @property
    def saves(self) -> int:
        return len(self.records)

    @property
    def total_save_s(self) -> float:
        """Wall time from issue to durability, summed over saves."""
        return sum(r.commit_time - r.issue_time for r in self.records)

    @property
    def total_stall_s(self) -> float:
        """CPU time the training loop actually lost (exposed cost)."""
        return sum(r.stall_s for r in self.records)
