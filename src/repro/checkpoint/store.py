"""Integrity-checked distributed checkpoint storage.

Layout (one namespace per job, in-memory by default)::

    ckpt/00000042/shard-00000-of-00004.bin
    ckpt/00000042/shard-00001-of-00004.bin
    ...
    ckpt/00000042/CHECKSUMS.json     # phase 2a: declared per-shard CRCs
    ckpt/00000042/MANIFEST.json      # phase 2b: the commit point

Two-phase commit: every rank first writes its shard file (phase 1);
once all ``world_size`` shards for an iteration have arrived, the
store writes the checksum index and then the manifest (phase 2).  The
manifest is written *last* and its successful parse is the commit
predicate — a crash (or injected torn write) anywhere earlier leaves
an uncommitted directory that readers skip entirely.

Integrity: the declared CRC of each shard is computed from the bytes
the writer *intended* to store.  Injected storage faults (torn write,
bit corruption, lost shard — :class:`repro.distributed.fault.
StorageDecision`) damage the stored object after the CRC is taken,
exactly like real silent-corruption: the checkpoint looks committed
and complete, and only an integrity verify at load time can tell.
``latest(verify=True)`` therefore returns the newest *verified-good*
iteration, quarantining any committed-but-damaged checkpoint it finds
on the way down.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.checkpoint.manifest import CheckpointManifest, ShardEntry, UnitLayout
from repro.checkpoint.serialize import blob_crc32, deserialize_state
from repro.distributed.fault import FaultInjector, StorageDecision
from repro.errors import CheckpointCorruptionError, CheckpointError

__all__ = ["InMemoryStorage", "DistributedCheckpointStore", "StorageStats"]


@dataclass
class StorageStats:
    """Byte/op counters maintained by :class:`InMemoryStorage`."""

    writes: int = 0
    reads: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    faults_applied: int = 0


class InMemoryStorage:
    """A flat path → bytes object store with injectable write faults.

    Stands in for a parallel filesystem / object store.  Writes consult
    the fault injector *after* the caller has computed any checksum, so
    damage is silent until an integrity verify reads the object back.
    """

    def __init__(self, *, injector: Optional[FaultInjector] = None):
        self.injector = injector
        self.stats = StorageStats()
        self._objects: dict[str, bytes] = {}
        self._lock = threading.Lock()

    # -- write path ----------------------------------------------------
    def write(
        self, path: str, blob: bytes, *, rank: int = 0, iteration: int = 0
    ) -> None:
        decision = StorageDecision()
        if self.injector is not None:
            decision = self.injector.on_storage_write(
                rank=rank, iteration=iteration, path=path
            )
        stored: Optional[bytes] = blob
        if decision.lost:
            stored = None
        elif decision.torn:
            # Keep a prefix: the classic torn write (crash mid-flush).
            stored = blob[: max(1, len(blob) // 2)]
        elif decision.corrupt_bit is not None and blob:
            bit = decision.corrupt_bit % (len(blob) * 8)
            damaged = bytearray(blob)
            damaged[bit // 8] ^= 1 << (bit % 8)
            stored = bytes(damaged)
        with self._lock:
            self.stats.writes += 1
            self.stats.bytes_written += len(blob)
            if not decision.benign:
                self.stats.faults_applied += 1
            if stored is None:
                self._objects.pop(path, None)
            else:
                self._objects[path] = stored

    # -- read path -----------------------------------------------------
    def read(self, path: str) -> bytes:
        with self._lock:
            try:
                blob = self._objects[path]
            except KeyError:
                raise CheckpointError(f"storage object not found: {path}") from None
            self.stats.reads += 1
            self.stats.bytes_read += len(blob)
            return blob

    def exists(self, path: str) -> bool:
        with self._lock:
            return path in self._objects

    def delete_prefix(self, prefix: str) -> int:
        with self._lock:
            doomed = [p for p in self._objects if p.startswith(prefix)]
            for path in doomed:
                del self._objects[path]
            return len(doomed)

    def list(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(p for p in self._objects if p.startswith(prefix))


@dataclass
class _PendingCheckpoint:
    world_size: int
    units: tuple[UnitLayout, ...]
    shards: dict[int, ShardEntry] = field(default_factory=dict)


class DistributedCheckpointStore:
    """Manifest-committed, checksum-verified sharded checkpoints."""

    def __init__(
        self,
        *,
        storage: Optional[InMemoryStorage] = None,
        injector: Optional[FaultInjector] = None,
        prefix: str = "ckpt",
    ):
        if storage is None:
            storage = InMemoryStorage(injector=injector)
        elif injector is not None and storage.injector is None:
            storage.injector = injector
        self.storage = storage
        self.prefix = prefix
        self._pending: dict[int, _PendingCheckpoint] = {}
        self._quarantined: set[int] = set()
        self._verified: set[int] = set()
        self._lock = threading.Lock()

    # -- paths ---------------------------------------------------------
    def _dir(self, iteration: int) -> str:
        return f"{self.prefix}/{iteration:08d}"

    def shard_path(self, iteration: int, rank: int, world_size: int) -> str:
        return f"{self._dir(iteration)}/shard-{rank:05d}-of-{world_size:05d}.bin"

    def manifest_path(self, iteration: int) -> str:
        return f"{self._dir(iteration)}/MANIFEST.json"

    def checksums_path(self, iteration: int) -> str:
        return f"{self._dir(iteration)}/CHECKSUMS.json"

    # -- save (phase 1 per rank, phase 2 on last arrival) --------------
    def save_shard(
        self,
        *,
        iteration: int,
        rank: int,
        world_size: int,
        blob: bytes,
        units: tuple[UnitLayout, ...] = (),
        extras: Optional[dict] = None,
    ) -> int:
        """Store one rank's shard; commit the checkpoint when all arrive.

        Returns the number of bytes handed to storage.  The declared
        CRC is computed *here*, from the intended bytes — injected
        storage damage happens downstream and stays invisible until an
        integrity verify.
        """
        path = self.shard_path(iteration, rank, world_size)
        entry = ShardEntry(
            path=path, rank=rank, nbytes=len(blob), crc32=blob_crc32(blob)
        )
        self.storage.write(path, blob, rank=rank, iteration=iteration)
        with self._lock:
            pending = self._pending.get(iteration)
            if pending is None:
                pending = self._pending[iteration] = _PendingCheckpoint(
                    world_size=world_size, units=tuple(units)
                )
            elif pending.world_size != world_size:
                raise CheckpointError(
                    f"iteration {iteration}: rank {rank} saving with world size "
                    f"{world_size}, but {pending.world_size} shards already pending"
                )
            if units and not pending.units:
                pending.units = tuple(units)
            pending.shards[rank] = entry
            complete = len(pending.shards) == world_size
            if complete:
                del self._pending[iteration]
        if complete:
            self._commit(iteration, pending, extras or {})
        return len(blob)

    def _commit(
        self, iteration: int, pending: _PendingCheckpoint, extras: dict
    ) -> None:
        shards = tuple(pending.shards[r] for r in sorted(pending.shards))
        manifest = CheckpointManifest(
            iteration=iteration,
            world_size=pending.world_size,
            units=pending.units,
            shards=shards,
            extras=extras,
        )
        # Phase 2a: checksum index (redundant with the manifest, but it
        # makes the commit ordering observable: shards → checksums →
        # manifest).  Phase 2b: the manifest itself — the commit point.
        checksums = "\n".join(f"{s.crc32:08x}  {s.path}" for s in shards)
        self.storage.write(
            self.checksums_path(iteration),
            checksums.encode("utf-8"),
            rank=-1,
            iteration=iteration,
        )
        self.storage.write(
            self.manifest_path(iteration),
            manifest.to_json().encode("utf-8"),
            rank=-1,
            iteration=iteration,
        )
        with self._lock:
            # A re-save of a previously damaged iteration repairs it.
            self._quarantined.discard(iteration)
            self._verified.discard(iteration)

    # -- read ----------------------------------------------------------
    def manifest(self, iteration: int) -> Optional[CheckpointManifest]:
        """The committed manifest, or ``None`` if uncommitted/unparseable."""
        try:
            text = self.storage.read(self.manifest_path(iteration)).decode("utf-8")
            return CheckpointManifest.from_json(text)
        except (CheckpointError, UnicodeDecodeError):
            return None

    def committed_iterations(self) -> list[int]:
        suffix = "/MANIFEST.json"
        out = []
        for path in self.storage.list(self.prefix + "/"):
            if path.endswith(suffix):
                out.append(int(path[len(self.prefix) + 1 : -len(suffix)]))
        return sorted(out)

    def verify(self, iteration: int) -> bool:
        """Check every shard of a committed checkpoint against its CRC."""
        with self._lock:
            if iteration in self._verified:
                return True
        manifest = self.manifest(iteration)
        if manifest is None:
            return False
        for entry in manifest.shards:
            try:
                blob = self.storage.read(entry.path)
            except CheckpointError:
                return False
            if len(blob) != entry.nbytes or blob_crc32(blob) != entry.crc32:
                return False
        with self._lock:
            self._verified.add(iteration)
        return True

    def quarantine(self, iteration: int) -> None:
        with self._lock:
            self._quarantined.add(iteration)
            self._verified.discard(iteration)

    @property
    def quarantined(self) -> frozenset[int]:
        with self._lock:
            return frozenset(self._quarantined)

    def latest(self, *, verify: bool = True) -> Optional[int]:
        """Newest usable iteration.

        With ``verify=True`` (the default) this is the newest
        *verified-good* checkpoint: committed-but-damaged iterations are
        quarantined as they are discovered and the scan continues
        downward.  With ``verify=False`` it is merely the newest
        *committed* one — the pre-integrity behaviour, kept for
        measuring how often that distinction matters.
        """
        for iteration in reversed(self.committed_iterations()):
            with self._lock:
                if iteration in self._quarantined:
                    continue
            if not verify:
                return iteration
            if self.verify(iteration):
                return iteration
            self.quarantine(iteration)
        return None

    def load_shard(self, iteration: int, rank: int):
        """Load + integrity-check one rank's payload from a committed checkpoint.

        Raises :class:`CheckpointCorruptionError` when the stored bytes
        do not match the declared checksum (or are missing/truncated),
        after quarantining the iteration.
        """
        manifest = self.manifest(iteration)
        if manifest is None:
            raise CheckpointError(f"iteration {iteration} is not committed")
        entry = manifest.shard_for_rank(rank)
        try:
            blob = self.storage.read(entry.path)
        except CheckpointError:
            self.quarantine(iteration)
            raise CheckpointCorruptionError(
                f"shard {entry.path} lost (declared {entry.nbytes} bytes)",
                iteration=iteration,
                path=entry.path,
                expected_crc=entry.crc32,
            ) from None
        actual = blob_crc32(blob)
        if len(blob) != entry.nbytes or actual != entry.crc32:
            self.quarantine(iteration)
            raise CheckpointCorruptionError(
                f"shard {entry.path} failed integrity check: "
                f"declared crc {entry.crc32:08x} ({entry.nbytes} bytes), "
                f"stored crc {actual:08x} ({len(blob)} bytes)",
                iteration=iteration,
                path=entry.path,
                expected_crc=entry.crc32,
                actual_crc=actual,
            )
        return deserialize_state(blob)

    def read_all(self, iteration: int):
        """Load every shard of a checkpoint (for resharded restores).

        Returns ``(manifest, payloads)`` where ``payloads[rank]`` is the
        deserialized payload saved by ``rank``.
        """
        manifest = self.manifest(iteration)
        if manifest is None:
            raise CheckpointError(f"iteration {iteration} is not committed")
        payloads = {
            entry.rank: self.load_shard(iteration, entry.rank)
            for entry in manifest.shards
        }
        return manifest, payloads
