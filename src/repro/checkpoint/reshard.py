"""Resharded checkpoint restore: N ranks → M ranks, any wrap granularity.

A sharded checkpoint is a set of per-rank flat-parameter chunks plus
the :class:`~repro.checkpoint.manifest.UnitLayout` metadata describing
how each FSDP unit was flattened and chunked at save time.  That
metadata is enough to reverse the layout entirely offline:

1. **reassemble** — for every unit, concatenate its saved chunks in
   shard-index order, drop the padding, and slice the unpadded flat
   parameter back into per-FQN logical tensors using the recorded
   ``ParamSpec`` offsets (the paper's §4.1 sharded state dict, run in
   reverse);
2. **scatter** — hand the resulting consolidated state dicts to
   :func:`repro.fsdp.state_dict.load_full_state_dict` and
   :func:`repro.fsdp.optim_state.load_full_optim_state_dict`, which
   already know how to slice logical tensors into whatever layout the
   *restoring* model uses.

Because step 1 depends only on the manifest and step 2 only on the new
model, the two layouts never need to agree: world size, sharding
factor and wrap granularity can all change between save and restore,
and optimizer state (sharded identically to its FlatParameter) rides
along for free.  No communication is involved — every restoring rank
reads the shards it needs and keeps only its own slice.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro import dtypes
from repro.checkpoint.manifest import CheckpointManifest, ParamSpec, UnitLayout
from repro.errors import CheckpointError, ShardLayoutError
from repro.fsdp.optim_state import load_full_optim_state_dict
from repro.fsdp.state_dict import (
    _handles_under,
    _join,
    _module_fqns,
    load_full_state_dict,
    load_sharded_state_dict,
    sharded_state_dict,
)
from repro.nn.module import Module
from repro.tensor import Tensor, tensor

__all__ = [
    "unit_layouts",
    "snapshot_payload",
    "assemble_full_state",
    "load_resharded",
    "layouts_match",
]


def unit_layouts(root: Module) -> tuple[UnitLayout, ...]:
    """Describe the model's current shard layout for a manifest."""
    fqns = _module_fqns(root)
    layouts = []
    for index, handle in enumerate(_handles_under(root)):
        if getattr(handle, "is_per_param", False):
            # One layout per parameter, keyed by FQN.  FQNs are stable
            # across wrap granularities, so two models that group the
            # same parameters into different per-parameter units still
            # produce identical layout sets — sorted for
            # order-robustness (see ``layouts_match``).
            per_param = []
            for sp in handle.sharded_params:
                fqn = _join(fqns[id(sp.module)], sp.name)
                rows = sp.shape[0] if sp.shape else 1
                row_numel = sp.numel // rows if rows else 0
                base_chunk = (-(-rows // sp.sharding_factor)) * row_numel
                per_param.append(
                    UnitLayout(
                        key=f"per_param.{fqn}",
                        label=handle.label,
                        total_numel=sp.numel,
                        padded_numel=sp.numel,
                        factor=sp.sharding_factor,
                        shard_numel=min(base_chunk, sp.numel),
                        dtype=sp.full_precision_dtype.name,
                        params=(
                            ParamSpec(
                                fqn=fqn,
                                shape=tuple(sp.shape),
                                numel=sp.numel,
                                offset=0,
                            ),
                        ),
                    )
                )
            layouts.extend(sorted(per_param, key=lambda u: u.key))
            continue
        key = f"flat_param.{index:03d}.{handle.label}"
        specs: list[ParamSpec] = []
        seen: set[tuple[str, int]] = set()
        for info in handle.param_infos:
            fqn = _join(fqns[id(info.module)], info.name)
            if (fqn, info.offset) in seen:
                continue
            seen.add((fqn, info.offset))
            specs.append(
                ParamSpec(
                    fqn=fqn,
                    shape=tuple(info.shape),
                    numel=info.numel,
                    offset=info.offset,
                )
            )
        layouts.append(
            UnitLayout(
                key=key,
                label=handle.label,
                total_numel=handle.total_numel,
                padded_numel=handle.padded_numel,
                factor=handle.sharding_factor,
                shard_numel=handle.shard_numel,
                dtype=handle._local_shard.dtype.name,
                params=tuple(specs),
            )
        )
    return tuple(layouts)


def snapshot_payload(
    root: Module, optimizer: Optional[object] = None, *, copy: bool = True
) -> dict:
    """One rank's checkpoint payload: model + optimizer shards + metadata.

    ``shard_index`` records which chunk of each unit's flat parameter
    this rank holds — under hybrid layouts that need not equal the
    global rank, and reassembly keys chunks by it, not by saver rank.
    """
    from repro.fsdp.optim_state import sharded_optim_state_dict

    fqns = _module_fqns(root)
    shard_index: dict[str, int] = {}
    for index, handle in enumerate(_handles_under(root)):
        if getattr(handle, "is_per_param", False):
            for sp in handle.sharded_params:
                key = f"per_param.{_join(fqns[id(sp.module)], sp.name)}"
                shard_index[key] = handle.shard_group.rank
        else:
            shard_index[f"flat_param.{index:03d}.{handle.label}"] = (
                handle.shard_group.rank
            )
    payload: dict = {
        "model": sharded_state_dict(root, copy=copy),
        "shard_index": shard_index,
    }
    if optimizer is not None:
        payload["optim"] = sharded_optim_state_dict(root, optimizer, copy=copy)
    buffers: dict[str, Tensor] = {}
    for module in root.modules():
        if id(module) not in fqns:
            continue
        for name, buffer in module._buffers.items():
            if buffer is not None and buffer.is_materialized:
                buffers[_join(fqns[id(module)], name)] = buffer.detach()
    if buffers:
        payload["buffers"] = buffers
    return payload


def _chunks_by_index(
    unit: UnitLayout, payloads: dict[int, dict], section: str, name: str = ""
) -> list[np.ndarray]:
    """Collect one chunk per shard index for a unit, in index order."""
    chunks: dict[int, np.ndarray] = {}
    for rank, payload in payloads.items():
        index = payload.get("shard_index", {}).get(unit.key, rank)
        if index in chunks:
            continue  # replica under a hybrid layout
        if section == "model":
            entry = payload.get("model", {}).get(unit.key)
        else:
            entry = payload.get("optim", {}).get("state", {}).get(unit.key, {}).get(name)
        if entry is None:
            continue
        if not isinstance(entry, Tensor) or not entry.is_materialized:
            raise CheckpointError(
                f"resharded restore requires materialized shard tensors "
                f"(unit {unit.key!r}, rank {rank})"
            )
        chunks[index] = entry.numpy().reshape(-1)
    missing = [i for i in range(unit.factor) if i not in chunks]
    if missing:
        raise CheckpointError(
            f"unit {unit.key!r}: missing shard chunk(s) {missing} "
            f"(need {unit.factor}, have {sorted(chunks)})"
        )
    return [chunks[i] for i in range(unit.factor)]


def _slice_params(
    unit: UnitLayout, flat: np.ndarray, dtype: dtypes.DType
) -> "OrderedDict[str, Tensor]":
    out: "OrderedDict[str, Tensor]" = OrderedDict()
    for spec in unit.params:
        values = flat[spec.offset : spec.offset + spec.numel].reshape(spec.shape)
        out[spec.fqn] = tensor(np.array(values), dtype=dtype)
    return out


def assemble_full_state(
    manifest: CheckpointManifest, payloads: dict[int, dict]
) -> tuple[dict, Optional[dict]]:
    """Rebuild consolidated (full) model + optimizer state dicts.

    ``payloads`` maps saver rank → deserialized payload (from
    :meth:`DistributedCheckpointStore.read_all`).  Returns
    ``(model_state, optim_state)``; ``optim_state`` is ``None`` when no
    payload carried optimizer state.
    """
    if not manifest.units:
        raise CheckpointError(
            f"manifest for iteration {manifest.iteration} has no unit layouts; "
            "cannot reshard"
        )
    model_state: "OrderedDict[str, Tensor]" = OrderedDict()
    optim_entries: "OrderedDict[str, dict]" = OrderedDict()
    have_optim = any("optim" in p for p in payloads.values())
    for unit in manifest.units:
        dtype = dtypes.get(unit.dtype)
        chunks = _chunks_by_index(unit, payloads, "model")
        flat = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
        if flat.size != unit.padded_numel:
            raise CheckpointError(
                f"unit {unit.key!r}: reassembled {flat.size} elements, "
                f"manifest declares {unit.padded_numel}"
            )
        model_state.update(_slice_params(unit, flat[: unit.total_numel], dtype))

        if not have_optim:
            continue
        # Tensor state names + scalars from any payload holding this unit.
        names: set[str] = set()
        scalars: dict[str, object] = {}
        for payload in payloads.values():
            entry = payload.get("optim", {}).get("state", {}).get(unit.key)
            if not entry:
                continue
            for name, value in entry.items():
                if isinstance(value, Tensor):
                    names.add(name)
                else:
                    scalars[name] = value
        per_fqn: dict[str, dict] = {
            spec.fqn: dict(scalars) for spec in unit.params
        }
        for name in sorted(names):
            chunks = _chunks_by_index(unit, payloads, "optim", name)
            flat = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
            sliced = _slice_params(unit, flat[: unit.total_numel], dtype)
            for fqn, value in sliced.items():
                per_fqn[fqn][name] = value
        optim_entries.update(per_fqn)

    optim_state: Optional[dict] = None
    if have_optim:
        param_groups = []
        for payload in payloads.values():
            groups = payload.get("optim", {}).get("param_groups")
            if groups:
                param_groups = [dict(g) for g in groups]
                break
        for group in param_groups:
            group["params"] = sorted(optim_entries.keys())
        optim_state = {"state": optim_entries, "param_groups": param_groups}

    for payload in payloads.values():
        for fqn, buffer in payload.get("buffers", {}).items():
            model_state.setdefault(fqn, buffer)
    return model_state, optim_state


def layouts_match(root: Module, manifest: CheckpointManifest) -> bool:
    """True when the model's live layout equals the manifest's exactly
    (same unit keys, sharding factors and chunk sizes) — the cheap
    same-layout load path applies and no reassembly is needed.
    """
    live = unit_layouts(root)
    if len(live) != len(manifest.units):
        return False

    def _same(a: UnitLayout, b: UnitLayout) -> bool:
        return (
            a.key == b.key
            and a.factor == b.factor
            and a.shard_numel == b.shard_numel
            and a.padded_numel == b.padded_numel
        )

    # Flat-param units are compared positionally (unit keys encode the
    # wrap order); per-parameter units are compared as a keyed set —
    # FQN keys are stable across wrap granularities, so a model that
    # regroups the same parameters into different units still matches
    # and takes the cheap same-FQN load path.
    live_flat = [u for u in live if not u.key.startswith("per_param.")]
    mani_flat = [u for u in manifest.units if not u.key.startswith("per_param.")]
    if len(live_flat) != len(mani_flat):
        return False
    for a, b in zip(live_flat, mani_flat):
        if not _same(a, b):
            return False
    live_pp = {u.key: u for u in live if u.key.startswith("per_param.")}
    mani_pp = {u.key: u for u in manifest.units if u.key.startswith("per_param.")}
    if set(live_pp) != set(mani_pp):
        return False
    return all(_same(live_pp[k], mani_pp[k]) for k in live_pp)


def load_resharded(
    root: Module,
    optimizer: Optional[object] = None,
    *,
    manifest: CheckpointManifest,
    payloads: dict[int, dict],
) -> None:
    """Restore a checkpoint into a model of *any* layout.

    Fast path: when the live layout matches the manifest and this
    rank's original shard is present, load it directly.  Otherwise
    reassemble per-FQN logical tensors and scatter them through the
    full-state loaders.
    """
    if layouts_match(root, manifest):
        handles = _handles_under(root)
        if handles:
            rank = handles[0].shard_group.rank
            payload = payloads.get(rank)
            if payload is not None and "model" in payload:
                load_sharded_state_dict(root, payload["model"])
                if optimizer is not None and "optim" in payload:
                    from repro.fsdp.optim_state import load_sharded_optim_state_dict

                    load_sharded_optim_state_dict(root, optimizer, payload["optim"])
                return
    model_state, optim_state = assemble_full_state(manifest, payloads)
    try:
        load_full_state_dict(root, model_state)
    except KeyError as exc:
        raise ShardLayoutError(
            f"checkpoint from iteration {manifest.iteration} does not cover the "
            f"restoring model: {exc}",
            key=str(exc),
        ) from exc
    if optimizer is not None and optim_state is not None:
        load_full_optim_state_dict(root, optimizer, optim_state)
