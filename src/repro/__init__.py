"""repro — a from-scratch reproduction of PyTorch FSDP (VLDB 2023).

The package layers:

- a numpy-backed tensor library with reverse-mode autograd
  (:mod:`repro.tensor`, :mod:`repro.autograd`, :mod:`repro.ops`);
- a simulated multi-GPU runtime — streams, events, caching allocator,
  cost models (:mod:`repro.cuda`, :mod:`repro.hw`);
- collective communication over simulated clusters
  (:mod:`repro.distributed`);
- module/optimizer substrates (:mod:`repro.nn`, :mod:`repro.optim`);
- the paper's contribution, FullyShardedDataParallel
  (:mod:`repro.fsdp`), plus the DistributedDataParallel baseline
  (:mod:`repro.ddp`);
- paper-scale model definitions, a performance driver and benchmark
  harnesses (:mod:`repro.models`, :mod:`repro.perf`, :mod:`repro.bench`).
"""

from repro import dtypes
from repro.dtypes import bfloat16, bool_, float16, float32, float64, int32, int64
from repro.random import manual_seed
from repro.tensor import (
    Tensor,
    arange,
    cat,
    empty,
    empty_like,
    full,
    ones,
    ones_like,
    rand,
    randn,
    stack,
    tensor,
    zeros,
    zeros_like,
)
from repro.autograd import enable_grad, is_grad_enabled, no_grad
from repro.cuda import Device, cpu_device, meta_device

__version__ = "1.0.0"

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "empty",
    "full",
    "randn",
    "rand",
    "arange",
    "cat",
    "stack",
    "zeros_like",
    "ones_like",
    "empty_like",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "manual_seed",
    "Device",
    "cpu_device",
    "meta_device",
    "dtypes",
    "float32",
    "float16",
    "bfloat16",
    "float64",
    "int64",
    "int32",
    "bool_",
    "__version__",
]
