"""Tensor storage: a reference-counted buffer on one device.

Storages on simulated GPUs go through the caching allocator, so their
lifetime drives the memory statistics of Figure 8.  The buffer itself
is either a real flat numpy array (functional mode) or ``None``
(abstract mode, used for paper-scale models whose data would not fit
in host memory — shapes, costs and allocations still flow normally).

Freeing relies on CPython reference counting: when the last tensor view
of a storage is collected, ``__del__`` returns the block to the
allocator at the *current simulated CPU time* — matching how the real
caching allocator observes frees from the host thread.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import dtypes
from repro.cuda.device import Device

__all__ = ["Storage"]


class Storage:
    """A flat buffer of ``numel`` elements of ``dtype`` on ``device``."""

    __slots__ = ("device", "dtype", "numel", "nbytes", "data", "block", "freed", "__weakref__")

    def __init__(
        self,
        device: Device,
        dtype: dtypes.DType,
        numel: int,
        *,
        materialize: Optional[bool] = None,
        data: Optional[np.ndarray] = None,
    ):
        self.device = device
        self.dtype = dtype
        self.numel = int(numel)
        self.nbytes = self.numel * dtype.itemsize
        self.block = None
        self.freed = False
        if device.is_sim_gpu:
            self.block = device.allocator.allocate(self.nbytes, device.current_stream)
        if data is not None:
            if data.size != self.numel:
                raise ValueError(f"data has {data.size} elements, expected {self.numel}")
            self.data: Optional[np.ndarray] = np.ascontiguousarray(
                data.reshape(-1), dtype=dtype.np_dtype
            )
        else:
            if materialize is None:
                materialize = not device.is_meta and getattr(device, "materialize_data", True)
            if materialize and not device.is_meta:
                self.data = np.zeros(self.numel, dtype=dtype.np_dtype)
            else:
                self.data = None

    @property
    def is_materialized(self) -> bool:
        return self.data is not None

    def free(self) -> None:
        """Return the block to the allocator (idempotent)."""
        if self.freed:
            return
        self.freed = True
        if self.block is not None and self.device.allocator is not None:
            self.device.allocator.free(self.block)
            self.block = None
        self.data = None

    # ------------------------------------------------------------------
    # FSDP's storage resize mechanism: ``tensor.storage().resize_(0)``
    # frees the unsharded FlatParameter's memory while every view (and
    # every activation saved by autograd) keeps aliasing this object;
    # ``resize_(numel)`` re-attaches fresh memory before the AllGather
    # refills it (Sections 3.2.1 and 4.2).
    # ------------------------------------------------------------------
    def release(self) -> None:
        """Free the underlying memory, keeping this storage object alive."""
        if self.freed:
            return
        if self.block is not None and self.device.allocator is not None:
            self.device.allocator.free(self.block)
            self.block = None
        self.data = None

    @property
    def is_released(self) -> bool:
        return self.block is None and self.data is None and not self.freed

    def reallocate(self, *, materialize: Optional[bool] = None) -> None:
        """Attach fresh memory (allocated on the device's current stream)."""
        if self.freed:
            raise RuntimeError("cannot reallocate a freed storage")
        if self.block is not None or self.data is not None:
            return
        if self.device.is_sim_gpu:
            self.block = self.device.allocator.allocate(
                self.nbytes, self.device.current_stream
            )
        if materialize is None:
            materialize = not self.device.is_meta and getattr(
                self.device, "materialize_data", True
            )
        if materialize and not self.device.is_meta:
            self.data = np.zeros(self.numel, dtype=self.dtype.np_dtype)

    def __del__(self):  # pragma: no cover - exercised indirectly
        try:
            self.free()
        except Exception:
            pass
