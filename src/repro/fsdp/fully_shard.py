"""``fully_shard`` — the non-intrusive module annotator (Section 4).

Instead of replacing the module with a wrapper, ``fully_shard``
installs FSDP logic as forward pre/post hooks via
``register_forward_pre_hook`` / ``register_forward_hook``, preserving
both the model structure and parameter fully-qualified names.  Apply it
bottom-up (inner blocks first, the root module last); the root's first
forward performs lazy runtime initialization.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import distributed as dist
from repro.cuda.device import Device
from repro.distributed import ProcessGroup
from repro.errors import FsdpError
from repro.fsdp.api import (
    _collect_unit_params,
    _init_runtime_for_root,
    _materialize_unit_params,
    _move_buffers,
)
from repro.fsdp.flat_param import FlatParamHandle
from repro.fsdp.mixed_precision import MixedPrecision
from repro.fsdp.runtime import BackwardPrefetch, FsdpUnit, RATE_LIMIT_INFLIGHT
from repro.fsdp.sharding import ShardingStrategy, make_process_groups
from repro.nn.module import Module

__all__ = ["fully_shard"]


def fully_shard(
    module: Module,
    process_group: Optional[ProcessGroup] = None,
    *,
    sharding_strategy: ShardingStrategy = ShardingStrategy.FULL_SHARD,
    sharding_factor: Optional[int] = None,
    mixed_precision: Optional[MixedPrecision] = None,
    backward_prefetch: BackwardPrefetch = BackwardPrefetch.BACKWARD_PRE,
    forward_prefetch: bool = False,
    limit_all_gathers: bool = True,
    rate_limit_inflight: int = RATE_LIMIT_INFLIGHT,
    cpu_offload=None,
    device: Optional[Device] = None,
    param_init_fn: Optional[Callable[[Module], None]] = None,
) -> Module:
    """Annotate ``module`` as one FSDP unit; returns the same module."""
    if getattr(module, "_fsdp_unit", None) is not None:
        raise FsdpError("module is already annotated with fully_shard")
    device = device or dist.get_device()

    plan = make_process_groups(
        sharding_strategy, process_group, sharding_factor=sharding_factor
    )
    triples = _collect_unit_params(module)
    _materialize_unit_params(triples, device, param_init_fn)
    triples = _collect_unit_params(module)
    _move_buffers(module, device, mixed_precision)

    handle: Optional[FlatParamHandle] = None
    if triples:
        mp = mixed_precision
        handle = FlatParamHandle(
            triples,
            device,
            plan.shard_group,
            param_dtype=mp.param_dtype if mp else None,
            reduce_dtype=mp.resolved_reduce_dtype() if mp else None,
            keep_low_precision_grads=mp.keep_low_precision_grads if mp else False,
            offload_params=bool(cpu_offload and cpu_offload.offload_params),
            label=type(module).__name__,
        )
        # FQN preservation: the FlatParameter is registered on the
        # annotated module itself, not on a wrapper.
        module.register_parameter("_flat_param", handle.flat_param)

    unit = FsdpUnit(handle, plan, label=type(module).__name__)
    object.__setattr__(module, "_fsdp_unit", unit)

    config = dict(
        backward_prefetch=backward_prefetch,
        forward_prefetch=forward_prefetch,
        limit_all_gathers=limit_all_gathers,
        rate_limit_inflight=rate_limit_inflight,
    )

    def _pre_hook(mod: Module, args):
        if unit.runtime is None:
            _init_runtime_for_root(mod, unit, device, config)
        new_args = args
        if unit.is_root:
            from repro.fsdp.api import _cast_forward_inputs

            new_args, _ = _cast_forward_inputs(mixed_precision, args, {})
        unit.pre_forward()
        return new_args

    def _post_hook(mod: Module, args, output):
        return unit.post_forward(output)

    module.register_forward_pre_hook(_pre_hook)
    module.register_forward_hook(_post_hook)
    return module
