"""``fully_shard`` — the non-intrusive module annotator (Section 4).

Instead of replacing the module with a wrapper, ``fully_shard``
installs FSDP logic as forward pre/post hooks via
``register_forward_pre_hook`` / ``register_forward_hook``, preserving
both the model structure and parameter fully-qualified names.  Apply it
bottom-up (inner blocks first, the root module last); the root's first
forward performs lazy runtime initialization.

Two sharding backends are available:

- ``backend="flat_param"`` (default): flatten-concat-chunk into one
  FlatParameter per unit (Section 3.2.1);
- ``backend="per_param"``: each parameter sharded individually on
  dim 0 over a :class:`~repro.distributed.mesh.DeviceMesh` — the
  FSDP2-style rewrite with zero padding and per-FQN state
  (:mod:`repro.fsdp.per_param`).

Every unit *claims* the parameters it shards (an ``_fsdp_param_owner``
mark on the module and parameter objects).  The claims make nested
per-parameter units composable (an outer unit skips what inner units
own) and turn the two classic mis-uses — annotating the same module
twice, or annotating a module whose parameters were already taken by
an ancestor unit (top-down application) — into typed
:class:`FsdpError`\\ s naming the offending module path.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import distributed as dist
from repro.cuda.device import Device
from repro.distributed import ProcessGroup
from repro.distributed.mesh import DeviceMesh
from repro.errors import FsdpError
from repro.fsdp.api import (
    _collect_unit_params,
    _init_runtime_for_root,
    _materialize_unit_params,
    _move_buffers,
)
from repro.fsdp.flat_param import FlatParamHandle
from repro.fsdp.mixed_precision import MixedPrecision
from repro.fsdp.per_param import PerParamHandle
from repro.fsdp.runtime import BackwardPrefetch, FsdpUnit, RATE_LIMIT_INFLIGHT
from repro.fsdp.sharding import ShardingPlan, ShardingStrategy, make_process_groups
from repro.nn.module import Module

__all__ = ["fully_shard"]

_BACKENDS = ("flat_param", "per_param")


def _check_ancestor_claims(module: Module) -> None:
    """Reject annotation when an ancestor unit already owns parameters.

    Applying ``fully_shard`` top-down assigns every parameter to the
    outermost unit; a later annotation of an inner module would
    silently become an empty container (flat backend) or double-shard
    (per-parameter backend).  Surface the ordering mistake instead.
    """
    subtree_units = {
        id(m._fsdp_unit)
        for m in module.modules()
        if getattr(m, "_fsdp_unit", None) is not None
    }
    for path, sub in module.named_modules():
        owner = getattr(sub, "_fsdp_param_owner", None)
        if owner is not None and id(owner) not in subtree_units:
            where = path or "."
            raise FsdpError(
                f"cannot apply fully_shard to {type(module).__name__!r}: parameters "
                f"of submodule {where!r} already belong to FSDP unit "
                f"{owner.label!r} assigned at an ancestor module; apply "
                "fully_shard bottom-up (inner modules first, root last)"
            )


def _unclaimed(triples):
    return [
        (mod, name, param)
        for mod, name, param in triples
        if getattr(param, "_fsdp_param_owner", None) is None
    ]


def fully_shard(
    module: Module,
    process_group: Optional[ProcessGroup] = None,
    *,
    backend: str = "flat_param",
    mesh: Optional[DeviceMesh] = None,
    sharding_strategy: ShardingStrategy = ShardingStrategy.FULL_SHARD,
    sharding_factor: Optional[int] = None,
    mixed_precision: Optional[MixedPrecision] = None,
    backward_prefetch: BackwardPrefetch = BackwardPrefetch.BACKWARD_PRE,
    forward_prefetch: bool = False,
    limit_all_gathers: bool = True,
    rate_limit_inflight: int = RATE_LIMIT_INFLIGHT,
    cpu_offload=None,
    device: Optional[Device] = None,
    param_init_fn: Optional[Callable[[Module], None]] = None,
    label: Optional[str] = None,
    compile: bool = False,
    compile_bucket_elems: Optional[int] = None,
    compile_memory_budget: Optional[int] = None,
) -> Module:
    """Annotate ``module`` as one FSDP unit; returns the same module."""
    if backend not in _BACKENDS:
        raise FsdpError(
            f"unknown fully_shard backend {backend!r}; expected one of {_BACKENDS}"
        )
    existing = getattr(module, "_fsdp_unit", None)
    if existing is not None:
        raise FsdpError(
            f"module {type(module).__name__!r} is already annotated with "
            f"fully_shard (unit {existing.label!r}); fully_shard must be "
            "applied at most once per module"
        )
    _check_ancestor_claims(module)
    device = device or dist.get_device()

    if mesh is not None:
        plan = ShardingPlan(sharding_strategy, mesh.shard_group, mesh.replicate_group)
    else:
        plan = make_process_groups(
            sharding_strategy, process_group, sharding_factor=sharding_factor
        )
    unit_label = label or type(module).__name__

    triples = _unclaimed(_collect_unit_params(module))
    _materialize_unit_params(triples, device, param_init_fn)
    triples = _unclaimed(_collect_unit_params(module))
    _move_buffers(module, device, mixed_precision)

    mp = mixed_precision
    handle = None
    if triples:
        if backend == "per_param":
            if cpu_offload is not None and getattr(cpu_offload, "offload_params", False):
                raise FsdpError(
                    "the per_param backend does not support CPU offloading"
                )
            handle = PerParamHandle(
                triples,
                device,
                plan.shard_group,
                mesh=mesh or DeviceMesh.from_plan(plan, device),
                param_dtype=mp.param_dtype if mp else None,
                reduce_dtype=mp.resolved_reduce_dtype() if mp else None,
                keep_low_precision_grads=mp.keep_low_precision_grads if mp else False,
                label=unit_label,
            )
        else:
            handle = FlatParamHandle(
                triples,
                device,
                plan.shard_group,
                param_dtype=mp.param_dtype if mp else None,
                reduce_dtype=mp.resolved_reduce_dtype() if mp else None,
                keep_low_precision_grads=mp.keep_low_precision_grads if mp else False,
                offload_params=bool(cpu_offload and cpu_offload.offload_params),
                label=unit_label,
            )
            # FQN preservation: the FlatParameter is registered on the
            # annotated module itself, not on a wrapper.
            module.register_parameter("_flat_param", handle.flat_param)

    unit = FsdpUnit(handle, plan, label=unit_label)
    object.__setattr__(module, "_fsdp_unit", unit)
    for mod, _name, param in triples:
        # Claim marks: parameter-level for collection filtering (the
        # per-parameter backend keeps parameters registered), module-
        # level for the bottom-up ordering diagnostics above.
        object.__setattr__(mod, "_fsdp_param_owner", unit)
        setattr(param, "_fsdp_param_owner", unit)

    config = dict(
        backward_prefetch=backward_prefetch,
        forward_prefetch=forward_prefetch,
        limit_all_gathers=limit_all_gathers,
        rate_limit_inflight=rate_limit_inflight,
        compile=compile,
        compile_bucket_elems=compile_bucket_elems,
        compile_memory_budget=compile_memory_budget,
    )

    def _pre_hook(mod: Module, args):
        if unit.runtime is None:
            _init_runtime_for_root(mod, unit, device, config)
        new_args = args
        if unit.is_root:
            from repro.fsdp.api import _cast_forward_inputs

            new_args, _ = _cast_forward_inputs(mixed_precision, args, {})
        unit.pre_forward()
        return new_args

    def _post_hook(mod: Module, args, output):
        return unit.post_forward(output)

    module.register_forward_pre_hook(_pre_hook)
    module.register_forward_hook(_post_hook)
    return module
