"""Deferred initialization (Section 3.1).

``deferred_init(factory)`` builds the model on the *fake* (meta)
device: parameter tensors carry shapes but no storage, and every
recorded initialization op (``normal_``, ``uniform_``, ``fill_``,
``zero_``) is stored with its RNG child seed.  When FSDP later
materializes each unit — one at a time, sharding before moving on —
the recorded ops are replayed on the real device, reproducing the
user's initialization bit-identically without ever holding more than
one unsharded unit in device memory.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cuda.device import Device, meta_device
from repro.errors import DeferredInitError
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.tensor import empty, use_device

__all__ = ["deferred_init", "materialize_module", "is_deferred"]


def deferred_init(factory: Callable[..., Module], *args, **kwargs) -> Module:
    """Build ``factory(*args, **kwargs)`` on the fake device.

    Third-party model code needs no changes: tensor factories invoked
    without an explicit device are routed to the meta device, and
    in-place init ops record themselves for later replay.
    """
    with use_device(meta_device()):
        module = factory(*args, **kwargs)
    if not isinstance(module, Module):
        raise DeferredInitError("deferred_init factory must return a Module")
    return module


def is_deferred(module: Module) -> bool:
    """True if any parameter of ``module`` still lives on the fake device."""
    return any(p.device.is_meta for p in module.parameters())


def materialize_module(
    module: Module,
    device: Device,
    *,
    param_init_fn: Optional[Callable[[Module], None]] = None,
) -> Module:
    """Materialize a whole deferred module on ``device`` (replaying init).

    FSDP normally materializes unit by unit instead (lower peak
    memory); this helper is the whole-model fallback, useful for small
    models or tests.
    """
    for mod in module.modules():
        for name, param in list(mod._parameters.items()):
            if param is None or not param.device.is_meta:
                continue
            real = empty(*param.shape, dtype=param.dtype, device=device)
            param.replay_init_on(real)
            mod._parameters[name] = Parameter(real, requires_grad=param.requires_grad)
        for name, buffer in list(mod._buffers.items()):
            if buffer is None or not buffer.device.is_meta:
                continue
            real = empty(*buffer.shape, dtype=buffer.dtype, device=device)
            buffer.replay_init_on(real)
            mod._buffers[name] = real
        if param_init_fn is not None:
            param_init_fn(mod)
    return module
