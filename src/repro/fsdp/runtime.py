"""FSDP runtime: unit lifecycle, overlap, prefetching, rate limiting.

This module implements Sections 3.3 and 3.4:

- every unit's AllGather is issued on a dedicated *unshard stream*
  shared by all units of one FSDP root, bypassing the compute stream's
  sequential ordering so communication overlaps computation (3.3.1);
  ReduceScatters are issued on the same stream, reproducing the
  ProcessGroupNCCL single-internal-stream serialization that motivates
  backward prefetching (3.3.2);
- *backward prefetching* issues the next AllGather (by reverse
  pre-forward order, freshly observed each iteration) before the
  current ReduceScatter (3.3.2); *forward prefetching* issues the next
  forward AllGather using the previous iteration's order (3.3.3);
- the *rate limiter* caps inflight AllGathers at two, blocking the CPU
  thread on the oldest event so the caching allocator can reuse the
  producer-stream blocks instead of over-allocating (3.4);
- an end-of-backward callback waits for pending reductions so the
  optimizer never consumes gradients early (4.3).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Optional

from repro.autograd.engine import queue_callback
from repro.autograd.grad_mode import is_grad_enabled
from repro.cuda.device import Device
from repro.cuda.stream import Event, Stream
from repro.errors import FsdpError
from repro.fsdp.exec_order import ExecOrderValidator
from repro.fsdp.flat_param import FlatParamHandle
from repro.fsdp.sharding import ShardingPlan, ShardingStrategy
from repro.tensor import Tensor

__all__ = ["BackwardPrefetch", "FsdpRuntime", "FsdpUnit", "RATE_LIMIT_INFLIGHT"]

# "It allows at most two inflight AllGathers, which is the minimum
# amount to still achieve communication and computation overlap."
RATE_LIMIT_INFLIGHT = 2


class BackwardPrefetch(enum.Enum):
    """When to issue the next AllGather during backward."""

    #: Issue the next AllGather before the current unit's gradient
    #: computation (and hence before its ReduceScatter).
    BACKWARD_PRE = "backward_pre"
    #: Issue the next AllGather after the current unit's gradient
    #: computation (it still queues behind the ReduceScatter but avoids
    #: waiting for the next unit's pre-backward hook).
    BACKWARD_POST = "backward_post"
    #: No prefetching: the next AllGather queues behind the current
    #: ReduceScatter on the single communication stream.
    NONE = "none"


class FsdpRuntime:
    """State shared by every FSDP unit under one root."""

    def __init__(
        self,
        device: Device,
        *,
        backward_prefetch: BackwardPrefetch = BackwardPrefetch.BACKWARD_PRE,
        forward_prefetch: bool = False,
        limit_all_gathers: bool = True,
        rate_limit_inflight: int = RATE_LIMIT_INFLIGHT,
        compile_settings=None,
    ):
        self.device = device
        self.unshard_stream: Stream = device.new_stream("fsdp-unshard")
        self.backward_prefetch = backward_prefetch
        self.forward_prefetch = forward_prefetch
        self.limit_all_gathers = limit_all_gathers
        self.rate_limit_inflight = rate_limit_inflight
        self.units: list[FsdpUnit] = []
        self.exec_order: list[FsdpUnit] = []
        self.prev_exec_order: list[FsdpUnit] = []
        self.exec_validator = ExecOrderValidator()
        self._inflight: deque[Event] = deque()
        self._final_callback_queued = False
        self.iteration = 0
        self.in_backward = False
        #: repro.compile.CompileSettings when compilation is requested.
        self.compile_settings = compile_settings
        #: CaptureHook recording the current (eager) iteration, or None.
        self.capture = None
        #: CompiledExecutor replaying the compiled schedule, or None.
        self.compiled = None

    # ------------------------------------------------------------------
    # Rate limiter (Section 3.4)
    # ------------------------------------------------------------------
    def admit_allgather(self) -> None:
        """Block the CPU until at most ``limit - 1`` unsharded buffers
        have unconfirmed consumers.

        The queued events are recorded on the *compute* stream when a
        unit reshards (frees its unsharded FlatParameter), so waiting
        on one guarantees the freed block's cross-stream uses retired —
        the caching allocator can then reuse it for the next AllGather
        instead of growing the reserved pool.
        """
        prof = getattr(self.device, "profiler", None)
        if not self.limit_all_gathers:
            if prof is not None:
                prof.on_rate_limit_admit(depth=len(self._inflight), stall_s=0.0)
            return
        stall_start = self.device.cpu_time()
        while len(self._inflight) >= self.rate_limit_inflight:
            oldest = self._inflight.popleft()
            oldest.synchronize()
        if prof is not None:
            prof.on_rate_limit_admit(
                depth=len(self._inflight),
                stall_s=self.device.cpu_time() - stall_start,
            )

    def note_reshard_free(self) -> None:
        """Record a free event on the compute stream (called at reshard)."""
        event = self.device.default_stream.record_event()
        self._inflight.append(event)

    # ------------------------------------------------------------------
    # Iteration bookkeeping
    # ------------------------------------------------------------------
    def begin_iteration(self) -> None:
        self.iteration += 1
        self._advance_compile_state()
        prof = getattr(self.device, "profiler", None)
        if prof is not None:
            # A unit whose backward never ran leaves its scope pushed;
            # iteration boundaries are known-empty points.
            prof.reset_scopes()
        self.exec_validator.start_iteration()
        self.prev_exec_order = self.exec_order
        self.exec_order = []
        self.in_backward = False
        self._final_callback_queued = False
        for unit in self.units:
            unit.reset_iteration_state()
        # Parameters may have just been updated by the optimizer on the
        # compute stream; communication must observe those writes.
        self.unshard_stream.wait_stream(self.device.default_stream)
        if self.capture is not None:
            self.capture.on_iteration_begin()
        if self.compiled is not None:
            # Fires the schedule's iter_begin actions (the pipelined
            # first forward bucket) after the optimizer-write barrier.
            self.compiled.begin_iteration()

    def _advance_compile_state(self) -> None:
        """Iteration 1 records eagerly; iteration 2 compiles and installs.

        A capture left incomplete (an aborted iteration) records again;
        a capture marked unsupported (e.g. activation-checkpoint
        recompute re-entered a unit's forward) raises, because the
        user asked for compilation the runtime cannot honour.
        """
        settings = self.compile_settings
        if settings is None or not settings.enabled or self.compiled is not None:
            return
        capture = self.capture
        if capture is not None and capture.complete and capture.unsupported:
            raise FsdpError(f"cannot compile FSDP step: {capture.unsupported}")
        if capture is not None and capture.complete:
            from repro.compile import CompiledExecutor, compile_capture

            capture.liveness = dict(settings.liveness)
            elem_size = 4
            for unit in self.units:
                if unit.handle is not None:
                    elem_size = unit.handle.compute_dtype.itemsize
                    break
            schedule = compile_capture(
                capture,
                bucket_elems=settings.bucket_elems,
                elem_size=elem_size,
                memory_budget=settings.memory_budget,
                verify=settings.verify,
            )
            self.compiled = CompiledExecutor(self, schedule)
            self.capture = None
        else:
            from repro.compile import CaptureHook

            self.capture = CaptureHook(liveness=settings.liveness)

    def reset_after_failure(self) -> None:
        """Discard in-flight state after an aborted iteration.

        Elastic recovery calls this before reloading a checkpoint: a
        collective timeout or rank crash can leave the runtime
        mid-backward — pending reductions, a queued final callback,
        unsharded handles, stashed gradient shards.  All of it is
        dropped so the next ``pre_forward`` starts from a clean slate.
        """
        self._inflight.clear()
        self._final_callback_queued = False
        self.in_backward = False
        self.exec_order = []
        self.prev_exec_order = []
        # A half-recorded capture is useless; a compiled schedule stays
        # valid (the step's structure does not change across restarts).
        self.capture = None
        for unit in self.units:
            unit.pending_reduce_work = None
            unit._last_unshard_event = None
            unit.reset_iteration_state()
            if unit.handle is None:
                continue
            unit.handle.restore_stashed_gradient()
            if unit.handle.is_unsharded and unit.handle.needs_unshard:
                unit.handle.reshard()
        self.exec_validator.reset()
        self.unshard_stream.wait_stream(self.device.default_stream)

    def record_pre_forward(self, unit: "FsdpUnit") -> None:
        if unit not in self.exec_order:
            self.exec_order.append(unit)
            if unit.handle is not None:
                # Checkpoint recompute re-enters pre_forward but is
                # deduplicated above, so the validator sees each unit
                # once per iteration in first-use order.
                self.exec_validator.record_unshard(unit.label)

    def ensure_final_callback(self) -> None:
        if self._final_callback_queued:
            return
        self._final_callback_queued = True
        queue_callback(self._finalize_backward)

    def _finalize_backward(self) -> None:
        """Runs at GraphTask exit: wait reductions, tidy unit state."""
        for unit in self.units:
            # Per-parameter units whose last GraphTask finalized only a
            # subset of their gradients (checkpoint recompute tails)
            # still hold a partial count; fire their reduction now.
            if unit.handle is not None:
                unit.handle.flush_post_backward()
        if self.compiled is not None:
            self.compiled.on_finalize()
        if self.capture is not None:
            self.capture.on_finalize()
        for unit in self.units:
            if unit.handle is None:
                continue
            work = unit.pending_reduce_work
            if work is not None:
                work.wait()
                unit.pending_reduce_work = None
            unit.handle.restore_stashed_gradient()
            if unit.handle.is_unsharded and unit.handle.needs_unshard:
                # Units whose backward never ran (unused outputs) or
                # strategies that keep parameters through backward are
                # resharded here.
                unit.handle.reshard()
        # ``Work.wait()`` above only covers up to each ReduceScatter's
        # completion event; the stash-accumulate launched *after* the
        # event on the same stream is not.  Order the compute stream
        # behind everything on the communication stream so the optimizer
        # (and the next iteration's sharded-grad reads) observe final
        # gradients — the analogue of waiting on the post-backward
        # stream in the reference implementation's final callback.
        self.device.default_stream.wait_stream(self.unshard_stream)
        self._final_callback_queued = False
        self.in_backward = False

    # ------------------------------------------------------------------
    # Prefetch target selection
    # ------------------------------------------------------------------
    def next_backward_unit(self, unit: "FsdpUnit") -> Optional["FsdpUnit"]:
        """The unit expected to run backward after ``unit``.

        Uses the reverse of the current iteration's pre-forward order,
        which approximates the pre-backward order (Section 3.3.2).
        """
        order = self.exec_order
        try:
            index = order.index(unit)
        except ValueError:
            return None
        for candidate in reversed(order[:index]):
            if (
                candidate.handle is not None
                and not candidate.pre_backward_ran
                and not candidate.handle.is_unsharded
            ):
                return candidate
        return None

    def next_forward_unit(self, unit: "FsdpUnit") -> Optional["FsdpUnit"]:
        """The unit expected to run forward after ``unit``.

        Uses the previous iteration's order: forward prefetching
        assumes a static graph across iterations (Section 3.3.3).
        """
        order = self.prev_exec_order
        try:
            index = order.index(unit)
        except ValueError:
            return None
        for candidate in order[index + 1 :]:
            if (
                candidate.handle is not None
                and not candidate.handle.is_unsharded
                and not candidate.forward_ran
            ):
                return candidate
        return None


class FsdpUnit:
    """Per-unit runtime logic driving one FlatParamHandle."""

    def __init__(
        self,
        handle: Optional[FlatParamHandle],
        plan: ShardingPlan,
        *,
        is_root: bool = False,
        reshard_after_forward: Optional[bool] = None,
        label: str = "",
    ):
        # ``handle`` is None for container-only units (all parameters
        # already assigned to nested units); such a unit still does
        # root bookkeeping but has nothing to shard.
        self.handle = handle
        self.plan = plan
        self.is_root = is_root
        self.label = label or (handle.label if handle else "container")
        if reshard_after_forward is None:
            reshard_after_forward = plan.strategy.reshard_after_forward
        self.reshard_after_forward = reshard_after_forward
        self.runtime: Optional[FsdpRuntime] = None
        self._no_sync = False
        self.pending_reduce_work = None
        self._last_unshard_event: Optional[Event] = None
        # Per-iteration flags
        self.forward_ran = False
        self.pre_backward_ran = False
        self.post_backward_ran = False
        self._post_backward_hook_handle = None

    # ------------------------------------------------------------------
    def attach_runtime(self, runtime: FsdpRuntime) -> None:
        self.runtime = runtime
        if self not in runtime.units:
            runtime.units.append(self)
        if self.handle is not None and self._post_backward_hook_handle is None:
            # Backend-agnostic: the flat handle hooks its single
            # FlatParameter, the per-parameter handle counts individual
            # gradients; both fire ``_post_backward_hook`` when the
            # unit's gradients are finalized.
            self._post_backward_hook_handle = self.handle.register_post_backward(
                self._post_backward_hook
            )

    def reset_iteration_state(self) -> None:
        self.forward_ran = False
        self.pre_backward_ran = False
        self.post_backward_ran = False

    @property
    def no_sync(self) -> bool:
        return self._no_sync

    @no_sync.setter
    def no_sync(self, value: bool) -> None:
        self._no_sync = value

    # ------------------------------------------------------------------
    # Unshard with overlap + rate limiting
    # ------------------------------------------------------------------
    def _issue_unshard(self, reason: str = "forward") -> None:
        runtime = self._require_runtime()
        if self.handle is None or self.handle.is_unsharded:
            return
        if runtime.capture is not None:
            runtime.capture.on_unshard_issue(
                self.label,
                reason=reason,
                nbytes=self.handle.unsharded_nbytes,
                group_key=id(self.handle.shard_group),
                dtype=str(self.handle.compute_dtype),
            )
        prof = getattr(runtime.device, "profiler", None)
        if prof is None:
            runtime.admit_allgather()
            event = self.handle.unshard(runtime.unshard_stream)
        else:
            prof.on_unshard_issue(
                self.label, reason=reason, time=runtime.device.cpu_time()
            )
            with prof.scoped(f"unshard:{self.label}@{reason}"):
                runtime.admit_allgather()
                event = self.handle.unshard(runtime.unshard_stream)
        self._last_unshard_event = event

    def _reshard_and_note(self) -> None:
        """Reshard the handle; on an actual free, feed the rate limiter
        and the profiler."""
        runtime = self._require_runtime()
        freed = self.handle.unsharded_nbytes
        if self.handle.reshard():
            runtime.note_reshard_free()
            if runtime.capture is not None:
                runtime.capture.on_reshard(self.label, freed)
            prof = getattr(runtime.device, "profiler", None)
            if prof is not None:
                prof.on_reshard(self.label, runtime.device.cpu_time())

    def _wait_unshard_on_compute(self) -> None:
        """Compute-stream kernels must not start before *this unit's*
        AllGather (waiting on the whole unshard stream would serialize
        against prefetched AllGathers for later units)."""
        runtime = self._require_runtime()
        event = getattr(self, "_last_unshard_event", None)
        if event is not None:
            if runtime.capture is not None:
                runtime.capture.on_wait(self.label)
            runtime.device.default_stream.wait_event(event)

    def _require_runtime(self) -> FsdpRuntime:
        if self.runtime is None:
            raise FsdpError(
                f"FSDP unit {self.label!r} used before its root ran a forward pass"
            )
        return self.runtime

    # ------------------------------------------------------------------
    # Forward path
    # ------------------------------------------------------------------
    def pre_forward(self) -> None:
        runtime = self._require_runtime()
        if self.is_root:
            runtime.begin_iteration()
        runtime.record_pre_forward(self)
        self.forward_ran = True
        if runtime.capture is not None:
            runtime.capture.on_pre_forward(self.label)
        prof = getattr(runtime.device, "profiler", None)
        if prof is not None:
            # Scope everything the unit's forward does (kernels, nested
            # units, its own unshard) under ``forward:<label>``; popped
            # in post_forward.
            prof.push_scope(f"forward:{self.label}")
        if self.handle is None:
            return
        if runtime.compiled is not None:
            # Compiled replay: the executor fires this point's bucket
            # issues and the single surviving wait for this unit.
            runtime.compiled.on_pre_forward(self)
            self.handle.use_unsharded_views()
            return
        if prof is not None and runtime.forward_prefetch and not self.is_root:
            prof.on_prefetch_outcome(
                self.label, already_unsharded=self.handle.is_unsharded
            )
        self._issue_unshard()
        if runtime.forward_prefetch:
            target = runtime.next_forward_unit(self)
            if target is not None:
                target._issue_unshard(reason="forward_prefetch")
        self._wait_unshard_on_compute()
        self.handle.use_unsharded_views()

    def post_forward(self, output):
        runtime = self._require_runtime()
        if runtime.capture is not None:
            runtime.capture.on_post_forward(self.label)
        prof = getattr(runtime.device, "profiler", None)
        if prof is not None:
            prof.pop_scope(f"forward:{self.label}")
        if self.handle is None:
            return output
        if self.reshard_after_forward and not self.is_root and is_grad_enabled():
            self._reshard_and_note()
        if not is_grad_enabled():
            # Inference: free everything, no backward hooks needed.
            self._reshard_and_note()
            return output
        self._register_pre_backward_hooks(output)
        return output

    def _register_pre_backward_hooks(self, output) -> None:
        tensors = _flatten_tensors(output)
        for tensor in tensors:
            if tensor.requires_grad:
                tensor.register_hook(self._pre_backward_hook)

    # ------------------------------------------------------------------
    # Backward path
    # ------------------------------------------------------------------
    def _pre_backward_hook(self, grad: Tensor):
        runtime = self._require_runtime()
        runtime.ensure_final_callback()
        runtime.in_backward = True
        if self.pre_backward_ran or self.handle is None:
            return None
        self.pre_backward_ran = True
        if runtime.capture is not None:
            runtime.capture.on_pre_backward(self.label)
        prof = getattr(runtime.device, "profiler", None)
        if prof is not None:
            prof.on_pre_backward(self.label)
            if runtime.compiled is None and (
                runtime.backward_prefetch is not BackwardPrefetch.NONE
            ):
                prof.on_prefetch_outcome(
                    self.label, already_unsharded=self.handle.is_unsharded
                )
            # Pushed before issuing, so a backward-prefetch AllGather's
            # issue carries ``backward:<this unit>`` as its parent
            # scope — this unit's gradient computation is exactly what
            # the prefetch is meant to overlap (Section 3.3.2).  Popped
            # in the post-backward hook.
            prof.push_scope(f"backward:{self.label}")
        self.handle.prepare_gradient_for_backward()
        if runtime.compiled is not None:
            runtime.compiled.on_pre_backward(self)
            return None
        self._issue_unshard(reason="pre_backward")
        if runtime.backward_prefetch is BackwardPrefetch.BACKWARD_PRE:
            # Issue the next unit's AllGather now, ahead of this unit's
            # ReduceScatter on the shared communication stream.  The
            # target's own pre-backward hook still runs later (it will
            # find the handle already unsharded and only wait).
            target = runtime.next_backward_unit(self)
            if target is not None:
                target._issue_unshard(reason="backward_prefetch")
        self._wait_unshard_on_compute()
        return None

    def _post_backward_hook(self, flat_param) -> None:
        # May fire several times per backward: each checkpoint
        # recompute is its own GraphTask and finalizes this unit's
        # AccumulateGrad independently.  Every firing reduces its
        # contribution; the shards accumulate in the handle's stash.
        runtime = self._require_runtime()
        self.post_backward_ran = True
        runtime.ensure_final_callback()
        if runtime.capture is not None:
            runtime.capture.on_post_backward(
                self.label,
                nbytes=self.handle.unsharded_nbytes,
                group_key=id(self.handle.shard_group),
                dtype=str(self.handle.compute_dtype),
            )
        prof = getattr(runtime.device, "profiler", None)
        if prof is not None:
            prof.pop_scope(f"backward:{self.label}")
        # Free the unsharded parameters before reducing, shrinking the
        # peak: gradient memory replaces parameter memory.
        self._reshard_and_note()
        if runtime.compiled is not None:
            # The executor flushes this unit's reduce bucket when its
            # trigger (the bucket's last member) fires; grads park in
            # the handle until then.
            runtime.compiled.on_post_backward(self)
            return
        if prof is None:
            work = self.handle.reduce_grad(
                runtime.unshard_stream,
                replicate_group=self.plan.replicate_group,
                no_sync=self._no_sync,
            )
        else:
            with prof.scoped(f"reduce:{self.label}"):
                work = self.handle.reduce_grad(
                    runtime.unshard_stream,
                    replicate_group=self.plan.replicate_group,
                    no_sync=self._no_sync,
                )
        self.pending_reduce_work = work
        if runtime.backward_prefetch is BackwardPrefetch.BACKWARD_POST:
            target = runtime.next_backward_unit(self)
            if target is not None:
                target._issue_unshard(reason="backward_prefetch")


def _flatten_tensors(output) -> list[Tensor]:
    if isinstance(output, Tensor):
        return [output]
    if isinstance(output, (list, tuple)):
        tensors: list[Tensor] = []
        for item in output:
            tensors.extend(_flatten_tensors(item))
        return tensors
    if isinstance(output, dict):
        tensors = []
        for item in output.values():
            tensors.extend(_flatten_tensors(item))
        return tensors
    return []
