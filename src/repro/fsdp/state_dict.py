"""State-dict collection for sharded models.

Two flavours, mirroring ``torch.distributed.fsdp``:

- :func:`full_state_dict` — every rank AllGathers full-precision
  parameters one unit at a time (peak memory = one unsharded unit) and
  returns original-FQN → tensor, identical to the unwrapped model's
  ``state_dict()``;
- :func:`sharded_state_dict` — each rank returns only its local shards
  (cheap; pair with :func:`load_sharded_state_dict`).

:func:`load_full_state_dict` scatters a full state dict back into the
local shards.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.errors import FsdpError, ShardLayoutError
from repro.nn.module import Module
from repro.tensor import Tensor, tensor

if TYPE_CHECKING:  # pragma: no cover
    from repro.fsdp.flat_param import FlatParamHandle

__all__ = [
    "full_state_dict",
    "load_full_state_dict",
    "sharded_state_dict",
    "load_sharded_state_dict",
]


def _module_fqns(root: Module) -> dict[int, str]:
    """Map module ids to original-model FQNs, skipping FSDP wrappers."""
    from repro.fsdp.api import FullyShardedDataParallel

    mapping: dict[int, str] = {}

    def walk(module: Module, prefix: str) -> None:
        if isinstance(module, FullyShardedDataParallel):
            walk(module.module, prefix)
            return
        mapping[id(module)] = prefix
        for name, child in module._modules.items():
            if child is None:
                continue
            walk(child, f"{prefix}.{name}" if prefix else name)

    walk(root, "")
    return mapping


def _handles_under(root: Module) -> list["FlatParamHandle"]:
    from repro.fsdp.api import _units_under

    return [u.handle for u in _units_under(root) if u.handle is not None]


def _join(prefix: str, name: str) -> str:
    return f"{prefix}.{name}" if prefix else name


def full_state_dict(root: Module) -> "OrderedDict[str, Tensor]":
    """Collect the unsharded, full-precision state dict (Section 4).

    Units are gathered one at a time so peak memory stays at one
    unsharded FlatParameter.  Requires functional (materialized) mode.
    """
    fqns = _module_fqns(root)
    result: "OrderedDict[str, Tensor]" = OrderedDict()
    for handle in _handles_under(root):
        if getattr(handle, "is_per_param", False):
            gathered: dict[int, np.ndarray] = {}
            for info in handle.param_infos:
                fqn = _join(fqns[id(info.module)], info.name)
                if info.offset not in gathered:
                    full = handle.sharded_params[info.offset].gather_full()
                    if not full.is_materialized:
                        raise FsdpError("full_state_dict requires materialized tensors")
                    gathered[info.offset] = full._np.reshape(info.shape).copy()
                result[fqn] = tensor(
                    gathered[info.offset], dtype=handle.full_precision_dtype
                )
            continue
        full_flat = handle.gather_full_precision()
        if not full_flat.is_materialized:
            raise FsdpError("full_state_dict requires materialized tensors")
        flat_np = full_flat._np
        seen_offsets: set[int] = set()
        for info in handle.param_infos:
            fqn = _join(fqns[id(info.module)], info.name)
            if info.offset in seen_offsets and fqn in result:
                continue
            seen_offsets.add(info.offset)
            values = flat_np[info.offset : info.offset + info.numel].reshape(info.shape)
            result[fqn] = tensor(
                np.array(values), dtype=handle.full_precision_dtype
            )
        del full_flat
    for name, buffer in _named_buffers_clean(root, fqns):
        result[name] = tensor(buffer.numpy(), dtype=buffer.dtype)
    return result


def _named_buffers_clean(root: Module, fqns: dict[int, str]):
    for module in root.modules():
        if id(module) not in fqns:
            continue
        for name, buffer in module._buffers.items():
            if buffer is None:
                continue
            yield _join(fqns[id(module)], name), buffer


def load_full_state_dict(root: Module, state: dict) -> None:
    """Scatter a full state dict into each rank's local shards."""
    fqns = _module_fqns(root)
    with no_grad():
        for handle in _handles_under(root):
            if getattr(handle, "is_per_param", False):
                loaded: set[int] = set()
                for info in handle.param_infos:
                    if info.offset in loaded:
                        continue
                    loaded.add(info.offset)
                    sp = handle.sharded_params[info.offset]
                    fqn = _join(fqns[id(info.module)], info.name)
                    if fqn not in state:
                        raise KeyError(f"state dict is missing {fqn!r}")
                    value = state[fqn]
                    flat = (
                        value.numpy().reshape(-1)
                        if isinstance(value, Tensor)
                        else np.asarray(value).reshape(-1)
                    )
                    if not sp.sharded_data.is_materialized:
                        raise FsdpError(
                            "load_full_state_dict requires materialized tensors"
                        )
                    if sp.shard_numel:
                        sp.sharded_data._np.reshape(-1)[...] = flat[
                            sp.shard_offset : sp.shard_offset + sp.shard_numel
                        ]
                continue
            shard = handle._local_shard
            if not shard.is_materialized:
                raise FsdpError("load_full_state_dict requires materialized tensors")
            rank = handle.shard_group.rank
            shard_start = rank * handle.shard_numel
            shard_end = shard_start + handle.shard_numel
            loaded_offsets: set[int] = set()
            for info in handle.param_infos:
                if info.offset in loaded_offsets:
                    continue
                loaded_offsets.add(info.offset)
                fqn = _join(fqns[id(info.module)], info.name)
                if fqn not in state:
                    raise KeyError(f"state dict is missing {fqn!r}")
                value = state[fqn]
                flat = value.numpy().reshape(-1) if isinstance(value, Tensor) else np.asarray(value).reshape(-1)
                lo = max(info.offset, shard_start)
                hi = min(info.offset + info.numel, shard_end)
                if lo >= hi:
                    continue
                shard._np[lo - shard_start : hi - shard_start] = flat[
                    lo - info.offset : hi - info.offset
                ]
        for name, buffer in _named_buffers_clean(root, fqns):
            if name in state and buffer.is_materialized:
                value = state[name]
                src = value.numpy() if isinstance(value, Tensor) else np.asarray(value)
                buffer._np[...] = src.reshape(buffer.shape)


def sharded_state_dict(root: Module, *, copy: bool = False) -> "OrderedDict[str, Tensor]":
    """Each rank's local shards, keyed by unit index.

    With ``copy=False`` the returned tensors alias the live shards
    (cheap, suitable for immediate serialization).  Checkpoints that
    must survive further training steps need ``copy=True`` — elastic
    recovery restores from these snapshots after a rank failure.
    """
    result: "OrderedDict[str, Tensor]" = OrderedDict()
    fqns = _module_fqns(root)
    for index, handle in enumerate(_handles_under(root)):
        if getattr(handle, "is_per_param", False):
            # Per-parameter shards are keyed by FQN, not unit index:
            # the FQN is stable across wrap granularities, which is
            # what makes cross-granularity resharding a fast path.
            for sp in handle.sharded_params:
                key = f"per_param.{_join(fqns[id(sp.module)], sp.name)}"
                shard = sp.sharded_data.detach()
                if copy and shard.is_materialized:
                    shard = tensor(shard.numpy().copy(), dtype=shard.dtype)
                result[key] = shard
            continue
        key = f"flat_param.{index:03d}.{handle.label}"
        shard = handle._local_shard.detach()
        if copy and shard.is_materialized:
            shard = tensor(shard.numpy().copy(), dtype=shard.dtype)
        result[key] = shard
    return result


def load_sharded_state_dict(root: Module, state: dict) -> None:
    """Load shards saved by :func:`sharded_state_dict` (same layout).

    Raises :class:`ShardLayoutError` (a :class:`KeyError` subclass) when
    the state dict was saved under a different layout — missing unit
    keys or shard-size mismatches from a different world size or wrap
    granularity.  Such checkpoints must go through
    :func:`repro.checkpoint.load_resharded` instead.
    """
    fqns = _module_fqns(root)
    with no_grad():
        for index, handle in enumerate(_handles_under(root)):
            if getattr(handle, "is_per_param", False):
                for sp in handle.sharded_params:
                    key = f"per_param.{_join(fqns[id(sp.module)], sp.name)}"
                    if key not in state:
                        raise ShardLayoutError(
                            f"sharded state dict is missing {key!r}", key=key
                        )
                    value = state[key]
                    if isinstance(value, Tensor) and value.numel != sp.shard_numel:
                        raise ShardLayoutError(
                            f"shard {key!r} has {value.numel} elements but the "
                            f"model's local shard has {sp.shard_numel} — "
                            "checkpoint taken at a different world size? Use "
                            "repro.checkpoint.load_resharded.",
                            key=key,
                            expected=sp.shard_numel,
                            actual=value.numel,
                        )
                    if sp.shard_numel:
                        sp.sharded_data.copy_(value)
                continue
            key = f"flat_param.{index:03d}.{handle.label}"
            if key not in state:
                raise ShardLayoutError(
                    f"sharded state dict is missing {key!r}", key=key
                )
            value = state[key]
            if isinstance(value, Tensor) and value.numel != handle.shard_numel:
                raise ShardLayoutError(
                    f"shard {key!r} has {value.numel} elements but the model's "
                    f"local shard has {handle.shard_numel} — checkpoint taken "
                    "at a different world size or wrap granularity? Use "
                    "repro.checkpoint.load_resharded.",
                    key=key,
                    expected=handle.shard_numel,
                    actual=value.numel,
                )
            handle._local_shard.copy_(value)
