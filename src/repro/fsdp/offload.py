"""CPU offloading configuration.

With ``CPUOffload(offload_params=True)`` each rank's full-precision
parameter shard (and its reduced gradient shard) lives in host memory;
device memory holds only the transient unsharded FlatParameters and
activations.  Every unshard pays an extra host-to-device copy of the
shard over PCIe, and every gradient reduction a device-to-host copy —
the memory/throughput trade the paper cites for offloading approaches
([3] in its related work).  The optimizer then steps host tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CPUOffload"]


@dataclass(frozen=True)
class CPUOffload:
    """Whether parameters (and their gradient shards) live on the host."""

    offload_params: bool = False
