"""Optimizer state-dict gathering for sharded models.

The optimizer holds per-FlatParameter state tensors (e.g. Adam's
``exp_avg``/``exp_avg_sq``) that are sharded exactly like the
FlatParameter itself.  :func:`full_optim_state_dict` AllGathers each
state tensor one unit at a time and re-keys it by the original
parameter FQNs — the same consolidated format the unwrapped model's
optimizer would produce — and :func:`load_full_optim_state_dict`
scatters such a dict back into each rank's shards (e.g. when resuming
on a different world size).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from repro.autograd.grad_mode import no_grad
from repro.errors import FsdpError, ShardLayoutError
from repro.nn.module import Module
from repro.optim.optimizer import Optimizer
from repro.tensor import Tensor, empty, tensor, zeros_like

from repro.fsdp.state_dict import _handles_under, _join, _module_fqns

__all__ = [
    "full_optim_state_dict",
    "load_full_optim_state_dict",
    "sharded_optim_state_dict",
    "load_sharded_optim_state_dict",
]


def sharded_optim_state_dict(model: Module, optimizer: Optimizer, *, copy: bool = False) -> dict:
    """Each rank's local optimizer-state shards, keyed like
    :func:`repro.fsdp.state_dict.sharded_state_dict`.

    No communication: every rank saves exactly its own shard of each
    state tensor (Adam's ``exp_avg``/``exp_avg_sq`` are sharded like
    the FlatParameter itself).  ``copy=True`` snapshots the values so
    the checkpoint survives further optimizer steps — the format
    elastic recovery restores from.
    """
    state_out: "OrderedDict[str, dict]" = OrderedDict()
    fqns = _module_fqns(model)
    for index, handle in enumerate(_handles_under(model)):
        if getattr(handle, "is_per_param", False):
            for sp in handle.sharded_params:
                key = f"per_param.{_join(fqns[id(sp.module)], sp.name)}"
                state_out[key] = _copy_state_entry(
                    optimizer.state.get(id(sp.param), {}), copy
                )
            continue
        key = f"flat_param.{index:03d}.{handle.label}"
        state_out[key] = _copy_state_entry(
            optimizer.state.get(id(handle.flat_param), {}), copy
        )
    param_groups = [
        {k: v for k, v in group.items() if k != "params"}
        for group in optimizer.param_groups
    ]
    return {"state": state_out, "param_groups": param_groups}


def load_sharded_optim_state_dict(model: Module, optimizer: Optimizer, state_dict: dict) -> None:
    """Load shards saved by :func:`sharded_optim_state_dict` (same layout)."""
    state = state_dict["state"]
    fqns = _module_fqns(model)
    with no_grad():
        for index, handle in enumerate(_handles_under(model)):
            if getattr(handle, "is_per_param", False):
                for sp in handle.sharded_params:
                    key = f"per_param.{_join(fqns[id(sp.module)], sp.name)}"
                    if key not in state:
                        raise ShardLayoutError(
                            f"sharded optimizer state dict is missing {key!r}",
                            key=key,
                        )
                    param_state = optimizer.state.setdefault(id(sp.param), {})
                    for name, value in state[key].items():
                        if isinstance(value, Tensor):
                            if value.numel != sp.shard_numel:
                                raise ShardLayoutError(
                                    f"optimizer shard {key!r}[{name!r}] has "
                                    f"{value.numel} elements but the model's local "
                                    f"shard has {sp.shard_numel} — use repro."
                                    "checkpoint.load_resharded for cross-layout "
                                    "restores.",
                                    key=key,
                                    expected=sp.shard_numel,
                                    actual=value.numel,
                                )
                            current = param_state.get(name)
                            if (
                                not isinstance(current, Tensor)
                                or current.numel != value.numel
                            ):
                                current = zeros_like(sp.sharded_data)
                                param_state[name] = current
                            if not current.is_materialized:
                                raise FsdpError(
                                    "load_sharded_optim_state_dict requires "
                                    "materialized tensors"
                                )
                            if sp.shard_numel:
                                current.copy_(value)
                        else:
                            param_state[name] = value
                continue
            key = f"flat_param.{index:03d}.{handle.label}"
            if key not in state:
                raise ShardLayoutError(
                    f"sharded optimizer state dict is missing {key!r}", key=key
                )
            flat_state = optimizer.state.setdefault(id(handle.flat_param), {})
            for name, value in state[key].items():
                if isinstance(value, Tensor):
                    if value.numel != handle.shard_numel:
                        raise ShardLayoutError(
                            f"optimizer shard {key!r}[{name!r}] has {value.numel} "
                            f"elements but the model's local shard has "
                            f"{handle.shard_numel} — use repro.checkpoint."
                            "load_resharded for cross-layout restores.",
                            key=key,
                            expected=handle.shard_numel,
                            actual=value.numel,
                        )
                    current = flat_state.get(name)
                    if not isinstance(current, Tensor) or current.numel != value.numel:
                        current = zeros_like(handle.flat_param.detach())
                        flat_state[name] = current
                    if not current.is_materialized:
                        raise FsdpError(
                            "load_sharded_optim_state_dict requires materialized tensors"
                        )
                    current.copy_(value)
                else:
                    flat_state[name] = value
    for group, meta in zip(optimizer.param_groups, state_dict.get("param_groups", ())):
        for k, v in meta.items():
            if k != "params":
                group[k] = v


def _copy_state_entry(param_state: dict, copy: bool) -> dict:
    entry: dict[str, object] = {}
    for name, value in param_state.items():
        if isinstance(value, Tensor):
            saved = value.detach()
            if copy and saved.is_materialized:
                saved = tensor(saved.numpy().copy(), dtype=saved.dtype)
            entry[name] = saved
        else:
            entry[name] = value
    return entry


def _gather_per_param_state(sp, value: Tensor) -> np.ndarray:
    """AllGather one ShardedParam's optimizer state tensor to full size."""
    if value.numel != sp.shard_numel:
        raise FsdpError(
            f"optimizer state tensor for {sp.name!r} has {value.numel} elements; "
            f"expected the shard size {sp.shard_numel} — was the optimizer "
            "built after FSDP wrapping?"
        )
    if sp.sharding_factor == 1:
        return value.numpy().copy()
    full = empty(sp.numel, dtype=value.dtype, device=sp.device)
    offsets: list[int] = []
    total = 0
    for n in sp.shard_numels:
        offsets.append(total)
        total += n
    views = [
        Tensor(full._storage, (n,), offset=off)
        for n, off in zip(sp.shard_numels, offsets)
    ]
    work = sp.shard_group.all_gather(views, value.detach())
    work.wait()
    return full.numpy().copy()


def _gather_state_tensor(handle, value: Tensor) -> np.ndarray:
    """AllGather one sharded optimizer state tensor to full (padded) size."""
    if value.numel != handle.shard_numel:
        raise FsdpError(
            f"optimizer state tensor has {value.numel} elements; expected the "
            f"shard size {handle.shard_numel} — was the optimizer built "
            "after FSDP wrapping?"
        )
    if handle.sharding_factor == 1:
        return value.numpy().copy()
    device_value = value
    if value.device.is_cpu:
        # Offloaded state: stage through the device for the collective.
        from repro import ops

        with no_grad():
            device_value = ops.to_device(value.detach(), handle.device)
    full = empty(handle.padded_numel, dtype=value.dtype, device=handle.device)
    work = handle.shard_group.all_gather_into_tensor(full, device_value.detach())
    work.wait()
    return full.numpy().copy()


def full_optim_state_dict(model: Module, optimizer: Optimizer) -> dict:
    """Consolidate optimizer state, keyed by original parameter FQNs.

    Returns ``{"state": {fqn: {name: value}}, "param_groups": [...]}``
    where tensors are unsharded and scalars (e.g. Adam's ``step``) pass
    through.  Requires functional (materialized) mode.
    """
    fqns = _module_fqns(model)
    state_out: "OrderedDict[str, dict]" = OrderedDict()
    for handle in _handles_under(model):
        if getattr(handle, "is_per_param", False):
            gathered_sp: dict[int, dict[str, np.ndarray]] = {}
            scalars_sp: dict[int, dict[str, object]] = {}
            for info in handle.param_infos:
                sp = handle.sharded_params[info.offset]
                if info.offset not in gathered_sp:
                    param_state = optimizer.state.get(id(sp.param), {})
                    tensors: dict[str, np.ndarray] = {}
                    scalars: dict[str, object] = {}
                    for key, value in param_state.items():
                        if isinstance(value, Tensor):
                            tensors[key] = _gather_per_param_state(sp, value)
                        else:
                            scalars[key] = value
                    gathered_sp[info.offset] = tensors
                    scalars_sp[info.offset] = scalars
                fqn = _join(fqns[id(info.module)], info.name)
                entry: dict[str, object] = dict(scalars_sp[info.offset])
                for key, flat in gathered_sp[info.offset].items():
                    entry[key] = tensor(flat.reshape(info.shape))
                state_out[fqn] = entry
            continue
        flat_state = optimizer.state.get(id(handle.flat_param), {})
        gathered: dict[str, np.ndarray] = {}
        scalars: dict[str, object] = {}
        for key, value in flat_state.items():
            if isinstance(value, Tensor):
                gathered[key] = _gather_state_tensor(handle, value)
            else:
                scalars[key] = value
        seen_offsets: set[int] = set()
        for info in handle.param_infos:
            if info.offset in seen_offsets:
                continue
            seen_offsets.add(info.offset)
            fqn = _join(fqns[id(info.module)], info.name)
            entry: dict[str, object] = dict(scalars)
            for key, flat in gathered.items():
                entry[key] = tensor(
                    flat[info.offset : info.offset + info.numel].reshape(info.shape)
                )
            state_out[fqn] = entry

    param_groups = []
    for group in optimizer.param_groups:
        meta = {k: v for k, v in group.items() if k != "params"}
        meta["params"] = sorted(state_out.keys())
        param_groups.append(meta)
    return {"state": state_out, "param_groups": param_groups}


def load_full_optim_state_dict(model: Module, optimizer: Optimizer, state_dict: dict) -> None:
    """Scatter a consolidated optimizer state dict into local shards."""
    fqns = _module_fqns(model)
    state = state_dict["state"]
    with no_grad():
        for handle in _handles_under(model):
            if getattr(handle, "is_per_param", False):
                loaded: set[int] = set()
                for info in handle.param_infos:
                    if info.offset in loaded:
                        continue
                    loaded.add(info.offset)
                    sp = handle.sharded_params[info.offset]
                    fqn = _join(fqns[id(info.module)], info.name)
                    if fqn not in state:
                        raise KeyError(f"optimizer state dict is missing {fqn!r}")
                    param_state = optimizer.state.setdefault(id(sp.param), {})
                    for key, value in state[fqn].items():
                        if not isinstance(value, Tensor):
                            param_state[key] = value
                            continue
                        shard = param_state.get(key)
                        if (
                            not isinstance(shard, Tensor)
                            or shard.numel != sp.shard_numel
                        ):
                            shard = zeros_like(sp.sharded_data)
                            param_state[key] = shard
                        if not sp.shard_numel:
                            continue
                        if not shard.is_materialized:
                            raise FsdpError(
                                "load_full_optim_state_dict requires "
                                "materialized tensors"
                            )
                        flat = value.numpy().reshape(-1)
                        shard._np.reshape(-1)[...] = flat[
                            sp.shard_offset : sp.shard_offset + sp.shard_numel
                        ]
                continue
            rank = handle.shard_group.rank
            shard_start = rank * handle.shard_numel
            shard_end = shard_start + handle.shard_numel
            flat_state = optimizer.state.setdefault(id(handle.flat_param), {})

            # Collect tensor keys and scalars from any of this unit's params.
            tensor_keys: set[str] = set()
            seen_offsets: set[int] = set()
            for info in handle.param_infos:
                if info.offset in seen_offsets:
                    continue
                seen_offsets.add(info.offset)
                fqn = _join(fqns[id(info.module)], info.name)
                if fqn not in state:
                    raise KeyError(f"optimizer state dict is missing {fqn!r}")
                for key, value in state[fqn].items():
                    if isinstance(value, Tensor):
                        tensor_keys.add(key)
                    else:
                        flat_state[key] = value

            for key in tensor_keys:
                shard = flat_state.get(key)
                if shard is None or shard.numel != handle.shard_numel:
                    shard = zeros_like(handle.flat_param.detach())
                    flat_state[key] = shard
                if not shard.is_materialized:
                    raise FsdpError("load_full_optim_state_dict requires materialized tensors")
                seen_offsets = set()
                for info in handle.param_infos:
                    if info.offset in seen_offsets:
                        continue
                    seen_offsets.add(info.offset)
                    fqn = _join(fqns[id(info.module)], info.name)
                    value = state[fqn][key]
                    flat = value.numpy().reshape(-1)
                    lo = max(info.offset, shard_start)
                    hi = min(info.offset + info.numel, shard_end)
                    if lo >= hi:
                        continue
                    shard._np[lo - shard_start : hi - shard_start] = flat[
                        lo - info.offset : hi - info.offset
                    ]
