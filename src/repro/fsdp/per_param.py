"""Per-parameter sharding backend (``fully_shard`` v2).

Instead of flatten-concat-chunk (:mod:`repro.fsdp.flat_param`), each
parameter is sharded individually on dim 0 across the mesh's shard
group, the way the follow-up ``fully_shard`` rewrite (FSDP2 / DTensor)
does it:

- every parameter keeps its identity: it stays registered on its
  module under its original FQN, and the optimizer keys state by the
  same ``Parameter`` object across shard/unshard transitions (the
  ``.data`` pointer swaps; the object never does);
- sharding uses *exact* uneven dim-0 chunks (rank ``r`` holds rows
  ``[r*ceil(n/F), min((r+1)*ceil(n/F), n))``), so there is **zero
  padding anywhere** — the flat-param design pays up to ``F - 1``
  padding elements per unit, which is exactly the memory delta the
  ``BENCH_perparam`` artifact measures;
- collectives are batched per unit and always take the fast even
  ``*_into_tensor`` ring path: uneven per-rank segments are padded to
  the largest segment in the *transient* staging buffers only (the
  persistent shards stay exact), avoiding the derated uneven-collective
  fallback of the paper's Figure 2(b);
- the SHARDED <-> UNSHARDED lifecycle reuses the persistent-storage
  trick from the flat handle: each parameter owns one unsharded
  ``Storage`` whose identity never changes across release/reallocate,
  so tensors saved by autograd during forward read fresh bytes after
  the pre-backward AllGather refills them.

The handle exposes the same surface as :class:`FlatParamHandle`
(``unshard`` / ``reshard`` / ``reduce_grad`` / stash plumbing), so the
:class:`~repro.fsdp.runtime.FsdpUnit` scheduling machinery — unshard
stream, backward/forward prefetch, rate limiter, end-of-backward
callback — drives both backends unchanged (Section 3.3 invariants are
asserted for both in the golden-trace suite).

Post-backward signalling differs: there is no single flat leaf whose
AccumulateGrad marks the unit done.  Instead every parameter gets a
post-accumulate-grad hook feeding a counter; when the last expected
gradient of the unit lands, the unit callback fires (ReduceScatter
launch).  Activation-checkpoint recomputes that finalize only a subset
of the unit's gradients leave a partial count, which
``flush_post_backward`` drains from the end-of-backward callback.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro import dtypes, ops
from repro.autograd.grad_mode import no_grad
from repro.cuda.device import Device
from repro.cuda.stream import Event, Stream
from repro.distributed import ProcessGroup, ReduceOp, Work
from repro.distributed.mesh import DeviceMesh, Shard, chunk_bounds
from repro.errors import FsdpError
from repro.fsdp.flat_param import ParamInfo, ReduceJob
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.storage import Storage
from repro.tensor import Tensor, empty, zeros

__all__ = ["ShardedParam", "PerParamHandle"]


class _MultiHandle:
    """Aggregates the per-parameter hook handles of one unit."""

    def __init__(self, handles):
        self._handles = list(handles)

    def remove(self) -> None:
        for h in self._handles:
            h.remove()
        self._handles = []


class ShardedParam:
    """One parameter sharded on dim 0 with the ``Shard(0)`` placement.

    Holds the persistent sharded tensor (this rank's exact dim-0
    slice, full precision) and the released unsharded storage the
    AllGather refills before compute.
    """

    def __init__(
        self,
        module: Module,
        name: str,
        param: Parameter,
        device: Device,
        shard_group: ProcessGroup,
        *,
        compute_dtype: dtypes.DType,
        full_precision_dtype: dtypes.DType,
    ):
        self.module = module
        self.name = name
        self.param = param
        self.device = device
        self.shard_group = shard_group
        self.shape = tuple(param.shape)
        self.numel = param.numel
        self.full_precision_dtype = full_precision_dtype
        self.compute_dtype = compute_dtype
        self.placement = Shard(0)

        factor = shard_group.world_size
        rank = shard_group.rank
        self.sharding_factor = factor
        rows = self.shape[0] if self.shape else 1
        row_numel = self.numel // rows if rows else 0
        bounds = chunk_bounds(rows, factor)
        self.shard_rows = bounds[rank]
        self.shard_numels = [(end - start) * row_numel for start, end in bounds]
        self.shard_numel = self.shard_numels[rank]
        self.shard_offsets = [start * row_numel for start, _ in bounds]
        self.shard_offset = self.shard_offsets[rank]
        self.even = rows % factor == 0

        # Gradient lifecycle state (mirrors the flat handle's stash).
        self.saved_grad_shard: Optional[Tensor] = None
        self.unsharded_grad_accum: Optional[Tensor] = None
        self.grad_restored = False

        self._build_storages()

    @property
    def needs_unshard(self) -> bool:
        return (
            self.sharding_factor > 1
            or self.compute_dtype is not self.full_precision_dtype
        )

    def _shaped(self, flat: Tensor) -> Tensor:
        """Dim-0 local view (``Shard(0)`` semantics) of a flat shard."""
        if len(self.shape) <= 1:
            return flat
        start, end = self.shard_rows
        return ops.view(flat, (end - start, *self.shape[1:]))

    def _build_storages(self) -> None:
        device = self.device
        param = self.param
        with no_grad():
            if self.sharding_factor > 1:
                old_storage = param._storage
                if self.shard_numel:
                    flat = ops.view(param.detach(), (self.numel,))
                    sharded = ops.clone(
                        ops.narrow(flat, 0, self.shard_offset, self.shard_numel)
                    )
                else:
                    # Parameter has fewer rows than ranks: this rank's
                    # shard is empty (no padding is ever materialized).
                    sharded = Tensor(
                        Storage(device, self.full_precision_dtype, 0), (0,)
                    )
                # The registered (visible) shard carries Shard(0)
                # semantics: ``(local_rows, *shape[1:])``, a view over
                # the flat buffer the collectives consume.
                param.data = self._shaped(sharded)
                old_storage.free()
            else:
                # F == 1: the full-precision "shard" is the parameter
                # itself; nothing is freed.
                sharded = param.detach()
        self.sharded_data = sharded
        self.sharded_param = self.param.data

        if self.needs_unshard:
            self._unsharded_storage = Storage(device, self.compute_dtype, self.numel)
            self._unsharded_flat = Tensor(self._unsharded_storage, (self.numel,))
            self.unsharded_param = Tensor(self._unsharded_storage, self.shape)
            self._unsharded_storage.release()
            offsets: list[int] = []
            total = 0
            for n in self.shard_numels:
                offsets.append(total)
                total += n
            self._rank_views = [
                Tensor(self._unsharded_storage, (n,), offset=off)
                for n, off in zip(self.shard_numels, offsets)
            ]
        else:
            self._unsharded_storage = sharded._storage
            self._unsharded_flat = None
            self.unsharded_param = sharded
            self._rank_views = []

        if self.compute_dtype is not self.full_precision_dtype and self.sharding_factor > 1:
            self._mp_shard_storage: Optional[Storage] = Storage(
                device, self.compute_dtype, self.shard_numel
            )
            self._mp_shard: Optional[Tensor] = Tensor(
                self._mp_shard_storage, (self.shard_numel,)
            )
            self._mp_shard_storage.release()
        else:
            self._mp_shard_storage = None
            self._mp_shard = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def gather(self, stream: Stream) -> None:
        """AllGather (or cast-copy) this parameter into unsharded storage.

        Caller is responsible for ``device.stream(stream)`` / no_grad.
        """
        if not self.needs_unshard:
            return
        self._unsharded_storage.reallocate()
        if self.sharding_factor > 1:
            source = self.sharded_data
            if self._mp_shard is not None:
                self._mp_shard_storage.reallocate()
                self._mp_shard.copy_(source)
                source = self._mp_shard
            if self.even:
                self.shard_group.all_gather_into_tensor(
                    self._unsharded_flat, source, stream=stream
                )
            else:
                self.shard_group.all_gather(self._rank_views, source, stream=stream)
            if self._mp_shard is not None:
                self._mp_shard_storage.release()
        else:
            # NO_SHARD with mixed precision: a cast copy into the
            # compute-precision buffer.
            self.unsharded_param.copy_(self.sharded_data)

    def use_unsharded_view(self) -> None:
        if self.needs_unshard:
            self.param.data = self.unsharded_param

    def reshard(self) -> bool:
        if not self.needs_unshard:
            return False
        self._unsharded_storage.release()
        self.param.data = self.sharded_param
        return True

    # ------------------------------------------------------------------
    # Out-of-band data paths (state dict, writeback)
    # ------------------------------------------------------------------
    def gather_full(self) -> Tensor:
        """AllGather the full-precision parameter into a fresh tensor."""
        if self.sharding_factor == 1:
            with no_grad():
                return ops.clone(self.sharded_data)
        with no_grad():
            full = empty(
                self.numel, dtype=self.full_precision_dtype, device=self.device
            )
            offsets: list[int] = []
            total = 0
            for n in self.shard_numels:
                offsets.append(total)
                total += n
            views = [
                Tensor(full._storage, (n,), offset=off)
                for n, off in zip(self.shard_numels, offsets)
            ]
            work = self.shard_group.all_gather(views, self.sharded_data)
            work.wait()
            return ops.view(full, self.shape) if self.shape else full

    def load_full(self, value: Tensor) -> None:
        """Copy this rank's slice of a full tensor into the shard."""
        if value.numel != self.numel:
            raise FsdpError(
                f"state dict tensor for {self.name!r} has {value.numel} elements, "
                f"expected {self.numel}"
            )
        with no_grad():
            if self.sharding_factor == 1:
                self.sharded_data.copy_(value)
            elif self.shard_numel:
                flat = ops.view(value, (value.numel,))
                self.sharded_data.copy_(
                    ops.narrow(flat, 0, self.shard_offset, self.shard_numel)
                )

    def writeback(self) -> None:
        """Persist edits made through the unsharded view into the shard."""
        if not self.needs_unshard or not self.shard_numel:
            return
        with no_grad():
            my_slice = Tensor(
                self._unsharded_storage,
                (self.shard_numel,),
                offset=self.shard_offset,
                dtype=self.compute_dtype,
            )
            self.sharded_data.copy_(my_slice)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedParam({self.name!r}, shape={self.shape}, "
            f"rows={self.shard_rows}, F={self.sharding_factor})"
        )


class PerParamHandle:
    """Manages the shard/unshard lifecycle of one unit's parameters.

    API-compatible with :class:`FlatParamHandle` where the runtime is
    concerned; ``is_per_param`` discriminates the two for state-dict /
    checkpoint code that must key by FQN instead of flat offsets.
    """

    is_per_param = True

    def __init__(
        self,
        params: Sequence[tuple[Module, str, Parameter]],
        device: Device,
        shard_group: ProcessGroup,
        *,
        mesh: Optional[DeviceMesh] = None,
        param_dtype: Optional[dtypes.DType] = None,
        reduce_dtype: Optional[dtypes.DType] = None,
        keep_low_precision_grads: bool = False,
        label: str = "",
    ):
        if not params:
            raise FsdpError("PerParamHandle requires at least one parameter")
        self.device = device
        self.shard_group = shard_group
        self.mesh = mesh
        self.label = label

        unique: dict[int, tuple[Module, str, Parameter]] = {}
        bindings: list[tuple[Module, str, int]] = []
        for module, name, param in params:
            if id(param) not in unique:
                unique[id(param)] = (module, name, param)
            bindings.append((module, name, id(param)))

        originals = [p for _, _, p in unique.values()]
        full_dtype = originals[0].dtype
        for p in originals:
            if p.dtype is not full_dtype:
                raise FsdpError("all parameters in one FSDP unit must share a dtype")
            if not p.is_materialized and device.materialize_data:
                raise FsdpError("parameters must be materialized before sharding")
        self.full_precision_dtype = full_dtype
        self.compute_dtype = param_dtype or full_dtype
        self.reduce_dtype = reduce_dtype or self.compute_dtype
        self.keep_low_precision_grads = keep_low_precision_grads
        self.sharding_factor = shard_group.world_size

        self.sharded_params: list[ShardedParam] = [
            ShardedParam(
                module,
                name,
                param,
                device,
                shard_group,
                compute_dtype=self.compute_dtype,
                full_precision_dtype=full_dtype,
            )
            for module, name, param in unique.values()
        ]
        # ``offset`` indexes into ``sharded_params`` (there is no flat
        # buffer to offset into), letting tied bindings resolve to the
        # same ShardedParam.
        index_by_id = {id(sp.param): i for i, sp in enumerate(self.sharded_params)}
        self.param_infos = [
            ParamInfo(
                module,
                name,
                self.sharded_params[index_by_id[pid]].shape,
                self.sharded_params[index_by_id[pid]].numel,
                index_by_id[pid],
                name,
            )
            for module, name, pid in bindings
        ]

        self.is_unsharded = not self.needs_unshard
        self._post_backward_cb: Optional[Callable] = None
        self._expected_grads = 0
        self._grads_seen = 0

        # Batched-collective segment layout (see unshard): rank ``r``'s
        # segment is the concatenation of every parameter's ``r``-th
        # chunk, in sharded_params order.  ``_intra[id(sp)][r]`` is
        # sp's offset inside segment ``r``.
        factor = self.sharding_factor
        running = [0] * factor
        self._intra: dict[int, list[int]] = {}
        for sp in self.sharded_params:
            self._intra[id(sp)] = list(running)
            for r in range(factor):
                running[r] += sp.shard_numels[r]
        self._seg_numels = running
        self._even_batch = len(set(self._seg_numels)) == 1

    # ------------------------------------------------------------------
    # Introspection (FlatParamHandle-compatible surface)
    # ------------------------------------------------------------------
    @property
    def needs_unshard(self) -> bool:
        return (
            self.sharding_factor > 1
            or self.compute_dtype is not self.full_precision_dtype
        )

    @property
    def total_numel(self) -> int:
        return sum(sp.numel for sp in self.sharded_params)

    @property
    def padded_numel(self) -> int:
        # Exact dim-0 chunking never materializes padding.
        return self.total_numel

    @property
    def padding(self) -> int:
        return 0

    @property
    def shard_numel(self) -> int:
        """This rank's resident sharded elements (uneven across ranks)."""
        return sum(sp.shard_numel for sp in self.sharded_params)

    @property
    def unsharded_nbytes(self) -> int:
        return self.total_numel * self.compute_dtype.itemsize

    @property
    def sharded_nbytes(self) -> int:
        return self.shard_numel * self.full_precision_dtype.itemsize

    # ------------------------------------------------------------------
    # Unshard / reshard
    # ------------------------------------------------------------------
    def unshard(self, stream: Optional[Stream] = None) -> Optional[Event]:
        """One batched AllGather refills every parameter's storage.

        The unit's parameters are copied into a single rank-major
        staging buffer (copy-in), gathered with ONE collective, then
        copied out into each parameter's persistent unsharded storage —
        the FSDP2 batching that keeps the per-unit collective count
        identical to the flat backend's despite per-parameter shards.

        Same stream discipline as the flat handle: everything runs on
        the producer/communication stream; the returned event is what
        compute must wait on.  Ad-hoc calls (``stream=None``) insert
        the implicit producer/consumer edges themselves.
        """
        if self.is_unsharded:
            return None
        device = self.device
        ad_hoc = stream is None
        if ad_hoc:
            stream = self.shard_group.comm_stream
            current = device.current_stream
            if current is not None and current is not stream:
                stream.wait_stream(current)
        with device.stream(stream), no_grad():
            if self.sharding_factor == 1 or len(self.sharded_params) == 1:
                # No batching to do: a single parameter gathers straight
                # into its persistent storage (no staging copy), and
                # NO_SHARD only needs per-parameter cast copies.
                for sp in self.sharded_params:
                    sp.gather(stream)
            else:
                self._gather_batched(stream)
        event = stream.record_event()
        if ad_hoc:
            consumer = device.current_stream or device.default_stream
            if consumer is not stream:
                consumer.wait_event(event)
        self.is_unsharded = True
        # Repoint parameters at their unsharded storage right away:
        # unlike the flat backend's split/view placeholders, saved
        # activations reference the parameter objects themselves, so
        # a backward-prefetch unshard must restore the views before
        # the unit's backward kernels read them.
        self.use_unsharded_views()
        return event

    def _gather_batched(self, stream: Stream) -> None:
        """Copy-in, one AllGather, copy-out (caller holds stream/no_grad).

        Uneven per-rank segments (parameters whose dim 0 does not
        divide the shard group) are padded to the largest segment *in
        the transient staging buffers only*, so the collective is
        always the fast even ``all_gather_into_tensor`` ring — never
        the broadcast-per-rank uneven fallback the paper's Figure 2(b)
        measures.  Persistent sharded storage stays exact; the pad
        bytes exist only for the lifetime of the staging buffer.
        """
        gathered, local, seg_max = self._batched_copy_in()
        self.shard_group.all_gather_into_tensor(gathered, local, stream=stream)
        self._batched_copy_out(gathered, seg_max)

    def _batched_copy_in(self) -> tuple[Tensor, Tensor, int]:
        """Stage the rank-major AllGather input (caller holds stream/no_grad)."""
        device = self.device
        factor = self.sharding_factor
        rank = self.shard_group.rank
        seg_max = max(self._seg_numels)
        # Copy-in: this rank's chunks of every parameter, concatenated
        # in sharded_params order (the layout every rank assumes).
        if self._seg_numels[rank]:
            shards = [sp.sharded_data for sp in self.sharded_params]
            local = shards[0] if len(shards) == 1 else ops.cat(shards)
        else:
            local = empty(0, dtype=self.full_precision_dtype, device=device)
        if local.dtype is not self.compute_dtype:
            local = ops.cast(local, self.compute_dtype)
        if not self._even_batch:
            padded = zeros(seg_max, dtype=self.compute_dtype, device=device)
            if local.numel:
                ops.narrow(padded, 0, 0, local.numel).copy_(local)
            local = padded
        gathered = empty(factor * seg_max, dtype=self.compute_dtype, device=device)
        return gathered, local, seg_max

    def _batched_copy_out(self, gathered: Tensor, seg_max: int) -> None:
        # Copy-out: reassemble each parameter from its per-rank chunks
        # into the persistent unsharded storage (saved activations
        # alias it, so the staging buffer cannot be the destination).
        for sp in self.sharded_params:
            sp._unsharded_storage.reallocate()
        self._foreach_copy_out(gathered, seg_stride=seg_max)

    def unshard_pair(self, stream: Stream) -> Optional[tuple[Tensor, Tensor]]:
        """Stage this handle for a *bucketed* AllGather.

        Mirrors :meth:`FlatParamHandle.unshard_pair`: the copy-in half
        of :meth:`_gather_batched` runs now, the collective is issued by
        the caller as part of a coalesced bucket, and
        :meth:`unshard_commit` performs the copy-out.  The caller holds
        ``device.stream(stream)`` / ``no_grad``.

        Returns None for shapes that cannot express an even
        ``(output, input)`` pair — ``F == 1`` or a single parameter with
        uneven dim-0 chunks (which needs the list-AllGather) — in which
        case the caller falls back to a plain :meth:`unshard`.
        """
        if self.is_unsharded or self.sharding_factor <= 1:
            return None
        if len(self.sharded_params) == 1:
            sp = self.sharded_params[0]
            if not sp.even:
                return None
            sp._unsharded_storage.reallocate()
            source = sp.sharded_data
            if sp._mp_shard is not None:
                sp._mp_shard_storage.reallocate()
                sp._mp_shard.copy_(source)
                source = sp._mp_shard
            self._staged_gather = None
            return (sp._unsharded_flat, source)
        gathered, local, seg_max = self._batched_copy_in()
        self._staged_gather = (gathered, seg_max)
        return (gathered, local)

    def unshard_commit(self) -> None:
        """Finish a bucketed unshard once the collective is enqueued."""
        staged = getattr(self, "_staged_gather", None)
        if staged is not None:
            gathered, seg_max = staged
            self._batched_copy_out(gathered, seg_max)
        else:
            sp = self.sharded_params[0]
            if sp._mp_shard is not None:
                sp._mp_shard_storage.release()
        self._staged_gather = None
        self.is_unsharded = True
        self.use_unsharded_views()

    def _foreach_copy_out(self, gathered: Tensor, *, seg_stride: int) -> None:
        """Fused scatter of the gathered buffer into parameter storages.

        One simulated kernel for the whole unit (the
        ``torch._foreach_copy_`` idiom): per-parameter ``copy_`` calls
        would pay a launch per parameter per rank-chunk, which at
        transformer parameter counts costs more CPU than the collective
        itself.
        """
        device = self.device
        factor = self.sharding_factor
        spans: list[tuple[ShardedParam, int, int, int]] = []
        for sp in self.sharded_params:
            intra = self._intra[id(sp)]
            dst = 0
            for r in range(factor):
                n = sp.shard_numels[r]
                if n:
                    spans.append((sp, dst, r * seg_stride + intra[r], n))
                    dst += n
        if gathered.is_materialized:
            src_np = gathered._np
            for sp, dst_off, src_off, n in spans:
                if sp._unsharded_flat.is_materialized:
                    sp._unsharded_flat._np[dst_off : dst_off + n] = src_np[
                        src_off : src_off + n
                    ]
        if device.is_sim_gpu:
            from repro.hw.kernel_model import KernelCost

            writes = {
                id(sp._unsharded_storage): sp._unsharded_storage
                for sp, _, _, _ in spans
            }
            moved = sum(n for _, _, _, n in spans) * self.compute_dtype.itemsize
            device.launch(
                KernelCost(bytes_moved=2 * moved),
                self.compute_dtype,
                reads=(gathered._storage,),
                writes=tuple(writes.values()),
                label="foreach_copy_out",
            )

    def reshard(self) -> bool:
        if not self.needs_unshard or not self.is_unsharded:
            return False
        for sp in self.sharded_params:
            sp.reshard()
        self.is_unsharded = False
        return True

    def use_unsharded_views(self) -> None:
        if not self.is_unsharded:
            raise FsdpError(f"cannot create views while sharded ({self.label})")
        for sp in self.sharded_params:
            sp.use_unsharded_view()

    def writeback_unsharded_to_shard(self) -> None:
        if not self.needs_unshard or not self.is_unsharded:
            return
        for sp in self.sharded_params:
            sp.writeback()

    # ------------------------------------------------------------------
    # Post-backward signalling
    # ------------------------------------------------------------------
    def register_post_backward(self, callback: Callable) -> Optional[_MultiHandle]:
        """Fire ``callback`` when the unit's last expected gradient lands.

        Each parameter's post-accumulate-grad hook bumps a counter;
        reaching the number of ``requires_grad`` parameters triggers
        the unit's reduction, mirroring the flat backend's single
        post-accumulate hook on the FlatParameter.
        """
        targets = [sp for sp in self.sharded_params if sp.param.requires_grad]
        if not targets:
            return None
        self._post_backward_cb = callback
        self._expected_grads = len(targets)
        handles = [
            sp.param.register_post_accumulate_grad_hook(self._on_grad_ready)
            for sp in targets
        ]
        return _MultiHandle(handles)

    def _on_grad_ready(self, _variable) -> None:
        self._grads_seen += 1
        if self._grads_seen >= self._expected_grads:
            self._grads_seen = 0
            self._post_backward_cb(None)

    def flush_post_backward(self) -> bool:
        """Drain a partial gradient count (checkpoint recompute tails).

        A GraphTask that finalizes only some of the unit's gradients
        (e.g. the last activation-checkpoint recompute of a parent
        unit) leaves the counter short of the full complement; the
        end-of-backward callback calls this so those gradients are
        still reduced.  Returns True when the unit callback fired.
        """
        if self._grads_seen == 0 or self._post_backward_cb is None:
            return False
        self._grads_seen = 0
        self._post_backward_cb(None)
        return True

    # ------------------------------------------------------------------
    # Gradient handling
    # ------------------------------------------------------------------
    def prepare_gradient_for_backward(self) -> None:
        """Stash restored sharded gradients before new accumulation."""
        for sp in self.sharded_params:
            grad = sp.param.grad
            if grad is not None and sp.grad_restored and self.needs_unshard:
                with no_grad():
                    if sp.saved_grad_shard is not None:
                        grad = grad + sp.saved_grad_shard
                sp.saved_grad_shard = grad
                sp.param.grad = None
            sp.grad_restored = False

    def reduce_grad(
        self,
        stream: Stream,
        *,
        replicate_group: Optional[ProcessGroup] = None,
        no_sync: bool = False,
    ) -> Optional[Work]:
        """One batched ReduceScatter (+AllReduce) on the comm stream.

        Gradients of every parameter with one pending are sliced into a
        rank-major interleaved buffer (each destination rank's segment
        concatenates that rank's chunk of every gradient, zero-padded
        to the largest segment when uneven) and reduced with ONE even
        ring ``reduce_scatter_tensor``; the resulting local segment is
        split back into per-parameter shard views.  Averaging happens
        over the shard group in float64 elementwise, so the sharded
        gradients stay bitwise identical to the flat backend's.
        """
        device = self.device
        with no_grad():
            pending = self._collect_pending(no_sync)
            if not pending:
                return None

            work: Optional[Work] = None
            with device.stream(stream):
                # Gradients were produced on the compute stream; the
                # reductions must not start before they are final.
                stream.wait_stream(device.default_stream)
                if self.sharding_factor > 1:
                    work = self._reduce_batched(pending, stream, replicate_group)
                else:
                    for sp, grad in pending:
                        if grad.dtype is not self.reduce_dtype:
                            grad = ops.cast(grad, self.reduce_dtype)
                        new_shard = grad
                        if replicate_group is not None and replicate_group.world_size > 1:
                            work = replicate_group.all_reduce(
                                new_shard, op=ReduceOp.AVG, stream=stream
                            )
                        if (
                            new_shard.dtype is not self.full_precision_dtype
                            and not self.keep_low_precision_grads
                        ):
                            new_shard = ops.cast(new_shard, self.full_precision_dtype)
                        if sp.saved_grad_shard is not None:
                            new_shard = new_shard + sp.saved_grad_shard
                        sp.saved_grad_shard = new_shard.detach()
        return work

    def _collect_pending(self, no_sync: bool) -> list[tuple["ShardedParam", Tensor]]:
        """Drain ``.grad`` slots into (param, gradient) reduction pairs."""
        pending: list[tuple[ShardedParam, Tensor]] = []
        for sp in self.sharded_params:
            grad = sp.param.grad
            sp.param.grad = None
            if grad is None:
                continue
            if sp.unsharded_grad_accum is not None:
                grad = grad + sp.unsharded_grad_accum
                sp.unsharded_grad_accum = None
            if no_sync:
                sp.unsharded_grad_accum = grad
                continue
            pending.append((sp, grad))
        return pending

    def _reduce_batched(
        self,
        pending: list[tuple["ShardedParam", Tensor]],
        stream: Stream,
        replicate_group: Optional[ProcessGroup],
    ) -> Optional[Work]:
        """Batched grad reduction (caller holds stream/no_grad).

        Like ``_gather_batched``, uneven destination segments are
        zero-padded to the largest segment in the transient rank-major
        input, so the collective is always the even ring
        ``reduce_scatter_tensor`` (zeros reduce to zeros and the pad
        tail of the output is simply never sliced out).
        """
        job = self._reduce_batched_parts(pending, replicate_group)
        work = self.shard_group.reduce_scatter_tensor(
            job.output, job.input, op=ReduceOp.AVG, stream=stream
        )
        return job.finish(work, stream)

    def _reduce_batched_parts(
        self,
        pending: list[tuple["ShardedParam", Tensor]],
        replicate_group: Optional[ProcessGroup],
    ) -> ReduceJob:
        """Stage the batched reduction: everything but the collective."""
        device = self.device
        factor = self.sharding_factor
        seg = [
            sum(sp.shard_numels[r] for sp, _ in pending) for r in range(factor)
        ]
        seg_max = max(seg)
        flats = [ops.view(grad, (sp.numel,)) for sp, grad in pending]
        pad_total = factor * seg_max - sum(seg)
        pad_buf = (
            zeros(pad_total, dtype=pending[0][1].dtype, device=device)
            if pad_total
            else None
        )
        chunk_list: list[Tensor] = []
        pad_used = 0
        for r in range(factor):
            for (sp, _), flat in zip(pending, flats):
                if sp.shard_numels[r]:
                    chunk_list.append(
                        ops.narrow(flat, 0, sp.shard_offsets[r], sp.shard_numels[r])
                    )
            if seg[r] < seg_max:
                chunk_list.append(ops.narrow(pad_buf, 0, pad_used, seg_max - seg[r]))
                pad_used += seg_max - seg[r]
        flat_in = chunk_list[0] if len(chunk_list) == 1 else ops.cat(chunk_list)
        if flat_in.dtype is not self.reduce_dtype:
            flat_in = ops.cast(flat_in, self.reduce_dtype)
        out = empty(seg_max, dtype=self.reduce_dtype, device=device)

        def finish(work: Optional[Work], stream: Stream) -> Optional[Work]:
            result = out
            if replicate_group is not None and replicate_group.world_size > 1:
                work = replicate_group.all_reduce(result, op=ReduceOp.AVG, stream=stream)
            if (
                result.dtype is not self.full_precision_dtype
                and not self.keep_low_precision_grads
            ):
                result = ops.cast(result, self.full_precision_dtype)
            offset = 0
            for sp, _ in pending:
                new_shard = sp._shaped(ops.narrow(result, 0, offset, sp.shard_numel))
                offset += sp.shard_numel
                if sp.saved_grad_shard is not None:
                    # Stash-accumulate on the reduction stream (see the
                    # flat handle for the ordering rationale).
                    new_shard = new_shard + sp.saved_grad_shard
                sp.saved_grad_shard = new_shard.detach()
            return work

        return ReduceJob(out, flat_in, finish)

    def reduce_grad_pair(
        self, *, replicate_group: Optional[ProcessGroup] = None
    ) -> Optional[ReduceJob]:
        """Stage this unit's batched reduction for a coalesced bucket.

        Same contract as :meth:`FlatParamHandle.reduce_grad_pair`: the
        caller holds ``device.stream(stream)`` / ``no_grad``, has
        ordered the stream after compute, and runs ``finish`` after the
        bucket's ReduceScatter is enqueued.  Returns None when there is
        nothing to reduce or ``F == 1`` (fall back to
        :meth:`reduce_grad`).
        """
        if self.sharding_factor <= 1:
            return None
        pending = self._collect_pending(False)
        if not pending:
            return None
        return self._reduce_batched_parts(pending, replicate_group)

    def restore_stashed_gradient(self) -> None:
        """Move reduced shards into ``.grad`` for the optimizer."""
        for sp in self.sharded_params:
            if sp.saved_grad_shard is not None and sp.param.grad is None:
                sp.param.grad = sp.saved_grad_shard
                sp.saved_grad_shard = None
                sp.grad_restored = True

    # ------------------------------------------------------------------
    # Out-of-band helpers
    # ------------------------------------------------------------------
    def optim_state_nbytes(self, optimizer) -> int:
        """Bytes of optimizer state attached to this unit's parameters."""
        total = 0
        for sp in self.sharded_params:
            state = optimizer.state.get(id(sp.param))
            if not state:
                continue
            for value in state.values():
                if isinstance(value, Tensor):
                    total += value.nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PerParamHandle({self.label or 'unit'}, params={len(self.sharded_params)}, "
            f"numel={self.total_numel}, F={self.sharding_factor}, "
            f"unsharded={self.is_unsharded})"
        )
