"""``FullyShardedDataParallel`` — the model-wrapper frontend (Section 4).

Wrapping replaces sub-modules selected by ``auto_wrap_policy`` with
nested FSDP units (each owning one FlatParameter) and makes the wrapped
instance a unit for the residual parameters.  The first forward call of
the outermost wrapper performs lazy root initialization: it creates the
shared runtime (streams, rate limiter, execution-order tracker) and
attaches every unit beneath it.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Optional

from repro import distributed as dist
from repro import nn, ops
from repro.autograd.grad_mode import no_grad
from repro.cuda.device import Device
from repro.distributed import ProcessGroup
from repro.errors import FsdpError
from repro.fsdp.flat_param import FlatParamHandle, FlatParameter
from repro.fsdp.mixed_precision import MixedPrecision
from repro.fsdp.offload import CPUOffload
from repro.fsdp.runtime import BackwardPrefetch, FsdpRuntime, FsdpUnit, RATE_LIMIT_INFLIGHT
from repro.fsdp.sharding import ShardingStrategy, make_process_groups
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.tensor import Tensor, empty

__all__ = ["FullyShardedDataParallel", "fsdp_modules"]


class FullyShardedDataParallel(nn.Module):
    """Shard a module's parameters across data-parallel ranks."""

    def __init__(
        self,
        module: Module,
        process_group: Optional[ProcessGroup] = None,
        *,
        sharding_strategy: ShardingStrategy = ShardingStrategy.FULL_SHARD,
        sharding_factor: Optional[int] = None,
        auto_wrap_policy: Optional[Callable[[Module], bool]] = None,
        mixed_precision: Optional[MixedPrecision] = None,
        backward_prefetch: BackwardPrefetch = BackwardPrefetch.BACKWARD_PRE,
        forward_prefetch: bool = False,
        limit_all_gathers: bool = True,
        rate_limit_inflight: int = RATE_LIMIT_INFLIGHT,
        cpu_offload: Optional["CPUOffload"] = None,
        device: Optional[Device] = None,
        param_init_fn: Optional[Callable[[Module], None]] = None,
        ignored_modules: Optional[list[Module]] = None,
        label: Optional[str] = None,
        compile: bool = False,
        compile_bucket_elems: Optional[int] = None,
        compile_memory_budget: Optional[int] = None,
    ):
        super().__init__()
        device = device or dist.get_device()
        self._device = device
        ignored_ids = _ignored_module_ids(ignored_modules)
        self._config = dict(
            sharding_strategy=sharding_strategy,
            sharding_factor=sharding_factor,
            mixed_precision=mixed_precision,
            backward_prefetch=backward_prefetch,
            forward_prefetch=forward_prefetch,
            limit_all_gathers=limit_all_gathers,
            rate_limit_inflight=rate_limit_inflight,
            cpu_offload=cpu_offload,
            device=device,
            param_init_fn=param_init_fn,
            compile=compile,
            compile_bucket_elems=compile_bucket_elems,
            compile_memory_budget=compile_memory_budget,
        )

        # Units report themselves by dotted module path (falling back to
        # the class name at the root), so exec-order and sanitizer
        # diagnostics name *which* submodule diverged even when several
        # share a class.
        unit_label = label or type(module).__name__

        if auto_wrap_policy is not None:
            _auto_wrap(
                module,
                auto_wrap_policy,
                dict(self._config, process_group=process_group),
                ignored_ids,
                prefix=f"{unit_label}.",
            )

        plan = make_process_groups(
            sharding_strategy, process_group, sharding_factor=sharding_factor
        )
        # Ignored modules (e.g. model-parallel sparse embedding tables)
        # are materialized on the device but never flattened or sharded.
        ignored_triples = _collect_unit_params(module, only_ids=ignored_ids)
        _materialize_unit_params(ignored_triples, device, None)
        triples = _collect_unit_params(module, skip_ids=ignored_ids)
        _materialize_unit_params(triples, device, param_init_fn)
        triples = _collect_unit_params(module, skip_ids=ignored_ids)
        _move_buffers(module, device, mixed_precision)

        handle: Optional[FlatParamHandle] = None
        if triples:
            mp = mixed_precision
            handle = FlatParamHandle(
                triples,
                device,
                plan.shard_group,
                param_dtype=mp.param_dtype if mp else None,
                reduce_dtype=mp.resolved_reduce_dtype() if mp else None,
                keep_low_precision_grads=mp.keep_low_precision_grads if mp else False,
                offload_params=bool(cpu_offload and cpu_offload.offload_params),
                label=unit_label,
            )
            self.register_parameter("_flat_param", handle.flat_param)

        self.module = module
        self._fsdp_unit = FsdpUnit(handle, plan, label=unit_label)

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        self._lazy_init()
        if self._fsdp_unit.is_root:
            args, kwargs = _cast_forward_inputs(
                self._config["mixed_precision"], args, kwargs
            )
        self._fsdp_unit.pre_forward()
        output = self.module(*args, **kwargs)
        return self._fsdp_unit.post_forward(output)

    def _lazy_init(self) -> None:
        if self._fsdp_unit.runtime is not None:
            return
        # The first wrapper whose forward runs with no runtime attached
        # is the root: it builds the shared runtime and adopts every
        # unit underneath it.
        _init_runtime_for_root(self, self._fsdp_unit, self._device, self._config)

    # ------------------------------------------------------------------
    # Introspection / utilities
    # ------------------------------------------------------------------
    @property
    def sharding_strategy(self) -> ShardingStrategy:
        return self._fsdp_unit.plan.strategy

    @property
    def flat_handles(self) -> list[FlatParamHandle]:
        return [u.handle for u in _units_under(self) if u.handle is not None]

    @contextlib.contextmanager
    def no_sync(self):
        """Accumulate gradients without communication (Section 3.3.4).

        Each rank keeps *unsharded* gradients locally — higher memory,
        less communication — until the first backward outside the
        context reduces them.
        """
        units = _units_under(self)
        previous = [u.no_sync for u in units]
        for unit in units:
            unit.no_sync = True
        try:
            yield
        finally:
            for unit, value in zip(units, previous):
                unit.no_sync = value

    @contextlib.contextmanager
    def summon_full_params(self, *, writeback: bool = True):
        """Temporarily materialize unsharded parameters on every rank.

        Inside the context the original parameter attributes are valid
        unsharded views (useful for evaluation, surgery or export).
        With ``writeback`` (default), in-place edits made through the
        views are scattered back into the local shards on exit;
        otherwise edits are discarded with the unsharded storage.
        """
        units = [u for u in _units_under(self) if u.handle is not None]
        was_unsharded = []
        for unit in units:
            handle = unit.handle
            was_unsharded.append(handle.is_unsharded)
            if not handle.is_unsharded:
                event = handle.unshard()
                if event is not None:
                    event.synchronize()
            handle.use_unsharded_views()
        try:
            yield self
        finally:
            for unit, keep in zip(units, was_unsharded):
                handle = unit.handle
                if writeback:
                    handle.writeback_unsharded_to_shard()
                if not keep:
                    handle.reshard()

    def clip_grad_norm_(self, max_norm: float) -> float:
        """Gradient clipping that is correct under sharding.

        Delegates to :func:`repro.optim.clip.clip_grad_norm_` with the
        shard group: local shard norms are squared-summed across ranks
        before the square root (Section 7.2.1 explains why a local-only
        norm is wrong).
        """
        from repro.optim.clip import clip_grad_norm_

        units = [u for u in _units_under(self) if u.handle is not None]
        if not units:
            return 0.0
        return clip_grad_norm_(
            [u.handle.flat_param for u in units],
            max_norm,
            process_group=units[0].plan.shard_group,
        )

    def extra_repr(self) -> str:
        unit = self._fsdp_unit
        handle = unit.handle
        numel = handle.total_numel if handle else 0
        return f"strategy={unit.plan.strategy.name}, unit_numel={numel}"


def fsdp_modules(module: Module) -> list[FullyShardedDataParallel]:
    """All FSDP wrappers in a module tree (outermost first)."""
    return [m for m in module.modules() if isinstance(m, FullyShardedDataParallel)]


# ----------------------------------------------------------------------
# Wiring helpers (shared with fully_shard)
# ----------------------------------------------------------------------
def _units_under(root: Module) -> list[FsdpUnit]:
    units: list[FsdpUnit] = []
    for mod in root.modules():
        unit = getattr(mod, "_fsdp_unit", None)
        if isinstance(unit, FsdpUnit) and unit not in units:
            units.append(unit)
    return units


def _init_runtime_for_root(
    root_module: Module, root_unit: FsdpUnit, device: Device, config: dict
) -> None:
    compile_settings = None
    if config.get("compile"):
        from repro.compile import CompileSettings

        compile_settings = CompileSettings(
            enabled=True,
            bucket_elems=config.get("compile_bucket_elems"),
            memory_budget=config.get("compile_memory_budget"),
        )
    runtime = FsdpRuntime(
        device,
        backward_prefetch=config["backward_prefetch"],
        forward_prefetch=config["forward_prefetch"],
        limit_all_gathers=config["limit_all_gathers"],
        rate_limit_inflight=config["rate_limit_inflight"],
        compile_settings=compile_settings,
    )
    root_unit.is_root = True
    # The paper intentionally keeps the outermost unit's parameters in
    # memory between forward and backward (Section 3.3.1, Figure 5).
    root_unit.reshard_after_forward = False
    for unit in _units_under(root_module):
        unit.attach_runtime(runtime)
    if root_unit.runtime is None:
        root_unit.attach_runtime(runtime)


def _cast_forward_inputs(mixed_precision, args: tuple, kwargs: dict):
    """Cast floating tensor inputs to the compute dtype (root pre-forward)."""
    if mixed_precision is None or mixed_precision.param_dtype is None:
        return args, kwargs
    dtype = mixed_precision.param_dtype

    def cast(value):
        if isinstance(value, Tensor) and value.dtype.is_floating:
            return ops.cast(value, dtype)
        return value

    return tuple(cast(a) for a in args), {k: cast(v) for k, v in kwargs.items()}


def _ignored_module_ids(ignored_modules) -> set[int]:
    """Ids of ignored modules and all their descendants."""
    ids: set[int] = set()
    for module in ignored_modules or ():
        for sub in module.modules():
            ids.add(id(sub))
    return ids


def _auto_wrap(
    module: Module,
    policy,
    wrap_kwargs: dict,
    ignored_ids: set[int] = frozenset(),
    prefix: str = "",
) -> None:
    for name, child in list(module._modules.items()):
        if child is None or isinstance(child, FullyShardedDataParallel):
            continue
        if id(child) in ignored_ids:
            continue
        _auto_wrap(child, policy, wrap_kwargs, ignored_ids, prefix=f"{prefix}{name}.")
        if policy(child):
            kwargs = dict(wrap_kwargs)
            kwargs.pop("param_init_fn", None)
            module._modules[name] = FullyShardedDataParallel(
                child,
                kwargs.pop("process_group", None),
                param_init_fn=wrap_kwargs.get("param_init_fn"),
                label=f"{prefix}{name}",
                **kwargs,
            )


def _collect_unit_params(
    module: Module,
    skip_ids: set[int] = frozenset(),
    only_ids: Optional[set[int]] = None,
) -> list[tuple[Module, str, Parameter]]:
    """Parameters of this unit: everything not already flattened.

    ``skip_ids`` excludes ignored modules; ``only_ids`` selects just
    those (used to materialize ignored modules without sharding them).
    """
    triples: list[tuple[Module, str, Parameter]] = []
    for mod in module.modules():
        if only_ids is not None:
            if id(mod) not in only_ids:
                continue
        elif id(mod) in skip_ids:
            continue
        for name, param in mod._parameters.items():
            if param is None or isinstance(param, FlatParameter):
                continue
            triples.append((mod, name, param))
    return triples


def _materialize_unit_params(
    triples: list[tuple[Module, str, Parameter]],
    device: Device,
    param_init_fn: Optional[Callable[[Module], None]],
) -> None:
    """Deferred-init replay / CPU-streaming for this unit (Section 4.1).

    Meta parameters are materialized on the target device by replaying
    their recorded init ops; CPU parameters are streamed to the device.
    Either way only this unit's parameters are unsharded at once.
    """
    materialized: dict[int, Parameter] = {}
    for mod, name, param in triples:
        if id(param) in materialized:
            mod._parameters[name] = materialized[id(param)]
            continue
        new_param: Optional[Parameter] = None
        if param.device.is_meta:
            real = empty(*param.shape, dtype=param.dtype, device=device)
            param.replay_init_on(real)
            new_param = Parameter(real, requires_grad=param.requires_grad)
        elif param.device is not device:
            with no_grad():
                moved = ops.to_device(param.detach(), device)
            new_param = Parameter(moved, requires_grad=param.requires_grad)
        if new_param is not None:
            materialized[id(param)] = new_param
            mod._parameters[name] = new_param
    if param_init_fn is not None:
        seen: set[int] = set()
        for mod, _, _ in triples:
            if id(mod) not in seen:
                seen.add(id(mod))
                param_init_fn(mod)


def _move_buffers(module: Module, device: Device, mixed_precision) -> None:
    dtype = mixed_precision.resolved_buffer_dtype() if mixed_precision else None
    for mod in module.modules():
        for name, buffer in mod._buffers.items():
            if buffer is None:
                continue
            moved = buffer
            if buffer.device is not device:
                with no_grad():
                    moved = ops.to_device(moved, device)
            if dtype is not None and moved.dtype.is_floating and moved.dtype is not dtype:
                with no_grad():
                    moved = ops.cast(moved, dtype)
            mod._buffers[name] = moved
