"""Native mixed precision configuration (Section 4.4).

FSDP keeps the sharded FlatParameter in full precision for the
optimizer and maintains a low-precision copy for compute; the cast
happens once per FlatParameter in pre-forward (and pre-backward when
resharding after forward), not per-operator like autocast.  All
collectives may run in the low precision, halving communication volume.

Peak parameter memory *decreases* under this scheme: from
``max_i {K_full ψ_i / F + K_full ψ_i}`` to
``max_i {K_full ψ_i / F + K_low ψ_i}``, because the sharded full-
precision copy is always resident while the transient unsharded copy
is now low precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import dtypes

__all__ = ["MixedPrecision", "BF16_MIXED", "FP16_MIXED"]


@dataclass(frozen=True)
class MixedPrecision:
    """User-specified precisions, each independently optional.

    Attributes:
        param_dtype: dtype of unsharded parameters used by forward and
            backward compute (and of the parameter AllGather).
        reduce_dtype: dtype of gradient reduction collectives; defaults
            to ``param_dtype``.
        buffer_dtype: dtype buffers are cast to; defaults to
            ``param_dtype``.
        keep_low_precision_grads: keep sharded gradients in
            ``reduce_dtype`` instead of upcasting for the optimizer.
    """

    param_dtype: Optional[dtypes.DType] = None
    reduce_dtype: Optional[dtypes.DType] = None
    buffer_dtype: Optional[dtypes.DType] = None
    keep_low_precision_grads: bool = False

    def resolved_reduce_dtype(self) -> Optional[dtypes.DType]:
        return self.reduce_dtype or self.param_dtype

    def resolved_buffer_dtype(self) -> Optional[dtypes.DType]:
        return self.buffer_dtype or self.param_dtype


BF16_MIXED = MixedPrecision(param_dtype=dtypes.bfloat16, reduce_dtype=dtypes.bfloat16)
FP16_MIXED = MixedPrecision(param_dtype=dtypes.float16, reduce_dtype=dtypes.float16)
